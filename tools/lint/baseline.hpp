// baseline.hpp — reviewed-escape list for flock-lint.
//
// A baseline entry records a finding a human has reviewed and argued
// correct (the argument lives in the `#` comment above the entry). Format,
// one finding per line:
//
//     RULE|path|normalized source line
//
// The third field is the finding's source line with whitespace collapsed
// (source_file.hpp normalize_ws), NOT a line number — entries survive
// reindentation and code motion but go stale the moment the offending
// line is edited, which is exactly when the escape needs re-review.
// Multiple identical source lines in one file (e.g. a repeated idiom)
// are covered by a single entry; that is deliberate — the reviewed
// argument is about the line's content.
//
// Stale entries (matching no current finding) are reported by the CLI and
// fail the run: a baseline may only describe the tree as it is.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace flock_lint {

class baseline {
 public:
  /// Parse baseline text. Malformed lines are reported via `errors` and
  /// skipped. '#' starts a comment; blank lines ignored.
  static baseline parse(const std::string& text,
                        std::vector<std::string>* errors = nullptr) {
    baseline b;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      lineno++;
      std::string stripped = line;
      if (auto h = stripped.find('#'); h == 0) continue;  // comment line
      // Trim trailing \r and surrounding spaces.
      while (!stripped.empty() &&
             (stripped.back() == '\r' || stripped.back() == ' '))
        stripped.pop_back();
      if (stripped.empty()) continue;
      std::size_t p1 = stripped.find('|');
      std::size_t p2 = p1 == std::string::npos ? std::string::npos
                                               : stripped.find('|', p1 + 1);
      if (p2 == std::string::npos) {
        if (errors)
          errors->push_back("baseline line " + std::to_string(lineno) +
                            ": want RULE|path|snippet, got: " + stripped);
        continue;
      }
      entry e;
      e.rule = stripped.substr(0, p1);
      e.path = stripped.substr(p1 + 1, p2 - p1 - 1);
      e.snippet = normalize_ws(stripped.substr(p2 + 1));
      e.text = stripped;
      b.entries_.push_back(e);
    }
    return b;
  }

  /// True if the finding is covered; marks the entry used.
  bool matches(const finding& f) {
    for (entry& e : entries_) {
      if (e.rule == f.rule && e.path == f.path && e.snippet == f.snippet &&
          !f.snippet.empty()) {
        e.used = true;
        return true;
      }
    }
    return false;
  }

  /// Entries that never matched a finding (stale — must be pruned).
  std::vector<std::string> unused() const {
    std::vector<std::string> out;
    for (const entry& e : entries_)
      if (!e.used) out.push_back(e.text);
    return out;
  }

  std::size_t size() const { return entries_.size(); }

  /// Serialize findings as baseline entries (CLI --write-baseline; the
  /// human then adds the justification comments).
  static std::string serialize(const std::vector<finding>& fs) {
    std::ostringstream out;
    for (const finding& f : fs)
      out << f.rule << "|" << f.path << "|" << f.snippet << "\n";
    return out.str();
  }

 private:
  struct entry {
    std::string rule, path, snippet, text;
    bool used = false;
  };
  std::vector<entry> entries_;
};

}  // namespace flock_lint
