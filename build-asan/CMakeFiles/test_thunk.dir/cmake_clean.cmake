file(REMOVE_RECURSE
  "CMakeFiles/test_thunk.dir/tests/test_thunk.cpp.o"
  "CMakeFiles/test_thunk.dir/tests/test_thunk.cpp.o.d"
  "test_thunk"
  "test_thunk.pdb"
  "test_thunk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
