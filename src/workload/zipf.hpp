// zipf.hpp — zipfian key generator following the YCSB methodology the
// paper's §8 cites [15]: ranks drawn zipf(alpha) over [1, r], scrambled
// through a random permutation so "hot" keys are spread across the key
// space (as in YCSB's scrambled zipfian).
//
// Implementation: the classic Gray et al. bounded zipfian via the
// zeta-based inverse CDF approximation; alpha = 0 degenerates to uniform.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

namespace flock_workload {

inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xorshift-based fast PRNG, one per thread.
class rng64 {
 public:
  explicit rng64(uint64_t seed) : s_(seed ? seed : 0x853c49e6748fea9bULL) {}
  uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  /// Uniform in [0, n): Lemire's multiply-shift reduction. Modulo
  /// reduction biases low values for ranges that don't divide 2^64
  /// (noticeably so for the large non-power-of-two key ranges the
  /// uniform-alpha workloads draw from); the multiply-shift map spreads
  /// the bias evenly across the range instead (residual bias < n/2^64).
  uint64_t next(uint64_t n) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }
  double next_double() {  // [0,1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t s_;
};

/// Shared, immutable zipfian tables for a (range, alpha) pair; thread-safe
/// to sample from concurrently (sampling uses a caller-provided rng).
class zipf_distribution {
 public:
  zipf_distribution(uint64_t range, double alpha, uint64_t seed = 42)
      : n_(range), alpha_(alpha) {
    if (alpha_ > 0) {
      zetan_ = zeta(n_, alpha_);
      theta_ = alpha_;
      zeta2_ = zeta(2, theta_);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2_ / zetan_);
    }
    // Rank -> key permutation (YCSB-style scrambling).
    perm_.resize(n_);
    std::iota(perm_.begin(), perm_.end(), uint64_t{1});
    std::mt19937_64 g(seed);
    std::shuffle(perm_.begin(), perm_.end(), g);
  }

  uint64_t range() const { return n_; }
  double alpha() const { return alpha_; }

  /// Draw a key in [1, range].
  uint64_t sample(rng64& rng) const {
    if (alpha_ <= 0.0) return perm_[rng.next(n_)];
    double u = rng.next_double();
    double uz = u * zetan_;
    uint64_t rank;
    if (uz < 1.0) {
      rank = 1;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 2;
    } else {
      rank = 1 + static_cast<uint64_t>(
                     static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, 1.0 / (1.0 - theta_)));
      if (rank > n_) rank = n_;
    }
    return perm_[rank - 1];
  }

 private:
  static double zeta(uint64_t n, double theta) {
    // Exact for small n; for large n use the standard YCSB approximation
    // by summing a prefix and integrating the tail.
    const uint64_t kExact = 1 << 20;
    double sum = 0;
    uint64_t m = n < kExact ? n : kExact;
    for (uint64_t i = 1; i <= m; i++)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > m) {
      // integral_{m}^{n} x^-theta dx
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(m), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double alpha_;
  double zetan_ = 0, theta_ = 0, zeta2_ = 0, eta_ = 0;
  std::vector<uint64_t> perm_;
};

}  // namespace flock_workload
