// driver.hpp — the timed mixed-operation throughput driver reproducing
// the paper's §8 methodology: prefill the structure with half the keys in
// [1, r], then run T threads for a fixed wall-clock window, each drawing
// zipfian keys and performing `update%` updates (split evenly between
// inserts and deletes) and the rest lookups. Reports Mop/s.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "zipf.hpp"

namespace flock_workload {

struct run_config {
  int threads = 4;
  double update_percent = 50;  // evenly split insert/delete
  int millis = 200;            // timed window
  uint64_t seed = 12345;
};

struct run_result {
  double mops = 0;           // million operations per second
  uint64_t total_ops = 0;
  uint64_t finds = 0, inserts = 0, removes = 0;
  uint64_t successful_updates = 0;
  double seconds = 0;
};

/// Deterministic membership predicate for prefill_half: selects ~half the
/// keys, so verification code can recompute membership.
///
/// The selection hash is re-seeded (hashed twice with a salt), NOT
/// `splitmix64(k) & 1`: the hashtable's bucket index is
/// `splitmix64(k) & mask`, whose low bit is the same bit — selecting on it
/// put every prefilled key in an odd-indexed bucket, leaving half the
/// table empty and doubling measured chain lengths. Any structure that
/// hashes its keys with the same function would alias the same way, so
/// the selection must come from an independent hash.
inline bool prefill_selects(uint64_t k) {
  return (splitmix64(splitmix64(k) ^ 0x5851f42d4c957f2dULL) & 1) != 0;
}

/// Prefill with ~half the keys of [1, range] using all hardware threads
/// (the half is the deterministic subset prefill_selects(k)).
template <class Set>
void prefill_half(Set& set, uint64_t range, int threads = 0) {
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      for (uint64_t k = 1 + static_cast<uint64_t>(t); k <= range;
           k += static_cast<uint64_t>(threads)) {
        if (prefill_selects(k)) set.insert(k, k);
      }
    });
  }
  for (auto& th : ts) th.join();
}

/// Growth-phase workload: insert every key of [1, range] from `threads`
/// threads into a (typically much smaller-hinted) structure and time it —
/// the insert-heavy ramp a freshly deployed serving instance sees. Returns
/// the usual run_result (ops = range, all inserts).
template <class Set>
run_result run_growth(Set& set, uint64_t range, int threads = 0) {
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  std::atomic<uint64_t> applied{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      uint64_t mine = 0;
      for (uint64_t k = 1 + static_cast<uint64_t>(t); k <= range;
           k += static_cast<uint64_t>(threads))
        if (set.insert(k, k)) mine++;
      applied.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  run_result res;
  res.seconds = secs;
  res.total_ops = range;
  res.inserts = range;
  res.successful_updates = applied.load();
  res.mops = static_cast<double>(range) / secs / 1e6;
  return res;
}

/// Run the §8 mixed workload against any set adapter.
template <class Set>
run_result run_mixed(Set& set, const zipf_distribution& dist,
                     const run_config& cfg) {
  struct alignas(64) counters {
    uint64_t ops = 0, finds = 0, ins = 0, rem = 0, upd_ok = 0;
  };
  std::vector<counters> per_thread(static_cast<size_t>(cfg.threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  auto worker = [&](int tid) {
    rng64 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(tid) + 1);
    counters& c = per_thread[static_cast<size_t>(tid)];
    const uint64_t upd_threshold =
        static_cast<uint64_t>(cfg.update_percent * 0.01 * 4294967296.0);
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; i++) {
        uint64_t k = dist.sample(rng);
        uint64_t r = rng.next();
        if ((r & 0xFFFFFFFFu) < upd_threshold) {
          if (r >> 63) {
            c.ins++;
            if (set.insert(k, k)) c.upd_ok++;
          } else {
            c.rem++;
            if (set.remove(k)) c.upd_ok++;
          }
        } else {
          c.finds++;
          set.find(k);
        }
        c.ops++;
      }
    }
  };

  std::vector<std::thread> ts;
  for (int t = 0; t < cfg.threads; t++) ts.emplace_back(worker, t);
  while (ready.load() < cfg.threads) {
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.millis));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : ts) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  run_result res;
  res.seconds = secs;
  for (auto& c : per_thread) {
    res.total_ops += c.ops;
    res.finds += c.finds;
    res.inserts += c.ins;
    res.removes += c.rem;
    res.successful_updates += c.upd_ok;
  }
  res.mops = static_cast<double>(res.total_ops) / secs / 1e6;
  return res;
}

}  // namespace flock_workload
