file(REMOVE_RECURSE
  "CMakeFiles/test_mutable.dir/tests/test_mutable.cpp.o"
  "CMakeFiles/test_mutable.dir/tests/test_mutable.cpp.o.d"
  "test_mutable"
  "test_mutable.pdb"
  "test_mutable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
