// lexer.hpp — minimal C++ tokenizer for flock-lint.
//
// This is not a compiler front end: it produces just enough structure for
// the region classifier and rules — identifiers, punctuation, literals,
// and comments, each with a line number. Comments are KEPT as tokens
// because rule R3 (memory-order justification) looks for `// mo:` text;
// rules that reason about code skip them via next_code()/prev_code().
//
// Handled: //- and /* */-comments, string/char literals with escapes, raw
// strings R"delim(...)delim", digit separators, line continuations inside
// literals (by virtue of scanning), preprocessor lines (lexed as ordinary
// tokens — the rules don't care). Not handled (documented limitations, all
// irrelevant to this codebase): trigraphs, UD-literal suffixes beyond
// identifier chars.
#pragma once

#include <cctype>
#include <string>
#include <vector>

#include "source_file.hpp"

namespace flock_lint {

enum class tok_kind {
  ident,    // identifiers and keywords (new/delete/volatile/static/...)
  number,   // numeric literal
  str,      // string literal, text includes quotes (and R"..." payload)
  chr,      // char literal
  comment,  // // or /* */ comment, text includes the markers
  punct,    // everything else, one token per maximal operator
};

struct token {
  tok_kind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

namespace detail {

inline bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Maximal-munch puncts the rules care to keep whole. Everything else is
// emitted as single characters; rules only ever look at ., ->, ::, and the
// bracket/paren family, so that is enough.
inline int punct_len(const std::string& s, std::size_t i) {
  static const char* two[] = {"->", "::", "<<", ">>", "<=", ">=", "==",
                              "!=", "&&", "||", "+=", "-=", "*=", "/=",
                              "++", "--", "|=", "&=", "^=", "%="};
  if (i + 1 < s.size())
    for (const char* p : two)
      if (s[i] == p[0] && s[i + 1] == p[1]) return 2;
  return 1;
}

}  // namespace detail

inline std::vector<token> lex(const source_file& f) {
  std::vector<token> out;
  const std::string& s = f.text;
  const std::size_t n = s.size();
  int line = 1;
  std::size_t i = 0;

  auto advance_lines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; k++)
      if (s[k] == '\n') line++;
  };

  while (i < n) {
    char c = s[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      i++;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t j = i;
      while (j < n && s[j] != '\n') j++;
      out.push_back({tok_kind::comment, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) j++;
      j = (j + 1 < n) ? j + 2 : n;
      out.push_back({tok_kind::comment, s.substr(i, j - i), line});
      advance_lines(i, j);
      i = j;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && s[d] != '(') d++;
      std::string delim = ")" + s.substr(i + 2, d - (i + 2)) + "\"";
      std::size_t j = d < n ? s.find(delim, d) : std::string::npos;
      j = (j == std::string::npos) ? n : j + delim.size();
      out.push_back({tok_kind::str, s.substr(i, j - i), line});
      advance_lines(i, j);
      i = j;
      continue;
    }
    // String/char literals (with escape handling).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && s[j] != c) {
        if (s[j] == '\\' && j + 1 < n) j++;
        j++;
      }
      j = (j < n) ? j + 1 : n;
      out.push_back({c == '"' ? tok_kind::str : tok_kind::chr,
                     s.substr(i, j - i), line});
      advance_lines(i, j);
      i = j;
      continue;
    }
    // Identifiers / keywords.
    if (detail::ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && detail::ident_char(s[j])) j++;
      out.push_back({tok_kind::ident, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Numbers (incl. hex, digit separators; good enough — rules never
    // inspect numeric values).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (detail::ident_char(s[j]) || s[j] == '\'' ||
                       ((s[j] == '+' || s[j] == '-') &&
                        (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                         s[j - 1] == 'p' || s[j - 1] == 'P'))))
        j++;
      out.push_back({tok_kind::number, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    int len = detail::punct_len(s, i);
    out.push_back({tok_kind::punct, s.substr(i, static_cast<std::size_t>(len)),
                   line});
    i += static_cast<std::size_t>(len);
  }
  return out;
}

/// Index of the next non-comment token at or after i (tokens.size() if none).
inline std::size_t next_code(const std::vector<token>& t, std::size_t i) {
  while (i < t.size() && t[i].kind == tok_kind::comment) i++;
  return i;
}

/// Index of the previous non-comment token strictly before i, or npos.
inline std::size_t prev_code(const std::vector<token>& t, std::size_t i) {
  while (i > 0) {
    i--;
    if (t[i].kind != tok_kind::comment) return i;
  }
  return std::string::npos;
}

}  // namespace flock_lint
