// lock.hpp — lock-free try-locks and strict locks (paper §4, Algorithm 3)
// plus the blocking (test-and-test-and-set) mode selected at runtime (§7).
//
// A lock is one compact mutable word holding (descriptor pointer | locked
// bit). In lock-free mode, try_lock either installs a descriptor and runs
// it, or helps whoever is installed and returns false. Anyone may run a
// descriptor at any time; idempotence (descriptor log) makes that safe.
//
// Hot-path structure: try_lock/strict_lock perform exactly one runtime
// mode dispatch at entry — is_blocking() picks the blocking path, and the
// helping path is instantiated for each value of the ccas flag — then run
// with the thread context in a register and every mode choice a
// compile-time constant. No TLS lookups and no shared-flag loads happen
// inside the loops.
//
// Log-slot discipline (this is what keeps nested locks correct): every run
// of an enclosing thunk must consume the *same* log slots in the same
// order. The deterministic prefix of try_lock — logged state load,
// idempotent descriptor allocation, logged re-load, logged done-load, and
// the branch-dependent (but branch-deterministic) retire commit — does.
// Helping and unlocking consume NO enclosing slots: they use raw
// effects-once CASes, which are inherently idempotent because the lock
// word's tag is monotonic while any stale referencer exists (descriptor
// reuse is epoch-gated, see retire paths below).
//
// The ccas flag is resolved once per acquisition, so a concurrent
// set_ccas() may race with in-flight operations running the other
// specialization; that is harmless — both commit protocols agree on the
// log-slot contents, ccas only elides CASes that would fail.
//
// helped/reuse hand-off (§6 "This requires some careful synchronization"):
//   helper:  helped.store(true) [seq_cst]; re-read lock word [seq_cst] ==
//            installed value? run : abort.
//   owner:   unlock (CAS or observing read, both seq_cst); read helped
//            [seq_cst].
// All four accesses are seq_cst, so they have a total order S. Suppose the
// owner's helped-read misses the helper's store AND the helper's re-read
// misses the unlock: then owner-unlock <S owner-helped-read <S
// helper-helped-store <S helper-re-read <S owner-unlock — a cycle. Hence
// either the owner sees helped==true (and epoch-retires), or the helper
// sees the word moved on (and never touches the descriptor). Lock-word
// writes are all seq_cst RMWs, so a later-in-S read cannot observe an
// earlier value; the word's tag is monotonic while any stale referencer
// exists, so "moved on" is observable. This replaces the previous
// fence-based pairing: seq_cst loads cost nothing extra on x86, which
// deletes one full barrier from every uncontended acquisition (the
// retire-side fence) — the helper side pays the xchg, but helping is the
// cold path.
//
// Contention policy (when we spin, when we help — help_throttled below):
// a lock-free waiter that observes a held lock no longer helps
// immediately. Immediate helping has the right asymptotics but the wrong
// constants: every waiter piles onto the installed descriptor, so the
// holder's thunk is run redundantly by all of them, and their log-slot
// CASes, helped-flag xchgs, and lock-word CASes all collide on the same
// cache lines — the classic helping storm. Instead a waiter spins locally
// on raw reads of the lock word with randomized bounded exponential
// backoff (backoff.hpp), and converts to a helper only when one of two
// things happens:
//
//   * the backoff budget (FLOCK_HELP_DELAY rounds) is exhausted while the
//     word has not moved — the holder may be descheduled mid-thunk, so we
//     help to guarantee progress; or
//   * the holder's descriptor has done == true while the lock is still
//     held — the holder finished its thunk but stalled before its unlock
//     CAS, so helping costs one CAS and releases the lock for everyone
//     (we skip the remaining backoff for this).
//
// If the word moves on while we spin, somebody made progress and no help
// was ever needed (stat_helps_avoided counts these). Lock-freedom is
// preserved because helping is delayed by a *bounded* number of the
// waiter's own steps, never skipped: the system-wide progress argument of
// §4 only needs some thread to run the installed descriptor eventually,
// and every waiter still does so after at most help_delay rounds.
//
// Descriptor churn: top-level acquisitions (no enclosing thunk, the common
// case — nesting happens inside thunks) run lean specializations that
// branch on raw reads and the install CAS's own result instead of the
// logged load/commit dance (which passes through at top level anyway, but
// not for free), and re-validate the lock word after descriptor creation —
// the long pole between the entry read and the install CAS — so an install
// race costs a pool push instead of a doomed tag-bump CAS plus logged
// reloads. Nested acquisitions keep the fully logged deterministic
// structure, since there every branch must consume identical log slots
// across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#ifdef FLOCK_DEBUG_API
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#endif

#include "backoff.hpp"
#include "chaos/faultpoint.hpp"
#include "config.hpp"
#include "descriptor.hpp"
#include "epoch.hpp"
#include "log.hpp"
#include "mutable.hpp"
#include "stats.hpp"

namespace flock {
namespace detail {

inline constexpr uint64_t kLockedBit = 1;

inline bool lv_locked(uint64_t val) { return (val & kLockedBit) != 0; }
inline descriptor* lv_descr(uint64_t val) {
  return reinterpret_cast<descriptor*>(val & ~kLockedBit);
}

using lock_word = mutable_<uint64_t>;

#ifdef FLOCK_DEBUG_API
// --- lock-API misuse guards (satellite of the schedule-explorer PR;
// motivated by "Protecting Locks Against Unbalanced Unlock()"). Compiled
// only under FLOCK_DEBUG_API, so release builds carry zero cost. Three
// checks: double release (unlock of an unheld lock), unlock by a
// non-holder, and leaked locks at thread exit (thread_context.hpp).

[[noreturn]] inline void dbg_api_abort(const char* what) {
  std::fprintf(stderr, "[flock] FLOCK_DEBUG_API violation: %s\n", what);
  std::abort();
}

/// Lock-free non-holder check against the *logged* lock word, so helper
/// replays of a thunk that early-unlocks judge the same (original) value
/// and pass. The holder descriptor must be reachable from some thunk
/// running on this thread, directly or through the dbg_parent creation
/// chain (hand-over-hand: the thunk of lock i+1 legitimately unlocks
/// lock i, its parent). Walks are bounded; descriptor storage is
/// slab-backed and never unmapped, so chasing a retired parent pointer
/// reads stale-but-mapped memory and simply fails to match.
inline void dbg_check_unlock_helping(thread_context* c, uint64_t v) {
  if (!lv_locked(v))
    dbg_api_abort("unlock() of a lock that is not held (double release)");
  descriptor* h = lv_descr(v);
  int depth = c->dbg_run_depth < thread_context::kDbgRunDepth
                  ? c->dbg_run_depth
                  : thread_context::kDbgRunDepth;
  for (int i = 0; i < depth; i++) {
    descriptor* e = static_cast<descriptor*>(c->dbg_run_stack[i]);
    for (int d = 0; e != nullptr && d < 64; d++, e = e->dbg_parent)
      if (e == h) return;
  }
  dbg_api_abort("unlock() by a thread whose thunk does not hold the lock");
}

/// Blocking mode has no descriptor to identify the holder, so holders are
/// tracked in a debug-only side table keyed by lock-word address.
inline std::mutex& dbg_blocking_mu() {
  static std::mutex mu;
  return mu;
}
inline std::unordered_map<const void*, int>& dbg_blocking_holders() {
  static std::unordered_map<const void*, int> m;
  return m;
}

inline void dbg_blocking_acquired(thread_context* c, const lock_word* st) {
  std::lock_guard<std::mutex> g(dbg_blocking_mu());
  dbg_blocking_holders()[st] = c->id;
  c->dbg_held++;
}

/// The automatic release at the end of a blocking critical section. If
/// this thread still holds the lock, close its bracket; if it
/// early-released and nobody re-acquired, the trailing store just bumps
/// the tag of an unlocked word (matching release-build behavior). If
/// another thread re-acquired after an early release, the release build
/// would stomp its lock — abort.
inline void dbg_blocking_release_bracket(thread_context* c,
                                         const lock_word* st) {
  std::lock_guard<std::mutex> g(dbg_blocking_mu());
  auto& m = dbg_blocking_holders();
  auto it = m.find(st);
  if (it == m.end()) return;  // early-released, not re-acquired
  if (it->second != c->id)
    dbg_api_abort(
        "blocking critical section ended after an early unlock() and the "
        "lock was re-acquired by another thread; the automatic release "
        "would stomp that holder");
  m.erase(it);
  c->dbg_held--;
}

inline void dbg_check_unlock_blocking(thread_context* c,
                                      const lock_word* st) {
  std::lock_guard<std::mutex> g(dbg_blocking_mu());
  auto& m = dbg_blocking_holders();
  auto it = m.find(st);
  if (it == m.end())
    dbg_api_abort("unlock() of a lock that is not held (double release)");
  if (it->second != c->id)
    dbg_api_abort("unlock() by a thread that does not hold the lock");
  m.erase(it);
  c->dbg_held--;
}

#define FLOCK_DBG_API(stmt) stmt
#else
#define FLOCK_DBG_API(stmt)
#endif

/// Effects-once unlock: flip (d|locked) -> (d|unlocked) if still current.
/// Raw (no enclosing log slots); the tag makes repeats harmless.
template <bool Ccas>
inline void raw_unlock(thread_context* c, lock_word& st, descriptor* d) {
  // seq_cst read: if the CAS is skipped because someone else already
  // unlocked, this read is the owner's hand-off access (see header).
  uint64_t p = st.read_raw_packed_sc();
  uint64_t lockedv = reinterpret_cast<uint64_t>(d) | kLockedBit;
  if (val_of(p) == lockedv)
    st.cas_raw_packed_ctx<Ccas>(c, p, reinterpret_cast<uint64_t>(d));
}

/// Run the descriptor's thunk (idempotently), mark done, release the lock.
template <bool Ccas>
inline bool run_and_unlock(thread_context* c, lock_word& st, descriptor* d) {
  FLOCK_DBG_API(c->dbg_held++);
  bool result = d->run(c);
  // mo: release — publishes the thunk's effects (and its committed log
  // entries) to the acquire done-reads in help_throttled and the nested
  // acquisition paths.
  d->done.store(true, std::memory_order_release);
  // Chaos window: done published, unlock CAS pending — the finish-line
  // stall that help_throttled's done-but-locked signal targets.
  FLOCK_FAULTPOINT("lock.handoff.pre_unlock");
  raw_unlock<Ccas>(c, st, d);
  FLOCK_DBG_API(c->dbg_held--);
  return result;
}

/// Help the descriptor currently installed on `st` (Alg. 3 lines 24/26).
/// `cur_packed` is the packed word under which the caller saw it locked.
/// Consumes no enclosing log slots.
template <bool Ccas>
inline void help(thread_context* c, lock_word& st, uint64_t cur_packed) {
  descriptor* d = lv_descr(val_of(cur_packed));
  c->stat_attempted++;
  d->helped.store(true, std::memory_order_seq_cst);  // hand-off (see header)
  // Adopt the descriptor's epoch before validating: if the validation
  // passes, the creator was still announced at d->epoch when we re-read,
  // so everything the thunk can reach is protected from then on by *our*
  // lowered announcement (see epoch.hpp).
  int64_t prev = g_epoch.adopt_ctx(c, d->epoch);
  if (st.read_raw_packed_sc() == cur_packed) {
    c->stat_ran++;
    // Chaos window: helper validated and adopted, about to run the thunk
    // (a dead helper here must not wedge anyone — others revalidate and
    // run the same descriptor).
    FLOCK_FAULTPOINT("lock.help.pre_run");
    run_and_unlock<Ccas>(c, st, d);
  }
  g_epoch.restore_ctx(c, prev);
}

/// Throttled help (contention policy, see header comment): spin locally
/// with randomized bounded exponential backoff before converting to a
/// helper. Consumes no enclosing log slots (raw reads and pauses only),
/// so it is safe on both the top-level and the nested paths. Returns true
/// if we helped, false if progress elsewhere made helping unnecessary.
template <bool Ccas>
inline bool help_throttled(thread_context* c, lock_word& st,
                           uint64_t cur_packed) {
  // The done-reads below may target a descriptor the owner has already
  // pool-reused (the §6 reuse shortcut returns never-helped descriptors
  // to the pool without an epoch wait). That is the same benign hazard
  // help() has always had with its helped-store: descriptor storage is
  // slab-backed and never unmapped, a stale read at worst yields a bogus
  // done bit, and acting on it just means helping "early" — help()
  // revalidates the lock word with a seq_cst read before running
  // anything, and the word's tag is monotonic while stale referencers
  // exist, so a reused descriptor can never pass that validation.
  descriptor* d = lv_descr(val_of(cur_packed));
  // Stall signal #1: the holder finished its thunk but has not released
  // (descheduled between its done-store and its unlock CAS). Only the
  // unlock CAS remains, so help immediately — it is nearly free and
  // releases the lock for every waiter.
  // mo: acquire — pairs with the release done-store in run_and_unlock;
  // seeing done=true implies the thunk's effects are visible before we
  // act on the finished state.
  if (!d->done.load(std::memory_order_acquire)) {
    backoff bo(c);
    while (!bo.exhausted()) {
      bo.spin();
      // Local spinning re-checks with a relaxed raw read: a stale value
      // merely costs one more round, and the decision to help revalidates
      // with the seq_cst protocol inside help().
      if (st.read_raw_packed_relaxed() != cur_packed) {
        // The word moved on: the holder (or another helper) made
        // progress, so our help is no longer needed.
        c->stat_helps_avoided++;
        return false;
      }
      // mo: acquire — same pairing as the entry done-read above.
      if (d->done.load(std::memory_order_acquire)) break;
    }
    // Stall signal #2: the word did not move for the whole budget — the
    // holder may be descheduled mid-thunk. Fall through and help.
  }
  help<Ccas>(c, st, cur_packed);
  return true;
}

/// Retire a descriptor that was successfully installed from a NESTED
/// acquisition (top-level acquisitions use retire_installed_toplevel
/// below, so c->log.block != nullptr here). The retire decision goes
/// through the log (one slot) so exactly one run of the enclosing thunk
/// performs it; the descriptor is always epoch-retired because stale runs
/// (of the descriptor itself, or of the enclosing thunk replaying this
/// code) may still hold the pointer — the §6 pool-reuse shortcut is a
/// top-level-only optimization.
template <bool Ccas>
inline void retire_installed(thread_context* c, descriptor* d) {
  if (commit64_first_ctx<Ccas>(c, 1).second) epoch_retire_ctx(c, d);
}

/// Retire a descriptor whose install CAS lost, from a nested acquisition:
/// it was never on the lock, but replays of the enclosing thunk can still
/// reach it through the log.
template <bool Ccas>
inline void retire_unpublished(thread_context* c, descriptor* d) {
  if (commit64_first_ctx<Ccas>(c, 1).second) epoch_retire_ctx(c, d);
}

// --- lock-free (helping) mode ---------------------------------------------

/// Top-level retire of a descriptor this thread installed and ran: the §6
/// reuse optimization without the logged commit (nothing to keep
/// deterministic outside a thunk).
template <bool Ccas>
inline void retire_installed_toplevel(thread_context* c, descriptor* d) {
  if (!d->helped.load(std::memory_order_seq_cst)) {
    c->stat_reused++;
    pool_delete_ctx(c, d);
  } else {
    epoch_retire_ctx(c, d);
  }
}

/// Top-level try_lock: no enclosing log, so nothing here must stay
/// deterministic across runs — branch on raw reads and on the install
/// CAS's own result, and keep a lost race to one pool push (see header).
template <bool Ccas, class F>
bool try_lock_helping_toplevel(thread_context* c, lock_word& st, F&& f) {
  uint64_t cur = st.read_raw_packed();
  if (lv_locked(val_of(cur))) {
    help_throttled<Ccas>(c, st, cur);
    return false;
  }
  descriptor* d = create_descriptor_ctx<Ccas>(c, std::forward<F>(f));
  uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
  // Re-validate after descriptor creation — the long pole between the
  // entry read and the install CAS, where install races concentrate.
  // Re-reading also refreshes the expected word, so a tag bumped by an
  // intervening lock/unlock pair does not fail our install.
  cur = st.read_raw_packed();
  if (lv_locked(val_of(cur))) {
    pool_delete_ctx(c, d);  // never published
    help_throttled<Ccas>(c, st, cur);
    return false;
  }
  // The ccas pre-check is skipped (<false>): we just read the word.
  if (!st.cas_raw_packed_ctx<false>(c, cur, minev)) {
    pool_delete_ctx(c, d);  // never published
    uint64_t fresh = st.read_raw_packed();
    if (lv_locked(val_of(fresh))) help_throttled<Ccas>(c, st, fresh);
    return false;
  }
  // Chaos window: descriptor installed, thunk not yet run — the paper's
  // dead-holder scenario (a kill here parks holding the lock; helpers
  // must finish the critical section).
  FLOCK_FAULTPOINT("lock.install.post");
  bool result = run_and_unlock<Ccas>(c, st, d);
  retire_installed_toplevel<Ccas>(c, d);
  return result;
}

template <bool Ccas, class F>
bool try_lock_helping(thread_context* c, lock_word& st, F&& f) {
  if (c->log.block == nullptr)
    return try_lock_helping_toplevel<Ccas>(c, st, std::forward<F>(f));
  // Nested: the fully logged deterministic prefix (see header comment on
  // log-slot discipline). Helping is throttled here too — backoff spins
  // consume no log slots, so replays may legally spin different amounts.
  uint64_t cur = st.load_packed_ctx<Ccas>(c);  // logged
  if (!lv_locked(val_of(cur))) {
    descriptor* d =
        create_descriptor_ctx<Ccas>(c, std::forward<F>(f));  // logged alloc
    uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
    st.cas_raw_packed_ctx<Ccas>(c, cur, minev);  // install CAM: effects-once
    // Chaos window (nested): install CAM issued, acquisition not yet
    // judged. Consumes no log slots, so replays may legally diverge here.
    FLOCK_FAULTPOINT("lock.install.post");
    uint64_t nowv = val_of(st.load_packed_ctx<Ccas>(c));  // logged
    // mo: acquire — raw done-read folded into the log via commit_bool;
    // pairs with run_and_unlock's release so an adopted "done" implies
    // the thunk's effects.
    bool d_done =
        commit_bool_ctx<Ccas>(c, d->done.load(std::memory_order_acquire));
    if (d_done || nowv == minev) {
      // Acquired (possibly already helped to completion).
      bool result = run_and_unlock<Ccas>(c, st, d);
      retire_installed<Ccas>(c, d);
      return result;
    }
    if (lv_locked(nowv)) {
      // Help whoever holds the lock *now*; a fresh read keeps the helped
      // descriptor current, and help() revalidates before running.
      uint64_t fresh = st.read_raw_packed();
      if (lv_locked(val_of(fresh))) help_throttled<Ccas>(c, st, fresh);
    }
    retire_unpublished<Ccas>(c, d);
    return false;
  }
  help_throttled<Ccas>(c, st, cur);
  return false;
}

template <bool Ccas, class F>
bool strict_lock_helping(thread_context* c, lock_word& st, F&& f) {
  // §4: "by first creating the descriptor, and then putting the attempt to
  // acquire a lock into a while loop". The descriptor is created once,
  // outside the loop, so retries consume no fresh pool traffic.
  descriptor* d = create_descriptor_ctx<Ccas>(c, std::forward<F>(f));
  uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
  if (c->log.block == nullptr) {
    // Top level: raw reads and the install CAS's own result (nothing to
    // keep deterministic), with throttled helping while the lock is held.
    while (true) {
      uint64_t cur = st.read_raw_packed();
      if (!lv_locked(val_of(cur))) {
        if (st.cas_raw_packed_ctx<false>(c, cur, minev)) {
          FLOCK_FAULTPOINT("lock.install.post");
          bool result = run_and_unlock<Ccas>(c, st, d);
          retire_installed_toplevel<Ccas>(c, d);
          return result;
        }
      } else {
        help_throttled<Ccas>(c, st, cur);
      }
    }
  }
  // Nested: all logged values are identical across runs, so every run
  // executes the same number of iterations (backoff spins inside
  // help_throttled consume no log slots and may differ freely).
  while (true) {
    uint64_t cur = st.load_packed_ctx<Ccas>(c);  // logged
    if (!lv_locked(val_of(cur))) {
      st.cas_raw_packed_ctx<Ccas>(c, cur, minev);
      FLOCK_FAULTPOINT("lock.install.post");  // no log slots consumed
      uint64_t nowv = val_of(st.load_packed_ctx<Ccas>(c));  // logged
      // mo: acquire — same logged done-read as try_lock_helping's nested
      // path; pairs with run_and_unlock's release.
      bool d_done =
          commit_bool_ctx<Ccas>(c, d->done.load(std::memory_order_acquire));
      if (d_done || nowv == minev) {
        bool result = run_and_unlock<Ccas>(c, st, d);
        retire_installed<Ccas>(c, d);
        return result;
      }
      if (lv_locked(nowv)) {
        uint64_t fresh = st.read_raw_packed();
        if (lv_locked(val_of(fresh))) help_throttled<Ccas>(c, st, fresh);
      }
    } else {
      help_throttled<Ccas>(c, st, cur);
    }
  }
}

// --- blocking (test-and-test-and-set) mode ---------------------------------
//
// The blocking CASes skip the ccas pre-check (template argument false):
// the caller just read the word, so a second read before the CAS is pure
// overhead here.

template <class F>
bool try_lock_blocking(thread_context* c, lock_word& st, F&& f) {
  uint64_t p = st.read_raw_packed();
  if (lv_locked(val_of(p))) return false;
  if (!st.cas_raw_packed_ctx<false>(c, p, kLockedBit)) return false;
  FLOCK_DBG_API(dbg_blocking_acquired(c, &st));
  bool result = f();
  FLOCK_DBG_API(dbg_blocking_release_bracket(c, &st));
  st.store_raw(0);
  return result;
}

template <class F>
bool strict_lock_blocking(thread_context* c, lock_word& st, F&& f) {
  backoff bo(c);  // shared randomized-exponential helper (backoff.hpp)
  while (true) {
    uint64_t p = st.read_raw_packed();
    if (!lv_locked(val_of(p))) {
      if (st.cas_raw_packed_ctx<false>(c, p, kLockedBit)) break;
    } else {
      bo.spin();
    }
  }
  FLOCK_DBG_API(dbg_blocking_acquired(c, &st));
  bool result = f();
  FLOCK_DBG_API(dbg_blocking_release_bracket(c, &st));
  st.store_raw(0);
  return result;
}

}  // namespace detail

/// A Flock lock. One word; zero-initialized means unlocked.
class lock {
 public:
  lock() = default;
  lock(const lock&) = delete;
  lock& operator=(const lock&) = delete;

  /// Acquire-run-release if free; otherwise (lock-free mode) help the
  /// current holder and return false (Alg. 3 tryLock). The thunk must
  /// capture by value and is run idempotently in lock-free mode.
  /// Mode is resolved exactly once, here.
  template <class F>
  bool try_lock(F&& f) {
    detail::thread_context* c = detail::my_ctx();
    if (is_blocking())
      return detail::try_lock_blocking(c, state_, std::forward<F>(f));
    if (use_ccas())
      return detail::try_lock_helping<true>(c, state_, std::forward<F>(f));
    return detail::try_lock_helping<false>(c, state_, std::forward<F>(f));
  }

  /// Strict lock: loops (helping in lock-free mode) until acquired.
  template <class F>
  bool strict_lock(F&& f) {
    detail::thread_context* c = detail::my_ctx();
    if (is_blocking())
      return detail::strict_lock_blocking(c, state_, std::forward<F>(f));
    if (use_ccas())
      return detail::strict_lock_helping<true>(c, state_, std::forward<F>(f));
    return detail::strict_lock_helping<false>(c, state_, std::forward<F>(f));
  }

  /// Early release (§4): undefined unless the calling thread('s thunk)
  /// holds the lock. Enables hand-over-hand locking.
  void unlock() {
    detail::thread_context* c = detail::my_ctx();
    if (is_blocking()) {
      FLOCK_DBG_API(detail::dbg_check_unlock_blocking(c, &state_));
      state_.store_raw(0);
      return;
    }
    if (use_ccas())
      unlock_helping<true>(c);
    else
      unlock_helping<false>(c);
  }

  bool is_locked() const {
    return detail::lv_locked(val_of(state_.read_raw_packed()));
  }

 private:
  template <bool Ccas>
  void unlock_helping(detail::thread_context* c) {
    uint64_t cur = state_.load_packed_ctx<Ccas>(c);  // logged
    FLOCK_DBG_API(detail::dbg_check_unlock_helping(c, val_of(cur)));
    if (detail::lv_locked(val_of(cur)))
      state_.cas_raw_packed_ctx<Ccas>(c, cur,
                                      val_of(cur) & ~detail::kLockedBit);
  }

  detail::lock_word state_;
};

/// Free-function spellings matching the paper's examples.
template <class F>
bool try_lock(lock& l, F&& f) {
  return l.try_lock(std::forward<F>(f));
}
template <class F>
bool strict_lock(lock& l, F&& f) {
  return l.strict_lock(std::forward<F>(f));
}
inline void unlock(lock& l) { l.unlock(); }

}  // namespace flock
