# Empty dependencies file for test_sharded_map.
# This may be replaced when dependencies are built.
