// threading.hpp — small dense thread ids with recycling.
//
// Epoch slots, announcement slots, and per-thread pools are all indexed by
// a dense id in [0, kMaxThreads). Ids are handed out on a thread's first
// use of the library and returned when the thread exits, so long-running
// test binaries that spawn thousands of short-lived threads never exhaust
// the id space.
#pragma once

#include <atomic>
#include <cassert>
#include <mutex>
#include <vector>

#include "config.hpp"

namespace flock {
namespace detail {

class id_allocator {
 public:
  static id_allocator& instance() {
    static id_allocator a;
    return a;
  }

  int acquire() {
    std::lock_guard<std::mutex> g(mu_);
    if (!free_.empty()) {
      int id = free_.back();
      free_.pop_back();
      return id;
    }
    assert(next_ < kMaxThreads && "too many live threads");
    return next_++;
  }

  void release(int id) {
    std::lock_guard<std::mutex> g(mu_);
    free_.push_back(id);
  }

  /// Upper bound (exclusive) on ids ever handed out; epoch scans use this
  /// instead of kMaxThreads to stay cheap.
  int high_water() const {
    return next_hint_.load(std::memory_order_acquire);
  }

  void note_high_water(int n) {
    int cur = next_hint_.load(std::memory_order_relaxed);
    while (n > cur &&
           !next_hint_.compare_exchange_weak(cur, n, std::memory_order_acq_rel)) {
    }
  }

 private:
  id_allocator() = default;
  std::mutex mu_;
  std::vector<int> free_;
  int next_ = 0;
  std::atomic<int> next_hint_{0};
};

struct thread_registrar {
  int id;
  thread_registrar() {
    id = id_allocator::instance().acquire();
    id_allocator::instance().note_high_water(id + 1);
  }
  ~thread_registrar() { id_allocator::instance().release(id); }
};

}  // namespace detail

/// Dense id of the calling thread in [0, kMaxThreads).
inline int thread_id() noexcept {
  thread_local detail::thread_registrar reg;
  return reg.id;
}

/// Exclusive upper bound on thread ids in use (for slot scans).
inline int thread_id_bound() noexcept {
  return detail::id_allocator::instance().high_water();
}

}  // namespace flock
