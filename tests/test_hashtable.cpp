// hashtable: oracle, stress, and chaining-specific tests.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class HashtableTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(HashtableTest, Battery) {
  set_test::battery<flock_workload::hashtable_try>();
}

TEST_P(HashtableTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::hashtable_try>();
}

TEST_P(HashtableTest, TinyTableGrowsUnderOracle) {
  // 64 buckets (the minimum) with 4k keys: the oracle's inserts push the
  // occupancy past the load-factor-1 threshold repeatedly, so this runs
  // the whole incremental-resize machinery under an exactness oracle.
  using ht = flock_ds::hashtable<uint64_t, uint64_t, false>;
  flock_workload::set_adapter<ht> s(std::size_t{1});
  EXPECT_EQ(s.underlying().bucket_count(), 64u);
  set_test::sequential_oracle(s, 4096, 20000, 3);
  EXPECT_GT(s.underlying().bucket_count(), 64u) << "table never grew";
}

TEST_P(HashtableTest, ChainsStaySorted) {
  flock_workload::hashtable_try s;
  for (uint64_t k = 1; k <= 5000; k++) s.insert(k, k);
  EXPECT_TRUE(s.check_invariants());
  EXPECT_EQ(s.size(), 5000u);
  // Default-constructed tables start at the 64-bucket floor and must have
  // resized several times to hold 5000 keys at load factor ~1.
  EXPECT_GE(s.underlying().bucket_count(), 4096u);
}

TEST_P(HashtableTest, StrictLockVariant) {
  using ht = flock_ds::hashtable<uint64_t, uint64_t, true>;
  flock_workload::set_adapter<ht> s(std::size_t{256});
  set_test::concurrent_stress(s, 8, 300, 5000, 70);
}

INSTANTIATE_TEST_SUITE_P(Modes, HashtableTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
