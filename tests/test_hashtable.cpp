// hashtable: oracle, stress, and chaining-specific tests.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class HashtableTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(HashtableTest, Battery) {
  set_test::battery<flock_workload::hashtable_try>();
}

TEST_P(HashtableTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::hashtable_try>();
}

TEST_P(HashtableTest, TinyTableGrowsUnderOracle) {
  // 64 buckets (the minimum) with 4k keys: the oracle's inserts push the
  // occupancy past the load-factor-1 threshold repeatedly, so this runs
  // the whole incremental-resize machinery under an exactness oracle.
  using ht = flock_ds::hashtable<uint64_t, uint64_t, false>;
  flock_workload::set_adapter<ht> s(std::size_t{1});
  EXPECT_EQ(s.underlying().bucket_count(), 64u);
  set_test::sequential_oracle(s, 4096, 20000, 3);
  EXPECT_GT(s.underlying().bucket_count(), 64u) << "table never grew";
}

TEST_P(HashtableTest, ChainsStaySorted) {
  flock_workload::hashtable_try s;
  for (uint64_t k = 1; k <= 5000; k++) s.insert(k, k);
  EXPECT_TRUE(s.check_invariants());
  EXPECT_EQ(s.size(), 5000u);
  // Default-constructed tables start at the 64-bucket floor and must have
  // resized several times to hold 5000 keys at load factor ~1.
  EXPECT_GE(s.underlying().bucket_count(), 4096u);
}

// Regression: a trivially-copyable payload with NO default constructor
// compiled with the pre-fast-path find() and must keep compiling. The
// seqlock fast path (and the memo cache's entry) default-constructs
// snapshot slots, so such a type must be routed off the fast path by the
// kSeqlockReads gate — not fail to instantiate.
struct no_default_v {
  uint64_t a;
  explicit no_default_v(uint64_t x) : a(x) {}
  bool operator==(const no_default_v& o) const { return a == o.a; }
};
static_assert(std::is_trivially_copyable_v<no_default_v>);
static_assert(!std::is_default_constructible_v<no_default_v>);
static_assert(!flock_ds::hashtable<uint64_t, no_default_v>::kSeqlockReads,
              "non-default-constructible payloads must take the slow path");
// The gate requires TRIVIAL default construction: the fast-path node
// constructor leaves k/v default-initialized and then atomic_ref-stores
// them, which is only race-free if the default-init writes nothing. A
// default member initializer makes default construction non-trivial, so
// this type must take the slow path even though it default-constructs.
struct nontrivial_default_v {
  uint64_t a = 1;
  bool operator==(const nontrivial_default_v& o) const { return a == o.a; }
};
static_assert(std::is_trivially_copyable_v<nontrivial_default_v>);
static_assert(std::is_default_constructible_v<nontrivial_default_v> &&
              !std::is_trivially_default_constructible_v<nontrivial_default_v>);
static_assert(
    !flock_ds::hashtable<uint64_t, nontrivial_default_v>::kSeqlockReads,
    "non-trivially-default-constructible payloads must take the slow path");
static_assert(flock_ds::hashtable<uint64_t, uint64_t>::kSeqlockReads,
              "plain word payloads must keep the fast path");

TEST_P(HashtableTest, NonDefaultConstructiblePayloadUsesSlowPath) {
  flock_ds::hashtable<uint64_t, no_default_v> ht(64);
  for (uint64_t k = 1; k <= 200; k++)
    EXPECT_TRUE(ht.insert(k, no_default_v{k * 10}));
  for (uint64_t k = 1; k <= 200; k++) {
    auto r = ht.find(k);
    ASSERT_TRUE(r.has_value()) << k;
    EXPECT_EQ(r->a, k * 10) << k;
  }
  EXPECT_FALSE(ht.find(500).has_value());
  EXPECT_TRUE(ht.remove(7));
  EXPECT_FALSE(ht.find(7).has_value());
  EXPECT_TRUE(ht.check_invariants());
}

TEST_P(HashtableTest, StrictLockVariant) {
  using ht = flock_ds::hashtable<uint64_t, uint64_t, true>;
  flock_workload::set_adapter<ht> s(std::size_t{256});
  set_test::concurrent_stress(s, 8, 300, 5000, 70);
}

INSTANTIATE_TEST_SUITE_P(Modes, HashtableTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
