file(REMOVE_RECURSE
  "CMakeFiles/test_idempotence.dir/tests/test_idempotence.cpp.o"
  "CMakeFiles/test_idempotence.dir/tests/test_idempotence.cpp.o.d"
  "test_idempotence"
  "test_idempotence.pdb"
  "test_idempotence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idempotence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
