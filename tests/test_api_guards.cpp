// FLOCK_DEBUG_API lock-API misuse guards (lock.hpp). This binary is the
// only one compiled with FLOCK_DEBUG_API=1 (CMakeLists.txt): the define
// adds fields to thread_context/descriptor, so it is per-binary.
//
// Two halves:
//   * positive: the legitimate patterns the paper blesses — early
//     unlock() inside a critical section, hand-over-hand chains, helper
//     replays — run clean under the guards (no false aborts), and the
//     thread-exit leak check passes after real contended traffic;
//   * death tests: double release and non-holder unlock() abort with a
//     diagnostic, in both lock-free and blocking modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

class ApiGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flock::set_blocking(false);
    flock::set_ccas(true);
  }
  void TearDown() override {
    flock::set_blocking(false);
    flock::set_ccas(true);
    flock::epoch_manager::instance().flush();
  }
};

// --- positive: guards stay silent on legitimate use -------------------------

TEST_F(ApiGuardTest, EarlyUnlockInsideThunkLockFree) {
  for (bool ccas : {false, true}) {
    flock::set_ccas(ccas);
    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    flock::lock* lp = &l;
    bool ok = flock::try_lock(l, [lp, x] {
      x->store(x->load() + 1);
      lp->unlock();  // §4 early release; the trailing auto-release no-ops
      return true;
    });
    EXPECT_TRUE(ok);
    EXPECT_FALSE(l.is_locked());
    EXPECT_EQ(x->read_raw(), 1u);
    // Reacquirable after the early release.
    EXPECT_TRUE(flock::try_lock(l, [] { return true; }));
    flock::pool_delete(x);
  }
}

TEST_F(ApiGuardTest, EarlyUnlockInsideCriticalSectionBlocking) {
  flock::set_blocking(true);
  flock::lock l;
  bool ok = flock::try_lock(l, [&l] {
    l.unlock();  // blocking-mode early release: bracket must tolerate it
    return true;
  });
  EXPECT_TRUE(ok);
  EXPECT_FALSE(l.is_locked());
  EXPECT_TRUE(flock::try_lock(l, [] { return true; }));
}

TEST_F(ApiGuardTest, HandOverHandChainLockFree) {
  // Lock i+1 is taken inside lock i's thunk and then releases lock i —
  // the unlock legitimacy flows through the dbg_parent creation chain.
  flock::lock a, b, c;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  flock::lock *ap = &a, *bp = &b, *cp = &c;
  bool ok = flock::strict_lock(a, [ap, bp, cp, x] {
    return bp->strict_lock([ap, bp, cp, x] {
      ap->unlock();
      return cp->strict_lock([bp, x] {
        bp->unlock();
        x->store(x->load() + 1);
        return true;
      });
    });
  });
  EXPECT_TRUE(ok);
  EXPECT_FALSE(a.is_locked());
  EXPECT_FALSE(b.is_locked());
  EXPECT_FALSE(c.is_locked());
  EXPECT_EQ(x->read_raw(), 1u);
  flock::pool_delete(x);
}

// Contended traffic: helpers replay thunks (including the early-unlock
// one) under the guards; every worker's thread-exit leak check runs at
// join and aborts the test on any unbalanced critical section.
TEST_F(ApiGuardTest, ContendedHelpingBalancesUnderGuards) {
  for (bool ccas : {false, true}) {
    flock::set_ccas(ccas);
    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    constexpr int kThreads = 4, kOps = 1500;
    std::atomic<uint64_t> wins{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&l, x, &wins] {
        flock::lock* lp = &l;
        uint64_t mine = 0;
        for (int i = 0; i < kOps; i++) {
          bool early = (i & 7) == 0;
          bool ok = flock::with_epoch([&] {
            return flock::try_lock(l, [lp, x, early] {
              x->store(x->load() + 1);
              if (early) lp->unlock();
              return true;
            });
          });
          if (ok) mine++;
        }
        wins.fetch_add(mine);
      });
    }
    for (auto& t : ts) t.join();  // leak check fires here if unbalanced
    EXPECT_FALSE(l.is_locked());
    EXPECT_EQ(x->read_raw(), wins.load());
    EXPECT_GE(wins.load(), (uint64_t)kThreads);  // someone always wins
    flock::pool_delete(x);
    flock::epoch_manager::instance().flush();
  }
}

// --- death tests: misuse aborts with a diagnostic ---------------------------

using ApiGuardDeathTest = ApiGuardTest;

TEST_F(ApiGuardDeathTest, DoubleReleaseTopLevelLockFree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  flock::lock l;
  EXPECT_DEATH(l.unlock(), "double release");
}

TEST_F(ApiGuardDeathTest, DoubleReleaseInsideThunkLockFree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Parenthesized lambda: braces do not protect commas from the macro.
  EXPECT_DEATH(([] {
                 flock::lock held;
                 flock::lock other;
                 flock::lock* op = &other;
                 flock::try_lock(held, [op] {
                   op->unlock();  // `other` was never acquired
                   return true;
                 });
               }()),
               "double release");
}

TEST_F(ApiGuardDeathTest, DoubleReleaseBlocking) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  flock::set_blocking(true);
  flock::lock l;
  EXPECT_DEATH(l.unlock(), "double release");
}

TEST_F(ApiGuardDeathTest, NonHolderUnlockLockFree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(([] {
                 flock::lock l;
                 std::atomic<bool> locked{false};
                 std::atomic<bool> release{false};
                 std::thread holder([&] {
                   flock::strict_lock(l, [&locked, &release] {
                     locked.store(true);
                     while (!release.load()) std::this_thread::yield();
                     return true;
                   });
                 });
                 while (!locked.load()) std::this_thread::yield();
                 l.unlock();  // aborts: this thread does not hold l
                 release.store(true);
                 holder.join();
               }()),
               "does not hold the lock");
}

TEST_F(ApiGuardDeathTest, NonHolderUnlockBlocking) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  flock::set_blocking(true);
  EXPECT_DEATH(([] {
                 flock::lock l;
                 std::atomic<bool> locked{false};
                 std::atomic<bool> release{false};
                 std::thread holder([&] {
                   flock::strict_lock(l, [&locked, &release] {
                     locked.store(true);
                     while (!release.load()) std::this_thread::yield();
                     return true;
                   });
                 });
                 while (!locked.load()) std::this_thread::yield();
                 l.unlock();  // side table says another thread holds it
                 release.store(true);
                 holder.join();
               }()),
               "does not hold the lock");
}

}  // namespace
