// Bidirectional incremental resizing (ds/hashtable.hpp): delete-heavy
// drains must bring bucket_count() back down through merged half-size
// successors, grow -> shrink -> grow oscillation keeps every invariant in
// both lock modes, and the 1/4-vs-1 hysteresis band prevents resize
// thrash under a steady mid-band workload.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ds/move.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

using ht_try = flock_ds::hashtable<uint64_t, uint64_t, false>;
using ht_strict = flock_ds::hashtable<uint64_t, uint64_t, true>;

// Shrink is driven by update traffic (migration helping and the resize
// policy both ride note_update), so a drained-but-idle table stays big by
// design. This supplies the steady trickle: paired insert/remove over a
// tiny disjoint key range, which keeps occupancy flat while ticking the
// policy and helping claimed migration units until the table bottoms out
// or the op budget runs dry.
template <class HT>
void churn_until_shrunk(HT& t, std::size_t target_buckets,
                        uint64_t key_base = 1u << 30,
                        std::size_t max_ops = 1u << 20) {
  for (std::size_t i = 0; i < max_ops; i++) {
    uint64_t k = key_base + (i & 255);
    t.insert(k, 1);
    t.remove(k);
    if ((i & 1023) == 0 && t.bucket_count() <= target_buckets) return;
  }
}

class HashtableShrinkTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(HashtableShrinkTest, DrainShrinksBucketCount) {
  ht_try t(64);
  const uint64_t n = 1 << 15;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k));
  const std::size_t peak = t.bucket_count();
  ASSERT_GE(peak, static_cast<std::size_t>(n / 2));
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.remove(k));

  churn_until_shrunk(t, 64);

  EXPECT_LE(t.bucket_count(), peak / 4) << "table failed to shrink";
  EXPECT_GE(t.shrink_count(), 1u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 0u);
}

TEST_P(HashtableShrinkTest, ShrinkPreservesResidentKeysAndValues) {
  // Drain all but every 64th key: the survivors ride every merge on the
  // way down and must come out with their values intact.
  ht_try t(64);
  const uint64_t n = 1 << 14;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k * 5));
  const std::size_t peak = t.bucket_count();
  for (uint64_t k = 1; k <= n; k++) {
    if (k % 64 != 0) {
      ASSERT_TRUE(t.remove(k));
    }
  }

  churn_until_shrunk(t, peak / 8);

  EXPECT_LE(t.bucket_count(), peak / 4);
  EXPECT_TRUE(t.check_invariants());
  for (uint64_t k = 64; k <= n; k += 64) {
    auto v = t.find(k);
    ASSERT_TRUE(v.has_value()) << "survivor " << k << " lost in a merge";
    ASSERT_EQ(*v, k * 5);
  }
  EXPECT_EQ(t.size(), n / 64);
}

TEST_P(HashtableShrinkTest, GrowShrinkGrowOscillation) {
  ht_try t(64);
  const uint64_t n = 1 << 14;
  // Grow.
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k));
  const std::size_t peak = t.bucket_count();
  ASSERT_GE(peak, static_cast<std::size_t>(n / 2));
  // Shrink.
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.remove(k));
  churn_until_shrunk(t, 64);
  const std::size_t trough = t.bucket_count();
  EXPECT_LE(trough, peak / 4);
  EXPECT_TRUE(t.check_invariants());
  // Grow again: the shrunk table must ramp back up like a fresh one.
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k * 9));
  EXPECT_GE(t.bucket_count(), static_cast<std::size_t>(n / 2));
  EXPECT_GE(t.grow_count(), t.shrink_count());
  EXPECT_TRUE(t.check_invariants());
  for (uint64_t k = 1; k <= n; k += 97) {
    auto v = t.find(k);
    ASSERT_TRUE(v.has_value()) << "key " << k << " lost across oscillation";
    ASSERT_EQ(*v, k * 9);
  }
  EXPECT_EQ(t.size(), n);
}

TEST_P(HashtableShrinkTest, HysteresisPreventsResizeThrash) {
  // Population parked mid-band (load factor ~0.75 after the prefill
  // growth settles): a steady 50/50 workload must trigger ZERO resizes —
  // the 1/4-vs-1 band means occupancy has to move 2x before either
  // policy fires, and a symmetric workload holds it flat.
  const uint64_t range = 3 << 12;  // ~6144 resident of 12288
  flock_workload::hashtable_try s;
  flock_workload::prefill_half(s, range, 4);

  ht_try& t = s.underlying();
  const std::size_t grows_before = t.grow_count();
  const std::size_t shrinks_before = t.shrink_count();
  const std::size_t buckets_before = t.bucket_count();

  flock_workload::zipf_distribution dist(range, 0.75);
  flock_workload::run_config cfg;
  cfg.threads = 4;
  cfg.update_percent = 50;
  cfg.millis = 250;
  auto res = flock_workload::run_mixed(s, dist, cfg);
  EXPECT_GT(res.total_ops, 0u);

  EXPECT_EQ(t.grow_count(), grows_before) << "steady workload grew";
  EXPECT_EQ(t.shrink_count(), shrinks_before) << "steady workload shrank";
  EXPECT_EQ(t.bucket_count(), buckets_before);
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(HashtableShrinkTest, ApproxSizeTracksOccupancy) {
  ht_try t(64);
  EXPECT_EQ(t.approx_size(), 0u);
  const uint64_t n = 5000;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k));
  // Quiescent: the counter shards sum to exactly the resident count.
  EXPECT_EQ(t.approx_size(), n);
  EXPECT_EQ(t.approx_size(), t.size());
  for (uint64_t k = 1; k <= n; k += 2) ASSERT_TRUE(t.remove(k));
  EXPECT_EQ(t.approx_size(), n / 2);
  EXPECT_EQ(t.approx_size(), t.size());
}

TEST_P(HashtableShrinkTest, StrictLockVariantShrinks) {
  ht_strict t(64);
  const uint64_t n = 1 << 13;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k));
  const std::size_t peak = t.bucket_count();
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.remove(k));
  churn_until_shrunk(t, 64);
  EXPECT_LE(t.bucket_count(), peak / 4);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 0u);
}

TEST_P(HashtableShrinkTest, ConcurrentDrainAndReadersDuringShrink) {
  // Survivor keys stay resident through the whole drain; reader threads
  // must find them with the right value at every instant, including while
  // the pair-merge critical sections are forwarding the buckets they sit
  // in. Churn threads keep update traffic flowing so shrink keeps making
  // progress after the drain empties the main range.
  ht_try t(64);
  const uint64_t range = 1 << 15;
  constexpr uint64_t kSurvivorBase = 1u << 28;
  constexpr uint64_t kSurvivors = 128;
  auto g = flock_workload::run_growth(t, range, 4);
  ASSERT_EQ(g.successful_updates, range);
  for (uint64_t i = 1; i <= kSurvivors; i++)
    ASSERT_TRUE(t.insert(kSurvivorBase + i, i * 11));
  const std::size_t peak = t.bucket_count();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      uint64_t x = static_cast<uint64_t>(r) + 1;
      while (!done.load(std::memory_order_relaxed)) {
        x = flock_ds::splitmix64(x);
        uint64_t i = x % kSurvivors + 1;
        auto v = t.find(kSurvivorBase + i);
        ASSERT_TRUE(v.has_value()) << "survivor " << i << " vanished";
        ASSERT_EQ(*v, i * 11);
      }
    });
  }

  auto d = flock_workload::run_drain(t, range, 4);
  EXPECT_EQ(d.successful_updates, range);
  std::vector<std::thread> churners;
  for (int c = 0; c < 4; c++) {
    churners.emplace_back([&, c] {
      churn_until_shrunk(t, peak / 8,
                         (1u << 30) + static_cast<uint64_t>(c) * 4096,
                         1u << 18);
    });
  }
  for (auto& th : churners) th.join();
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_LE(t.bucket_count(), peak / 4) << "concurrent drain never shrank";
  EXPECT_GE(t.shrink_count(), 1u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), kSurvivors);
}

TEST_P(HashtableShrinkTest, MoveComposesWithShrink) {
  // try_move's nested bucket critical sections re-validate forwarded
  // flags, so moves must stay conservation-safe while the SOURCE table is
  // actively shrinking underneath them.
  ht_try a(64), b(64);
  const uint64_t grow_n = 1 << 14;
  constexpr uint64_t kKeys = 64;
  for (uint64_t k = 1; k <= kKeys; k++) ASSERT_TRUE(a.insert(k, k * 7));
  for (uint64_t k = 1; k <= grow_n; k++)
    ASSERT_TRUE(a.insert(1000000 + k, k));
  const std::size_t peak = a.bucket_count();

  std::vector<std::thread> ts;
  for (int m = 0; m < 2; m++) {
    ts.emplace_back([&, m] {
      uint64_t x = static_cast<uint64_t>(m) * 31 + 7;
      for (int i = 0; i < 20000; i++) {
        x = flock_ds::splitmix64(x);
        uint64_t k = x % kKeys + 1;
        if (x & 1)
          flock_ds::try_move(a, b, k);
        else
          flock_ds::try_move(b, a, k);
      }
    });
  }
  // Drain + churn drives a's shrink while the movers shuttle.
  ts.emplace_back([&] {
    for (uint64_t k = 1; k <= grow_n; k++) a.remove(1000000 + k);
    churn_until_shrunk(a, peak / 8, 1u << 29, 1u << 19);
  });
  for (auto& th : ts) th.join();

  EXPECT_LE(a.bucket_count(), peak / 4);
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
  for (uint64_t k = 1; k <= kKeys; k++) {
    bool in_a = a.find(k).has_value();
    bool in_b = b.find(k).has_value();
    ASSERT_TRUE(in_a != in_b) << "key " << k << " lost or duplicated";
    ASSERT_EQ(in_a ? *a.find(k) : *b.find(k), k * 7);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, HashtableShrinkTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
