// set_adapter.hpp — a uniform Set facade over every data structure in the
// repo so tests and benchmarks are written once. Adapters expose
//   bool insert(uint64_t k, uint64_t v); bool remove(uint64_t k);
//   std::optional<uint64_t> find(uint64_t k);
//   size_t size(); bool check_invariants();
//
// The arttree adapter additionally hashes keys (paper §8: "we sparsify
// the key range by hashing each key... This does not affect the other
// data structures since they either are purely comparison based or hash
// the keys themselves").
#pragma once

#include <cstdint>
#include <optional>

#include "baselines/ellen_bst.hpp"
#include "baselines/harris_list.hpp"
#include "baselines/natarajan_bst.hpp"
#include "ds/abtree.hpp"
#include "ds/arttree.hpp"
#include "ds/dlist.hpp"
#include "ds/hashtable.hpp"
#include "ds/lazylist.hpp"
#include "ds/leaftree.hpp"
#include "ds/leaftreap.hpp"
#include "store/sharded_map.hpp"
#include "zipf.hpp"

namespace flock_workload {

using key_t64 = uint64_t;

/// Direct pass-through adapter.
template <class DS>
class set_adapter {
 public:
  template <class... Args>
  explicit set_adapter(Args&&... args) : ds_(std::forward<Args>(args)...) {}

  bool insert(uint64_t k, uint64_t v) { return ds_.insert(k, v); }
  bool remove(uint64_t k) { return ds_.remove(k); }
  std::optional<uint64_t> find(uint64_t k) { return ds_.find(k); }
  std::size_t size() const { return ds_.size(); }
  /// Stats-line population read: the structure's O(#counter-shards)
  /// estimate where one exists (hashtable, sharded_map), else the exact
  /// scan — so demo stats lines can print population without paying an
  /// O(n) walk on structures that track occupancy.
  std::size_t approx_size() const {
    if constexpr (requires(const DS& d) { d.approx_size(); })
      return ds_.approx_size();
    else
      return ds_.size();
  }
  bool check_invariants() const { return ds_.check_invariants(); }
  DS& underlying() { return ds_; }
  const DS& underlying() const { return ds_; }

 private:
  DS ds_;
};

/// ART adapter: sparsifies keys by hashing (bijective enough for the
/// benchmark ranges; collisions over 64 bits are negligible — splitmix64
/// is in fact a bijection on 64-bit values).
template <class DS>
class hashed_adapter {
 public:
  template <class... Args>
  explicit hashed_adapter(Args&&... args) : ds_(std::forward<Args>(args)...) {}

  bool insert(uint64_t k, uint64_t v) { return ds_.insert(splitmix64(k), v); }
  bool remove(uint64_t k) { return ds_.remove(splitmix64(k)); }
  std::optional<uint64_t> find(uint64_t k) { return ds_.find(splitmix64(k)); }
  std::size_t size() const { return ds_.size(); }
  /// Same dispatch as set_adapter::approx_size: route to the structure's
  /// sharded occupancy counters when it has them instead of falling back
  /// to an exact O(n) scan (key hashing is irrelevant to a population
  /// count, so the pass-through is sound here too).
  std::size_t approx_size() const {
    if constexpr (requires(const DS& d) { d.approx_size(); })
      return ds_.approx_size();
    else
      return ds_.size();
  }
  bool check_invariants() const { return ds_.check_invariants(); }
  DS& underlying() { return ds_; }

 private:
  DS ds_;
};

// Canonical instantiations used by tests and benchmarks. ---------------
using lazylist_try = set_adapter<flock_ds::lazylist<uint64_t, uint64_t, false>>;
using lazylist_strict = set_adapter<flock_ds::lazylist<uint64_t, uint64_t, true>>;
using dlist_try = set_adapter<flock_ds::dlist<uint64_t, uint64_t, false>>;
using dlist_strict = set_adapter<flock_ds::dlist<uint64_t, uint64_t, true>>;
using hashtable_try = set_adapter<flock_ds::hashtable<uint64_t, uint64_t, false>>;
using sharded_try = set_adapter<flock_store::sharded_map<uint64_t, uint64_t, false>>;
using sharded_strict = set_adapter<flock_store::sharded_map<uint64_t, uint64_t, true>>;
using leaftree_try = set_adapter<flock_ds::leaftree<uint64_t, uint64_t, false>>;
using leaftree_strict = set_adapter<flock_ds::leaftree<uint64_t, uint64_t, true>>;
using leaftreap_try = set_adapter<flock_ds::leaftreap<uint64_t, uint64_t, false>>;
using abtree_try = set_adapter<flock_ds::abtree<uint64_t, uint64_t, false>>;
using abtree_strict = set_adapter<flock_ds::abtree<uint64_t, uint64_t, true>>;
using arttree_try = hashed_adapter<flock_ds::arttree<uint64_t, false>>;
using harris = set_adapter<flock_baselines::harris_list<uint64_t, uint64_t>>;
using harris_opt =
    set_adapter<flock_baselines::harris_list_opt<uint64_t, uint64_t>>;
using natarajan = set_adapter<flock_baselines::natarajan_bst<uint64_t, uint64_t>>;
using ellen = set_adapter<flock_baselines::ellen_bst<uint64_t, uint64_t>>;

}  // namespace flock_workload
