file(REMOVE_RECURSE
  "CMakeFiles/test_epoch.dir/tests/test_epoch.cpp.o"
  "CMakeFiles/test_epoch.dir/tests/test_epoch.cpp.o.d"
  "test_epoch"
  "test_epoch.pdb"
  "test_epoch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
