# Empty compiler generated dependencies file for test_arttree.
# This may be replaced when dependencies are built.
