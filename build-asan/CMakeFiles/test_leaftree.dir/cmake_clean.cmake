file(REMOVE_RECURSE
  "CMakeFiles/test_leaftree.dir/tests/test_leaftree.cpp.o"
  "CMakeFiles/test_leaftree.dir/tests/test_leaftree.cpp.o.d"
  "test_leaftree"
  "test_leaftree.pdb"
  "test_leaftree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leaftree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
