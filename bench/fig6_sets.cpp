// Figure 6 — other set datatypes: arttree, leaftreap, hashtable, abtree,
// each in blocking and lock-free mode, plus srivastava_abtree
// (substituted per DESIGN.md §5 by our abtree under strict blocking
// locks, the same lock class that codebase uses).
//
// Paper shapes: lock-free ~= blocking at full subscription (overhead
// largest for the hashtable whose search time is small); lock-free wins
// up to ~2-2.5x when oversubscribed + contended (right of panel b).
#include <memory>

#include "harness.hpp"

int main() {
  using namespace bench;
  const uint64_t big = cfg().large_n;
  const int th = cfg().max_threads;
  const int ov = cfg().oversub_threads;
  std::fprintf(stderr, "fig6: sets (large=%llu, threads=%d, oversub=%d)\n",
               static_cast<unsigned long long>(big), th, ov);
  std::printf("figure,series,x,mops\n");

  auto mk_art = [] { return std::make_unique<flock_workload::arttree_try>(); };
  auto mk_treap = [] {
    return std::make_unique<flock_workload::leaftreap_try>();
  };
  auto mk_hash = [&] {
    return std::make_unique<flock_workload::hashtable_try>(
        static_cast<std::size_t>(cfg().large_n));
  };
  auto mk_ab = [] { return std::make_unique<flock_workload::abtree_try>(); };
  auto mk_ab_strict = [] {
    return std::make_unique<flock_workload::abtree_strict>();
  };

  const std::vector<int> threads = thread_axis();
  const std::vector<double> alphas = {0, 0.75, 0.9, 0.99};

  struct series {
    const char* name;
    bool blocking;
  };

  // Panel a: thread sweep, 50% updates, alpha 0.75.
  std::fprintf(stderr, "panel a\n");
  sweep_threads("fig6a", "arttree-bl", mk_art, true, big, 50, 0.75, threads);
  sweep_threads("fig6a", "arttree-lf", mk_art, false, big, 50, 0.75, threads);
  sweep_threads("fig6a", "leaftreap-bl", mk_treap, true, big, 50, 0.75,
                threads);
  sweep_threads("fig6a", "leaftreap-lf", mk_treap, false, big, 50, 0.75,
                threads);
  sweep_threads("fig6a", "hashtable-bl", mk_hash, true, big, 50, 0.75,
                threads);
  sweep_threads("fig6a", "hashtable-lf", mk_hash, false, big, 50, 0.75,
                threads);
  sweep_threads("fig6a", "abtree-bl", mk_ab, true, big, 50, 0.75, threads);
  sweep_threads("fig6a", "abtree-lf", mk_ab, false, big, 50, 0.75, threads);
  sweep_threads("fig6a", "srivastava_abtree(sub)", mk_ab_strict, true, big,
                50, 0.75, threads);

  // Panel b: zipf sweep, oversubscribed.
  std::fprintf(stderr, "panel b\n");
  sweep_alpha("fig6b", "arttree-bl", mk_art, true, big, ov, 50, alphas);
  sweep_alpha("fig6b", "arttree-lf", mk_art, false, big, ov, 50, alphas);
  sweep_alpha("fig6b", "leaftreap-bl", mk_treap, true, big, ov, 50, alphas);
  sweep_alpha("fig6b", "leaftreap-lf", mk_treap, false, big, ov, 50, alphas);
  sweep_alpha("fig6b", "hashtable-bl", mk_hash, true, big, ov, 50, alphas);
  sweep_alpha("fig6b", "hashtable-lf", mk_hash, false, big, ov, 50, alphas);
  sweep_alpha("fig6b", "abtree-bl", mk_ab, true, big, ov, 50, alphas);
  sweep_alpha("fig6b", "abtree-lf", mk_ab, false, big, ov, 50, alphas);
  sweep_alpha("fig6b", "srivastava_abtree(sub)", mk_ab_strict, true, big, ov,
              50, alphas);
  return 0;
}
