// ellen_bst.hpp — the non-blocking external BST of Ellen, Fatourou,
// Ruppert and van Breugel (PODC 2010) [21], one of the two CAS-based
// lock-free baselines in the paper's §8 evaluation.
//
// Internal nodes carry an `update` word (state + Info pointer) used to
// coordinate helping: inserts flag the parent (IFLAG), deletes flag the
// grandparent (DFLAG) and mark the parent (MARK). All helping goes
// through the Info records. Reclamation uses the shared epoch manager.
#pragma once

#include <cstdint>
#include <optional>

#include "flock/flock.hpp"

namespace flock_baselines {

template <class K, class V>
class ellen_bst {
  // Sentinel ranking: real keys < inf1 < inf2.
  struct skey {
    K k;
    int rank;  // 0 = real, 1 = inf1, 2 = inf2
    bool operator<(const skey& o) const {
      if (rank != o.rank) return rank < o.rank;
      if (rank != 0) return false;
      return k < o.k;
    }
    bool operator==(const skey& o) const {
      return rank == o.rank && (rank != 0 || k == o.k);
    }
  };

  struct node {
    const bool is_leaf;
    const skey key;
    node(bool leaf, skey k) : is_leaf(leaf), key(k) {}
  };

  struct internal;

  enum state : uintptr_t { CLEAN = 0, DFLAG = 1, IFLAG = 2, MARK = 3 };

  struct info;  // type-erased base for IInfo/DInfo

  static uintptr_t make_upd(info* i, state s) {
    return reinterpret_cast<uintptr_t>(i) | s;
  }
  static state upd_state(uintptr_t u) { return static_cast<state>(u & 3); }
  static info* upd_info(uintptr_t u) {
    return reinterpret_cast<info*>(u & ~uintptr_t{3});
  }

  struct internal : node {
    std::atomic<uintptr_t> update{CLEAN};
    std::atomic<node*> left;
    std::atomic<node*> right;
    internal(skey k, node* l, node* r)
        : node(false, k), left(l), right(r) {}
  };

  struct leaf : node {
    const V v;
    leaf(skey k, V val) : node(true, k), v(val) {}
  };

  struct info {
    const bool is_insert;
    explicit info(bool ins) : is_insert(ins) {}
  };

  struct iinfo : info {
    internal* p;
    leaf* l;
    internal* new_internal;
    iinfo(internal* p_, leaf* l_, internal* ni)
        : info(true), p(p_), l(l_), new_internal(ni) {}
  };

  struct dinfo : info {
    internal* gp;
    internal* p;
    leaf* l;
    uintptr_t pupdate;
    dinfo(internal* gp_, internal* p_, leaf* l_, uintptr_t pu)
        : info(false), gp(gp_), p(p_), l(l_), pupdate(pu) {}
  };

  struct seek_record {
    internal* gp = nullptr;
    internal* p = nullptr;
    leaf* l = nullptr;
    uintptr_t gpupdate = CLEAN;
    uintptr_t pupdate = CLEAN;
  };

 public:
  ellen_bst() {
    leaf* l1 = flock::pool_new<leaf>(skey{K{}, 1}, V{});
    leaf* l2 = flock::pool_new<leaf>(skey{K{}, 2}, V{});
    root_ = flock::pool_new<internal>(skey{K{}, 2}, l1, l2);
  }

  ~ellen_bst() { destroy(root_); }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      seek_record sr = search(skey{k, 0});
      if (sr.l->key == skey{k, 0}) return sr.l->v;
      return {};
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      skey key{k, 0};
      while (true) {
        seek_record sr = search(key);
        if (sr.l->key == key) return false;
        if (upd_state(sr.pupdate) != CLEAN) {
          help(sr.pupdate);
          continue;
        }
        leaf* nl = flock::pool_new<leaf>(key, v);
        leaf* old_copy = flock::pool_new<leaf>(sr.l->key, leaf_val(sr.l));
        internal* ni =
            key < sr.l->key
                ? flock::pool_new<internal>(sr.l->key, nl, old_copy)
                : flock::pool_new<internal>(key, old_copy, nl);
        iinfo* op = flock::pool_new<iinfo>(sr.p, sr.l, ni);
        uintptr_t expected = sr.pupdate;
        if (sr.p->update.compare_exchange_strong(
                expected, make_upd(op, IFLAG), std::memory_order_acq_rel)) {
          help_insert(op);
          return true;
        }
        // Failed to flag: clean up our speculative nodes and help.
        flock::pool_delete(nl);
        flock::pool_delete(old_copy);
        flock::pool_delete(ni);
        flock::pool_delete(op);
        help(expected);
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      skey key{k, 0};
      while (true) {
        seek_record sr = search(key);
        if (!(sr.l->key == key)) return false;
        if (upd_state(sr.gpupdate) != CLEAN) {
          help(sr.gpupdate);
          continue;
        }
        if (upd_state(sr.pupdate) != CLEAN) {
          help(sr.pupdate);
          continue;
        }
        dinfo* op = flock::pool_new<dinfo>(sr.gp, sr.p, sr.l, sr.pupdate);
        uintptr_t expected = sr.gpupdate;
        if (sr.gp->update.compare_exchange_strong(
                expected, make_upd(op, DFLAG), std::memory_order_acq_rel)) {
          // op is reclaimed by whichever helper wins the final unflag
          // (help_marked) or the backtrack unflag (help_delete).
          if (help_delete(op)) return true;
          continue;
        }
        flock::pool_delete(op);
        help(expected);
      }
    });
  }

  std::size_t size() const { return count(root_); }

  bool check_invariants() const {
    bool ok = true;
    validate(root_, skey{K{}, 0}, false, skey{K{}, 2}, false, ok);
    return ok;
  }

  template <class F>
  void for_each(F&& f) const {
    walk(root_, f);
  }

 private:
  static V leaf_val(leaf* l) { return l->v; }

  seek_record search(skey key) {
    seek_record sr;
    sr.p = root_;
    sr.pupdate = root_->update.load(std::memory_order_acquire);
    node* cur = (key < root_->key ? root_->left : root_->right)
                    .load(std::memory_order_acquire);
    while (!cur->is_leaf) {
      sr.gp = sr.p;
      sr.p = static_cast<internal*>(cur);
      sr.gpupdate = sr.pupdate;
      sr.pupdate = sr.p->update.load(std::memory_order_acquire);
      cur = (key < cur->key ? sr.p->left : sr.p->right)
                .load(std::memory_order_acquire);
    }
    sr.l = static_cast<leaf*>(cur);
    return sr;
  }

  void help(uintptr_t u) {
    info* i = upd_info(u);
    if (i == nullptr) return;
    switch (upd_state(u)) {
      case IFLAG:
        help_insert(static_cast<iinfo*>(i));
        break;
      case DFLAG:
        help_delete(static_cast<dinfo*>(i));
        break;
      case MARK:
        help_marked(static_cast<dinfo*>(i));
        break;
      default:
        break;
    }
  }

  void cas_child(internal* parent, node* old_child, node* new_child) {
    std::atomic<node*>& slot =
        new_child->key < parent->key ? parent->left : parent->right;
    node* expected = old_child;
    slot.compare_exchange_strong(expected, new_child,
                                 std::memory_order_acq_rel);
  }

  void help_insert(iinfo* op) {
    cas_child(op->p, op->l, op->new_internal);
    uintptr_t expected = make_upd(op, IFLAG);
    if (op->p->update.compare_exchange_strong(expected,
                                              make_upd(op, CLEAN),
                                              std::memory_order_acq_rel)) {
      // This helper unflagged: retire the replaced leaf and the op.
      flock::epoch_retire(op->l);
      flock::epoch_retire(op);
    }
  }

  bool help_delete(dinfo* op) {
    uintptr_t expected = op->pupdate;
    uintptr_t marked = make_upd(reinterpret_cast<info*>(op), MARK);
    if (op->p->update.compare_exchange_strong(expected, marked,
                                              std::memory_order_acq_rel) ||
        expected == marked) {
      help_marked(op);
      return true;
    }
    // Backtrack: someone interfered; unflag the grandparent. The new
    // value keeps the op pointer (as in the original algorithm): writing
    // a pristine CLEAN(0) here would let a stale helper's MARK CAS see a
    // repeated update-word value and fire on a dead op record. The unflag
    // winner owns reclaiming the abandoned record; epochs keep it alive
    // for helpers that still hold the pointer.
    help(expected);
    uintptr_t flagged = make_upd(reinterpret_cast<info*>(op), DFLAG);
    if (op->gp->update.compare_exchange_strong(flagged, make_upd(op, CLEAN),
                                               std::memory_order_acq_rel)) {
      flock::epoch_retire(op);
    }
    return false;
  }

  void help_marked(dinfo* op) {
    // Splice p out: replace gp's child p by p's other child.
    node* l = op->p->left.load(std::memory_order_acquire);
    node* other =
        l == static_cast<node*>(op->l)
            ? op->p->right.load(std::memory_order_acquire)
            : l;
    cas_child_exact(op->gp, op->p, other);
    uintptr_t flagged = make_upd(reinterpret_cast<info*>(op), DFLAG);
    if (op->gp->update.compare_exchange_strong(flagged,
                                               make_upd(op, CLEAN),
                                               std::memory_order_acq_rel)) {
      flock::epoch_retire(op->l);
      flock::epoch_retire(op->p);
      flock::epoch_retire(op);
    }
  }

  // Replace whichever child slot of gp holds `oldc`.
  void cas_child_exact(internal* gp, node* oldc, node* newc) {
    node* expected = oldc;
    if (gp->left.load(std::memory_order_acquire) == oldc) {
      gp->left.compare_exchange_strong(expected, newc,
                                       std::memory_order_acq_rel);
    } else {
      expected = oldc;
      gp->right.compare_exchange_strong(expected, newc,
                                        std::memory_order_acq_rel);
    }
  }

  void destroy(node* n) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      flock::pool_delete(static_cast<leaf*>(n));
      return;
    }
    auto* in = static_cast<internal*>(n);
    destroy(in->left.load(std::memory_order_relaxed));
    destroy(in->right.load(std::memory_order_relaxed));
    flock::pool_delete(in);
  }

  std::size_t count(node* n) const {
    if (n == nullptr) return 0;
    if (n->is_leaf)
      return static_cast<leaf*>(n)->key.rank == 0 ? 1 : 0;
    auto* in = static_cast<internal*>(n);
    return count(in->left.load()) + count(in->right.load());
  }

  void validate(node* n, skey lo, bool has_lo, skey hi, bool has_hi,
                bool& ok) const {
    if (n == nullptr || !ok) {
      ok = false;
      return;
    }
    if (has_lo && n->key < lo) ok = false;
    if (has_hi && hi < n->key) ok = false;
    if (n->is_leaf) return;
    auto* in = static_cast<internal*>(n);
    validate(in->left.load(), lo, has_lo, in->key, true, ok);
    validate(in->right.load(), in->key, true, hi, has_hi, ok);
  }

  template <class F>
  void walk(node* n, F&& f) const {
    if (n == nullptr) return;
    if (n->is_leaf) {
      auto* l = static_cast<leaf*>(n);
      if (l->key.rank == 0) f(l->key.k, l->v);
      return;
    }
    auto* in = static_cast<internal*>(n);
    walk(in->left.load(), std::forward<F>(f));
    walk(in->right.load(), std::forward<F>(f));
  }

  internal* root_;
};

}  // namespace flock_baselines
