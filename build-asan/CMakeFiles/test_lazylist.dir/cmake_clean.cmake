file(REMOVE_RECURSE
  "CMakeFiles/test_lazylist.dir/tests/test_lazylist.cpp.o"
  "CMakeFiles/test_lazylist.dir/tests/test_lazylist.cpp.o.d"
  "test_lazylist"
  "test_lazylist.pdb"
  "test_lazylist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lazylist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
