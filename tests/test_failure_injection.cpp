// Failure injection: the paper's core robustness claim (§1, §3) is that
// in lock-free mode a lock holder that stalls — preempted, page-faulted,
// or crashed — cannot block others: they help its critical section to
// completion and move on. These tests inject long stalls *inside*
// critical sections and measure whether the rest of the system keeps
// making progress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

using namespace std::chrono_literals;

// A holder grabs the lock and stalls mid-thunk until `release`. We then
// count how many OTHER operations on the same lock complete during the
// stall window.
long long ops_during_stall(bool blocking, std::chrono::milliseconds stall) {
  flock::set_blocking(blocking);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  std::atomic<bool> installed{false};
  std::atomic<bool> release{false};
  std::atomic<bool> stop{false};
  std::atomic<long long> completed{0};

  std::thread holder([&] {
    flock::with_epoch([&] {
      return flock::try_lock(l, [&, x] {
        uint64_t v = x->load();
        installed.store(true);
        // Stall: only the FIRST runner of this thunk blocks here; a
        // helper re-running it sees release==true by the time it helps
        // (we flip it below), so helping completes quickly.
        while (!release.load()) std::this_thread::yield();
        x->store(v + 1);
        return true;
      });
    });
  });

  while (!installed.load()) std::this_thread::yield();

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        bool ok = flock::with_epoch([&] {
          return flock::try_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
        if (ok) completed.fetch_add(1);
      }
    });
  }

  // The workers may help the holder's thunk; let them finish it.
  release.store(true);
  std::this_thread::sleep_for(stall);
  stop.store(true);
  for (auto& w : workers) w.join();
  holder.join();

  long long done = completed.load();
  // Exactly-once accounting survives regardless of mode.
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(done) + 1);
  flock::pool_delete(x);
  flock::set_blocking(false);
  flock::epoch_manager::instance().flush();
  return done;
}

TEST(FailureInjection, LockFreeProgressPastStalledHolder) {
  long long done = ops_during_stall(false, 200ms);
  // Helpers complete the stalled holder's section and then thousands of
  // their own operations.
  EXPECT_GT(done, 1000);
}

TEST(FailureInjection, BlockingTryLockAtLeastFailsCleanly) {
  // In blocking mode nobody can help: while the holder stalls, try_locks
  // just fail (no progress on this lock), but nothing deadlocks and the
  // count stays exact. We only require clean completion here.
  long long done = ops_during_stall(true, 50ms);
  EXPECT_GE(done, 0);
}

TEST(FailureInjection, BlockingModeStarvesDuringHardStall) {
  // Sharper contrast: the holder does NOT get released until after the
  // measurement window, so in blocking mode zero operations can complete,
  // while in lock-free mode the helpers finish the holder's section
  // themselves and proceed.
  for (bool blocking : {true, false}) {
    flock::set_blocking(blocking);
    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    std::atomic<bool> installed{false};
    std::atomic<bool> release{false};
    std::atomic<bool> stop{false};
    std::atomic<long long> completed{0};

    std::thread holder([&] {
      flock::with_epoch([&] {
        return flock::try_lock(l, [&, x] {
          uint64_t v = x->load();
          installed.store(true);
          if (flock::is_blocking()) {
            // Only the owner can run this thunk in blocking mode; park
            // it through the whole window.
            while (!release.load()) std::this_thread::yield();
          }
          // In lock-free mode helpers re-run the thunk from the top and
          // reach here immediately (installed is already true).
          x->store(v + 1);
          return true;
        });
      });
    });
    while (!installed.load()) std::this_thread::yield();

    std::vector<std::thread> workers;
    for (int t = 0; t < 4; t++) {
      workers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          if (flock::with_epoch([&] {
                return flock::try_lock(l, [x] {
                  x->store(x->load() + 1);
                  return true;
                });
              }))
            completed.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(100ms);
    stop.store(true);
    for (auto& w : workers) w.join();
    release.store(true);
    holder.join();

    if (blocking) {
      EXPECT_EQ(completed.load(), 0) << "blocking mode: holder stalls all";
    } else {
      EXPECT_GT(completed.load(), 1000) << "lock-free mode: helpers proceed";
    }
    EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(completed.load()) + 1);
    flock::pool_delete(x);
  }
  flock::set_blocking(false);
  flock::epoch_manager::instance().flush();
}

TEST(FailureInjection, StalledHolderOnHotPathOfManyLocks) {
  // A stalled holder in the middle of a chain of nested locks: helpers
  // must complete the whole nest (Theorem 4.2 helping chain).
  flock::set_blocking(false);
  flock::lock outer, inner;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  std::atomic<bool> installed{false};
  std::atomic<bool> release{false};

  std::thread holder([&] {
    flock::with_epoch([&] {
      return flock::try_lock(outer, [&, x] {
        return flock::try_lock(inner, [&, x] {
          uint64_t v = x->load();
          installed.store(true);
          while (!release.load()) std::this_thread::yield();
          x->store(v + 1);
          return true;
        });
      });
    });
  });
  while (!installed.load()) std::this_thread::yield();
  release.store(true);

  // Contend on BOTH locks; helping must resolve the nest exactly once.
  // All stores to x stay under `inner` (stores must not race, §3); the
  // outer contenders run empty critical sections.
  std::atomic<long long> inner_wins{0};
  std::atomic<long long> outer_wins{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 2000; i++) {
        if (t & 1) {
          if (flock::with_epoch([&] {
                return flock::try_lock(outer, [] { return true; });
              }))
            outer_wins.fetch_add(1);
        } else {
          if (flock::with_epoch([&] {
                return flock::try_lock(inner, [x] {
                  x->store(x->load() + 1);
                  return true;
                });
              }))
            inner_wins.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  holder.join();
  EXPECT_GT(outer_wins.load(), 0);
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(inner_wins.load()) + 1);
  flock::pool_delete(x);
  flock::epoch_manager::instance().flush();
}

}  // namespace
