// harris_list.hpp — Harris's lock-free sorted linked list [29], plus the
// optimized variant where find operations do not help (do not snip marked
// nodes), following David et al. [16] (paper §8: harris_list and
// harris_list_opt). Memory is reclaimed with the same epoch manager the
// Flock structures use, so comparisons are apples-to-apples.
#pragma once

#include <cstdint>
#include <optional>

#include "flock/flock.hpp"

namespace flock_baselines {

template <class K, class V, bool OptFind = false>
class harris_list {
  struct node {
    const K k;
    const V v;
    std::atomic<uintptr_t> next;  // successor pointer | mark bit
    node(K key, V val, node* nxt)
        : k(key), v(val), next(reinterpret_cast<uintptr_t>(nxt)) {}
  };

  static constexpr uintptr_t kMark = 1;
  static node* ptr(uintptr_t w) {
    return reinterpret_cast<node*>(w & ~kMark);
  }
  static bool marked(uintptr_t w) { return (w & kMark) != 0; }
  static uintptr_t make(node* p, bool m) {
    return reinterpret_cast<uintptr_t>(p) | (m ? kMark : 0);
  }

 public:
  harris_list() {
    tail_ = flock::pool_new<node>(K{}, V{}, nullptr);
    head_ = flock::pool_new<node>(K{}, V{}, tail_);
  }

  ~harris_list() {
    node* n = head_;
    while (n != nullptr) {
      node* nxt = ptr(n->next.load(std::memory_order_relaxed));
      flock::pool_delete(n);
      n = nxt;
    }
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      if constexpr (OptFind) {
        // Optimized find: wait-free traversal, no helping, no snipping.
        node* cur = ptr(head_->next.load(std::memory_order_acquire));
        while (cur != tail_ && cur->k < k)
          cur = ptr(cur->next.load(std::memory_order_acquire));
        if (cur != tail_ && cur->k == k &&
            !marked(cur->next.load(std::memory_order_acquire)))
          return cur->v;
        return {};
      } else {
        auto [left, right] = search(k);
        (void)left;
        if (right != tail_ && right->k == k) return right->v;
        return {};
      }
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      node* n = flock::pool_new<node>(k, v, nullptr);
      while (true) {
        auto [left, right] = search(k);
        if (right != tail_ && right->k == k) {
          flock::pool_delete(n);  // never published
          return false;
        }
        n->next.store(make(right, false), std::memory_order_relaxed);
        uintptr_t expected = make(right, false);
        if (left->next.compare_exchange_strong(expected, make(n, false),
                                               std::memory_order_acq_rel))
          return true;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        auto [left, right] = search(k);
        if (right == tail_ || right->k != k) return false;
        uintptr_t rnext = right->next.load(std::memory_order_acquire);
        if (marked(rnext)) continue;  // someone else is deleting it
        // Logical delete: mark the successor pointer.
        uintptr_t expected = rnext;
        if (!right->next.compare_exchange_strong(
                expected, make(ptr(rnext), true),
                std::memory_order_acq_rel))
          continue;
        // Physical delete: try to snip; on failure a later search will.
        expected = make(right, false);
        if (left->next.compare_exchange_strong(expected,
                                               make(ptr(rnext), false),
                                               std::memory_order_acq_rel)) {
          flock::epoch_retire(right);
        } else {
          search(k);  // snips and retires via the search path
        }
        return true;
      }
    });
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (node* c = ptr(head_->next.load()); c != tail_;
         c = ptr(c->next.load()))
      if (!marked(c->next.load())) n++;
    return n;
  }

  bool check_invariants() const {
    const node* prev = nullptr;
    for (node* c = ptr(head_->next.load()); c != tail_;
         c = ptr(c->next.load())) {
      if (marked(c->next.load())) continue;  // logically deleted remnant
      if (prev != nullptr && !(prev->k < c->k)) return false;
      prev = c;
    }
    return true;
  }

  template <class F>
  void for_each(F&& f) const {
    for (node* c = ptr(head_->next.load()); c != tail_;
         c = ptr(c->next.load()))
      if (!marked(c->next.load())) f(c->k, c->v);
  }

 private:
  // Harris search: returns adjacent unmarked (left, right) with
  // left->k < k <= right->k (sentinel bounds), snipping marked runs.
  std::pair<node*, node*> search(K k) {
    while (true) {
      node* left = head_;
      uintptr_t left_next = head_->next.load(std::memory_order_acquire);
      node* right = nullptr;
      // 1. Find left and right, remembering left's successor word.
      node* t = head_;
      uintptr_t t_next = left_next;
      do {
        if (!marked(t_next)) {
          left = t;
          left_next = t_next;
        }
        t = ptr(t_next);
        if (t == tail_) break;
        t_next = t->next.load(std::memory_order_acquire);
      } while (marked(t_next) || t->k < k);
      right = t;
      // 2. Adjacent?
      if (ptr(left_next) == right) {
        if (right != tail_ &&
            marked(right->next.load(std::memory_order_acquire)))
          continue;
        return {left, right};
      }
      // 3. Snip the marked run [left_next, right).
      uintptr_t expected = left_next;
      if (left->next.compare_exchange_strong(expected, make(right, false),
                                             std::memory_order_acq_rel)) {
        // Retire everything snipped out.
        node* c = ptr(left_next);
        while (c != right) {
          node* nxt = ptr(c->next.load(std::memory_order_relaxed));
          flock::epoch_retire(c);
          c = nxt;
        }
        if (right != tail_ &&
            marked(right->next.load(std::memory_order_acquire)))
          continue;
        return {left, right};
      }
    }
  }

  node* head_;
  node* tail_;
};

template <class K, class V>
using harris_list_opt = harris_list<K, V, true>;

}  // namespace flock_baselines
