// schedule_test.hpp — scenario harness over scheduler.hpp.
//
// A *scenario* is a deterministic concurrent episode: fresh state
// (setup), N thread bodies, an assertion pass at quiescence (live
// threads done, kill victims parked mid-window) and a final pass after
// kill victims are revived and drained. The harness runs a scenario
// under the three deciders:
//
//   explore(sc, opts)       iterative-preemption-bound exhaustive DFS:
//                           the full schedule tree at bound 0, then 1,
//                           ... up to opts.preemption_bound (and per
//                           kill budget 0..kill_bound), so the simplest
//                           counterexample surfaces first. Stops at the
//                           first failing schedule.
//   random_walk(sc, seed,…) one PCT-style seeded walk; a sweep is a
//                           loop over seeds.
//   replay(sc, "0,1,k0,…")  one run pinned to a recorded schedule.
//
// Reproduction contract (the CI model-check job depends on it): when a
// schedule fails, explore()/random_walk() print one line of the form
//
//   FLOCK_SCHEDULE='<tokens>' FLOCK_SCHEDULE_SCENARIO='<name>' <test-binary>
//
// and stop. Setting those two environment variables makes explore()
// replay exactly that schedule for the named scenario (other scenarios
// explore normally), so any CI failure reruns locally with one env var
// pair and no code changes.
//
// Failure detection is pluggable (opts.failure_check) so the harness
// stays gtest-agnostic; tests pass `::testing::Test::HasFailure`.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "scheduler.hpp"

namespace flock_sched {

struct scenario {
  std::string name;
  /// Builds fresh scenario state; called once per schedule, before the
  /// workers spawn, on the exploring thread.
  std::function<void()> setup;
  /// One deterministic body per logical thread.
  std::vector<std::function<void()>> threads;
  /// Assertions at quiescence (kill victims still parked mid-window).
  std::function<void()> on_quiescent;
  /// Assertions + teardown after revival/drain, workers joined.
  std::function<void(const run_report&)> on_final;
  /// Optional state digest, recorded per run; replay determinism asserts
  /// record == replay. Called at the same place as on_final.
  std::function<std::string()> fingerprint;
};

struct explore_options {
  int preemption_bound = 2;
  int kill_bound = 0;
  run_options run;  // yield filter + step budget
  /// Abort exploration as soon as this reports true after a run (wired
  /// to ::testing::Test::HasFailure in the tests).
  std::function<bool()> failure_check;
  /// Stop after this many schedules; sets stats.truncated. Exhaustive
  /// tests assert !truncated.
  uint64_t max_schedules = 1u << 20;
};

struct explore_stats {
  uint64_t schedules = 0;       // runs executed (all bounds summed)
  uint64_t schedules_at_max_bound = 0;  // runs in the final DFS pass
  uint64_t max_steps_seen = 0;  // longest run, in decisions
  bool truncated = false;       // max_schedules or a run's step budget hit
  bool nondeterminism = false;  // DFS prefix-determinism check failed
  bool failed = false;
  std::string failure_schedule;
  /// (schedule string, fingerprint) per run from the final full-bound
  /// pass, capped — the replay-determinism tests re-run these.
  std::vector<std::pair<std::string, std::string>> records;
  std::size_t records_cap = 4096;
};

namespace detail_harness {

inline void print_repro(const scenario& sc, const std::string& schedule,
                        const char* how) {
  std::fprintf(stderr,
               "[schedule_test] FAILING SCHEDULE (%s) in scenario '%s'\n"
               "[schedule_test] reproduce with:\n"
               "[schedule_test]   FLOCK_SCHEDULE='%s' "
               "FLOCK_SCHEDULE_SCENARIO='%s' <this test binary>\n",
               how, sc.name.c_str(), schedule.c_str(), sc.name.c_str());
}

/// One schedule of `sc` under `d`: fresh state, run, fingerprint, final
/// assertions. The quiescence callback fires inside run_schedule, with
/// kill victims still parked.
inline run_report run_once(const scenario& sc, decider& d,
                           const run_options& o) {
  if (sc.setup) sc.setup();
  run_report rep = run_schedule(sc.threads, d, o, sc.on_quiescent);
  if (sc.fingerprint) rep.fingerprint = sc.fingerprint();
  if (sc.on_final) sc.on_final(rep);
  return rep;
}

}  // namespace detail_harness

/// Replay one recorded schedule against a scenario.
inline run_report replay(const scenario& sc, const std::string& schedule,
                         const run_options& o = {}) {
  replay_decider d(schedule);
  return detail_harness::run_once(sc, d, o);
}

/// Exhaustive exploration with iterative preemption bounding: for each
/// kill budget 0..kill_bound, DFS the full tree at preemption bound 0,
/// then 1, ... up to preemption_bound. Honors FLOCK_SCHEDULE (+ optional
/// FLOCK_SCHEDULE_SCENARIO) by replaying that one schedule instead.
inline explore_stats explore(const scenario& sc,
                             const explore_options& opts = {}) {
  explore_stats stats;

  if (const char* fixed = std::getenv("FLOCK_SCHEDULE")) {
    const char* which = std::getenv("FLOCK_SCHEDULE_SCENARIO");
    if (which == nullptr || sc.name == which) {
      run_report rep = replay(sc, fixed, opts.run);
      stats.schedules = 1;
      stats.max_steps_seen = rep.tokens.size();
      stats.truncated = rep.truncated;
      if (opts.failure_check && opts.failure_check()) {
        stats.failed = true;
        stats.failure_schedule = fixed;
      }
      return stats;
    }
  }

  for (int kb = 0; kb <= opts.kill_bound && !stats.failed; kb++) {
    for (int pb = 0; pb <= opts.preemption_bound && !stats.failed; pb++) {
      bool at_max = (pb == opts.preemption_bound && kb == opts.kill_bound);
      dfs_decider d(pb, kb);
      do {
        if (stats.schedules >= opts.max_schedules) {
          stats.truncated = true;
          return stats;
        }
        run_report rep = detail_harness::run_once(sc, d, opts.run);
        stats.schedules++;
        if (at_max) {
          stats.schedules_at_max_bound++;
          if (stats.records.size() < stats.records_cap)
            stats.records.emplace_back(rep.schedule_string(),
                                       rep.fingerprint);
        }
        if (rep.tokens.size() > stats.max_steps_seen)
          stats.max_steps_seen = rep.tokens.size();
        if (rep.truncated) stats.truncated = true;
        if (opts.failure_check && opts.failure_check()) {
          stats.failed = true;
          stats.failure_schedule = rep.schedule_string();
          detail_harness::print_repro(sc, stats.failure_schedule,
                                      "exhaustive DFS");
          break;
        }
      } while (d.next_schedule());
      if (d.nondeterminism_detected()) stats.nondeterminism = true;
    }
  }
  return stats;
}

struct walk_options {
  int depth = 3;                 // PCT priority-change points
  std::size_t expected_steps = 64;
  int kill_budget = 0;
  run_options run;
  std::function<bool()> failure_check;
};

/// One seeded random walk; bit-identical schedule for a given seed (and
/// replayable from the recorded tokens regardless).
inline run_report random_walk(const scenario& sc, uint64_t seed,
                              const walk_options& opts = {}) {
  pct_decider d(seed, static_cast<int>(sc.threads.size()), opts.depth,
                opts.expected_steps, opts.kill_budget);
  run_report rep = detail_harness::run_once(sc, d, opts.run);
  if (opts.failure_check && opts.failure_check()) {
    std::string how = "random walk, seed " + std::to_string(seed);
    detail_harness::print_repro(sc, rep.schedule_string(), how.c_str());
  }
  return rep;
}

}  // namespace flock_sched
