// Failure injection: the paper's core robustness claim (§1, §3) is that
// in lock-free mode a lock holder that stalls — preempted, page-faulted,
// or crashed — cannot block others: they help its critical section to
// completion and move on.
//
// These tests used to model the stall with wall-clock sleeps and measure
// throughput during the window — flaky on small machines and silent about
// WHERE in the protocol the stall landed. They now drive the stall
// deterministically through chaos/faultpoint.hpp: the holder is *killed*
// (parked) at a named point inside its critical section, workers run
// FIXED operation counts (no timers), and the assertions are exact. One
// timed smoke is kept at the end so a wall-clock stall still gets
// end-to-end coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "flock/flock.hpp"

namespace {

namespace chaos = flock_chaos;
using namespace std::chrono_literals;

template <class F>
void spin_until(F&& pred) {
  while (!pred()) std::this_thread::yield();
}

class FailureInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos::reset();
    flock::set_blocking(false);
  }
  void TearDown() override {
    chaos::release_killed();
    spin_until([] { return chaos::parked() == 0; });
    chaos::reset();
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

// A victim grabs the lock and is killed inside the critical section body;
// workers then run a fixed number of operations on the same lock. In
// lock-free mode helpers finish the dead holder's section (the faultpoint
// is victim-only, so helper replays pass straight through) and keep
// going; in blocking mode nobody can help, so every try_lock fails
// cleanly — zero completions, deterministically.
long long ops_against_killed_holder(bool blocking, int ops_per_worker) {
  flock::set_blocking(blocking);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  chaos::arm_options o;
  o.victim_only = true;
  EXPECT_TRUE(chaos::arm("test.holder.body", chaos::fault::kill, o));

  std::thread holder([&] {
    chaos::victim_scope vs;
    flock::with_epoch([&] {
      return flock::try_lock(l, [x] {
        uint64_t v = x->load();
        FLOCK_FAULTPOINT("test.holder.body");
        x->store(v + 1);
        return true;
      });
    });
  });
  spin_until([] { return chaos::parked() == 1; });

  std::atomic<long long> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&] {
      for (int i = 0; i < ops_per_worker; i++) {
        bool ok = flock::with_epoch([&] {
          return flock::try_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
        if (ok) completed.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  long long done = completed.load();

  chaos::release_killed();
  holder.join();
  // Exactly-once accounting survives regardless of mode: the holder's
  // section applied once (helped in lock-free mode, resumed at release in
  // blocking mode) and its resumed replay added nothing.
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(done) + 1);
  flock::pool_delete(x);
  flock::set_blocking(false);
  chaos::reset();
  flock::epoch_manager::instance().flush();
  return done;
}

TEST_F(FailureInjection, LockFreeHelpersFinishKilledHoldersSection) {
  long long done = ops_against_killed_holder(false, 2000);
  // Helpers complete the dead holder's section, then their own ops.
  EXPECT_GT(done, 0);
}

TEST_F(FailureInjection, BlockingTryLockFailsCleanlyUnderKilledHolder) {
  // In blocking mode nobody can help: while the holder is dead, every
  // try_lock fails — deterministically zero completions (the old timed
  // version could only assert >= 0) — but nothing deadlocks and the
  // count stays exact.
  long long done = ops_against_killed_holder(true, 2000);
  EXPECT_EQ(done, 0);
}

TEST_F(FailureInjection, BlockingModeStarvesWhereLockFreeProgresses) {
  // The sharp mode contrast of the paper's Figure-1 scenario, now exact:
  // identical fixed workloads against a dead holder complete zero
  // operations in blocking mode and a positive number in lock-free mode.
  long long blocked = ops_against_killed_holder(true, 1000);
  long long helped = ops_against_killed_holder(false, 1000);
  EXPECT_EQ(blocked, 0) << "blocking mode: holder stalls all";
  EXPECT_GT(helped, 0) << "lock-free mode: helpers proceed";
}

TEST_F(FailureInjection, KilledHolderInNestedLocksIsHelpedThrough) {
  // A holder killed in the middle of a chain of nested locks: helpers
  // must complete the whole nest (Theorem 4.2 helping chain). The kill
  // lands inside the INNER critical section, so the victim dies holding
  // both locks.
  flock::lock outer, inner;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  chaos::arm_options o;
  o.victim_only = true;
  ASSERT_TRUE(chaos::arm("test.nest.body", chaos::fault::kill, o));

  std::thread holder([&] {
    chaos::victim_scope vs;
    flock::with_epoch([&] {
      return flock::try_lock(outer, [&, x] {
        return flock::try_lock(inner, [x] {
          uint64_t v = x->load();
          FLOCK_FAULTPOINT("test.nest.body");
          x->store(v + 1);
          return true;
        });
      });
    });
  });
  spin_until([] { return chaos::parked() == 1; });

  // Contend on BOTH locks; helping must resolve the nest exactly once.
  // All stores to x stay under `inner` (stores must not race, §3); the
  // outer contenders run empty critical sections.
  std::atomic<long long> inner_wins{0};
  std::atomic<long long> outer_wins{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 2000; i++) {
        if (t & 1) {
          if (flock::with_epoch([&] {
                return flock::try_lock(outer, [] { return true; });
              }))
            outer_wins.fetch_add(1);
        } else {
          if (flock::with_epoch([&] {
                return flock::try_lock(inner, [x] {
                  x->store(x->load() + 1);
                  return true;
                });
              }))
            inner_wins.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(outer_wins.load(), 0);
  EXPECT_GT(inner_wins.load(), 0);
  // The victim's increment was applied exactly once — by a helper, while
  // the victim was dead.
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(inner_wins.load()) + 1);

  chaos::release_killed();
  holder.join();
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(inner_wins.load()) + 1);
  flock::pool_delete(x);
}

// Kept as the one wall-clock smoke: a holder that stalls for real time
// (not a parked faultpoint) while the rest of the system churns — the
// original end-to-end scenario, with its original throughput assertion.
TEST_F(FailureInjection, TimedSmokeLockFreeProgressPastStalledHolder) {
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  std::atomic<bool> installed{false};
  std::atomic<bool> release{false};
  std::atomic<bool> stop{false};
  std::atomic<long long> completed{0};

  std::thread holder([&] {
    flock::with_epoch([&] {
      return flock::try_lock(l, [&, x] {
        uint64_t v = x->load();
        installed.store(true);
        // Stall: only the FIRST runner of this thunk blocks here; a
        // helper re-running it sees release==true by the time it helps
        // (we flip it below), so helping completes quickly.
        while (!release.load()) std::this_thread::yield();
        x->store(v + 1);
        return true;
      });
    });
  });
  while (!installed.load()) std::this_thread::yield();

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        bool ok = flock::with_epoch([&] {
          return flock::try_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
        if (ok) completed.fetch_add(1);
      }
    });
  }

  // The workers may help the holder's thunk; let them finish it.
  release.store(true);
  std::this_thread::sleep_for(200ms);
  stop.store(true);
  for (auto& w : workers) w.join();
  holder.join();

  long long done = completed.load();
  EXPECT_GT(done, 1000);
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(done) + 1);
  flock::pool_delete(x);
}

}  // namespace
