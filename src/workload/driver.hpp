// driver.hpp — the timed mixed-operation throughput driver reproducing
// the paper's §8 methodology: prefill the structure with half the keys in
// [1, r], then run T threads for a fixed wall-clock window, each drawing
// zipfian keys and performing `update%` updates (split evenly between
// inserts and deletes) and the rest lookups. Reports Mop/s.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "zipf.hpp"

namespace flock_workload {

struct run_config {
  int threads = 4;
  double update_percent = 50;    // fraction of ops that are updates
  double insert_fraction = 0.5;  // updates split: inserts vs deletes
  int millis = 200;              // timed window
  uint64_t seed = 12345;
};

struct run_result {
  double mops = 0;           // million operations per second
  uint64_t total_ops = 0;
  uint64_t finds = 0, inserts = 0, removes = 0;
  uint64_t successful_updates = 0;
  double seconds = 0;
};

/// Deterministic membership predicate for prefill_half: selects ~half the
/// keys, so verification code can recompute membership.
///
/// The selection hash is re-seeded (hashed twice with a salt), NOT
/// `splitmix64(k) & 1`: the hashtable's bucket index is
/// `splitmix64(k) & mask`, whose low bit is the same bit — selecting on it
/// put every prefilled key in an odd-indexed bucket, leaving half the
/// table empty and doubling measured chain lengths. Any structure that
/// hashes its keys with the same function would alias the same way, so
/// the selection must come from an independent hash.
inline bool prefill_selects(uint64_t k) {
  return (splitmix64(splitmix64(k) ^ 0x5851f42d4c957f2dULL) & 1) != 0;
}

/// Prefill with ~half the keys of [1, range] using all hardware threads
/// (the half is the deterministic subset prefill_selects(k)).
template <class Set>
void prefill_half(Set& set, uint64_t range, int threads = 0) {
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      for (uint64_t k = 1 + static_cast<uint64_t>(t); k <= range;
           k += static_cast<uint64_t>(threads)) {
        if (prefill_selects(k)) set.insert(k, k);
      }
    });
  }
  for (auto& th : ts) th.join();
}

/// Shared frame for the deterministic full-keyspace passes below: apply
/// `op(k)` to every key of [1, range], striped across `threads` threads,
/// timing the whole pass and counting applications that returned true.
template <class Op>
run_result run_keyed_pass(uint64_t range, int threads, Op&& op) {
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  std::atomic<uint64_t> applied{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      uint64_t mine = 0;
      for (uint64_t k = 1 + static_cast<uint64_t>(t); k <= range;
           k += static_cast<uint64_t>(threads))
        if (op(k)) mine++;
      applied.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  run_result res;
  res.seconds = secs;
  res.total_ops = range;
  res.successful_updates = applied.load();
  res.mops = static_cast<double>(range) / secs / 1e6;
  return res;
}

/// Growth-phase workload: insert every key of [1, range] from `threads`
/// threads into a (typically much smaller-hinted) structure and time it —
/// the insert-heavy ramp a freshly deployed serving instance sees. Returns
/// the usual run_result (ops = range, all inserts).
template <class Set>
run_result run_growth(Set& set, uint64_t range, int threads = 0) {
  run_result res = run_keyed_pass(
      range, threads, [&](uint64_t k) { return set.insert(k, k); });
  res.inserts = range;
  return res;
}

/// Drain-phase workload: remove every key of [1, range] from `threads`
/// threads — the delete-heavy decommission a store sees after a tenant
/// departs, and the deterministic way to push occupancy below the shrink
/// threshold. successful_updates counts removals that found their key.
template <class Set>
run_result run_drain(Set& set, uint64_t range, int threads = 0) {
  run_result res = run_keyed_pass(range, threads,
                                  [&](uint64_t k) { return set.remove(k); });
  res.removes = range;
  return res;
}

/// Run the §8 mixed workload against any set adapter.
template <class Set>
run_result run_mixed(Set& set, const zipf_distribution& dist,
                     const run_config& cfg) {
  struct alignas(64) counters {
    uint64_t ops = 0, finds = 0, ins = 0, rem = 0, upd_ok = 0;
  };
  std::vector<counters> per_thread(static_cast<size_t>(cfg.threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  auto worker = [&](int tid) {
    rng64 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(tid) + 1);
    counters& c = per_thread[static_cast<size_t>(tid)];
    const uint64_t upd_threshold =
        static_cast<uint64_t>(cfg.update_percent * 0.01 * 4294967296.0);
    // Insert-vs-delete decided on bits [32,62] of the same draw — disjoint
    // from the update decision's low 32 bits, so the two stay independent.
    const uint64_t ins_threshold =
        static_cast<uint64_t>(cfg.insert_fraction * 2147483648.0);
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; i++) {
        uint64_t k = dist.sample(rng);
        uint64_t r = rng.next();
        if ((r & 0xFFFFFFFFu) < upd_threshold) {
          if (((r >> 32) & 0x7FFFFFFFu) < ins_threshold) {
            c.ins++;
            if (set.insert(k, k)) c.upd_ok++;
          } else {
            c.rem++;
            if (set.remove(k)) c.upd_ok++;
          }
        } else {
          c.finds++;
          set.find(k);
        }
        c.ops++;
      }
    }
  };

  std::vector<std::thread> ts;
  for (int t = 0; t < cfg.threads; t++) ts.emplace_back(worker, t);
  while (ready.load() < cfg.threads) {
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.millis));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : ts) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  run_result res;
  res.seconds = secs;
  for (auto& c : per_thread) {
    res.total_ops += c.ops;
    res.finds += c.finds;
    res.inserts += c.ins;
    res.removes += c.rem;
    res.successful_updates += c.upd_ok;
  }
  res.mops = static_cast<double>(res.total_ops) / secs / 1e6;
  return res;
}

/// Churn lifecycle: the three consecutive traffic shapes a long-lived
/// serving store cycles through — an insert-heavy ramp (deploy /
/// backfill), a delete-heavy drain (tenant departure / TTL sweep), then
/// steady mixed traffic. Each phase is a run_mixed window over the same
/// keyspace; the drain phase is what exercises table SHRINK: resident
/// keys decay toward the insert/delete equilibrium, and once occupancy
/// falls under 1/4 of the bucket count the store starts installing
/// half-size successors under the very same YCSB-like traffic.
struct churn_config {
  int threads = 4;
  uint64_t seed = 12345;
  int ramp_millis = 200, drain_millis = 200, steady_millis = 200;
  double ramp_update = 90, ramp_insert_fraction = 0.95;
  double drain_update = 90, drain_insert_fraction = 0.05;
  double steady_update = 50, steady_insert_fraction = 0.5;
};

struct churn_result {
  run_result ramp, drain, steady;
};

/// `on_phase(name, result)` fires between phases, while the structure
/// still holds that phase's end state — the only moment a caller can
/// observe the ramp's bucket peak or the drain's trough before the next
/// phase moves the population again.
template <class Set, class OnPhase>
churn_result run_churn(Set& set, const zipf_distribution& dist,
                       const churn_config& cfg, OnPhase&& on_phase) {
  auto phase = [&](double upd, double insf, int ms, uint64_t salt) {
    run_config rc;
    rc.threads = cfg.threads;
    rc.update_percent = upd;
    rc.insert_fraction = insf;
    rc.millis = ms;
    rc.seed = cfg.seed ^ salt;
    return run_mixed(set, dist, rc);
  };
  churn_result r;
  r.ramp = phase(cfg.ramp_update, cfg.ramp_insert_fraction, cfg.ramp_millis,
                 0x9E3779B9ULL);
  on_phase("ramp", r.ramp);
  r.drain = phase(cfg.drain_update, cfg.drain_insert_fraction,
                  cfg.drain_millis, 0x7F4A7C15ULL);
  on_phase("drain", r.drain);
  r.steady = phase(cfg.steady_update, cfg.steady_insert_fraction,
                   cfg.steady_millis, 0x85EBCA6BULL);
  on_phase("steady", r.steady);
  return r;
}

template <class Set>
churn_result run_churn(Set& set, const zipf_distribution& dist,
                       const churn_config& cfg) {
  return run_churn(set, dist, cfg, [](const char*, const run_result&) {});
}

}  // namespace flock_workload
