// move.hpp — atomic movement of an element between two structures, the
// paper's introductory motivation: "If one needs to atomically move data
// among structures, lock-free algorithms become particularly tricky."
// With lock-free locks it is three nested try_locks.
//
// Lock order (Theorem 4.2's acyclic partial order): the two lists are
// ordered by object address; within a list, list-position order
// (predecessor before node). Every thunk captures by value.
#pragma once

#include <type_traits>

#include "flock/flock.hpp"
#include "hashtable.hpp"  // hashtable try_move overload (defined there)
#include "lazylist.hpp"

namespace flock_ds {

/// Atomically move key `k` (and its value) from `from` to `to`. Atomic
/// with respect to all other *updaters*: both splices happen inside one
/// validated critical-section nest, so no insert/remove/move can
/// interleave between them — the key is never lost or duplicated.
/// (Lock-free readers, which take no locks by design, may still observe
/// the in-flight instant where the key is visible in both lists.)
/// Returns false — changing nothing — if k is absent in `from`, already
/// present in `to`, or any lock/validation fails transiently (callers
/// retry like any try-lock operation; `move_retry` below loops until a
/// definite answer).
template <class K, class V, bool Strict>
bool try_move(lazylist<K, V, Strict>& from, lazylist<K, V, Strict>& to,
              std::type_identity_t<K> k) {
  using list = lazylist<K, V, Strict>;
  using node = typename list::node_t;
  if (&from == &to) return false;
  return flock::with_epoch([&] {
    auto [fprev, fcur] = from.search_for(k);
    if (fcur == nullptr || fcur->k != k) return false;  // not in source
    auto [tprev, tcur] = to.search_for(k);
    // Mid-remove keys (flag set, unlink pending) count as absent, like
    // find(); the validation in the critical section forces a retry.
    if (tcur != nullptr && tcur->k == k && !tcur->removed.load())
      return false;  // already in dest
    // Innermost critical section: validates both neighborhoods and does
    // both splices. Runs under fprev -> fcur -> tprev (or tprev first if
    // `to` orders before `from`).
    auto splice = [=, &to]() {
      node* fp = fprev;
      node* fc = fcur;
      node* tp = tprev;
      node* tc = tcur;
      if (fp->removed.load() || fc->removed.load()) return false;
      if (fp->next.load() != fc) return false;
      if (tp->removed.load()) return false;
      if (tp->next.load() != tc) return false;
      (void)to;
      // Insert a fresh node in `to` carrying the value...
      node* moved = flock::allocate<node>(fc->k, fc->v, tc);
      tp->next = moved;
      // ...and splice the original out of `from`.
      fc->removed = true;
      fp->next = fc->next.load();
      flock::retire<node>(fc);
      return true;
    };
    auto lock_source_then = [=](auto inner) {
      return list::acquire_lock(fprev->lck, [=] {
        return list::acquire_lock(fcur->lck, [=] { return inner(); });
      });
    };
    if (reinterpret_cast<uintptr_t>(&from) <
        reinterpret_cast<uintptr_t>(&to)) {
      return lock_source_then([=] {
        return list::acquire_lock(tprev->lck, [=] { return splice(); });
      });
    }
    return list::acquire_lock(tprev->lck,
                              [=] { return lock_source_then(splice); });
  });
}

/// Why move_retry's answer is three-valued: a failed attempt budget is
/// NOT the same fact as "the key cannot move". Rebalance loops built on
/// top (e.g. store-tier resharding in store/sharded_map.hpp) must treat
/// the two differently — `not_movable` means the key is done forever
/// (gone from the source or already at the destination: skip it and move
/// on), while `exhausted` means every attempt failed transiently under
/// contention (the key is still pending: come back to it, widen the
/// budget, or surface backpressure). Collapsing both to `false` made
/// callers silently drop contended keys from rebalance passes.
enum class move_outcome {
  moved,        // the key changed containers exactly once
  not_movable,  // validated: absent in source, or present in destination
  exhausted     // attempt budget ran out; every failure was transient
};

/// Loop try_move until it either moves the key, definitively cannot
/// (absent in source / present in destination under a validated check),
/// or exhausts `max_attempts` without a definite answer. Works for any
/// pair of same-type containers with a try_move overload (lazylist above,
/// hashtable in ds/hashtable.hpp, sharded_map in store/) via ADL.
template <class C, class Key>
move_outcome move_retry_ex(C& from, C& to, Key k, int max_attempts = 1 << 20) {
  for (int i = 0; i < max_attempts; i++) {
    if (try_move(from, to, k)) return move_outcome::moved;
    // Definitive misses: re-check quiescently-enough via plain finds.
    if (!from.find(k).has_value()) return move_outcome::not_movable;
    if (to.find(k).has_value()) return move_outcome::not_movable;
  }
  return move_outcome::exhausted;
}

/// Boolean convenience wrapper (true iff the key moved). Callers that
/// need to distinguish "cannot move" from "ran out of attempts" use
/// move_retry_ex above.
template <class C, class Key>
bool move_retry(C& from, C& to, Key k, int max_attempts = 1 << 20) {
  return move_retry_ex(from, to, k, max_attempts) == move_outcome::moved;
}

}  // namespace flock_ds
