// Cross-cutting concurrent battery over every Flock structure in both
// lock modes, plus mode-equivalence checks (blocking and lock-free runs
// of the same op sequence must produce identical sets).
#include <map>

#include "set_test_util.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

template <class T>
class AllSetsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

using all_types =
    ::testing::Types<flock_workload::lazylist_try, flock_workload::dlist_try,
                     flock_workload::hashtable_try,
                     flock_workload::leaftree_try,
                     flock_workload::leaftreap_try, flock_workload::abtree_try,
                     flock_workload::arttree_try>;

TYPED_TEST_SUITE(AllSetsTest, all_types);

TYPED_TEST(AllSetsTest, MixedWorkloadDriverLockFree) {
  flock::set_blocking(false);
  TypeParam s;
  flock_workload::zipf_distribution dist(1000, 0.75);
  flock_workload::prefill_half(s, 1000, 4);
  flock_workload::run_config cfg;
  cfg.threads = 8;
  cfg.update_percent = 50;
  cfg.millis = 100;
  auto res = flock_workload::run_mixed(s, dist, cfg);
  EXPECT_GT(res.total_ops, 0u);
  EXPECT_TRUE(s.check_invariants());
}

TYPED_TEST(AllSetsTest, MixedWorkloadDriverBlocking) {
  flock::set_blocking(true);
  TypeParam s;
  flock_workload::zipf_distribution dist(1000, 0.75);
  flock_workload::prefill_half(s, 1000, 4);
  flock_workload::run_config cfg;
  cfg.threads = 8;
  cfg.update_percent = 50;
  cfg.millis = 100;
  auto res = flock_workload::run_mixed(s, dist, cfg);
  EXPECT_GT(res.total_ops, 0u);
  EXPECT_TRUE(s.check_invariants());
}

TYPED_TEST(AllSetsTest, ModeEquivalenceSequential) {
  // The same deterministic op sequence in blocking and lock-free modes
  // must externalize identical results and final contents.
  std::mt19937_64 rng(77);
  std::vector<std::tuple<int, uint64_t>> script;
  for (int i = 0; i < 5000; i++)
    script.emplace_back(static_cast<int>(rng() % 3), rng() % 300 + 1);

  std::map<uint64_t, uint64_t> contents[2];
  for (int mode = 0; mode < 2; mode++) {
    flock::set_blocking(mode == 1);
    TypeParam s;
    for (auto [op, k] : script) {
      if (op == 0)
        s.insert(k, k);
      else if (op == 1)
        s.remove(k);
      else
        s.find(k);
    }
    for (uint64_t k = 1; k <= 300; k++) {
      auto v = s.find(k);
      if (v.has_value()) contents[mode][k] = *v;
    }
  }
  EXPECT_EQ(contents[0], contents[1]);
}

TYPED_TEST(AllSetsTest, OversubscribedLockFreeHeavy) {
  flock::set_blocking(false);
  TypeParam s;
  int threads = 3 * static_cast<int>(std::thread::hardware_concurrency());
  set_test::concurrent_stress(s, threads, 128, 1000, 80);
}

TYPED_TEST(AllSetsTest, MemoryStableAcrossChurn) {
  // Run heavy churn twice; pending retirements must not grow unboundedly.
  flock::set_blocking(false);
  {
    TypeParam s;
    set_test::high_contention(s, 8, 10000);
  }
  flock::epoch_manager::instance().flush();
  long long pending = flock::epoch_manager::instance().pending();
  EXPECT_LT(pending, 100000);
}

}  // namespace
