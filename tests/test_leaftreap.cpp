// leaftreap (fat-leaf external tree): oracle, stress, batch-specific.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class LeaftreapTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(LeaftreapTest, Battery) {
  set_test::battery<flock_workload::leaftreap_try>();
}

TEST_P(LeaftreapTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::leaftreap_try>();
}

TEST_P(LeaftreapTest, BatchSplitsAndDrains) {
  flock_workload::leaftreap_try s;
  // Fill well past one batch: forces splits; invariants check batch
  // occupancy [1, B] and sortedness.
  for (uint64_t k = 1; k <= 1000; k++) EXPECT_TRUE(s.insert(k, k + 7));
  EXPECT_TRUE(s.check_invariants());
  EXPECT_EQ(s.size(), 1000u);
  for (uint64_t k = 1; k <= 1000; k++) EXPECT_EQ(*s.find(k), k + 7);
  // Drain: exercises batch shrink and single-pair splice.
  for (uint64_t k = 1; k <= 1000; k++) EXPECT_TRUE(s.remove(k));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST_P(LeaftreapTest, SmallBatchTemplateParam) {
  // B = 2: every other insert splits; stresses structural paths.
  using treap2 = flock_ds::leaftreap<uint64_t, uint64_t, false, 2>;
  flock_workload::set_adapter<treap2> s;
  set_test::sequential_oracle(s, 512, 8000, 11);
}

TEST_P(LeaftreapTest, StrictVariantStress) {
  using treap_strict = flock_ds::leaftreap<uint64_t, uint64_t, true>;
  flock_workload::set_adapter<treap_strict> s;
  set_test::concurrent_stress(s, 8, 256, 5000, 60);
}

TEST_P(LeaftreapTest, HotBatchContention) {
  // All threads hammer keys that live in the same few batches.
  flock_workload::leaftreap_try s;
  set_test::high_contention(s, 8, 5000, 12);
}

INSTANTIATE_TEST_SUITE_P(Modes, LeaftreapTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
