# Empty compiler generated dependencies file for fig6_sets.
# This may be replaced when dependencies are built.
