// Store tier (store/sharded_map.hpp): routing correctness across shard
// counts, per-shard independent resize lifecycles (grow AND shrink),
// cross-shard atomic movement, and the online-resharding rebalance hook —
// in both lock modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "store/sharded_map.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

using map_try = flock_store::sharded_map<uint64_t, uint64_t, false>;
using map_strict = flock_store::sharded_map<uint64_t, uint64_t, true>;

class ShardedMapTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(ShardedMapTest, BasicApiAcrossShardCounts) {
  for (std::size_t shards : {1u, 4u, 8u}) {
    map_try m(shards);
    EXPECT_EQ(m.shard_count(), shards);
    const uint64_t n = 4000;
    for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(m.insert(k, k * 3));
    for (uint64_t k = 1; k <= n; k++) EXPECT_FALSE(m.insert(k, 0));
    EXPECT_EQ(m.size(), n);
    EXPECT_EQ(m.approx_size(), n);
    for (uint64_t k = 1; k <= n; k++) {
      auto v = m.find(k);
      ASSERT_TRUE(v.has_value()) << "shards=" << shards << " key " << k;
      ASSERT_EQ(*v, k * 3);
    }
    EXPECT_FALSE(m.find(n + 1).has_value());
    for (uint64_t k = 1; k <= n; k += 2) ASSERT_TRUE(m.remove(k));
    EXPECT_FALSE(m.remove(n + 1));
    EXPECT_EQ(m.size(), n / 2);
    EXPECT_EQ(m.approx_size(), n / 2);
    EXPECT_TRUE(m.check_invariants());
    std::size_t seen = 0;
    m.for_each([&](uint64_t k, uint64_t v) {
      EXPECT_EQ(v, k * 3);
      seen++;
    });
    EXPECT_EQ(seen, n / 2);
  }
}

TEST_P(ShardedMapTest, RoutingSpreadsKeysAndShardsResizeIndependently) {
  map_try m(8);
  const uint64_t n = 1 << 15;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(m.insert(k, k));
  // Top-bit routing: every shard takes a fair cut (within 2x of fair
  // share on 32K keys), and each shard's table grew on its own.
  std::size_t total = 0;
  for (std::size_t i = 0; i < m.shard_count(); i++) {
    std::size_t sz = m.shard(i).size();
    EXPECT_GT(sz, n / 16u) << "shard " << i << " starved";
    EXPECT_LT(sz, n / 4u) << "shard " << i << " overloaded";
    EXPECT_GT(m.shard(i).bucket_count(), 64u)
        << "shard " << i << " never grew";
    total += sz;
  }
  EXPECT_EQ(total, n);
  EXPECT_TRUE(m.check_invariants());
}

TEST_P(ShardedMapTest, ConcurrentGrowthStress) {
  map_try m(8);
  const uint64_t range = 1 << 17;
  auto res = flock_workload::run_growth(m, range, 8);
  EXPECT_EQ(res.successful_updates, range);
  EXPECT_EQ(m.size(), range);
  EXPECT_TRUE(m.check_invariants());
}

TEST_P(ShardedMapTest, ChurnShrinksEveryShard) {
  map_try m(4);
  const uint64_t range = 1 << 15;
  auto g = flock_workload::run_growth(m, range, 4);
  ASSERT_EQ(g.successful_updates, range);
  const std::size_t peak = m.bucket_count();
  ASSERT_GE(peak, static_cast<std::size_t>(range / 2));

  auto d = flock_workload::run_drain(m, range, 4);
  EXPECT_EQ(d.successful_updates, range);
  // Steady trickle so each shard's policy ticks and migrations get help.
  for (std::size_t i = 0; i < (1u << 19); i++) {
    uint64_t k = (1u << 30) + (i & 1023);
    m.insert(k, 1);
    m.remove(k);
    if ((i & 4095) == 0 && m.bucket_count() <= 4 * 64) break;
  }
  EXPECT_LE(m.bucket_count(), peak / 4) << "store failed to shrink";
  EXPECT_GE(m.shrink_count(), 4u) << "some shard never shrank";
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.size(), 0u);
}

TEST_P(ShardedMapTest, CrossShardMoveBasicSemantics) {
  map_try a(4), b(8);  // different layouts: the resharding pairing
  a.insert(1, 10);
  a.insert(2, 20);
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, uint64_t{1}),
            flock_ds::move_outcome::moved);
  EXPECT_FALSE(a.find(1).has_value());
  EXPECT_EQ(*b.find(1), 10u);  // value travels
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, uint64_t{1}),
            flock_ds::move_outcome::not_movable);  // no longer in source
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, uint64_t{9}),
            flock_ds::move_outcome::not_movable);  // never existed
  b.insert(2, 99);
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, uint64_t{2}),
            flock_ds::move_outcome::not_movable);  // already in dest
  EXPECT_EQ(*a.find(2), 20u);                      // source untouched
  // Zero attempt budget: no definite answer is derivable, and that is a
  // different fact than "cannot move" — the tri-state keeps them apart.
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, uint64_t{2}, 0),
            flock_ds::move_outcome::exhausted);
  EXPECT_FALSE(flock_store::try_move(a, a, uint64_t{2}));  // self-move
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
}

TEST_P(ShardedMapTest, RebalanceReshardsEverythingQuiescent) {
  map_try src(1), dst(8);
  const uint64_t n = 5000;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(src.insert(k, k * 13));

  std::size_t moved_total = 0;
  for (int pass = 0; pass < 64; pass++) {
    auto rep = src.rebalance_into(dst, 1024);
    moved_total += rep.moved;
    EXPECT_EQ(rep.exhausted, 0u) << "quiescent moves cannot exhaust";
    if (rep.moved == 0 && rep.exhausted == 0 && !rep.budget_spent) break;
  }
  EXPECT_EQ(moved_total, n);
  EXPECT_EQ(src.size(), 0u);
  EXPECT_EQ(dst.size(), n);
  for (uint64_t k = 1; k <= n; k++) {
    auto v = dst.find(k);
    ASSERT_TRUE(v.has_value()) << "key " << k << " lost in resharding";
    ASSERT_EQ(*v, k * 13);
  }
  EXPECT_TRUE(src.check_invariants());
  EXPECT_TRUE(dst.check_invariants());
}

TEST_P(ShardedMapTest, ReshardingUnderConcurrentTraffic) {
  // Writers keep pumping fresh keys into the source store while a
  // rebalancer migrates it onto a wider layout; once the writers stop,
  // the rebalancer drains the remainder. Nothing may be lost or
  // duplicated, against concurrent updaters on both stores.
  map_try src(2), dst(8);
  constexpr int kWriters = 2;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> ts;
  for (int w = 0; w < kWriters; w++) {
    ts.emplace_back([&, w] {
      for (uint64_t i = 1; i <= kPerWriter; i++)
        ASSERT_TRUE(src.insert(static_cast<uint64_t>(w) * kPerWriter + i,
                               i * 3));
    });
  }
  std::atomic<std::size_t> moved{0};
  ts.emplace_back([&] {
    while (true) {
      auto rep = src.rebalance_into(dst, 2048);
      moved.fetch_add(rep.moved);
      if (writers_done.load(std::memory_order_acquire) && rep.moved == 0 &&
          rep.exhausted == 0 && !rep.budget_spent)
        return;
    }
  });
  for (int w = 0; w < kWriters; w++) ts[static_cast<size_t>(w)].join();
  writers_done.store(true, std::memory_order_release);
  ts.back().join();

  EXPECT_EQ(moved.load(), kWriters * kPerWriter);
  EXPECT_EQ(src.size(), 0u);
  EXPECT_EQ(dst.size(), kWriters * kPerWriter);
  for (uint64_t w = 0; w < kWriters; w++) {
    for (uint64_t i = 1; i <= kPerWriter; i += 53) {
      auto v = dst.find(w * kPerWriter + i);
      ASSERT_TRUE(v.has_value()) << "key " << w * kPerWriter + i;
      ASSERT_EQ(*v, i * 3);
    }
  }
  EXPECT_TRUE(src.check_invariants());
  EXPECT_TRUE(dst.check_invariants());
}

TEST_P(ShardedMapTest, StrictVariantBasicAndChurn) {
  map_strict m(4);
  const uint64_t n = 1 << 13;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(m.insert(k, k));
  const std::size_t peak = m.bucket_count();
  EXPECT_EQ(m.size(), n);
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(m.remove(k));
  for (std::size_t i = 0; i < (1u << 18); i++) {
    uint64_t k = (1u << 30) + (i & 255);
    m.insert(k, 1);
    m.remove(k);
    if ((i & 4095) == 0 && m.bucket_count() <= 4 * 64) break;
  }
  EXPECT_LE(m.bucket_count(), peak / 4);
  EXPECT_TRUE(m.check_invariants());
}

TEST_P(ShardedMapTest, MixedWorkloadThroughTheAdapter) {
  flock_workload::sharded_try s(std::size_t{8});
  flock_workload::prefill_half(s, 20000, 4);
  flock_workload::zipf_distribution dist(20000, 0.9);
  flock_workload::run_config cfg;
  cfg.threads = 4;
  cfg.update_percent = 30;
  cfg.millis = 100;
  auto res = flock_workload::run_mixed(s, dist, cfg);
  EXPECT_GT(res.total_ops, 0u);
  EXPECT_EQ(res.total_ops, res.finds + res.inserts + res.removes);
  EXPECT_TRUE(s.check_invariants());
  // Quiescent agreement between the O(#shards) estimate and the scan.
  EXPECT_EQ(s.approx_size(), s.size());
}

// --- the memoized-read cache (store/read_cache.hpp) -------------------------

// Deterministic counter accounting on a fresh thread (thread-local cache,
// so a new std::thread starts with exact-zero deltas). Covers the fill ->
// hit -> invalidate lifecycle through the public find path, both
// invalidation reasons, and cross-store isolation.
TEST_P(ShardedMapTest, MemoCacheFillsHitsAndInvalidates) {
  std::thread([] {
    using cache_t = flock_store::read_cache<uint64_t, uint64_t>;
    auto& cache = flock_store::tls_read_cache<uint64_t, uint64_t>();
    map_try m(1);
    ASSERT_TRUE(m.insert(7, 70));

    cache_t::stats s0 = cache.counters();
    EXPECT_EQ(m.find(7), std::optional<uint64_t>(70));  // miss, then fill
    cache_t::stats s1 = cache.counters();
    EXPECT_EQ(s1.fills, s0.fills + 1);
    EXPECT_EQ(s1.hits, s0.hits);

    // No writes in between, announcement sticky: a pure cache hit.
    EXPECT_EQ(m.find(7), std::optional<uint64_t>(70));
    cache_t::stats s2 = cache.counters();
    EXPECT_EQ(s2.hits, s1.hits + 1);
    EXPECT_EQ(s2.fills, s1.fills);

    // A writer on ANOTHER thread bumps the bucket version but leaves this
    // thread's announcement (and so its read generation) untouched: the
    // next lookup must fail the single-load version validation, fall back,
    // and recapture the new value.
    std::thread([&m] {
      ASSERT_TRUE(m.remove(7));
      ASSERT_TRUE(m.insert(7, 71));
    }).join();
    EXPECT_EQ(m.find(7), std::optional<uint64_t>(71));
    cache_t::stats s3 = cache.counters();
    EXPECT_EQ(s3.invalidated, s2.invalidated + 1);
    EXPECT_EQ(s3.fills, s2.fills + 1);

    // An own-thread write clears the epoch announcement at with_epoch
    // exit, so the next read batch re-announces and ticks the read
    // generation: entries drop by generation (never dereferencing the
    // version pointer), then refill.
    ASSERT_TRUE(m.remove(7));
    ASSERT_TRUE(m.insert(7, 72));
    EXPECT_EQ(m.find(7), std::optional<uint64_t>(72));
    cache_t::stats s4 = cache.counters();
    EXPECT_EQ(s4.invalidated, s3.invalidated + 1);
    EXPECT_EQ(s4.fills, s3.fills + 1);

    // Cross-store isolation: a second store's same-key entries live under
    // a different (process-unique) owner id, so neither store's reads can
    // be served from the other's captures.
    map_try m2(1);
    ASSERT_TRUE(m2.insert(7, 99));
    EXPECT_EQ(m2.find(7), std::optional<uint64_t>(99));
    EXPECT_EQ(m.find(7), std::optional<uint64_t>(72));
    EXPECT_EQ(m2.find(7), std::optional<uint64_t>(99));
  }).join();
}

INSTANTIATE_TEST_SUITE_P(Modes, ShardedMapTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
