// quickstart — the paper's Algorithm 1 in action: a sorted doubly-linked
// list built from fine-grained optimistic try-locks, run first with
// traditional blocking locks and then lock-free, with no code changes.
//
//   $ ./quickstart
//
// What to look at: the same data-structure code runs in both modes; the
// mode is a runtime flag (flock::set_blocking).
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/dlist.hpp"
#include "flock/flock.hpp"

int main() {
  std::printf("Flock quickstart: dlist (paper Algorithm 1)\n");

  for (bool blocking : {true, false}) {
    flock::set_blocking(blocking);
    flock_ds::dlist<long, long> list;

    // A few single-threaded basics.
    list.insert(3, 30);
    list.insert(1, 10);
    list.insert(2, 20);
    list.remove(2);
    std::printf("[%s] find(1)=%ld find(2)=%s size=%zu\n",
                blocking ? "blocking " : "lock-free",
                *list.find(1), list.find(2) ? "hit" : "miss", list.size());

    // Concurrent phase: 8 threads insert and remove disjoint key blocks.
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; t++) {
      ts.emplace_back([&list, t] {
        long base = 100 * (t + 1);
        for (long k = 0; k < 100; k++) list.insert(base + k, k);
        for (long k = 0; k < 100; k += 2) list.remove(base + k);
      });
    }
    for (auto& t : ts) t.join();
    std::printf("[%s] after concurrent phase: size=%zu invariants=%s\n",
                blocking ? "blocking " : "lock-free", list.size(),
                list.check_invariants() ? "ok" : "BROKEN");
  }
  flock::epoch_manager::instance().flush();
  return 0;
}
