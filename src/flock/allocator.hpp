// allocator.hpp — per-thread slab pools for fixed-type objects.
//
// Stands in for ParlayLib's scalable allocator used by the paper (§8
// "We used ParlayLib for scalable memory allocation"). Each (type, thread)
// pair owns a free list fed by slab allocations; frees push back onto the
// *freeing* thread's list. Cross-thread frees are expected (helpers retire
// other threads' nodes), so lists are per-thread and never shared.
//
// Hot-path design: the pool state is a zero-initialized static array
// (no function-local-static guard on access), indexed by the caller's
// thread context. Slab refill is per-thread — each thread chains the
// slabs it allocated onto its own slot, so refill takes no global lock.
//
// The pool also supports the paper's "shuffle" trick (§8): pre-allocating
// a large batch and freeing it in random order to decorrelate placement.
//
// Failure contract (unified for pool_new / pool_new_ctx / array_new): an
// allocation that cannot be satisfied — the backing `operator new`
// returning null, or an injected `alloc.refill` / `alloc.array` fault
// (chaos/faultpoint.hpp) — returns **nullptr** and bumps the process-wide
// `alloc_failures()` counter. No constructor runs, no pool bookkeeping
// moves, and nothing is ever dereferenced on the failure path; callers
// that cannot tolerate null (most of the runtime: descriptors, nodes)
// inherit whatever their context does with null, while callers with a
// degraded mode (the hashtable's resize trigger) check and defer. Before
// this contract, a null slab return was silent UB (the placement new ran
// on nullptr).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <random>
#include <utility>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "config.hpp"
#include "thread_context.hpp"
#include "threading.hpp"

namespace flock {
namespace detail {

// Allocation failures observed (null slab/array returns, injected or
// real). Monotonic, like the per-thread stat counters.
inline std::atomic<uint64_t> g_alloc_failures{0};

/// Untyped per-thread free-list pool for blocks of a fixed size/alignment.
/// All state is static and zero-initialized, so access needs no singleton
/// guard; functions take the caller's thread context explicitly.
template <std::size_t Size, std::size_t Align>
class raw_pool {
  struct free_node {
    free_node* next;
  };
  struct slab_link {
    slab_link* next;
  };
  static constexpr std::size_t kSlot =
      Size < sizeof(free_node) ? sizeof(free_node) : Size;
  // Object sizes are multiples of their alignment, so a header of one
  // Align-rounded pointer keeps every object correctly aligned.
  static constexpr std::size_t kHeader =
      (sizeof(slab_link) + Align - 1) / Align * Align;
  static constexpr std::size_t kSlabObjects = 256;

  struct alignas(kCacheLine) per_thread {
    free_node* head;
    long long outstanding;  // live objects allocated - freed (stats)
    slab_link* slabs;       // slabs this thread allocated (owner-only)
  };

 public:
  /// Returns nullptr on slab-refill failure (see the failure contract in
  /// the header comment); the pool state is untouched in that case.
  static void* allocate(thread_context* c) {
    per_thread& t = slots_[c->id];
    free_node* n = t.head;
    if (n == nullptr) [[unlikely]] {
      n = refill(t);
      if (n == nullptr) [[unlikely]] {
        // mo: relaxed — monotonic stats counter; readers (stats line,
        // tests at quiescence) need a count, not an ordering edge.
        g_alloc_failures.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    }
    t.head = n->next;
    ++t.outstanding;
    return n;
  }

  static void deallocate(thread_context* c, void* p) {
    per_thread& t = slots_[c->id];
    auto* n = static_cast<free_node*>(p);
    n->next = t.head;
    t.head = n;
    --t.outstanding;
  }

  /// Net live objects across all threads (approximate under concurrency;
  /// exact at quiescence). Used by leak-accounting tests.
  static long long outstanding() {
    long long sum = 0;
    const int bound = thread_id_bound();
    for (int i = 0; i < bound; i++) sum += slots_[i].outstanding;
    return sum;
  }

  /// Paper §8: allocate a large batch and free it in random order so run-to-
  /// run placement is decorrelated.
  static void shuffle(std::size_t count) {
    thread_context* c = my_ctx();
    std::vector<void*> v;
    v.reserve(count);
    for (std::size_t i = 0; i < count; i++) v.push_back(allocate(c));
    std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
    std::shuffle(v.begin(), v.end(), rng);
    for (void* p : v) deallocate(c, p);
  }

 private:
  /// Returns nullptr when the slab allocation fails (injected fault or a
  /// real OOM from the nothrow operator new); the free list and slab
  /// chain are untouched in that case.
  [[gnu::noinline]] static free_node* refill(per_thread& t) {
    // One alloc-site faultpoint: stall/kill entries armed here fire too.
    if (FLOCK_FAULTPOINT_ALLOC_FAIL("alloc.refill")) [[unlikely]]
      return nullptr;
    void* mem = ::operator new(kHeader + kSlot * kSlabObjects,
                               std::align_val_t{Align}, std::nothrow);
    if (mem == nullptr) [[unlikely]]
      return nullptr;
    auto* link = static_cast<slab_link*>(mem);
    link->next = t.slabs;
    t.slabs = link;
    char* base = static_cast<char*>(mem) + kHeader;
    for (std::size_t i = 0; i < kSlabObjects; i++) {
      auto* n = reinterpret_cast<free_node*>(base + i * kSlot);
      n->next = t.head;
      t.head = n;
    }
    free_node* n = t.head;
    return n;
  }

  // Slabs are returned to the OS only at process exit (as before); the
  // reaper walks every thread's chain. Its destructor must not run while
  // library threads are still allocating — same static-destruction caveat
  // the mutex-guarded slab list had.
  struct reaper {
    ~reaper() {
      for (int i = 0; i < kMaxThreads; i++) {
        slab_link* s = slots_[i].slabs;
        slots_[i] = per_thread{};
        while (s != nullptr) {
          slab_link* nxt = s->next;
          ::operator delete(static_cast<void*>(s), std::align_val_t{Align});
          s = nxt;
        }
      }
    }
  };

  inline static per_thread slots_[kMaxThreads] = {};
  inline static reaper reaper_{};
};

template <class T>
using pool_for = raw_pool<sizeof(T), alignof(T) < 8 ? 8 : alignof(T)>;

/// Context-threaded allocation for hot paths that already hold a context.
/// Propagates the pool's null on failure (no constructor runs).
template <class T, class... Args>
T* pool_new_ctx(thread_context* c, Args&&... args) {
  void* mem = pool_for<T>::allocate(c);
  if (mem == nullptr) [[unlikely]]
    return nullptr;
  return ::new (mem) T(std::forward<Args>(args)...);
}

template <class T>
void pool_delete_ctx(thread_context* c, T* p) {
  p->~T();
  pool_for<T>::deallocate(c, p);
}

// --- variable-length arrays ------------------------------------------------
//
// Pools hand out fixed-size blocks, so variable-length payloads (e.g. a
// hashtable's bucket array) go through a sized-header allocation instead.
// The length travels in a header in front of the array, which is what lets
// an array be retired through the epoch machinery with a plain
// function-pointer deleter (retire() carries no size argument).

inline std::atomic<long long> g_arrays_outstanding{0};

template <class T>
struct array_layout {
  static constexpr std::size_t kAlign =
      alignof(T) < alignof(std::max_align_t) ? alignof(std::max_align_t)
                                             : alignof(T);
  static constexpr std::size_t kHeader =
      (sizeof(std::size_t) + kAlign - 1) / kAlign * kAlign;

  static std::size_t& count_of(T* base) {
    return *reinterpret_cast<std::size_t*>(reinterpret_cast<char*>(base) -
                                           kHeader);
  }
};

}  // namespace detail

/// Allocate a default-constructed T[n] whose length is recorded alongside
/// it, so it can be deleted (or epoch-retired) from the pointer alone.
/// Returns nullptr on failure — injected (`alloc.array` faultpoint) or a
/// real OOM — with an `alloc_failures()` bump and no constructors run
/// (the same contract as pool_new, see the header comment).
template <class T>
T* array_new(std::size_t n) {
  using L = detail::array_layout<T>;
  void* mem = nullptr;
  if (!FLOCK_FAULTPOINT_ALLOC_FAIL("alloc.array")) [[likely]]
    mem = ::operator new(L::kHeader + n * sizeof(T),
                         std::align_val_t{L::kAlign}, std::nothrow);
  if (mem == nullptr) [[unlikely]] {
    // mo: relaxed — monotonic stats counter (see pool allocate).
    detail::g_alloc_failures.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  T* base = reinterpret_cast<T*>(static_cast<char*>(mem) + L::kHeader);
  L::count_of(base) = n;
  for (std::size_t i = 0; i < n; i++) ::new (static_cast<void*>(base + i)) T();
  // mo: relaxed — leak-accounting counter, audited at quiescence.
  detail::g_arrays_outstanding.fetch_add(1, std::memory_order_relaxed);
  return base;
}

/// Length recorded by array_new (for audits).
template <class T>
std::size_t array_length(T* p) {
  return detail::array_layout<T>::count_of(p);
}

/// Destroy and free an array_new<T>'d array.
template <class T>
void array_delete(T* p) {
  using L = detail::array_layout<T>;
  const std::size_t n = L::count_of(p);
  for (std::size_t i = n; i > 0; i--) p[i - 1].~T();
  ::operator delete(static_cast<void*>(reinterpret_cast<char*>(p) - L::kHeader),
                    std::align_val_t{L::kAlign});
  // mo: relaxed — leak-accounting counter, audited at quiescence.
  detail::g_arrays_outstanding.fetch_sub(1, std::memory_order_relaxed);
}

/// Type-erased array deleter usable as a plain function pointer (epoch
/// retire).
template <class T>
void array_delete_erased(void* p) {
  array_delete(static_cast<T*>(p));
}

/// Live array_new arrays across all types (leak accounting in tests).
inline long long arrays_outstanding() {
  // mo: relaxed — audit counter whose updates are relaxed fetch_adds; an
  // acquire here (as this read once was) ordered nothing and implied a
  // synchronization edge that does not exist. Exact only at quiescence.
  return detail::g_arrays_outstanding.load(std::memory_order_relaxed);
}

/// Allocation failures observed process-wide (pool slab refills and
/// array_new headers that returned null — injected or real). Monotonic.
inline uint64_t alloc_failures() {
  // mo: relaxed — monotonic stats counter, exact only at quiescence.
  return detail::g_alloc_failures.load(std::memory_order_relaxed);
}

/// Construct a T from a per-thread pool.
template <class T, class... Args>
T* pool_new(Args&&... args) {
  return detail::pool_new_ctx<T>(detail::my_ctx(),
                                 std::forward<Args>(args)...);
}

/// Destroy and return to the pool.
template <class T>
void pool_delete(T* p) {
  detail::pool_delete_ctx(detail::my_ctx(), p);
}

/// Type-erased deleter usable as a plain function pointer (epoch retire).
template <class T>
void pool_delete_erased(void* p) {
  pool_delete(static_cast<T*>(p));
}

/// Net live pool objects of type T (leak accounting in tests).
template <class T>
long long pool_outstanding() {
  return detail::pool_for<T>::outstanding();
}

/// Decorrelate allocator placement (paper §8 warmup step).
template <class T>
void pool_shuffle(std::size_t count) {
  detail::pool_for<T>::shuffle(count);
}

}  // namespace flock
