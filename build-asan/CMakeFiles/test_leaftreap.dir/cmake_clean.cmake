file(REMOVE_RECURSE
  "CMakeFiles/test_leaftreap.dir/tests/test_leaftreap.cpp.o"
  "CMakeFiles/test_leaftreap.dir/tests/test_leaftreap.cpp.o.d"
  "test_leaftreap"
  "test_leaftreap.pdb"
  "test_leaftreap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leaftreap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
