file(REMOVE_RECURSE
  "CMakeFiles/test_arttree.dir/tests/test_arttree.cpp.o"
  "CMakeFiles/test_arttree.dir/tests/test_arttree.cpp.o.d"
  "test_arttree"
  "test_arttree.pdb"
  "test_arttree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arttree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
