// Exhaustive + seeded schedule exploration over the protocol's hardest
// windows (chaos/scheduler.hpp + chaos/schedule_test.hpp).
//
// Where test_chaos.cpp probes hand-written fault plans, these tests
// *enumerate*: every interleaving of 2 logical threads (preemption bound
// 2, optionally composed with "thread dies at step k" kill tokens) over
//
//   * top-level try_lock install / handoff / help, in both ccas modes,
//     asserting the exact counter value and lock state on every schedule;
//   * grow publication ordering (split copies -> forwarded write_once
//     flag -> root swing -> epoch retire), including the resize-trigger
//     alloc-fail deferral composed with schedules;
//   * epoch retire vs. announce, via explicit test.* yield points.
//
// Every run records a schedule string ("0,0,1,k0,..."); the replay tests
// re-run recorded strings and assert bit-identical traces and state
// fingerprints, and the FLOCK_SCHEDULE env-var path (what CI prints on
// failure) is exercised in-process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chaos/schedule_test.hpp"
#include "ds/hashtable.hpp"
#include "flock/flock.hpp"
#include "store/sharded_map.hpp"

namespace {

namespace chaos = flock_chaos;
namespace sched = flock_sched;

bool test_failed() { return ::testing::Test::HasFailure(); }

class ScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos::reset();
    flock::set_blocking(false);
    flock::set_ccas(true);
  }
  void TearDown() override {
    chaos::reset();
    flock::set_blocking(false);
    flock::set_ccas(true);
    flock::epoch_manager::instance().flush();
  }
};

// --- schedule string codec --------------------------------------------------

TEST_F(ScheduleTest, ScheduleStringRoundTrips) {
  std::vector<sched::token> ts = {
      sched::token::run(0), sched::token::run(12), sched::token::kill(3),
      sched::token::run(1), sched::token::kill(0)};
  std::string s = sched::format_schedule(ts);
  EXPECT_EQ(s, "0,12,k3,1,k0");
  EXPECT_EQ(sched::parse_schedule(s), ts);
  EXPECT_TRUE(sched::parse_schedule("").empty());
  // Malformed tail: parse keeps the valid prefix.
  EXPECT_EQ(sched::parse_schedule("1,k").size(), 1u);
}

// --- scenario 1: top-level try_lock install/handoff/help --------------------
//
// Two threads race one try_lock incrementing a shared mutable_. Exact
// final state on EVERY schedule: the counter equals the number of
// successful try_locks, the lock ends free, and at least one acquisition
// succeeded (two top-level try_locks on a free lock cannot both fail:
// an install CAS only loses to another successful lock-word CAS).
struct trylock_state {
  struct inner {
    flock::lock l;
    flock::mutable_<uint64_t> x;
    bool r[2] = {false, false};
  };
  std::unique_ptr<inner> s;
};

sched::scenario make_trylock_scenario(bool ccas,
                                      std::shared_ptr<trylock_state> st) {
  sched::scenario sc;
  sc.name = ccas ? "trylock_handoff_ccas" : "trylock_handoff_noccas";
  sc.setup = [st, ccas] {
    flock::set_blocking(false);
    flock::set_ccas(ccas);
    st->s = std::make_unique<trylock_state::inner>();
    st->s->x.init(0);
  };
  for (int i = 0; i < 2; i++) {
    sc.threads.push_back([st, i] {
      auto* in = st->s.get();
      flock::mutable_<uint64_t>* xp = &in->x;
      in->r[i] = flock::with_epoch([&] {
        return flock::try_lock(in->l, [xp] {
          xp->store(xp->load() + 1);
          return true;
        });
      });
    });
  }
  sc.on_final = [st](const sched::run_report& rep) {
    auto* in = st->s.get();
    uint64_t wins = (in->r[0] ? 1u : 0u) + (in->r[1] ? 1u : 0u);
    EXPECT_FALSE(in->l.is_locked()) << rep.schedule_string();
    EXPECT_EQ(in->x.read_raw(), wins) << rep.schedule_string();
    EXPECT_GE(wins, 1u) << rep.schedule_string();
  };
  sc.fingerprint = [st] {
    auto* in = st->s.get();
    return std::to_string(in->x.read_raw()) + "/" + (in->r[0] ? "t" : "f") +
           (in->r[1] ? "t" : "f");
  };
  return sc;
}

sched::run_options trylock_filter() {
  sched::run_options o;
  // Lock protocol windows plus the descriptor-tag revalidation yield
  // point (mut.cas.pre) — install CAS, thunk store, unlock CAS.
  o.point_prefixes = {"lock.", "mut.cas.pre"};
  return o;
}

TEST_F(ScheduleTest, TrylockHandoffExhaustiveBothCcasModes) {
  for (bool ccas : {false, true}) {
    auto st = std::make_shared<trylock_state>();
    sched::scenario sc = make_trylock_scenario(ccas, st);
    sched::explore_options o;
    o.preemption_bound = 2;
    o.run = trylock_filter();
    o.failure_check = test_failed;
    sched::explore_stats stats = sched::explore(sc, o);
    // The acceptance criterion: full enumeration, no truncation, and the
    // DFS's prefix-determinism check clean (same choices => same enabled
    // sets, i.e. recorded schedule strings are trustworthy).
    EXPECT_FALSE(stats.truncated) << sc.name;
    EXPECT_FALSE(stats.nondeterminism) << sc.name;
    EXPECT_GE(stats.schedules_at_max_bound, 25u) << sc.name;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing schedule in " << sc.name << ": "
                    << stats.failure_schedule;
      return;
    }
  }
}

// Compose kills with schedules: "thread dies at step k of schedule S" is
// one enumerable event. A killed thread parks at its yield point; the
// survivor must finish (helping the dead holder if it raced past the
// install). After quiescence the victim is revived and its resumed
// replay must be harmless — the same exact-state assertions hold.
TEST_F(ScheduleTest, TrylockHandoffExhaustiveWithKills) {
  auto st = std::make_shared<trylock_state>();
  sched::scenario sc = make_trylock_scenario(/*ccas=*/true, st);
  sc.name = "trylock_handoff_kills";
  sched::explore_options o;
  o.preemption_bound = 1;
  o.kill_bound = 1;
  o.run = trylock_filter();
  o.failure_check = test_failed;
  sched::explore_stats stats = sched::explore(sc, o);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.nondeterminism);
  // Kill tokens multiply the schedule count well past the kill-free tree.
  EXPECT_GE(stats.schedules_at_max_bound, 100u);
  if (::testing::Test::HasFailure())
    ADD_FAILURE() << "first failing schedule: " << stats.failure_schedule;
}

// --- scenario 2/3: grow publication ordering --------------------------------
//
// The controller pre-installs a 64->128 grow (the 64th insert's policy
// tick) so the scheduled threads race the migration itself: unit claim,
// split-copy publication, forwarded write_once flags (the wo.publish
// yield point), and — in the completion variant — the root swing and the
// old table's epoch retire. Exact final state on every schedule: every
// key present, exact size, 128 buckets, invariants + migration audit
// clean.
struct grow_state {
  std::unique_ptr<flock_ds::hashtable<long, long>> ht;
  bool ra = false, rb = false;
  std::optional<long> peek;  // racing read of the other thread's insert
};

// Drain any still-in-flight resize from the controller, then assert the
// exact converged state. `extra` = keys the scheduled threads inserted.
void assert_grow_final(grow_state* st, const sched::run_report& rep,
                       const std::vector<long>& extra) {
  auto& ht = *st->ht;
  const long scratch = 1 << 20;
  // 64 churn pairs: each update in flight migrates its own unit plus a
  // claimed batch, so this drains any remaining migration several times
  // over (the table has 64 units); after completion the pairs are plain
  // no-net-occupancy ops that cannot re-trigger the policy (96 < 128).
  for (int i = 0; i < 64; i++) {
    ht.insert(scratch, i);
    ht.remove(scratch);
  }
  EXPECT_EQ(ht.bucket_count(), 128u) << rep.schedule_string();
  EXPECT_EQ(ht.size(), 64 + extra.size()) << rep.schedule_string();
  for (long k = 0; k < 64; k++)
    EXPECT_EQ(ht.find(k), std::optional<long>(k)) << rep.schedule_string();
  for (long k : extra)
    EXPECT_TRUE(ht.find(k).has_value()) << rep.schedule_string();
  EXPECT_FALSE(ht.find(777777).has_value());
  EXPECT_TRUE(ht.check_invariants(/*audit_migration=*/true))
      << rep.schedule_string();
  st->ht.reset();
}

sched::scenario make_grow_scenario(std::shared_ptr<grow_state> st,
                                   int setup_churn_pairs,
                                   const char* name) {
  sched::scenario sc;
  sc.name = name;
  sc.setup = [st, setup_churn_pairs] {
    flock::set_blocking(false);
    flock::set_ccas(true);
    st->ra = st->rb = false;
    st->peek.reset();
    st->ht = std::make_unique<flock_ds::hashtable<long, long>>(64);
    // 64 inserts: occupancy hits the grow threshold exactly at the 64th
    // op's policy tick (every 16th update per shard; the controller is
    // one thread, one shard), installing the successor table. Optional
    // churn pairs migrate ~9 units each, moving the run closer to the
    // root-swing/retire endgame before the scheduled threads join in.
    for (long k = 0; k < 64; k++) st->ht->insert(k, k);
    const long scratch = 1 << 20;
    for (int i = 0; i < setup_churn_pairs; i++) {
      st->ht->insert(scratch, i);
      st->ht->remove(scratch);
    }
    // The successor is installed (bucket_count reports the table being
    // grown into) but the migration itself is still pending — that is
    // what the scheduled threads race.
    ASSERT_EQ(st->ht->bucket_count(), 128u);
  };
  sc.threads.push_back([st] {
    st->ra = st->ht->insert(1000, 1);
    // A read racing the migration: key 55 was inserted before the resize
    // began, so copy-not-splice + flag-after-publication ordering must
    // keep it visible in EVERY interleaving.
    EXPECT_EQ(st->ht->find(55), std::optional<long>(55));
  });
  sc.threads.push_back([st] {
    st->rb = st->ht->insert(2000, 2);
    // Racing read of the sibling's insert: hit or miss is
    // schedule-dependent (fingerprinted), but never a wrong value.
    st->peek = st->ht->find(1000);
    if (st->peek.has_value()) {
      EXPECT_EQ(*st->peek, 1);
    }
  });
  sc.on_final = [st](const sched::run_report& rep) {
    EXPECT_TRUE(st->ra) << rep.schedule_string();
    EXPECT_TRUE(st->rb) << rep.schedule_string();
    assert_grow_final(st.get(), rep, {1000, 2000});
  };
  sc.fingerprint = [st] {
    // Taken before on_final's drain: captures schedule-dependent state
    // (how far the migration got, what the racing read saw).
    return std::to_string(st->ht->bucket_count()) + "/" +
           std::to_string(st->ht->size()) + "/" +
           (st->peek.has_value() ? std::to_string(*st->peek) : "miss");
  };
  return sc;
}

sched::run_options grow_filter() {
  sched::run_options o;
  // Migration publication windows + the write_once publication yield
  // point (forwarded flags) + root swing/retire + the resize-trigger
  // allocation. Lock/epoch/alloc internals stay unscheduled: they are
  // exhaustively covered by the trylock scenario, and pool/seal arrivals
  // depend on cross-run state.
  o.point_prefixes = {"ht.", "wo.publish"};
  return o;
}

TEST_F(ScheduleTest, GrowPublicationExhaustive) {
  auto st = std::make_shared<grow_state>();
  sched::scenario sc = make_grow_scenario(st, 0, "grow_publication");
  sched::explore_options o;
  o.preemption_bound = 2;
  o.run = grow_filter();
  o.failure_check = test_failed;
  sched::explore_stats stats = sched::explore(sc, o);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.nondeterminism);
  EXPECT_GE(stats.schedules_at_max_bound, 25u);
  if (::testing::Test::HasFailure())
    ADD_FAILURE() << "first failing schedule: " << stats.failure_schedule;
}

TEST_F(ScheduleTest, GrowCompletionRootSwingExhaustive) {
  auto st = std::make_shared<grow_state>();
  // 3 churn pairs in setup (~9 units migrated per op) leave only the
  // migration endgame — last units, completion recovery, root swing,
  // old-table retire — to the scheduled threads.
  sched::scenario sc = make_grow_scenario(st, 3, "grow_completion");
  sched::explore_options o;
  o.preemption_bound = 2;
  o.run = grow_filter();
  o.failure_check = test_failed;
  sched::explore_stats stats = sched::explore(sc, o);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.nondeterminism);
  EXPECT_GE(stats.schedules_at_max_bound, 10u);
  if (::testing::Test::HasFailure())
    ADD_FAILURE() << "first failing schedule: " << stats.failure_schedule;
}

// Alloc-fail composed with schedules: the resize trigger's allocation
// fails during setup (deferral, counted, hint re-armed), and the
// *scheduled* threads re-trigger the resize mid-schedule via their own
// policy ticks. The deferral contract must hold on every interleaving.
TEST_F(ScheduleTest, GrowAllocFailDeferralComposedWithSchedules) {
  auto st = std::make_shared<grow_state>();
  uint64_t deferrals_before = 0;
  sched::scenario sc;
  sc.name = "grow_alloc_fail";
  sc.setup = [st, &deferrals_before] {
    flock::set_blocking(false);
    flock::set_ccas(true);
    chaos::reset();
    st->ht = std::make_unique<flock_ds::hashtable<long, long>>(64);
    deferrals_before = st->ht->resize_deferrals();
    ASSERT_TRUE(chaos::arm("ht.resize.alloc", chaos::fault::alloc_fail));
    for (long k = 0; k < 64; k++) st->ht->insert(k, k);
    // The 64th insert's tick hit the armed alloc failure: deferred.
    ASSERT_EQ(st->ht->resize_deferrals(), deferrals_before + 1);
    ASSERT_EQ(st->ht->bucket_count(), 64u);
  };
  for (int t = 0; t < 2; t++) {
    sc.threads.push_back([st, t] {
      // 16 updates: enough for this thread's counter shard to tick and
      // re-attempt the deferred resize (the plan's one failure is spent,
      // so the retry allocates and the migration runs under schedule
      // control).
      for (long j = 0; j < 16; j++)
        EXPECT_TRUE(st->ht->insert(10000 + t * 100 + j, j));
    });
  }
  sc.on_final = [st](const sched::run_report& rep) {
    std::vector<long> extra;
    for (long t = 0; t < 2; t++)
      for (long j = 0; j < 16; j++) extra.push_back(10000 + t * 100 + j);
    assert_grow_final(st.get(), rep, extra);
  };
  sc.fingerprint = [st] {
    return std::to_string(st->ht->bucket_count()) + "/" +
           std::to_string(st->ht->size());
  };
  sched::explore_options o;
  // Before the re-install the workers' plain bucket ops cross no ht.*
  // yield points (they would need "lock." in the filter), so the
  // schedule space is narrow; bound 2 still explores it in milliseconds.
  o.preemption_bound = 2;
  o.run = grow_filter();
  o.failure_check = test_failed;
  sched::explore_stats stats = sched::explore(sc, o);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.nondeterminism);
  // The space is legitimately narrow — each worker crosses exactly one
  // pre-install yield (its own resize-trigger tick), so the enumeration
  // covers both tick orders plus the duplicate-install/hint-damping
  // races between them. 6 schedules at bound 2 as of this writing.
  EXPECT_GE(stats.schedules_at_max_bound, 5u);
  chaos::reset();
  if (::testing::Test::HasFailure())
    ADD_FAILURE() << "first failing schedule: " << stats.failure_schedule;
}

// --- scenario 4: epoch retire vs. announce ----------------------------------
//
// The reader announces, loads a shared pointer, then dereferences; the
// writer unlinks the node, retires it, and floods the retire pipeline so
// batches seal and reclamation runs. Explicit test.* yield points carve
// the exact windows; the node's destructor poisons its magic word, so a
// reclamation racing past an announced reader is caught as a wrong value
// on every schedule (and as a hard UAF under the ASan job).
struct epoch_node {
  static constexpr uint64_t kMagic = 0xfeedc0dedeadbeefULL;
  uint64_t magic = kMagic;
  ~epoch_node() { magic = 0x00dead00dead00deULL; }
};

struct epoch_state {
  std::atomic<epoch_node*> shared{nullptr};
  epoch_node* loaded = nullptr;          // reader's in-hand pointer
  std::optional<uint64_t> observed;      // reader's dereference
  bool reader_done = false;              // reader exited its epoch
};

TEST_F(ScheduleTest, EpochRetireVsAnnounceExhaustiveWithKills) {
  auto st = std::make_shared<epoch_state>();
  sched::scenario sc;
  sc.name = "epoch_retire_announce";
  sc.setup = [st] {
    flock::set_blocking(false);
    flock::set_ccas(true);
    st->loaded = nullptr;
    st->observed.reset();
    st->reader_done = false;
    st->shared.store(flock::pool_new<epoch_node>(),
                     std::memory_order_release);
  };
  sc.threads.push_back([st] {  // reader
    flock::with_epoch([&] {
      FLOCK_SCHEDPOINT("test.rd.announced");
      epoch_node* p = st->shared.load(std::memory_order_acquire);
      st->loaded = p;
      FLOCK_SCHEDPOINT("test.rd.loaded");  // pointer in hand, not deref'd
      if (p != nullptr) st->observed = p->magic;
      return true;
    });
    st->reader_done = true;
  });
  sc.threads.push_back([st] {  // writer
    epoch_node* p = st->shared.exchange(nullptr, std::memory_order_acq_rel);
    FLOCK_SCHEDPOINT("test.wr.unlinked");
    flock::epoch_retire(p);
    FLOCK_SCHEDPOINT("test.wr.retired");
    // Flood: force the open batch to seal (capacity 64) and reclamation
    // decisions to run while the reader may still be announced.
    for (int i = 0; i < 80; i++)
      flock::epoch_retire(flock::pool_new<epoch_node>());
  });
  sc.on_quiescent = [st] {
    // Quiescence: live threads done, kill victims parked. A KILLED
    // reader parked mid-epoch is still announced, so if it loaded the
    // pointer it must still be intact — dead readers block reclamation,
    // they do not unprotect it. (Once the reader has exited its epoch,
    // `loaded` is a stale pointer the writer may legally have reclaimed,
    // so the check only applies while the reader is parked inside.)
    if (!st->reader_done && st->loaded != nullptr) {
      EXPECT_EQ(st->loaded->magic, epoch_node::kMagic);
    }
  };
  sc.on_final = [st](const sched::run_report& rep) {
    // On every schedule: the reader saw the node before the unlink
    // (magic intact — epoch protection held through the writer's whole
    // retire/seal flood) or a clean null. Never the poison value.
    if (st->observed.has_value()) {
      EXPECT_EQ(*st->observed, epoch_node::kMagic) << rep.schedule_string();
    }
  };
  sc.fingerprint = [st] {
    return st->observed.has_value() ? std::to_string(*st->observed) : "null";
  };
  sched::explore_options o;
  o.preemption_bound = 2;
  o.kill_bound = 1;
  o.run.point_prefixes = {"test."};
  o.failure_check = test_failed;
  sched::explore_stats stats = sched::explore(sc, o);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.nondeterminism);
  EXPECT_GE(stats.schedules_at_max_bound, 20u);
  if (::testing::Test::HasFailure())
    ADD_FAILURE() << "first failing schedule: " << stats.failure_schedule;
}

// --- replay determinism -----------------------------------------------------

TEST_F(ScheduleTest, RecordedSchedulesReplayDeterministically) {
  auto st = std::make_shared<trylock_state>();
  sched::scenario sc = make_trylock_scenario(/*ccas=*/true, st);
  sched::explore_options o;
  o.preemption_bound = 2;
  o.run = trylock_filter();
  o.failure_check = test_failed;
  sched::explore_stats stats = sched::explore(sc, o);
  ASSERT_FALSE(stats.nondeterminism);
  ASSERT_GE(stats.records.size(), 25u);
  for (const auto& [schedule, fingerprint] : stats.records) {
    sched::run_report rep = sched::replay(sc, schedule, o.run);
    // Bit-identical: the replay takes the same decisions at the same
    // points (trace) and lands in the same final state (fingerprint).
    EXPECT_EQ(rep.schedule_string(), schedule);
    EXPECT_EQ(rep.fingerprint, fingerprint) << schedule;
    if (::testing::Test::HasFailure()) break;
  }
}

TEST_F(ScheduleTest, KillSchedulesReplayDeterministically) {
  auto st = std::make_shared<epoch_state>();
  // Rebuild the epoch scenario inline (scenario objects are cheap).
  sched::scenario sc;
  sc.name = "epoch_retire_announce";
  sc.setup = [st] {
    st->loaded = nullptr;
    st->observed.reset();
    st->shared.store(flock::pool_new<epoch_node>(),
                     std::memory_order_release);
  };
  sc.threads.push_back([st] {
    flock::with_epoch([&] {
      FLOCK_SCHEDPOINT("test.rd.announced");
      epoch_node* p = st->shared.load(std::memory_order_acquire);
      st->loaded = p;
      FLOCK_SCHEDPOINT("test.rd.loaded");
      if (p != nullptr) st->observed = p->magic;
      return true;
    });
  });
  sc.threads.push_back([st] {
    epoch_node* p = st->shared.exchange(nullptr, std::memory_order_acq_rel);
    FLOCK_SCHEDPOINT("test.wr.unlinked");
    flock::epoch_retire(p);
    FLOCK_SCHEDPOINT("test.wr.retired");
    for (int i = 0; i < 80; i++)
      flock::epoch_retire(flock::pool_new<epoch_node>());
  });
  sc.fingerprint = [st] {
    return st->observed.has_value() ? std::to_string(*st->observed) : "null";
  };
  sched::run_options ro;
  ro.point_prefixes = {"test."};
  // A schedule with an explicit mid-protocol kill: reader announced and
  // holding the pointer, then killed; writer does everything.
  sched::run_report rec = sched::replay(sc, "0,0,k0,1", ro);
  // The input is a PREFIX: the engine keeps recording the decisions the
  // fallback policy makes for the rest of the run (that is how a partial
  // repro string from a log becomes a complete one).
  ASSERT_EQ(rec.schedule_string().rfind("0,0,k0,1", 0), 0u)
      << rec.schedule_string();
  std::string trace = rec.trace();
  std::string fp = rec.fingerprint;
  for (int i = 0; i < 3; i++) {
    sched::run_report rep = sched::replay(sc, "0,0,k0,1", ro);
    EXPECT_EQ(rep.trace(), trace);
    EXPECT_EQ(rep.fingerprint, fp);
  }
}

// The env-var reproduction path CI relies on: FLOCK_SCHEDULE pins
// explore() to one schedule; FLOCK_SCHEDULE_SCENARIO scopes it so other
// scenarios in the binary still explore normally.
TEST_F(ScheduleTest, EnvVarReplayPinsOneSchedule) {
  auto st = std::make_shared<trylock_state>();
  sched::scenario sc = make_trylock_scenario(/*ccas=*/true, st);
  sched::explore_options o;
  o.preemption_bound = 1;
  o.run = trylock_filter();
  sched::explore_stats full = sched::explore(sc, o);
  ASSERT_GE(full.records.size(), 2u);
  const std::string pinned = full.records.back().first;

  ::setenv("FLOCK_SCHEDULE", pinned.c_str(), 1);
  ::setenv("FLOCK_SCHEDULE_SCENARIO", sc.name.c_str(), 1);
  sched::explore_stats one = sched::explore(sc, o);
  EXPECT_EQ(one.schedules, 1u);

  // A differently named scenario ignores the pin and explores fully.
  sched::scenario other = make_trylock_scenario(/*ccas=*/false, st);
  sched::explore_stats many = sched::explore(other, o);
  EXPECT_GT(many.schedules, 1u);
  ::unsetenv("FLOCK_SCHEDULE");
  ::unsetenv("FLOCK_SCHEDULE_SCENARIO");
}

// --- seeded random walks ----------------------------------------------------

TEST_F(ScheduleTest, SeededWalksAreBitIdenticallyReproducible) {
  auto st = std::make_shared<trylock_state>();
  sched::scenario sc = make_trylock_scenario(/*ccas=*/true, st);
  sched::walk_options o;
  o.run = trylock_filter();
  o.failure_check = test_failed;
  std::set<std::string> distinct;
  for (uint64_t seed = 1; seed <= 24; seed++) {
    o.kill_budget = (seed % 4 == 0) ? 1 : 0;
    sched::run_report a = sched::random_walk(sc, seed, o);
    sched::run_report b = sched::random_walk(sc, seed, o);
    EXPECT_EQ(a.schedule_string(), b.schedule_string()) << "seed " << seed;
    EXPECT_EQ(a.trace(), b.trace()) << "seed " << seed;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_FALSE(a.truncated);
    distinct.insert(a.schedule_string());
    if (::testing::Test::HasFailure()) return;
  }
  // The sweep actually varies coverage across seeds.
  EXPECT_GE(distinct.size(), 4u);
}

// The fixed-seed sweep CI runs (FLOCK_CHAOS_SEED selects the seed): one
// walk over the grow scenario per seed, full assertions each walk.
TEST_F(ScheduleTest, SeededWalkSweepOverGrowScenario) {
  uint64_t base = chaos::seed_from_env();
  if (base == 0) base = 1;
  auto st = std::make_shared<grow_state>();
  sched::scenario sc = make_grow_scenario(st, 0, "grow_publication_walk");
  sched::walk_options o;
  o.depth = 4;
  o.expected_steps = 96;
  o.run = grow_filter();
  o.failure_check = test_failed;
  for (uint64_t s = base; s < base + 8; s++) {
    sched::run_report rep = sched::random_walk(sc, s, o);
    EXPECT_FALSE(rep.truncated) << "seed " << s;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing walk seed " << s << " schedule "
                    << rep.schedule_string();
      return;
    }
  }
}

// --- scenario: optimistic validated reads (seqlock + memo cache) ------------
//
// The PR-9 read path added reader-side windows (ht.read.post_v1 /
// ht.read.pre_validate: snapshot begun / loads done but unvalidated) and
// writer-side windows (ht.ver.post_enter / ht.ver.pre_exit: entry counter
// ahead before and after the critical section). These scenarios enumerate a
// validated reader against a writer replacing the same key's payload
// (remove + re-insert — the write API's payload mutation) and against the
// migration engine's forwards, in BOTH lock modes, asserting on every
// schedule that a read returns only a linearizable value — the old
// payload, the new payload, or a miss while the key is legally absent —
// never a torn or resurrected one.
struct vread_state {
  std::unique_ptr<flock_ds::hashtable<long, long>> ht;
  std::optional<long> r1, r2;
};

std::string opt_str(const std::optional<long>& r) {
  return r.has_value() ? std::to_string(*r) : std::string("miss");
}

sched::scenario make_validated_read_scenario(bool blocking,
                                             std::shared_ptr<vread_state> st,
                                             const char* name) {
  static_assert(flock_ds::hashtable<long, long>::kSeqlockReads,
                "long/long payloads must take the seqlock fast path");
  sched::scenario sc;
  sc.name = name;
  sc.setup = [st, blocking] {
    flock::set_blocking(blocking);
    flock::set_ccas(true);
    st->r1.reset();
    st->r2.reset();
    // 8 keys in a 64-bucket table: far below the grow threshold, so the
    // only version traffic is the writer thread's.
    st->ht = std::make_unique<flock_ds::hashtable<long, long>>(64);
    for (long k = 1; k <= 8; k++) st->ht->insert(k, k * 100);
  };
  // Writer: replace key 5's payload. Between its two ops the key is
  // legally absent; each op brackets the bucket with version bumps.
  sc.threads.push_back([st] {
    EXPECT_TRUE(st->ht->remove(5));
    EXPECT_TRUE(st->ht->insert(5, 501));
  });
  // Reader: two validated reads of the contended key, then one of an
  // undisturbed sibling (same table, different bucket — never invalidated).
  sc.threads.push_back([st] {
    st->r1 = st->ht->find(5);
    st->r2 = st->ht->find(5);
    EXPECT_EQ(st->ht->find(6), std::optional<long>(600));
  });
  sc.on_final = [st](const sched::run_report& rep) {
    auto legal = [](const std::optional<long>& r) {
      return !r.has_value() || *r == 500 || *r == 501;
    };
    EXPECT_TRUE(legal(st->r1))
        << "r1=" << opt_str(st->r1) << " " << rep.schedule_string();
    EXPECT_TRUE(legal(st->r2))
        << "r2=" << opt_str(st->r2) << " " << rep.schedule_string();
    // Program-order monotonicity through remove -> insert(501): once a
    // read observed the new payload the writer is fully linearized, so a
    // later read may not travel back; once a read observed the remove,
    // the old payload may never reappear.
    if (st->r1 == std::optional<long>(501)) {
      EXPECT_EQ(st->r2, std::optional<long>(501)) << rep.schedule_string();
    }
    if (st->r1.has_value() && !st->r2.has_value()) {
      EXPECT_EQ(*st->r1, 500L) << rep.schedule_string();
    }
    if (!st->r1.has_value()) {
      EXPECT_NE(st->r2, std::optional<long>(500)) << rep.schedule_string();
    }
    // Exact final state.
    EXPECT_EQ(st->ht->find(5), std::optional<long>(501))
        << rep.schedule_string();
    EXPECT_EQ(st->ht->size(), 8u) << rep.schedule_string();
    EXPECT_TRUE(st->ht->check_invariants()) << rep.schedule_string();
    st->ht.reset();
  };
  sc.fingerprint = [st] { return opt_str(st->r1) + "/" + opt_str(st->r2); };
  return sc;
}

sched::run_options vread_filter() {
  sched::run_options o;
  // Only the new read/version windows: the lock protocol's own schedule
  // space is covered exhaustively by the trylock scenarios.
  o.point_prefixes = {"ht.read.", "ht.ver."};
  return o;
}

TEST_F(ScheduleTest, ValidatedReadVsPayloadWriteExhaustiveBothModes) {
  for (bool blocking : {false, true}) {
    auto st = std::make_shared<vread_state>();
    sched::scenario sc = make_validated_read_scenario(
        blocking, st,
        blocking ? "vread_write_blocking" : "vread_write_lockfree");
    sched::explore_options o;
    o.preemption_bound = 2;
    o.run = vread_filter();
    o.failure_check = test_failed;
    sched::explore_stats stats = sched::explore(sc, o);
    EXPECT_FALSE(stats.truncated) << sc.name;
    EXPECT_FALSE(stats.nondeterminism) << sc.name;
    EXPECT_GE(stats.schedules_at_max_bound, 25u) << sc.name;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing schedule in " << sc.name << ": "
                    << stats.failure_schedule;
      return;
    }
  }
}

// Kills composed with the read/version windows. The interesting victim is
// a writer dead at ht.ver.post_enter: the bucket's ver_enter stays ahead
// of ver_exit forever (until revival), so every fast-path read of that
// bucket must fall back to the logged walk — and still return only
// linearizable values. Reader kills check the other direction: a dead
// reader's revived replay is harmless. Assertions are identical; revival
// drains the victim before on_final, so the exact final state must also
// converge.
TEST_F(ScheduleTest, ValidatedReadStuckCounterWithKills) {
  for (bool blocking : {false, true}) {
    auto st = std::make_shared<vread_state>();
    sched::scenario sc = make_validated_read_scenario(
        blocking, st,
        blocking ? "vread_kills_blocking" : "vread_kills_lockfree");
    sched::explore_options o;
    o.preemption_bound = 1;
    o.kill_bound = 1;
    o.run = vread_filter();
    o.failure_check = test_failed;
    sched::explore_stats stats = sched::explore(sc, o);
    EXPECT_FALSE(stats.truncated) << sc.name;
    EXPECT_FALSE(stats.nondeterminism) << sc.name;
    EXPECT_GE(stats.schedules_at_max_bound, 50u) << sc.name;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing schedule in " << sc.name << ": "
                    << stats.failure_schedule;
      return;
    }
  }
}

// --- scenario: validated read vs migration forward ---------------------------
//
// A reader races the migration engine: the 64->128 grow is pre-installed
// (as in the grow scenarios) and the writer's insert migrates units,
// forwarding source buckets. The contended read targets key 55, resident
// since before the resize: the fast path must either snapshot it from a
// still-live source bucket (counters balanced, not forwarded) or detect the
// forward/bump and fall back — in EVERY interleaving of the reader's
// windows with copy publication and forwarded-flag publication, find(55)
// returns exactly 55.
struct vread_mig_state {
  std::unique_ptr<flock_ds::hashtable<long, long>> ht;
  std::optional<long> r1, r2;
};

sched::scenario make_vread_migration_scenario(
    bool blocking, std::shared_ptr<vread_mig_state> st, const char* name) {
  sched::scenario sc;
  sc.name = name;
  sc.setup = [st, blocking] {
    flock::set_blocking(blocking);
    flock::set_ccas(true);
    st->r1.reset();
    st->r2.reset();
    st->ht = std::make_unique<flock_ds::hashtable<long, long>>(64);
    for (long k = 0; k < 64; k++) st->ht->insert(k, k);
    ASSERT_EQ(st->ht->bucket_count(), 128u);  // successor installed
  };
  sc.threads.push_back([st] {
    // Drives the migration: own unit plus a claimed batch, each unit
    // bracketed by source-bucket version bumps and ending in forwarded
    // write_once flags.
    EXPECT_TRUE(st->ht->insert(1000, 1));
  });
  sc.threads.push_back([st] {
    st->r1 = st->ht->find(55);
    st->r2 = st->ht->find(55);
  });
  sc.on_final = [st](const sched::run_report& rep) {
    EXPECT_EQ(st->r1, std::optional<long>(55)) << rep.schedule_string();
    EXPECT_EQ(st->r2, std::optional<long>(55)) << rep.schedule_string();
    // Drain the in-flight migration, then exact final state (the churn
    // pairs cannot re-trigger the policy: 96 < 128).
    const long scratch = 1 << 20;
    for (int i = 0; i < 64; i++) {
      st->ht->insert(scratch, i);
      st->ht->remove(scratch);
    }
    EXPECT_EQ(st->ht->bucket_count(), 128u) << rep.schedule_string();
    EXPECT_EQ(st->ht->size(), 65u) << rep.schedule_string();
    for (long k = 0; k < 64; k++)
      EXPECT_EQ(st->ht->find(k), std::optional<long>(k))
          << rep.schedule_string();
    EXPECT_EQ(st->ht->find(1000), std::optional<long>(1));
    EXPECT_TRUE(st->ht->check_invariants(/*audit_migration=*/true))
        << rep.schedule_string();
    st->ht.reset();
  };
  sc.fingerprint = [st] {
    return std::to_string(st->ht->size()) + "/" + opt_str(st->r1) + "/" +
           opt_str(st->r2);
  };
  return sc;
}

TEST_F(ScheduleTest, ValidatedReadVsMigrationForwardExhaustiveBothModes) {
  for (bool blocking : {false, true}) {
    auto st = std::make_shared<vread_mig_state>();
    sched::scenario sc = make_vread_migration_scenario(
        blocking, st,
        blocking ? "vread_migration_blocking" : "vread_migration_lockfree");
    sched::explore_options o;
    o.preemption_bound = 1;
    sched::run_options ro;
    // Reader windows vs. the migration's publication points: version
    // brackets, split-copy publication, forwarded write_once flags.
    ro.point_prefixes = {"ht.read.", "ht.ver.", "ht.grow.", "wo.publish"};
    o.run = ro;
    o.failure_check = test_failed;
    sched::explore_stats stats = sched::explore(sc, o);
    EXPECT_FALSE(stats.truncated) << sc.name;
    EXPECT_FALSE(stats.nondeterminism) << sc.name;
    EXPECT_GE(stats.schedules_at_max_bound, 10u) << sc.name;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing schedule in " << sc.name << ": "
                    << stats.failure_schedule;
      return;
    }
  }
}

// --- scenario: the store-tier memo cache under writer invalidation -----------
//
// The sharded_map read path consults the per-thread memoized-read cache
// before touching the table. The reader's first find fills its cache; the
// later finds may be served FROM the cache, so the property under test is
// the invalidation protocol itself: a memoized value may only be returned
// while the bucket version word still holds the captured snapshot, so a
// cache hit must never travel backwards past a writer the fallback path
// already observed. Monotonicity across r1..r3 is asserted on every
// schedule in both lock modes.
struct cache_state {
  std::unique_ptr<flock_store::sharded_map<long, long, false>> sm;
  std::optional<long> r1, r2, r3;
};

sched::scenario make_cache_scenario(bool blocking,
                                    std::shared_ptr<cache_state> st,
                                    const char* name) {
  sched::scenario sc;
  sc.name = name;
  sc.setup = [st, blocking] {
    flock::set_blocking(blocking);
    flock::set_ccas(true);
    st->r1.reset();
    st->r2.reset();
    st->r3.reset();
    st->sm = std::make_unique<flock_store::sharded_map<long, long, false>>(
        /*shards=*/1, /*size_hint=*/64);
    st->sm->insert(5, 500);
    st->sm->insert(6, 600);
  };
  sc.threads.push_back([st] {
    EXPECT_TRUE(st->sm->remove(5));
    EXPECT_TRUE(st->sm->insert(5, 501));
  });
  sc.threads.push_back([st] {
    st->r1 = st->sm->find(5);  // fills this thread's cache on a hit
    st->r2 = st->sm->find(5);  // may be served from the cache
    st->r3 = st->sm->find(5);
    EXPECT_EQ(st->sm->find(6), std::optional<long>(600));
  });
  sc.on_final = [st](const sched::run_report& rep) {
    const std::optional<long>* rs[3] = {&st->r1, &st->r2, &st->r3};
    int seen = 0;  // 0: old state legal, 1: miss seen, 2: new value seen
    for (const auto* r : rs) {
      EXPECT_TRUE(!r->has_value() || **r == 500 || **r == 501)
          << opt_str(*r) << " " << rep.schedule_string();
      // Writer program order is 500 -> miss -> 501; reads of one thread
      // may only move forward through it. A stale cache hit after the
      // fallback path saw a later state would break exactly this.
      int stage = !r->has_value() ? 1 : (**r == 501 ? 2 : 0);
      EXPECT_GE(stage, seen) << "non-monotone reads: " << opt_str(st->r1)
                             << "," << opt_str(st->r2) << ","
                             << opt_str(st->r3) << " "
                             << rep.schedule_string();
      seen = stage > seen ? stage : seen;
    }
    EXPECT_EQ(st->sm->find(5), std::optional<long>(501))
        << rep.schedule_string();
    EXPECT_EQ(st->sm->size(), 2u) << rep.schedule_string();
    EXPECT_TRUE(st->sm->check_invariants()) << rep.schedule_string();
    st->sm.reset();
  };
  sc.fingerprint = [st] {
    return opt_str(st->r1) + "/" + opt_str(st->r2) + "/" + opt_str(st->r3);
  };
  return sc;
}

TEST_F(ScheduleTest, MemoCacheInvalidationExhaustiveBothModes) {
  for (bool blocking : {false, true}) {
    auto st = std::make_shared<cache_state>();
    sched::scenario sc = make_cache_scenario(
        blocking, st, blocking ? "memo_cache_blocking" : "memo_cache_lockfree");
    sched::explore_options o;
    o.preemption_bound = 2;
    o.run = vread_filter();
    o.failure_check = test_failed;
    sched::explore_stats stats = sched::explore(sc, o);
    EXPECT_FALSE(stats.truncated) << sc.name;
    EXPECT_FALSE(stats.nondeterminism) << sc.name;
    EXPECT_GE(stats.schedules_at_max_bound, 25u) << sc.name;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing schedule in " << sc.name << ": "
                    << stats.failure_schedule;
      return;
    }
  }
}

}  // namespace
