// descriptor.hpp — the descriptor a thread leaves behind when it takes a
// lock (paper §1, §3, §4): the thunk to run, the shared idempotence log,
// a done flag, plus two implementation fields from §6: the creation epoch
// (helpers adopt it) and a helped flag (never-helped descriptors are
// reused immediately instead of epoch-retired).
//
// The first log block is embedded, so acquiring a lock costs exactly one
// pool allocation.
#pragma once

#include <atomic>
#include <cstdint>

#include "allocator.hpp"
#include "config.hpp"
#include "epoch.hpp"
#include "log.hpp"
#include "stats.hpp"
#include "thunk.hpp"

namespace flock {

struct descriptor {
  log_block head;                   // first log block, embedded
  std::atomic<bool> done{false};    // update-once; loads of it are logged
  std::atomic<bool> helped{false};  // §6 reuse optimization (see lock.hpp)
  int64_t epoch = -1;               // creator's announced epoch
  thunk fn;

  descriptor() = default;
  descriptor(const descriptor&) = delete;
  descriptor& operator=(const descriptor&) = delete;

  ~descriptor() {
    // Free any overflow log blocks. Safe: destruction happens either
    // before the descriptor was ever published (loser of an idempotent
    // allocation) or after epoch reclamation says nobody can reach it.
    log_block* b = head.next.load(std::memory_order_acquire);
    while (b != nullptr) {
      log_block* nxt = b->next.load(std::memory_order_acquire);
      pool_delete(b);
      b = nxt;
    }
  }

  /// Alg. 2 `run`: install this descriptor's log as the thread's current
  /// log, run the thunk, restore the previous log (supports nesting).
  bool run() {
    log_cursor& cur = tls_log();
    log_cursor saved = cur;
    cur = {&head, 0};
    bool result = fn();
    cur = saved;
    return result;
  }
};

/// Idempotent descriptor creation (Alg. 3 createDescriptor): every run of
/// the enclosing thunk builds a candidate; the first to commit wins and
/// losers free theirs (they were never published).
template <class F>
descriptor* create_descriptor(F&& f) {
  detail::my_stats().created++;
  descriptor* mine = pool_new<descriptor>();
  mine->fn.emplace(std::forward<F>(f));
  int64_t e = epoch_manager::instance().announced(thread_id());
  mine->epoch = e >= 0 ? e : epoch_manager::instance().current_epoch();
  auto [committed, first] =
      commit64_first(reinterpret_cast<uint64_t>(mine));
  if (first) return mine;
  pool_delete(mine);
  return reinterpret_cast<descriptor*>(committed);
}

}  // namespace flock
