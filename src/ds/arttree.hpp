// arttree.hpp — Adaptive Radix Tree (Leis et al. [37,38]) with Flock
// fine-grained optimistic locks; with lock-free locks this reproduces the
// paper's "first lock-free implementation of adaptive radix trees" (§7).
//
// Structure: fixed 8-byte keys, one byte consumed per level (span 8),
// adaptive node types Node4 / Node16 / Node48 / Node256, lazy expansion
// (leaves store the full key and can sit at any depth, so single-key
// subtrees collapse to a leaf). The root is an embedded Node256 that is
// never replaced.
//
// Concurrency:
//  * Searches descend with no locks and no logging.
//  * Child slots are mutables; adding/clearing a child locks one node.
//  * Node4/16/48 append entries in place under the node's lock: the entry
//    bytes and child are published before the count store, and inside a
//    thunk the re-scan result is committed to the log so every helper
//    agrees on the append position (count updates are same-value stores,
//    which are idempotent).
//  * A full node grows into the next type by copy-on-write: lock parent +
//    node, rebuild (skipping entries whose child slot was cleared), swap
//    the parent slot, retire the old node.
//
// Substitutions (DESIGN.md §5): no path compression — lazy expansion
// bounds depth the same way for the benchmark's sparsified (hashed) keys;
// and no node shrinking on removal (cleared slots are tombstones reused
// by reinsertions of the same byte; standard in concurrent ART variants).
#pragma once

#include <cstdint>
#include <optional>

#include "flock/flock.hpp"

namespace flock_ds {

template <class V, bool Strict = false>
class arttree {
  using K = uint64_t;
  static constexpr int kMaxDepth = 8;

  enum ntype : uint8_t { LEAF, N4, N16, N48, N256 };

  struct node {
    const ntype type;
    explicit node(ntype t) : type(t) {}
  };

  struct leafnode : node {
    const K k;
    const V v;
    leafnode(K key, V val) : node(LEAF), k(key), v(val) {}
  };

  struct inner : node {
    flock::write_once<bool> removed;
    flock::lock lck;
    // Used entry slots (incl. tombstones). A mutable_ so in-place appends
    // are logged: a stale helper replay can neither regress nor re-apply
    // the bump (its CAS fails on the tag).
    flock::mutable_<uint64_t> count;
    explicit inner(ntype t) : node(t) {
      removed.init(false);
      count.init(0);
    }
  };

  // NOTE on construction: nodes are built COMPLETELY by their
  // constructors (before the idempotent allocation commits them), because
  // writing into a node after flock::allocate returns would let a stale
  // helper replay clobber state that later operations already changed.
  template <int N>
  struct narrow : inner {  // Node4 / Node16: parallel byte+child arrays
    std::atomic<uint8_t> bytes[N];
    flock::mutable_<node*> children[N];
    explicit narrow(ntype t) : inner(t) {
      for (int i = 0; i < N; i++) {
        // mo: relaxed — constructor store, pre-publication (see NOTE above);
        // the idempotent-allocate commit publishes the whole node.
        bytes[i].store(0, std::memory_order_relaxed);
        children[i].init(nullptr);
      }
    }
    // Single-entry chain node.
    narrow(ntype t, uint8_t b, node* c) : narrow(t) {
      // mo: relaxed — constructor store, pre-publication (ditto).
      bytes[0].store(b, std::memory_order_relaxed);
      children[0].init(c);
      this->count.init(1);
    }
    // Two-entry fork.
    narrow(ntype t, uint8_t b1, node* c1, uint8_t b2, node* c2)
        : narrow(t) {
      // mo: relaxed (both) — constructor stores, pre-publication (ditto).
      bytes[0].store(b1, std::memory_order_relaxed);
      bytes[1].store(b2, std::memory_order_relaxed);
      children[0].init(c1);
      children[1].init(c2);
      this->count.init(2);
    }
    // Harvest copy (grow path).
    narrow(ntype t, const uint8_t* bs, node* const* cs, int n) : narrow(t) {
      for (int i = 0; i < n; i++) {
        // mo: relaxed — constructor store, pre-publication (ditto).
        bytes[i].store(bs[i], std::memory_order_relaxed);
        children[i].init(cs[i]);
      }
      this->count.init(static_cast<uint64_t>(n));
    }
  };
  using node4 = narrow<4>;
  using node16 = narrow<16>;

  struct node48 : inner {
    std::atomic<uint8_t> index[256];  // 0 = empty, else child slot + 1
    flock::mutable_<node*> children[48];
    node48() : inner(N48) {
      // mo: relaxed — constructor store, pre-publication (see NOTE above).
      for (auto& i : index) i.store(0, std::memory_order_relaxed);
      for (auto& c : children) c.init(nullptr);
    }
    node48(const uint8_t* bs, node* const* cs, int n) : node48() {
      for (int i = 0; i < n; i++) {
        children[i].init(cs[i]);
        // mo: relaxed — constructor store, pre-publication (ditto).
        index[bs[i]].store(static_cast<uint8_t>(i + 1),
                           std::memory_order_relaxed);
      }
      this->count.init(static_cast<uint64_t>(n));
    }
  };

  struct node256 : inner {
    flock::mutable_<node*> children[256];
    node256() : inner(N256) {
      for (auto& c : children) c.init(nullptr);
    }
    node256(const uint8_t* bs, node* const* cs, int n) : node256() {
      for (int i = 0; i < n; i++) children[bs[i]].init(cs[i]);
      this->count.init(static_cast<uint64_t>(n));
    }
  };

  static uint8_t key_byte(K k, int d) {
    return static_cast<uint8_t>(k >> (56 - 8 * d));
  }

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

  static int capacity(ntype t) {
    switch (t) {
      case N4:
        return 4;
      case N16:
        return 16;
      case N48:
        return 48;
      default:
        return 256;
    }
  }

  // Unlogged entry lookup for byte b. Returns the slot (which may hold a
  // tombstone nullptr) or nullptr if no entry exists.
  static flock::mutable_<node*>* find_slot(inner* n, uint8_t b) {
    switch (n->type) {
      case N4:
      case N16: {
        int cap = n->type == N4 ? 4 : 16;
        auto scan = [&](auto* nn) -> flock::mutable_<node*>* {
          int c = static_cast<int>(nn->count.read_raw());
          if (c > cap) c = cap;
          for (int i = 0; i < c; i++)
            // mo: acquire — pairs with the appender's release byte store so
            // a matching byte implies the child slot's store is visible.
            if (nn->bytes[i].load(std::memory_order_acquire) == b)
              return &nn->children[i];
          return nullptr;
        };
        return n->type == N4 ? scan(static_cast<node4*>(n))
                             : scan(static_cast<node16*>(n));
      }
      case N48: {
        auto* nn = static_cast<node48*>(n);
        // mo: acquire — pairs with append_child's release index store; a
        // nonzero slot implies the child pointer's store is visible.
        uint8_t s = nn->index[b].load(std::memory_order_acquire);
        return s == 0 ? nullptr : &nn->children[s - 1];
      }
      default:
        return &static_cast<node256*>(n)->children[b];
    }
  }

 public:
  arttree() = default;

  ~arttree() {
    for (int b = 0; b < 256; b++) destroy(root_.children[b].read_raw());
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      inner* n = &root_;
      for (int d = 0; d < kMaxDepth; d++) {
        flock::mutable_<node*>* slot = find_slot(n, key_byte(k, d));
        if (slot == nullptr) return {};
        node* c = slot->load();
        if (c == nullptr) return {};
        if (c->type == LEAF) {
          auto* l = static_cast<leafnode*>(c);
          if (l->k == k) return l->v;
          return {};
        }
        n = static_cast<inner*>(c);
      }
      return {};  // unreachable for 8-byte keys
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        inner* parent = nullptr;
        int parent_depth = 0;
        inner* n = &root_;
        int d = 0;
        bool restart = false;
        while (true) {
          uint8_t b = key_byte(k, d);
          flock::mutable_<node*>* slot = find_slot(n, b);
          if (slot == nullptr) {
            // No entry for this byte: append in place, or grow.
            int used = static_cast<int>(n->count.read_raw());
            if (used >= capacity(n->type)) {
              grow(parent, parent_depth, k, n);
              restart = true;
              break;
            }
            if (append_child(n, b, k, v)) return true;
            restart = true;  // lock failed or raced; re-descend
            break;
          }
          node* c = slot->load();
          if (c == nullptr) {
            // Tombstoned entry: revive it with the new leaf.
            if (set_empty_slot(n, slot, k, v)) return true;
            restart = true;
            break;
          }
          if (c->type == LEAF) {
            auto* l = static_cast<leafnode*>(c);
            if (l->k == k) return false;  // present
            // Split: build a chain for the shared bytes, then a Node4
            // with both leaves; publish with one slot swap.
            if (split_leaf(n, slot, l, k, v, d + 1)) return true;
            restart = true;
            break;
          }
          parent = n;
          parent_depth = d;
          n = static_cast<inner*>(c);
          d++;
        }
        if (restart) continue;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        inner* n = &root_;
        int d = 0;
        leafnode* target = nullptr;
        flock::mutable_<node*>* slot = nullptr;
        while (true) {
          slot = find_slot(n, key_byte(k, d));
          if (slot == nullptr) return false;
          node* c = slot->load();
          if (c == nullptr) return false;
          if (c->type == LEAF) {
            target = static_cast<leafnode*>(c);
            break;
          }
          n = static_cast<inner*>(c);
          d++;
        }
        if (target->k != k) return false;
        inner* nn = n;
        flock::mutable_<node*>* s = slot;
        leafnode* lf = target;
        if (acquire(nn->lck, [=] {
              if (nn->removed.load()) return false;
              if (s->load() != static_cast<node*>(lf)) return false;
              s->store(nullptr);  // tombstone
              flock::retire<leafnode>(lf);
              return true;
            }))
          return true;
      }
    });
  }

  /// Quiescent audits. ---------------------------------------------------
  std::size_t size() const {
    std::size_t s = 0;
    for (int b = 0; b < 256; b++) s += count(root_.children[b].read_raw());
    return s;
  }

  bool check_invariants() const {
    bool ok = true;
    for (int b = 0; b < 256; b++) {
      K prefix = static_cast<K>(b) << 56;
      validate(root_.children[b].read_raw(), prefix, 1, ok);
    }
    return ok;
  }

  template <class F>
  void for_each(F&& f) const {
    for (int b = 0; b < 256; b++) walk(root_.children[b].read_raw(), f);
  }

 private:
  // ---- in-place append under the node's lock ---------------------------
  // All decisions inside the thunk rest on values committed to the log,
  // so helper replays agree on the entry index; the count update is a
  // same-value store (idempotent).
  bool append_child(inner* n, uint8_t b, K k, V v) {
    switch (n->type) {
      case N4:
        return append_narrow(static_cast<node4*>(n), 4, b, k, v);
      case N16:
        return append_narrow(static_cast<node16*>(n), 16, b, k, v);
      case N48: {
        auto* nn = static_cast<node48*>(n);
        return acquire(nn->lck, [=] {
          if (nn->removed.load()) return false;
          // mo: acquire — matching find_slot's reader side; under the node
          // lock the value is stable, the order just keeps one protocol.
          uint8_t existing = static_cast<uint8_t>(flock::commit_value(
              nn->index[b].load(std::memory_order_acquire)));
          if (existing != 0) return false;  // raced: re-descend
          uint64_t c = nn->count.load();  // logged
          if (c >= 48) return false;
          nn->children[c].store(flock::allocate<leafnode>(k, v));
          // Same-value store for stale replays; appends serialize under
          // the node lock.
          // mo: release — publishes the child-slot store above to
          // find_slot's acquire index load (lock-free readers).
          nn->index[b].store(static_cast<uint8_t>(c + 1),
                             std::memory_order_release);
          nn->count.store(c + 1);  // logged, tag-protected
          return true;
        });
      }
      default: {  // N256 always has a slot; handled by set_empty_slot
        auto* nn = static_cast<node256*>(n);
        return set_empty_slot(nn, &nn->children[b], k, v);
      }
    }
  }

  template <class NN>
  bool append_narrow(NN* nn, int cap, uint8_t b, K k, V v) {
    return acquire(nn->lck, [=] {
      if (nn->removed.load()) return false;
      uint64_t c = nn->count.load();  // logged
      if (c >= static_cast<uint64_t>(cap)) return false;  // raced to full
      // Re-scan for b among committed entries (another insert may have
      // appended it between our descent and taking the lock). Entries
      // below `c` are immutable, so the scan is deterministic across
      // replays given the logged count.
      // mo: acquire — matching find_slot's reader side (one protocol).
      for (uint64_t i = 0; i < c; i++)
        if (nn->bytes[i].load(std::memory_order_acquire) == b) return false;
      // Publishes nothing yet (the child store follows); a reader that
      // matches this byte loads the child slot through mutable_'s own
      // synchronization. Same-value store across replays (see baseline).
      // mo: release — keeps byte stores ordered for find_slot's scan.
      nn->bytes[c].store(b, std::memory_order_release);
      nn->children[c].store(flock::allocate<leafnode>(k, v));
      nn->count.store(c + 1);  // logged, tag-protected
      return true;
    });
  }

  bool set_empty_slot(inner* n, flock::mutable_<node*>* slot, K k, V v) {
    return acquire(n->lck, [=] {
      if (n->removed.load()) return false;
      if (slot->load() != nullptr) return false;
      slot->store(flock::allocate<leafnode>(k, v));
      return true;
    });
  }

  // Replace leaf `l` by a chain of Node4s covering the bytes both keys
  // share below depth d0, ending in a Node4 holding both leaves. The
  // chain is built fully before the single publishing slot swap.
  bool split_leaf(inner* n, flock::mutable_<node*>* slot, leafnode* l, K k,
                  V v, int d0) {
    return acquire(n->lck, [=, this] {
      if (n->removed.load()) return false;
      if (slot->load() != static_cast<node*>(l)) return false;
      int dd = d0;
      while (dd < kMaxDepth && key_byte(k, dd) == key_byte(l->k, dd)) dd++;
      // dd < kMaxDepth because the keys differ.
      leafnode* nl = flock::allocate<leafnode>(k, v);
      node* child = build_fork(key_byte(k, dd), nl, key_byte(l->k, dd),
                               static_cast<node*>(l));
      for (int x = dd - 1; x >= d0; x--)
        child = build_single(key_byte(k, x), child);
      slot->store(child);
      return true;
    });
  }

  node* build_fork(uint8_t b1, node* c1, uint8_t b2, node* c2) {
    return flock::allocate<node4>(N4, b1, c1, b2, c2);
  }

  node* build_single(uint8_t b, node* c) {
    return flock::allocate<node4>(N4, b, c);
  }

  // ---- grow: copy-on-write into the next node type ---------------------
  void grow(inner* parent, int parent_depth, K k, inner* n) {
    if (parent == nullptr) return;  // root Node256 never grows
    uint8_t pb = key_byte(k, parent_depth);
    flock::mutable_<node*>* pslot = find_slot(parent, pb);
    if (pslot == nullptr) return;
    acquire(parent->lck, [=, this] {
      if (parent->removed.load()) return false;
      if (pslot->load() != static_cast<node*>(n)) return false;
      return acquire(n->lck, [=, this] {
        if (n->removed.load()) return false;
        inner* bigger = copy_grown(n);
        pslot->store(bigger);
        n->removed = true;
        retire_inner(n);
        return true;
      });
    });
  }

  // Build the next-size node from n's live entries. Caller holds n's
  // lock, so entries are stable; child loads are logged, the count load
  // is logged, and bytes below the count are immutable — the harvested
  // arrays are therefore identical across helper replays, and the new
  // node is built entirely by its constructor before being committed.
  inner* copy_grown(inner* n) {
    uint8_t bs[48];
    node* cs[48];
    int live = 0;
    auto harvest_narrow = [&](auto* nn, uint64_t cap) {
      uint64_t c = nn->count.load();  // logged
      if (c > cap) c = cap;
      for (uint64_t i = 0; i < c; i++) {
        node* ch = nn->children[i].load();
        if (ch == nullptr) continue;  // tombstone: compact away
        // mo: acquire — reader-side byte load (same protocol as find_slot);
        // entries below the logged count are immutable anyway.
        bs[live] = nn->bytes[i].load(std::memory_order_acquire);
        cs[live] = ch;
        live++;
      }
    };
    switch (n->type) {
      case N4:
        harvest_narrow(static_cast<node4*>(n), 4);
        return flock::allocate<node16>(N16, bs, cs, live);
      case N16:
        harvest_narrow(static_cast<node16*>(n), 16);
        return flock::allocate<node48>(bs, cs, live);
      case N48: {
        auto* src = static_cast<node48*>(n);
        for (int b = 0; b < 256; b++) {
          // mo: acquire — nonzero slot implies the child store is visible
          // (pairs with append_child's release), as in find_slot.
          uint8_t s = src->index[b].load(std::memory_order_acquire);
          if (s == 0) continue;
          node* ch = src->children[s - 1].load();  // logged
          if (ch == nullptr) continue;
          bs[live] = static_cast<uint8_t>(b);
          cs[live] = ch;
          live++;
        }
        return flock::allocate<node256>(bs, cs, live);
      }
      default:
        return n;  // N256 never grows
    }
  }

  void retire_inner(inner* n) {
    switch (n->type) {
      case N4:
        flock::retire<node4>(static_cast<node4*>(n));
        break;
      case N16:
        flock::retire<node16>(static_cast<node16*>(n));
        break;
      case N48:
        flock::retire<node48>(static_cast<node48*>(n));
        break;
      default:
        flock::retire<node256>(static_cast<node256*>(n));
        break;
    }
  }

  // ---- audits -----------------------------------------------------------
  void destroy(node* n) {
    if (n == nullptr) return;
    if (n->type == LEAF) {
      flock::pool_delete(static_cast<leafnode*>(n));
      return;
    }
    auto* in = static_cast<inner*>(n);
    for_each_child(in, [&](uint8_t, node* c) { destroy(c); });
    switch (in->type) {
      case N4:
        flock::pool_delete(static_cast<node4*>(in));
        break;
      case N16:
        flock::pool_delete(static_cast<node16*>(in));
        break;
      case N48:
        flock::pool_delete(static_cast<node48*>(in));
        break;
      default:
        flock::pool_delete(static_cast<node256*>(in));
        break;
    }
  }

  template <class F>
  static void for_each_child(inner* n, F&& f) {
    switch (n->type) {
      case N4:
      case N16: {
        int cap = n->type == N4 ? 4 : 16;
        auto scan = [&](auto* nn) {
          int c = static_cast<int>(nn->count.read_raw());
          if (c > cap) c = cap;
          for (int i = 0; i < c; i++) {
            node* ch = nn->children[i].read_raw();
            // mo: acquire — reader-side byte load, same protocol as
            // find_slot (audit walks run at quiescence anyway).
            if (ch != nullptr)
              f(nn->bytes[i].load(std::memory_order_acquire), ch);
          }
        };
        if (n->type == N4)
          scan(static_cast<node4*>(n));
        else
          scan(static_cast<node16*>(n));
        break;
      }
      case N48: {
        auto* nn = static_cast<node48*>(n);
        for (int b = 0; b < 256; b++) {
          // mo: acquire — reader-side index load, same protocol as
          // find_slot (audit walks run at quiescence anyway).
          uint8_t s = nn->index[b].load(std::memory_order_acquire);
          if (s == 0) continue;
          node* ch = nn->children[s - 1].read_raw();
          if (ch != nullptr) f(static_cast<uint8_t>(b), ch);
        }
        break;
      }
      default: {
        auto* nn = static_cast<node256*>(n);
        for (int b = 0; b < 256; b++) {
          node* ch = nn->children[b].read_raw();
          if (ch != nullptr) f(static_cast<uint8_t>(b), ch);
        }
        break;
      }
    }
  }

  std::size_t count(node* n) const {
    if (n == nullptr) return 0;
    if (n->type == LEAF) return 1;
    std::size_t s = 0;
    for_each_child(static_cast<inner*>(n),
                   [&](uint8_t, node* c) { s += count(c); });
    return s;
  }

  // Every leaf under a node at depth d must share the first d key bytes
  // (the prefix accumulated on the way down).
  void validate(node* n, K prefix, int d, bool& ok) const {
    if (n == nullptr || !ok) return;
    if (n->type == LEAF) {
      auto* l = static_cast<leafnode*>(n);
      int shift = 64 - 8 * d;
      if (shift < 64 && d > 0) {
        K mask = shift == 0 ? ~K{0} : (~K{0}) << shift;
        if ((l->k & mask) != (prefix & mask)) ok = false;
      }
      return;
    }
    auto* in = static_cast<inner*>(n);
    if (in->removed.read_raw()) {
      ok = false;
      return;
    }
    if (d >= kMaxDepth) {
      ok = false;
      return;
    }
    for_each_child(const_cast<inner*>(in), [&](uint8_t b, node* c) {
      K cp = prefix | (static_cast<K>(b) << (56 - 8 * d));
      validate(c, cp, d + 1, ok);
    });
  }

  template <class F>
  void walk(node* n, F&& f) const {
    if (n == nullptr) return;
    if (n->type == LEAF) {
      auto* l = static_cast<leafnode*>(n);
      f(l->k, l->v);
      return;
    }
    for_each_child(static_cast<inner*>(n),
                   [&](uint8_t, node* c) { walk(c, f); });
  }

  node256 root_;
};

}  // namespace flock_ds
