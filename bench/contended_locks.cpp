// contended_locks — multi-thread contention bench for the lock paths
// themselves (PR 4). The figure benches measure whole data structures;
// this one isolates the lock acquire/release cycle under the three
// contention shapes the paper's §8 argues about:
//
//   hot     N threads hammer ONE lock (the worst case: every acquisition
//           is contended once N > 1).
//   zipf    N threads pick from an array of locks with zipf(0.99) skew —
//           a few hot locks plus a long cold tail, the shape real
//           structures (hashtable sentinels, tree roots) produce.
//   oversub N >> cores on one hot lock: the paper's headline scenario,
//           where a blocking lock holder can be descheduled mid-critical-
//           section but lock-free waiters can finish its work.
//
// Sweeps threads x {blocking, lock-free, lock-free+ccas} x {try, strict}
// and emits one json_reporter series per point (default file
// BENCH_contended.json; FLOCK_BENCH_JSON overrides), plus per-point
// helping/backoff stat deltas on stderr so the help-throttle's effect is
// visible next to the throughput it buys.
//
// Env knobs:
//   FLOCK_CONTEND_MS       timed window per point    (default 200 ms)
//   FLOCK_CONTEND_LOCKS    zipf lock-array size      (default 64)
//   FLOCK_CONTEND_MAXT     top of the thread sweep   (default 8)
//   FLOCK_OVERSUB_MULT     oversub = mult x cores    (default 8)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "harness.hpp"
#include "workload/zipf.hpp"

namespace {

struct knobs {
  int ms = static_cast<int>(bench::env_long("FLOCK_CONTEND_MS", 200));
  int nlocks = static_cast<int>(bench::env_long("FLOCK_CONTEND_LOCKS", 64));
  int max_threads = static_cast<int>(bench::env_long("FLOCK_CONTEND_MAXT", 8));
  int oversub_mult =
      static_cast<int>(bench::env_long("FLOCK_OVERSUB_MULT", 8));
};

knobs& k() {
  static knobs kn;
  return kn;
}

// One lock + its counter, padded so neighbouring array entries don't
// false-share.
struct alignas(2 * flock::kCacheLine) lock_slot {
  flock::lock lk;
  flock::mutable_<uint64_t>* ctr = nullptr;
};

enum class mode { blocking, lockfree, lockfree_ccas };

const char* mode_name(mode m) {
  switch (m) {
    case mode::blocking: return "blocking";
    case mode::lockfree: return "lockfree";
    default: return "lockfree_ccas";
  }
}

void set_mode(mode m) {
  flock::set_blocking(m == mode::blocking);
  flock::set_ccas(m != mode::lockfree);
}

struct point_result {
  double mops = 0;        // successful acquisitions per second (counter
                          // delta; for strict this equals calls)
  double call_mops = 0;   // completed lock calls per second (try mode:
                          // includes failed attempts — reported to stderr)
  uint64_t acquired = 0;  // successful acquisitions (counter delta)
};

/// Run `threads` workers for the timed window; each iteration picks a slot
/// via `pick(rng)` and try/strict-locks it around a counter increment.
template <bool Strict, class Pick>
point_result run_point(std::vector<lock_slot>& slots, int threads,
                       Pick&& pick) {
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> calls{0};
  uint64_t before = 0;
  for (auto& s : slots) before += s.ctr->read_raw();

  std::vector<std::thread> ws;
  ws.reserve(threads);
  for (int t = 0; t < threads; t++) {
    ws.emplace_back([&, t] {
      flock_workload::rng64 rng(flock_workload::splitmix64(t + 1));
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock_slot& s = slots[pick(rng)];
        auto* ctr = s.ctr;
        flock::with_epoch([&] {
          if constexpr (Strict) {
            return flock::strict_lock(s.lk, [ctr] {
              ctr->store(ctr->load() + 1);
              return true;
            });
          } else {
            return flock::try_lock(s.lk, [ctr] {
              ctr->store(ctr->load() + 1);
              return true;
            });
          }
        });
        n++;
      }
      calls.fetch_add(n, std::memory_order_relaxed);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(k().ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : ws) w.join();
  auto t1 = std::chrono::steady_clock::now();

  uint64_t after = 0;
  for (auto& s : slots) after += s.ctr->read_raw();
  point_result r;
  double secs = std::chrono::duration<double>(t1 - t0).count();
  r.acquired = after - before;
  r.mops = static_cast<double>(r.acquired) / secs / 1e6;
  r.call_mops = static_cast<double>(calls.load()) / secs / 1e6;
  return r;
}

std::vector<lock_slot> make_slots(int n) {
  std::vector<lock_slot> slots(n);
  for (auto& s : slots) {
    s.ctr = flock::pool_new<flock::mutable_<uint64_t>>();
    s.ctr->init(0);
  }
  return slots;
}

void free_slots(std::vector<lock_slot>& slots) {
  for (auto& s : slots) flock::pool_delete(s.ctr);
  slots.clear();
  flock::epoch_manager::instance().flush();
}

void stat_delta(const flock::stats_snapshot& a,
                const flock::stats_snapshot& b, const std::string& series) {
  std::fprintf(stderr,
               "  %-36s helps att/run/avoided %llu/%llu/%llu  backoff %llu\n",
               series.c_str(),
               static_cast<unsigned long long>(b.helps_attempted -
                                               a.helps_attempted),
               static_cast<unsigned long long>(b.helps_run - a.helps_run),
               static_cast<unsigned long long>(b.helps_avoided -
                                               a.helps_avoided),
               static_cast<unsigned long long>(b.backoff_spins -
                                               a.backoff_spins));
}

template <bool Strict>
void sweep(bench::json_reporter& rep, const char* scenario, int nlocks,
           const std::vector<int>& thread_points) {
  for (mode m : {mode::blocking, mode::lockfree, mode::lockfree_ccas}) {
    set_mode(m);
    for (int t : thread_points) {
      auto slots = make_slots(nlocks);
      // zipf(0.99) over the array; a 1-entry array degenerates to "hot".
      flock_workload::zipf_distribution dist(
          static_cast<uint64_t>(nlocks), nlocks > 1 ? 0.99 : 0.0);
      auto before = flock::stats();
      point_result r = run_point<Strict>(slots, t, [&](auto& rng) {
        return nlocks > 1 ? dist.sample(rng) - 1 : 0;
      });
      auto after = flock::stats();
      std::string series = std::string(scenario) + "_" +
                           (Strict ? "strict" : "try") + "_" + mode_name(m) +
                           "_t" + std::to_string(t);
      rep.add(series, r.mops);
      std::fprintf(stderr, "  %-36s %8.3f Mops acquired (%.3f calls)\n",
                   series.c_str(), r.mops, r.call_mops);
      stat_delta(before, after, series);
      free_slots(slots);
    }
  }
  flock::set_ccas(true);
  flock::set_blocking(false);
}

}  // namespace

int main() {
  std::vector<int> threads;
  for (int t = 1; t <= k().max_threads; t *= 2) threads.push_back(t);
  int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores < 1) cores = 1;
  std::vector<int> oversub{k().oversub_mult * cores};

  bench::json_reporter rep;
  std::fprintf(stderr, "contended_locks: window=%dms locks=%d cores=%d\n",
               k().ms, k().nlocks, cores);

  std::fprintf(stderr, "single hot lock, try:\n");
  sweep<false>(rep, "hot", 1, threads);
  std::fprintf(stderr, "single hot lock, strict:\n");
  sweep<true>(rep, "hot", 1, threads);
  std::fprintf(stderr, "zipf lock array, try:\n");
  sweep<false>(rep, "zipf", k().nlocks, threads);
  std::fprintf(stderr, "zipf lock array, strict:\n");
  sweep<true>(rep, "zipf", k().nlocks, threads);
  std::fprintf(stderr, "oversubscription (%dx %d cores), strict:\n",
               k().oversub_mult, cores);
  sweep<true>(rep, "oversub", 1, oversub);
  std::fprintf(stderr, "oversubscription, try:\n");
  sweep<false>(rep, "oversub", 1, oversub);

  rep.write("BENCH_contended.json");
  return 0;
}
