# Empty compiler generated dependencies file for test_lazylist.
# This may be replaced when dependencies are built.
