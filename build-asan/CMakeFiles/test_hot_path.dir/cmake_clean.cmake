file(REMOVE_RECURSE
  "CMakeFiles/test_hot_path.dir/tests/test_hot_path.cpp.o"
  "CMakeFiles/test_hot_path.dir/tests/test_hot_path.cpp.o.d"
  "test_hot_path"
  "test_hot_path.pdb"
  "test_hot_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hot_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
