// Tests for epoch-based reclamation: deferral, protection by announced
// epochs, adoption, nesting, and leak accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

struct tracked {
  static std::atomic<long long>& live() {
    static std::atomic<long long> n{0};
    return n;
  }
  uint64_t payload = 0xdeadbeef;
  tracked() { live().fetch_add(1); }
  ~tracked() {
    payload = 0;
    live().fetch_sub(1);
  }
};

TEST(Epoch, RetireEventuallyFrees) {
  long long before = tracked::live().load();
  for (int i = 0; i < 1000; i++) {
    tracked* t = flock::pool_new<tracked>();
    flock::epoch_retire(t);
  }
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), before);
}

TEST(Epoch, AnnouncedEpochBlocksFreeing) {
  tracked* t = flock::pool_new<tracked>();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    flock::with_epoch([&] {
      pinned.store(true);
      while (!release.load()) {
      }
      // Object must still be intact: it was retired after we announced.
      EXPECT_EQ(t->payload, 0xdeadbeefu);
    });
  });

  while (!pinned.load()) {
  }
  long long live_before = tracked::live().load();
  flock::epoch_retire(t);
  // Hammer the collector: the reader's announcement must keep t alive.
  for (int i = 0; i < 1000; i++) flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), live_before);
  release.store(true);
  reader.join();
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), live_before - 1);
}

TEST(Epoch, WithEpochNests) {
  flock::with_epoch([&] {
    int64_t outer = flock::epoch_manager::instance().announced(flock::thread_id());
    EXPECT_GE(outer, 0);
    flock::with_epoch([&] {
      EXPECT_EQ(flock::epoch_manager::instance().announced(flock::thread_id()),
                outer);
    });
    EXPECT_EQ(flock::epoch_manager::instance().announced(flock::thread_id()),
              outer);
  });
  EXPECT_EQ(flock::epoch_manager::instance().announced(flock::thread_id()), -1);
}

TEST(Epoch, AdoptLowersAndRestores) {
  flock::with_epoch([&] {
    auto& em = flock::epoch_manager::instance();
    int me = flock::thread_id();
    int64_t mine = em.announced(me);
    int64_t prev = em.adopt(mine > 0 ? mine - 1 : 0);
    EXPECT_EQ(prev, mine);
    EXPECT_LE(em.announced(me), mine);
    em.restore(prev);
    EXPECT_EQ(em.announced(me), mine);
    // Adopting a larger epoch must not raise the announcement.
    int64_t prev2 = em.adopt(mine + 100);
    EXPECT_EQ(em.announced(me), mine);
    em.restore(prev2);
  });
}

TEST(Epoch, EpochAdvancesUnderQuiescence) {
  auto& em = flock::epoch_manager::instance();
  int64_t e0 = em.current_epoch();
  for (int i = 0; i < 5; i++) em.flush();
  EXPECT_GT(em.current_epoch(), e0);
}

TEST(Epoch, ConcurrentRetireStress) {
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  long long before = tracked::live().load();
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOps; i++) {
        flock::with_epoch([&] {
          tracked* obj = flock::pool_new<tracked>();
          flock::epoch_retire(obj);
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  // Drain retire lists from each participating thread id by recycling ids:
  // flush from this thread repeatedly; other lists drain lazily, so only
  // assert an upper bound here and exact balance after flush cycles.
  for (int i = 0; i < 10; i++) flock::epoch_manager::instance().flush();
  EXPECT_LE(tracked::live().load() - before,
            static_cast<long long>(kThreads) * 64 * 2);
}

// Readers continuously dereference objects while writers retire them; any
// premature free turns payload to 0 and the reader would observe it.
TEST(Epoch, ReadersNeverSeeFreedMemory) {
  constexpr int kWriters = 2, kReaders = 4;
  std::atomic<tracked*> shared{flock::pool_new<tracked>()};
  std::atomic<bool> stop{false};
  std::atomic<long long> reads{0};

  std::vector<std::thread> ts;
  for (int r = 0; r < kReaders; r++) {
    ts.emplace_back([&] {
      while (!stop.load()) {
        flock::with_epoch([&] {
          tracked* t = shared.load(std::memory_order_acquire);
          ASSERT_EQ(t->payload, 0xdeadbeefu);
          reads.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (int w = 0; w < kWriters; w++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000 && !stop.load(); i++) {
        flock::with_epoch([&] {
          tracked* fresh = flock::pool_new<tracked>();
          tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
          flock::epoch_retire(old);
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : ts) t.join();
  EXPECT_GT(reads.load(), 0);
  flock::epoch_retire(shared.load());
  flock::epoch_manager::instance().flush();
}

}  // namespace
