# Empty dependencies file for test_leaftreap.
# This may be replaced when dependencies are built.
