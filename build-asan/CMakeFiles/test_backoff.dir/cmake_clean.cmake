file(REMOVE_RECURSE
  "CMakeFiles/test_backoff.dir/tests/test_backoff.cpp.o"
  "CMakeFiles/test_backoff.dir/tests/test_backoff.cpp.o.d"
  "test_backoff"
  "test_backoff.pdb"
  "test_backoff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
