// Tests for update-once locations (paper §6).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

struct scoped_log {
  flock::log_block* head;
  flock::log_cursor saved;
  scoped_log() {
    head = flock::pool_new<flock::log_block>();
    saved = flock::tls_log();
    flock::tls_log() = {head, 0};
  }
  void replay() { flock::tls_log() = {head, 0}; }
  ~scoped_log() {
    flock::tls_log() = saved;
    flock::pool_delete(head);
  }
};

TEST(WriteOnce, InitialThenUpdated) {
  flock::write_once<bool> w(false);
  EXPECT_FALSE(w.load());
  w.store(true);
  EXPECT_TRUE(w.load());
}

TEST(WriteOnce, AssignmentOperator) {
  flock::write_once<bool> w(false);
  w = true;
  EXPECT_TRUE(w.read_raw());
}

TEST(WriteOnce, LoadIsLoggedInsideThunk) {
  flock::write_once<bool> w(false);
  scoped_log lg;
  EXPECT_FALSE(w.load());  // logged: false
  flock::tls_log() = {};
  w.store(true);  // the one update happens "between" runs
  lg.replay();
  EXPECT_FALSE(w.load());  // replay must agree with the first run
  EXPECT_TRUE(w.read_raw());
}

TEST(WriteOnce, RepeatedIdenticalStoresAreIdempotent) {
  flock::write_once<bool> w(false);
  scoped_log lg;
  w.store(true);
  lg.replay();
  w.store(true);  // helper replay writes the same value
  EXPECT_TRUE(w.read_raw());
}

TEST(WriteOnce, PointerPayload) {
  int a = 0;
  flock::write_once<int*> w(nullptr);
  EXPECT_EQ(w.load(), nullptr);
  w.store(&a);
  EXPECT_EQ(w.load(), &a);
}

TEST(WriteOnce, ConcurrentIdenticalStores) {
  for (int round = 0; round < 100; round++) {
    flock::write_once<uint64_t> w(0);
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; t++)
      ts.emplace_back([&] { w.store(7); });
    for (auto& t : ts) t.join();
    EXPECT_EQ(w.read_raw(), 7u);
  }
}

}  // namespace
