# Empty compiler generated dependencies file for fig5_trees.
# This may be replaced when dependencies are built.
