// Stats counters (flock/stats.hpp): creation/help/reuse accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "helping_test_util.hpp"

namespace {

TEST(Stats, UncontendedLocksReuseDescriptors) {
  flock::set_blocking(false);
  flock::lock l;
  auto before = flock::stats();
  for (int i = 0; i < 1000; i++) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [] { return true; });
    });
  }
  auto after = flock::stats();
  // Every acquisition created a descriptor...
  EXPECT_GE(after.descriptors_created - before.descriptors_created, 1000u);
  // ...and with no contention, every one took the fast reuse path.
  EXPECT_GE(after.descriptors_reused - before.descriptors_reused, 1000u);
  EXPECT_EQ(after.helps_run - before.helps_run, 0u);
}

TEST(Stats, ContendedLocksRecordHelping) {
  // Deterministic forced helping (see helping_test_util.hpp; a
  // thread-count hammer never observes a held lock on small machines).
  flock::set_blocking(false);
  auto before = flock::stats();
  uint64_t applied = helping_test::force_one_help();
  auto after = flock::stats();
  EXPECT_EQ(applied, 1u);
  EXPECT_GT(after.helps_attempted - before.helps_attempted, 0u);
  flock::epoch_manager::instance().flush();
}

TEST(Stats, BlockingModeCreatesNoDescriptors) {
  flock::set_blocking(true);
  flock::lock l;
  auto before = flock::stats();
  for (int i = 0; i < 100; i++) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [] { return true; });
    });
  }
  auto after = flock::stats();
  EXPECT_EQ(after.descriptors_created, before.descriptors_created);
  flock::set_blocking(false);
}

}  // namespace
