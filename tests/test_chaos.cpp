// Chaos suite: deterministic fault injection at the runtime's named
// protocol windows (chaos/faultpoint.hpp). The paper's robustness claim
// (§1, §3) is that a dead or stalled lock holder cannot block the system
// in lock-free mode — helpers finish its critical section. These tests
// make that claim falsifiable at every instrumented window: a *kill*
// parks the victim mid-protocol (the dead-holder scenario) and the test
// asserts other threads still complete; *alloc-fail* drives the
// allocation-failure contract (allocator.hpp) and the resize-deferral
// degraded mode (hashtable.hpp); seeded stall plans (FLOCK_CHAOS_SEED)
// shake schedules without wall-clock sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "ds/hashtable.hpp"
#include "flock/flock.hpp"
#include "store/sharded_map.hpp"

namespace {

namespace chaos = flock_chaos;

template <class F>
void spin_until(F&& pred) {
  while (!pred()) std::this_thread::yield();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos::reset();
    flock::set_blocking(false);
    flock::set_ccas(true);
  }
  void TearDown() override {
    // A test that failed mid-plan must not leave parked threads or armed
    // faults behind for the next test.
    chaos::release_killed();
    spin_until([] { return chaos::parked() == 0; });
    chaos::reset();
    flock::set_blocking(false);
    flock::set_ccas(true);
    flock::epoch_manager::instance().flush();
  }
};

// --- registry / plan mechanics ---------------------------------------------

TEST_F(ChaosTest, ArmCountsOnlyMatchingArrivalsAndFiresOnNth) {
  auto probe = [] { FLOCK_FAULTPOINT("test.probe"); };
  probe();  // unarmed: fast path, no arrival counted
  EXPECT_EQ(chaos::hits("test.probe"), 0u);

  chaos::arm_options o;
  o.nth = 2;
  o.stall_spins = 64;
  ASSERT_TRUE(chaos::arm("test.probe", chaos::fault::stall, o));
  const uint64_t s0 = chaos::stalls_injected();
  probe();  // arrival 1: below nth
  EXPECT_EQ(chaos::stalls_injected(), s0);
  probe();  // arrival 2: fires
  EXPECT_EQ(chaos::stalls_injected(), s0 + 1);
  probe();  // arrival 3: past the window
  EXPECT_EQ(chaos::stalls_injected(), s0 + 1);
  EXPECT_EQ(chaos::hits("test.probe"), 3u);

  chaos::reset();
  probe();
  EXPECT_EQ(chaos::hits("test.probe"), 0u);  // disarmed again
}

TEST_F(ChaosTest, VictimOnlyEntriesIgnoreOtherThreads) {
  chaos::arm_options o;
  o.victim_only = true;
  o.stall_spins = 32;
  ASSERT_TRUE(chaos::arm("test.victim", chaos::fault::stall, o));
  const uint64_t s0 = chaos::stalls_injected();
  FLOCK_FAULTPOINT("test.victim");  // this thread is not a victim
  EXPECT_EQ(chaos::stalls_injected(), s0);
  {
    chaos::victim_scope vs;
    FLOCK_FAULTPOINT("test.victim");
    EXPECT_EQ(chaos::stalls_injected(), s0 + 1);
  }
  FLOCK_FAULTPOINT("test.victim");  // scope ended
  EXPECT_EQ(chaos::stalls_injected(), s0 + 1);
}

// --- allocation-failure contract (allocator.hpp) ---------------------------

TEST_F(ChaosTest, PoolAllocFailurePropagatesNullWithoutSideEffects) {
  struct fresh_t {  // unique local type => fresh pool, first use refills
    uint64_t payload[4];
  };
  const uint64_t f0 = flock::alloc_failures();
  ASSERT_TRUE(chaos::arm("alloc.refill", chaos::fault::alloc_fail));

  fresh_t* p = flock::pool_new<fresh_t>();
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(flock::alloc_failures(), f0 + 1);
  EXPECT_EQ(flock::pool_outstanding<fresh_t>(), 0);

  chaos::reset();  // disarm: the pool must be fully usable afterwards
  p = flock::pool_new<fresh_t>();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(flock::pool_outstanding<fresh_t>(), 1);
  flock::pool_delete(p);
  EXPECT_EQ(flock::pool_outstanding<fresh_t>(), 0);
  EXPECT_EQ(flock::alloc_failures(), f0 + 1);
}

TEST_F(ChaosTest, ArrayAllocFailurePropagatesNullWithoutSideEffects) {
  const long long a0 = flock::arrays_outstanding();
  const uint64_t f0 = flock::alloc_failures();
  ASSERT_TRUE(chaos::arm("alloc.array", chaos::fault::alloc_fail));

  int* arr = flock::array_new<int>(128);
  EXPECT_EQ(arr, nullptr);
  EXPECT_EQ(flock::alloc_failures(), f0 + 1);
  EXPECT_EQ(flock::arrays_outstanding(), a0);

  chaos::reset();
  arr = flock::array_new<int>(128);
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(flock::array_length(arr), 128u);
  flock::array_delete(arr);
  EXPECT_EQ(flock::arrays_outstanding(), a0);
}

// --- the dead-holder scenario (paper §1, §3) -------------------------------
//
// A victim thread is killed immediately after installing its descriptor
// ("lock.install.post"): it holds the lock and will never run its own
// critical section again. In lock-free mode helpers must (a) finish the
// victim's section and (b) keep completing their own operations.

void killed_holder_scenario(bool ccas, bool nested) {
  SCOPED_TRACE(::testing::Message() << "ccas=" << ccas << " nested=" << nested);
  flock::set_ccas(ccas);
  flock::lock outer, inner;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  // Kill the victim at its (nested ? second : first) descriptor install:
  // nested => the victim dies holding BOTH locks mid-nest.
  chaos::arm_options o;
  o.victim_only = true;
  o.nth = nested ? 2 : 1;
  ASSERT_TRUE(chaos::arm("lock.install.post", chaos::fault::kill, o));

  std::thread victim([&] {
    chaos::victim_scope vs;
    flock::with_epoch([&] {
      auto body = [x] {
        x->store(x->load() + 1);
        return true;
      };
      if (nested)
        return flock::try_lock(outer,
                               [&] { return flock::try_lock(inner, body); });
      return flock::try_lock(inner, body);
    });
  });
  spin_until([] { return chaos::parked() == 1; });

  const uint64_t helps0 = flock::stats().helps_run;
  std::atomic<long long> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++)
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; i++)
        if (flock::with_epoch([&] {
              return flock::try_lock(inner, [x] {
                x->store(x->load() + 1);
                return true;
              });
            }))
          completed.fetch_add(1);
    });
  for (auto& w : workers) w.join();

  // System-wide progress past the dead holder, achieved by helping: the
  // victim's section completed exactly once (the +1) even though the
  // victim itself never moved again.
  EXPECT_GT(completed.load(), 0);
  EXPECT_GT(flock::stats().helps_run, helps0);
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(completed.load()) + 1);

  chaos::release_killed();
  victim.join();
  EXPECT_EQ(chaos::parked(), 0u);
  // The victim's resumed replay must be a harmless no-op (idempotence).
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(completed.load()) + 1);
  flock::pool_delete(x);
  chaos::reset();
}

TEST_F(ChaosTest, KilledHolderIsHelpedToCompletionCcasOn) {
  killed_holder_scenario(/*ccas=*/true, /*nested=*/false);
}
TEST_F(ChaosTest, KilledHolderIsHelpedToCompletionCcasOff) {
  killed_holder_scenario(/*ccas=*/false, /*nested=*/false);
}
TEST_F(ChaosTest, KilledHolderMidNestIsHelpedToCompletionCcasOn) {
  killed_holder_scenario(/*ccas=*/true, /*nested=*/true);
}
TEST_F(ChaosTest, KilledHolderMidNestIsHelpedToCompletionCcasOff) {
  killed_holder_scenario(/*ccas=*/false, /*nested=*/true);
}

// Kill the first thread to cross EACH lock-path protocol window and
// assert the other threads run to completion regardless. Covers the three
// distinct death positions: holding the lock with the thunk unrun
// (install.post), thunk run but unlock pending (handoff.pre_unlock), and
// mid-help of someone else's descriptor (help.pre_run).
TEST_F(ChaosTest, SystemCompletesPastKillAtEveryLockPathWindow) {
  for (const char* point :
       {"lock.install.post", "lock.handoff.pre_unlock", "lock.help.pre_run"}) {
    SCOPED_TRACE(point);
    chaos::reset();
    // Help immediately (no throttle) so the help window is exercised.
    flock::set_backoff({16, 2048, 0});
    ASSERT_TRUE(chaos::arm(point, chaos::fault::kill));  // first crossing

    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    const uint64_t k0 = chaos::kills_injected();
    std::atomic<long long> completed{0};
    std::atomic<int> finished{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; t++)
      workers.emplace_back([&] {
        for (int i = 0; i < 3000; i++)
          if (flock::with_epoch([&] {
                return flock::try_lock(l, [x] {
                  x->store(x->load() + 1);
                  return true;
                });
              }))
            completed.fetch_add(1);
        finished.fetch_add(1);
      });

    spin_until([&] { return chaos::parked() == 1 || finished.load() == 4; });
    if (chaos::parked() == 1) {
      // The claim under test: the three live workers finish their whole
      // fixed-op loops while the victim stays dead. (A wedge here hangs
      // into the ctest timeout — that IS the failure mode.)
      spin_until([&] { return finished.load() == 3; });
      EXPECT_EQ(chaos::parked(), 1u) << "victim still dead, others done";
      EXPECT_EQ(chaos::kills_injected(), k0 + 1);
    }
    chaos::release_killed();
    for (auto& w : workers) w.join();
    EXPECT_EQ(finished.load(), 4);
    // After release everyone ran to completion, so the exactly-once
    // accounting closes exactly: every applied increment was counted.
    EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(completed.load()));
    flock::pool_delete(x);
    flock::set_backoff({});
    flock::epoch_manager::instance().flush();
  }
}

// Blocking-mode contrast: nobody can help, so a killed holder wedges THAT
// lock — try_locks on it fail cleanly and deterministically — while
// unrelated locks keep working. Eventual completion returns at release.
TEST_F(ChaosTest, BlockingModeKilledHolderBlocksOnlyItsOwnLock) {
  flock::set_blocking(true);
  flock::lock held, other;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  auto* y = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  y->init(0);

  chaos::arm_options o;
  o.victim_only = true;
  // Lock-path windows never fire in blocking mode (no descriptors), so
  // the kill goes inside the victim's critical section body.
  ASSERT_TRUE(chaos::arm("test.blocking.body", chaos::fault::kill, o));

  std::thread victim([&] {
    chaos::victim_scope vs;
    flock::with_epoch([&] {
      return flock::try_lock(held, [x] {
        FLOCK_FAULTPOINT("test.blocking.body");
        x->store(x->load() + 1);
        return true;
      });
    });
  });
  spin_until([] { return chaos::parked() == 1; });

  std::atomic<long long> held_wins{0}, other_wins{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++)
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; i++) {
        if (flock::with_epoch(
                [&] { return flock::try_lock(held, [] { return true; }); }))
          held_wins.fetch_add(1);
        if (flock::with_epoch([&] {
              return flock::try_lock(other, [y] {
                y->store(y->load() + 1);
                return true;
              });
            }))
          other_wins.fetch_add(1);
      }
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(held_wins.load(), 0) << "no helping in blocking mode";
  EXPECT_GT(other_wins.load(), 0) << "unrelated locks unaffected";

  chaos::release_killed();
  victim.join();
  EXPECT_EQ(x->read_raw(), 1u);  // eventual completion after release
  EXPECT_EQ(y->read_raw(), static_cast<uint64_t>(other_wins.load()));
  flock::pool_delete(x);
  flock::pool_delete(y);
}

// --- migration windows (ds/hashtable.hpp) ----------------------------------

// Kill the migrator inside a grow unit's critical section, before the
// forwarded-flag publish. The stuck-migration audit must see the wedge,
// and any later updater must help the dead migrator's unit to completion
// and finish the whole resize.
TEST_F(ChaosTest, KilledGrowMigratorIsAuditedAndRescued) {
  flock_ds::hashtable<long, long> ht(64);
  ASSERT_TRUE(chaos::arm("ht.grow.pre_publish", chaos::fault::kill));

  // Single inserter: policy ticks every 16th update on its shard, so the
  // grow installs at the 64th insert and the 65th insert starts migrating
  // — and parks. The loop bound (90) keeps the post-release tail below
  // the next grow threshold (90 < 128), so no second resize is left
  // dangling at the end.
  std::atomic<long long> inserted{0};
  std::thread victim([&] {
    for (long k = 0; k < 90; k++)
      if (ht.insert(k, k)) inserted.fetch_add(1);
  });
  spin_until([] { return chaos::parked() == 1; });

  // With no other traffic the resize cannot move: the audit must flag it,
  // while the structural invariants still hold (the frozen chain and its
  // published copies are both intact).
  EXPECT_TRUE(ht.migration_stuck());
  EXPECT_FALSE(ht.check_invariants(/*audit_migration=*/true));
  EXPECT_TRUE(ht.check_invariants());

  // Rescue traffic: net-zero churn on an unrelated key. Each update helps
  // a batch of units; the dead migrator's unit is completed by helping
  // its bucket-lock descriptor, and the cursor-wrap completion recovery
  // re-derives `migrated` (the victim parks before its own count bump).
  const long scratch = 1 << 20;
  std::thread rescuer([&] {
    for (int i = 0; i < 4000; i++) {
      ht.insert(scratch, i);
      ht.remove(scratch);
      if (ht.bucket_count() == 128 && !ht.migration_stuck(1024)) return;
    }
  });
  rescuer.join();
  EXPECT_EQ(ht.bucket_count(), 128u);
  EXPECT_FALSE(ht.migration_stuck());
  EXPECT_TRUE(ht.check_invariants(/*audit_migration=*/true));

  chaos::release_killed();
  victim.join();
  EXPECT_EQ(ht.size(), static_cast<std::size_t>(inserted.load()));
  EXPECT_EQ(inserted.load(), 90);
  EXPECT_TRUE(ht.check_invariants(/*audit_migration=*/true));
}

// Kill the winner between "resize fully drained" and the root CAS: the
// swing must be rescued by any later helper (advance_root is idempotent).
TEST_F(ChaosTest, KilledRootSwingIsRescuedByHelpers) {
  flock_ds::hashtable<long, long> ht(64);
  ASSERT_TRUE(chaos::arm("ht.root.pre_swing", chaos::fault::kill));

  std::atomic<long long> inserted{0};
  std::thread victim([&] {
    for (long k = 0; k < 90; k++)
      if (ht.insert(k, k)) inserted.fetch_add(1);
  });
  spin_until([] { return chaos::parked() == 1; });

  const long scratch = 1 << 20;
  std::thread rescuer([&] {
    for (int i = 0; i < 4000; i++) {
      ht.insert(scratch, i);
      ht.remove(scratch);
      if (ht.bucket_count() == 128 && !ht.migration_stuck(1024)) return;
    }
  });
  rescuer.join();
  EXPECT_EQ(ht.bucket_count(), 128u);

  chaos::release_killed();
  victim.join();
  EXPECT_EQ(ht.size(), static_cast<std::size_t>(inserted.load()));
  EXPECT_TRUE(ht.check_invariants(/*audit_migration=*/true));
}

// Kill the migrator inside a shrink (merge) unit's critical section,
// before the single-store publish of the merged chain — the window the
// two-source protocol exists for. Helpers must complete the nested
// two-lock critical section and the shrink must finish.
TEST_F(ChaosTest, KilledMergeMigratorIsRescued) {
  flock_ds::hashtable<long, long> ht(64);
  ASSERT_TRUE(chaos::arm("ht.merge.pre_publish", chaos::fault::kill));

  // Phase 1: grow to 128 and drain it with the inserter's own traffic.
  // Phase 2: removals bring the count under 128/4 = 32, installing the
  // shrink; the next removal starts merging — and parks.
  std::atomic<long long> net{0};
  std::thread victim([&] {
    for (long k = 0; k < 100; k++)
      if (ht.insert(k, k)) net.fetch_add(1);
    for (long k = 0; k < 80; k++)
      if (ht.remove(k)) net.fetch_sub(1);
  });
  spin_until([] { return chaos::parked() == 1; });
  EXPECT_TRUE(ht.migration_stuck());

  const long scratch = 1 << 20;
  std::thread rescuer([&] {
    for (int i = 0; i < 4000; i++) {
      ht.insert(scratch, i);
      ht.remove(scratch);
      if (ht.bucket_count() == 64 && !ht.migration_stuck(1024)) return;
    }
  });
  rescuer.join();
  EXPECT_EQ(ht.bucket_count(), 64u);

  chaos::release_killed();
  victim.join();
  EXPECT_EQ(ht.size(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(net.load(), 20);
  EXPECT_TRUE(ht.check_invariants(/*audit_migration=*/true));
}

// --- resize-trigger allocation failure (graceful degradation) --------------

TEST_F(ChaosTest, ResizeAllocFailureDefersThenRecovers) {
  // The first 8 successor-table allocation attempts fail; the table must
  // keep absorbing updates at the old capacity (deferral, not crash),
  // then grow normally once the fault burst is exhausted.
  chaos::arm_options o;
  o.nth = 1;
  o.count = 8;
  ASSERT_TRUE(chaos::arm("ht.resize.alloc", chaos::fault::alloc_fail, o));

  const uint64_t d0 = flock::stats().resize_deferrals;
  flock_ds::hashtable<long, long> ht(64);
  constexpr int kThreads = 4;
  constexpr long kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++)
    workers.emplace_back([&, t] {
      const long base = t * kPerThread;
      for (long k = 0; k < kPerThread; k++) ht.insert(base + k, k);
      for (long k = 0; k < kPerThread; k += 2) ht.remove(base + k);
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(ht.size(), static_cast<std::size_t>(kThreads) * kPerThread / 2);
  EXPECT_GE(ht.resize_deferrals(), 1u);
  EXPECT_GE(flock::stats().resize_deferrals, d0 + ht.resize_deferrals());
  EXPECT_GE(ht.grow_count(), 1u) << "growth must resume after the burst";
  EXPECT_GT(ht.bucket_count(), 64u);
  EXPECT_TRUE(ht.check_invariants());
  EXPECT_GE(flock::stats().chaos_alloc_fails, 8u);
}

// --- cross-shard move windows (store/sharded_map.hpp) ----------------------

TEST_F(ChaosTest, MoveWindowsAreCrossedAndSurviveStalls) {
  chaos::arm_options o;
  o.count = 1000;  // stall every crossing
  o.stall_spins = 256;
  ASSERT_TRUE(chaos::arm("store.move.pre_nest", chaos::fault::stall, o));
  ASSERT_TRUE(chaos::arm("ht.move.pre_splice", chaos::fault::stall, o));

  flock_store::sharded_map<long, long> from(4), to(4);
  for (long k = 0; k < 64; k++) from.insert(k, k);
  std::size_t moved = 0;
  for (long k = 0; k < 64; k++)
    if (flock_store::try_move(from, to, k)) moved++;
  EXPECT_EQ(moved, 64u);
  EXPECT_EQ(from.size(), 0u);
  EXPECT_EQ(to.size(), 64u);
  EXPECT_GT(chaos::hits("store.move.pre_nest"), 0u);
  EXPECT_GT(chaos::hits("ht.move.pre_splice"), 0u);
}

// --- seeded plans -----------------------------------------------------------

// A seeded pseudo-random stall plan (plus alloc-fail at the resize
// trigger on odd seeds) must never affect correctness — only timing. CI
// runs this binary under several FLOCK_CHAOS_SEED values.
TEST_F(ChaosTest, SeededPlanPreservesExactSemanticsInBothModes) {
  uint64_t seed = chaos::seed_from_env();
  if (seed == 0) seed = 0x5eedULL;
  for (bool blocking : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                      << " blocking=" << blocking);
    chaos::reset();
    flock::mode_guard mode(blocking);
    chaos::arm_seeded(seed);

    flock_ds::hashtable<long, long> ht(64);
    constexpr int kThreads = 4;
    constexpr long kPerThread = 500;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++)
      workers.emplace_back([&, t] {
        const long base = t * kPerThread;
        for (long k = 0; k < kPerThread; k++) ht.insert(base + k, k);
        for (long k = 1; k < kPerThread; k += 2) ht.remove(base + k);
      });
    for (auto& w : workers) w.join();

    const std::size_t expect =
        static_cast<std::size_t>(kThreads) * ((kPerThread + 1) / 2);
    EXPECT_EQ(ht.size(), expect);
    EXPECT_TRUE(ht.check_invariants());
    chaos::reset();
  }
}

}  // namespace
