// stats.hpp — lightweight introspection counters for the helping
// machinery. Per-thread relaxed counters (padded), aggregated on demand;
// the hot-path cost is one thread-local increment. Used by benchmarks to
// report helping rates and by tests to assert helping actually happened.
#pragma once

#include <atomic>
#include <cstdint>

#include "config.hpp"
#include "threading.hpp"

namespace flock {

struct stats_snapshot {
  uint64_t descriptors_created = 0;  // lock acquisitions (lock-free mode)
  uint64_t helps_attempted = 0;      // help() entries
  uint64_t helps_run = 0;            // help() revalidations that ran a thunk
  uint64_t descriptors_reused = 0;   // fast-path pool reuse (never helped)
};

namespace detail {

struct alignas(kCacheLine) stat_cell {
  uint64_t created = 0;
  uint64_t attempted = 0;
  uint64_t ran = 0;
  uint64_t reused = 0;
};

inline stat_cell* stat_cells() {
  static stat_cell cells[kMaxThreads];
  return cells;
}

inline stat_cell& my_stats() { return stat_cells()[thread_id()]; }

}  // namespace detail

/// Aggregate counters across all threads (monotonic since process start).
inline stats_snapshot stats() {
  stats_snapshot s;
  const int bound = thread_id_bound();
  for (int i = 0; i < bound; i++) {
    const detail::stat_cell& c = detail::stat_cells()[i];
    s.descriptors_created += c.created;
    s.helps_attempted += c.attempted;
    s.helps_run += c.ran;
    s.descriptors_reused += c.reused;
  }
  return s;
}

}  // namespace flock
