# Empty compiler generated dependencies file for oversubscription_demo.
# This may be replaced when dependencies are built.
