// natarajan_bst.hpp — the lock-free external BST of Natarajan & Mittal
// (PPoPP 2014) [42], the second CAS-based lock-free baseline of §8.
//
// Marks live on EDGES (child words), not nodes: a delete first FLAGs the
// edge parent->leaf (injection), then TAGs the sibling edge and swings
// the ancestor->successor edge down to the sibling, excising the whole
// flagged/tagged chain in one CAS. Seeks track (ancestor, successor,
// parent, leaf); cleanup helps any delete whose flag it encounters.
// Reclamation: the winner of the excising CAS epoch-retires the removed
// region (it is unreachable and frozen once the CAS lands).
#pragma once

#include <cstdint>
#include <optional>

#include "flock/flock.hpp"

namespace flock_baselines {

template <class K, class V>
class natarajan_bst {
  struct skey {
    K k;
    int rank;  // 0 = real key, 1 = inf1, 2 = inf2
    bool operator<(const skey& o) const {
      if (rank != o.rank) return rank < o.rank;
      if (rank != 0) return false;
      return k < o.k;
    }
    bool operator==(const skey& o) const {
      return rank == o.rank && (rank != 0 || k == o.k);
    }
  };

  struct node {
    const bool is_leaf;
    const skey key;
    node(bool leaf, skey k) : is_leaf(leaf), key(k) {}
  };

  struct internal : node {
    std::atomic<uintptr_t> left;
    std::atomic<uintptr_t> right;
    internal(skey k, uintptr_t l, uintptr_t r)
        : node(false, k), left(l), right(r) {}
  };

  struct leaf : node {
    const V v;
    leaf(skey k, V val) : node(true, k), v(val) {}
  };

  static constexpr uintptr_t kFlag = 1;  // leaf edge: pending delete
  static constexpr uintptr_t kTag = 2;   // sibling edge: frozen
  static constexpr uintptr_t kBits = kFlag | kTag;

  static node* ptr(uintptr_t w) { return reinterpret_cast<node*>(w & ~kBits); }
  static bool flg(uintptr_t w) { return (w & kFlag) != 0; }
  static bool tag(uintptr_t w) { return (w & kTag) != 0; }
  static uintptr_t mk(node* p, bool f, bool t) {
    return reinterpret_cast<uintptr_t>(p) | (f ? kFlag : 0) | (t ? kTag : 0);
  }

  struct seek_record {
    internal* ancestor;
    internal* successor;
    internal* parent;
    leaf* lf;
  };

  std::atomic<uintptr_t>* edge(internal* n, skey key) {
    return key < n->key ? &n->left : &n->right;
  }

 public:
  natarajan_bst() {
    leaf* s1 = flock::pool_new<leaf>(skey{K{}, 1}, V{});
    leaf* s2 = flock::pool_new<leaf>(skey{K{}, 2}, V{});
    s_ = flock::pool_new<internal>(skey{K{}, 1}, mk(s1, false, false),
                                   mk(flock::pool_new<leaf>(skey{K{}, 1}, V{}),
                                      false, false));
    r_ = flock::pool_new<internal>(skey{K{}, 2}, mk(s_, false, false),
                                   mk(s2, false, false));
  }

  ~natarajan_bst() { destroy(r_); }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      seek_record sr = seek(skey{k, 0});
      if (sr.lf->key == skey{k, 0}) return sr.lf->v;
      return {};
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      skey key{k, 0};
      leaf* nl = flock::pool_new<leaf>(key, v);
      while (true) {
        seek_record sr = seek(key);
        if (sr.lf->key == key) {
          flock::pool_delete(nl);
          return false;
        }
        internal* parent = sr.parent;
        std::atomic<uintptr_t>* child_field = edge(parent, key);
        // Build the replacement subtree: internal with the two leaves.
        skey ikey = sr.lf->key < key ? key : sr.lf->key;
        internal* ni =
            key < sr.lf->key
                ? flock::pool_new<internal>(ikey, mk(nl, false, false),
                                            mk(sr.lf, false, false))
                : flock::pool_new<internal>(ikey, mk(sr.lf, false, false),
                                            mk(nl, false, false));
        uintptr_t expected = mk(sr.lf, false, false);
        if (child_field->compare_exchange_strong(expected, mk(ni, false, false),
                                                 std::memory_order_acq_rel))
          return true;
        flock::pool_delete(ni);
        // Help if the edge to our leaf is flagged/tagged, then retry.
        if (ptr(expected) == static_cast<node*>(sr.lf) &&
            (expected & kBits) != 0)
          cleanup(key, sr);
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      skey key{k, 0};
      bool injected = false;
      leaf* target = nullptr;
      while (true) {
        seek_record sr = seek(key);
        if (!injected) {
          if (!(sr.lf->key == key)) return false;
          std::atomic<uintptr_t>* child_field = edge(sr.parent, key);
          uintptr_t expected = mk(sr.lf, false, false);
          if (child_field->compare_exchange_strong(
                  expected, mk(sr.lf, true, false),
                  std::memory_order_acq_rel)) {
            injected = true;
            target = sr.lf;
            if (cleanup(key, sr)) return true;
          } else if (ptr(expected) == static_cast<node*>(sr.lf) &&
                     (expected & kBits) != 0) {
            cleanup(key, sr);
          }
        } else {
          if (sr.lf != target) return true;  // someone excised it for us
          if (cleanup(key, sr)) return true;
        }
      }
    });
  }

  std::size_t size() const { return count(r_); }

  bool check_invariants() const {
    bool ok = true;
    validate(r_, skey{K{}, 0}, false, skey{K{}, 2}, false, ok);
    return ok;
  }

  template <class F>
  void for_each(F&& f) const {
    walk(r_, f);
  }

 private:
  seek_record seek(skey key) {
    seek_record sr{r_, s_, s_, nullptr};
    uintptr_t parent_field = s_->left.load(std::memory_order_acquire);
    node* current = ptr(parent_field);
    uintptr_t current_field = parent_field;
    // Walk down; track the deepest untagged edge (ancestor->successor).
    while (!current->is_leaf) {
      internal* cur_int = static_cast<internal*>(current);
      if (!tag(parent_field)) {
        sr.ancestor = sr.parent;
        sr.successor = cur_int;
      }
      sr.parent = cur_int;
      parent_field = current_field;
      current_field = (key < current->key ? cur_int->left : cur_int->right)
                          .load(std::memory_order_acquire);
      current = ptr(current_field);
    }
    sr.lf = static_cast<leaf*>(current);
    return sr;
  }

  bool cleanup(skey key, const seek_record& sr) {
    internal* ancestor = sr.ancestor;
    internal* successor = sr.successor;
    internal* parent = sr.parent;
    std::atomic<uintptr_t>* succ_field = edge(ancestor, key);
    std::atomic<uintptr_t>* child_field;
    std::atomic<uintptr_t>* sibling_field;
    if (key < parent->key) {
      child_field = &parent->left;
      sibling_field = &parent->right;
    } else {
      child_field = &parent->right;
      sibling_field = &parent->left;
    }
    bool mine = true;
    if (!flg(child_field->load(std::memory_order_acquire))) {
      // Our key's leaf is not the flagged one: we are helping a delete
      // whose flag sits on the other edge.
      sibling_field = child_field;
      mine = false;
    }
    // Freeze the sibling edge with a tag.
    while (true) {
      uintptr_t w = sibling_field->load(std::memory_order_acquire);
      if (tag(w)) break;
      uintptr_t desired = w | kTag;
      if (sibling_field->compare_exchange_strong(w, desired,
                                                 std::memory_order_acq_rel))
        break;
    }
    uintptr_t w = sibling_field->load(std::memory_order_acquire);
    uintptr_t expected = mk(successor, false, false);
    // Promote the sibling (carrying its flag, dropping the tag).
    if (succ_field->compare_exchange_strong(expected,
                                            mk(ptr(w), flg(w), false),
                                            std::memory_order_acq_rel)) {
      retire_region(successor, ptr(w));
      return mine;  // true iff the excised flag was the caller's own
    }
    return false;
  }

  // The excised region: everything reachable from `from` except the
  // promoted subtree rooted at `keep`. Unreachable and frozen, so a plain
  // walk is safe; readers are epoch-protected.
  void retire_region(node* from, node* keep) {
    if (from == keep || from == nullptr) return;
    if (from->is_leaf) {
      flock::epoch_retire(static_cast<leaf*>(from));
      return;
    }
    internal* in = static_cast<internal*>(from);
    retire_region(ptr(in->left.load(std::memory_order_relaxed)), keep);
    retire_region(ptr(in->right.load(std::memory_order_relaxed)), keep);
    flock::epoch_retire(in);
  }

  void destroy(node* n) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      flock::pool_delete(static_cast<leaf*>(n));
      return;
    }
    internal* in = static_cast<internal*>(n);
    destroy(ptr(in->left.load(std::memory_order_relaxed)));
    destroy(ptr(in->right.load(std::memory_order_relaxed)));
    flock::pool_delete(in);
  }

  std::size_t count(node* n) const {
    if (n == nullptr) return 0;
    if (n->is_leaf)
      return static_cast<leaf*>(n)->key.rank == 0 ? 1 : 0;
    internal* in = static_cast<internal*>(n);
    return count(ptr(in->left.load())) + count(ptr(in->right.load()));
  }

  void validate(node* n, skey lo, bool has_lo, skey hi, bool has_hi,
                bool& ok) const {
    if (n == nullptr || !ok) {
      ok = false;
      return;
    }
    if (has_lo && n->key < lo) ok = false;
    if (has_hi && hi < n->key) ok = false;
    if (n->is_leaf) return;
    internal* in = static_cast<internal*>(n);
    validate(ptr(in->left.load()), lo, has_lo, in->key, true, ok);
    validate(ptr(in->right.load()), in->key, true, hi, has_hi, ok);
  }

  template <class F>
  void walk(node* n, F&& f) const {
    if (n == nullptr) return;
    if (n->is_leaf) {
      auto* l = static_cast<leaf*>(n);
      if (l->key.rank == 0) f(l->key.k, l->v);
      return;
    }
    internal* in = static_cast<internal*>(n);
    walk(ptr(in->left.load()), std::forward<F>(f));
    walk(ptr(in->right.load()), std::forward<F>(f));
  }

  internal* r_;  // sentinel root, key inf2
  internal* s_;  // sentinel, key inf1
};

}  // namespace flock_baselines
