# Empty dependencies file for test_move.
# This may be replaced when dependencies are built.
