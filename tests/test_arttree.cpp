// arttree (adaptive radix tree): oracle, stress, node-growth and radix
// structure tests. The adapter hashes keys (as in §8); the raw tests
// below use crafted keys to hit specific node-type transitions.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class ArttreeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(ArttreeTest, Battery) {
  set_test::battery<flock_workload::arttree_try>();
}

TEST_P(ArttreeTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::arttree_try>();
}

// Raw (unhashed) tree for structure-targeted tests.
using raw_art = flock_ds::arttree<uint64_t, false>;

TEST_P(ArttreeTest, GrowsThroughAllNodeTypes) {
  raw_art t;
  // Keys sharing the first 7 bytes, varying the last: one node must grow
  // N4 -> N16 -> N48 -> N256.
  const uint64_t base = 0x1122334455667700ULL;
  for (uint64_t b = 0; b < 256; b++)
    ASSERT_TRUE(t.insert(base | b, b)) << b;
  EXPECT_EQ(t.size(), 256u);
  EXPECT_TRUE(t.check_invariants());
  for (uint64_t b = 0; b < 256; b++) ASSERT_EQ(*t.find(base | b), b);
  for (uint64_t b = 0; b < 256; b += 2) ASSERT_TRUE(t.remove(base | b));
  EXPECT_EQ(t.size(), 128u);
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(ArttreeTest, SharedPrefixChains) {
  raw_art t;
  // Pairs of keys differing only in the last byte: leaf split must build
  // a chain of Node4s down to depth 7.
  ASSERT_TRUE(t.insert(0xAAAAAAAAAAAAAA01ULL, 1));
  ASSERT_TRUE(t.insert(0xAAAAAAAAAAAAAA02ULL, 2));
  EXPECT_EQ(*t.find(0xAAAAAAAAAAAAAA01ULL), 1u);
  EXPECT_EQ(*t.find(0xAAAAAAAAAAAAAA02ULL), 2u);
  EXPECT_FALSE(t.find(0xAAAAAAAAAAAAAA03ULL).has_value());
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(ArttreeTest, TombstoneRevive) {
  raw_art t;
  ASSERT_TRUE(t.insert(0x0102030405060708ULL, 7));
  ASSERT_TRUE(t.insert(0x0102030405060709ULL, 8));  // forces a fork
  ASSERT_TRUE(t.remove(0x0102030405060708ULL));     // tombstones the slot
  EXPECT_FALSE(t.find(0x0102030405060708ULL).has_value());
  ASSERT_TRUE(t.insert(0x0102030405060708ULL, 9));  // revives the slot
  EXPECT_EQ(*t.find(0x0102030405060708ULL), 9u);
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(ArttreeTest, LazyExpansionSingleKeyShallow) {
  raw_art t;
  ASSERT_TRUE(t.insert(0xDEADBEEF00000001ULL, 5));
  // A lone key is a leaf directly under the root (lazy expansion).
  EXPECT_EQ(t.size(), 1u);
  ASSERT_TRUE(t.remove(0xDEADBEEF00000001ULL));
  EXPECT_EQ(t.size(), 0u);
}

TEST_P(ArttreeTest, DuplicateAndMissing) {
  raw_art t;
  EXPECT_TRUE(t.insert(1, 1));
  EXPECT_FALSE(t.insert(1, 2));
  EXPECT_EQ(*t.find(1), 1u);
  EXPECT_FALSE(t.remove(2));
  EXPECT_TRUE(t.remove(1));
  EXPECT_FALSE(t.remove(1));
}

TEST_P(ArttreeTest, ConcurrentGrowthContention) {
  // All threads insert into the same growing node region.
  raw_art t;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  std::atomic<long long> inserted{0};
  for (int th = 0; th < kThreads; th++) {
    ts.emplace_back([&, th] {
      std::mt19937_64 rng(th);
      long long mine = 0;
      for (int i = 0; i < 5000; i++) {
        uint64_t k = 0x4242424242420000ULL | (rng() % 512);
        if (rng() & 1) {
          if (t.insert(k, k)) mine++;
        } else {
          if (t.remove(k)) mine--;
        }
      }
      inserted.fetch_add(mine);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(static_cast<long long>(t.size()), inserted.load());
  EXPECT_TRUE(t.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Modes, ArttreeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
