// mutable.hpp — idempotent shared mutable locations (paper §3.2, Alg. 2,
// and the §6 ABA optimizations).
//
// Three flavors:
//  * mutable_<T>    — "compact": one 64-bit word = 48-bit value + 16-bit
//                     tag. This is what the paper's experiments use ("All
//                     the experiments in Section 8 use this version since
//                     the mutables are no larger than a pointer").
//  * mutable_dw<T>  — fully general: (64-bit counter, 64-bit value) pair
//                     updated with a 16-byte CAS; loads touch only the two
//                     64-bit halves (§6 first optimization: "a load only
//                     needs to log the value... a store does not need to
//                     read the counter and value atomically").
//  * write_once<T>  — see write_once.hpp.
//
// Semantics (Alg. 2): load commits the observed value to the enclosing
// thunk's log so every run of the thunk sees the same value; store = load
// + CAS whose expected value is the logged one (tag/counter makes the
// location ABA-free, so all but the first CAS of a given thunk-store
// fail); cam is a CAS that externalizes no result. Outside of any thunk,
// commits pass through and these degrade to ordinary atomics.
//
// Hot-path structure: every public operation fetches the thread context
// once and resolves the ccas flag once, then runs a fully specialized
// core (_ctx<Ccas> members). The lock machinery calls the cores directly
// with its own dispatch (lock.hpp), so its loops contain no TLS lookups
// or shared-flag loads at all.
//
// Usage rule inherited from the paper: stores and CAMs must not race on
// the same location (enforce with your locking discipline).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "chaos/faultpoint.hpp"
#include "config.hpp"
#include "log.hpp"
#include "tagged.hpp"

namespace flock {

// ---------------------------------------------------------------------------
// Compact mutable: 48-bit value + 16-bit tag in one word.
// ---------------------------------------------------------------------------
template <class T>
class mutable_ {
 public:
  mutable_() : word_(pack_tagged(1, 0)) {}
  explicit mutable_(T v) : word_(pack_tagged(1, to_bits48(v))) {}

  mutable_(const mutable_&) = delete;
  mutable_& operator=(const mutable_&) = delete;

  /// Non-atomic initialization (object not yet shared).
  void init(T v) {
    // mo: relaxed — pre-publication by contract; the edge that shares
    // the object (e.g. a committed pointer, a lock-word CAS) releases.
    word_.store(pack_tagged(1, to_bits48(v)), std::memory_order_relaxed);
  }

  /// Idempotent load: logged inside a thunk (Alg. 2 line 40).
  T load() const {
    detail::thread_context* c = detail::my_ctx();
    // mo: acquire — a loaded pointer must carry the referent's
    // initialization (published by the seq_cst installing CAS).
    uint64_t p = word_.load(std::memory_order_acquire);
    if (c->log.block != nullptr) {
      p = use_ccas() ? detail::commit64_ctx<true>(c, p)
                     : detail::commit64_ctx<false>(c, p);
    }
    return from_bits48<T>(val_of(p));
  }

  /// Idempotent store (Alg. 2 line 43): logged load then tag-bumping CAS.
  void store(T v) {
    detail::thread_context* c = detail::my_ctx();
    if (use_ccas())
      store_ctx<true>(c, v);
    else
      store_ctx<false>(c, v);
  }

  /// Idempotent CAM (Alg. 2 line 46): CAS that returns nothing.
  void cam(T expected, T desired) {
    detail::thread_context* c = detail::my_ctx();
    if (use_ccas())
      cam_ctx<true>(c, expected, desired);
    else
      cam_ctx<false>(c, expected, desired);
  }

  /// Sugar matching the paper's examples: assignment stores.
  mutable_& operator=(T v) {
    store(v);
    return *this;
  }

  // --- Specialized cores: context supplied, ccas resolved at compile
  // time. Used by the public wrappers above and by lock.hpp. ---------------
  template <bool Ccas>
  void store_ctx(detail::thread_context* c, T v) {
    uint64_t oldp = load_packed_ctx<Ccas>(c);
    cas_packed_ctx<Ccas>(
        c, oldp, pack_tagged(detail::next_tag(this, oldp), to_bits48(v)));
  }

  template <bool Ccas>
  void cam_ctx(detail::thread_context* c, T expected, T desired) {
    uint64_t oldp = load_packed_ctx<Ccas>(c);
    if (val_of(oldp) != to_bits48(expected)) return;
    cas_packed_ctx<Ccas>(
        c, oldp,
        pack_tagged(detail::next_tag(this, oldp), to_bits48(desired)));
  }

  /// Logged load returning the full packed word (lock implementation).
  template <bool Ccas>
  uint64_t load_packed_ctx(detail::thread_context* c) const {
    // mo: acquire — same pairing as load(): the packed value may be a
    // pointer whose referent must be visible to the caller.
    uint64_t p = word_.load(std::memory_order_acquire);
    if (c->log.block != nullptr) p = detail::commit64_ctx<Ccas>(c, p);
    return p;
  }

  uint64_t load_packed() const {
    detail::thread_context* c = detail::my_ctx();
    return use_ccas() ? load_packed_ctx<true>(c) : load_packed_ctx<false>(c);
  }

  // --- Raw (unlogged) access: used by the lock implementation for the
  // effects-once steps that must not consume enclosing log slots, by
  // blocking mode, and by read-only code outside of any thunk. -------------
  T read_raw() const {
    // mo: acquire — unlogged read-only path; still carries a loaded
    // pointer's referent (same pairing as load()).
    return from_bits48<T>(val_of(word_.load(std::memory_order_acquire)));
  }
  uint64_t read_raw_packed() const {
    // mo: acquire — see read_raw.
    return word_.load(std::memory_order_acquire);
  }
  /// Relaxed read of the packed word, for local spin-waiting (the backoff
  /// re-checks in lock.hpp): a stale value only costs an extra round, and
  /// any decision taken after the spin revalidates with an ordered read.
  uint64_t read_raw_packed_relaxed() const {
    // mo: relaxed — spin-wait probe only; see the doc comment above.
    return word_.load(std::memory_order_relaxed);
  }
  /// seq_cst read of the packed word: participates in the helped/unlock
  /// hand-off protocol (lock.hpp), whose correctness argument runs through
  /// the seq_cst total order instead of fences. Same code as an acquire
  /// load on x86.
  uint64_t read_raw_packed_sc() const {
    return word_.load(std::memory_order_seq_cst);
  }

  /// Tag-bumping raw CAS; announced so tag-wrap scans can see the expected
  /// word. Returns true if this call installed the new value.
  template <bool Ccas>
  bool cas_raw_packed_ctx(detail::thread_context* c, uint64_t expected_packed,
                          T desired) {
    return cas_packed_ctx<Ccas>(
        c, expected_packed,
        pack_tagged(detail::next_tag(this, expected_packed),
                    to_bits48(desired)));
  }

  bool cas_raw_packed(uint64_t expected_packed, T desired) {
    detail::thread_context* c = detail::my_ctx();
    return use_ccas() ? cas_raw_packed_ctx<true>(c, expected_packed, desired)
                      : cas_raw_packed_ctx<false>(c, expected_packed, desired);
  }

  /// Plain release store (blocking mode only: no helpers exist).
  void store_raw(T v) {
    // mo: acquire — reads the current tag; under blocking mode the lock
    // already orders stores, acquire keeps readers-outside-locks safe.
    uint64_t oldp = word_.load(std::memory_order_acquire);
    // mo: release — publishes the stored value's referent to the acquire
    // loads above (the §5 blocking-mode store).
    word_.store(pack_tagged(detail::next_tag(this, oldp), to_bits48(v)),
                std::memory_order_release);
  }

 private:
  template <bool Ccas>
  bool cas_packed_ctx(detail::thread_context* c, uint64_t expected,
                      uint64_t desired) {
    if constexpr (Ccas) {
      // compare-and-compare-and-swap (§6)
      // mo: acquire — the pre-check substitutes for the CAS's failure
      // path, so it needs the CAS failure ordering (acquire) too.
      if (word_.load(std::memory_order_acquire) != expected) return false;
    }
    // The window between (c)cas validation and the committing CAS: the
    // tag in `expected` can go stale right here. Scheduler-only yield
    // point (no fault plans); erased without FLOCK_CHAOS.
    FLOCK_SCHEDPOINT("mut.cas.pre");
    detail::announce_guard g(c, this, expected);
    // seq_cst (not acq_rel) so lock-word CASes participate in the
    // hand-off protocol's total order (lock.hpp); identical code on x86,
    // where a locked RMW is a full barrier either way.
    // mo: acquire (failure) — a failed install still observes the
    // winner's word, e.g. a descriptor the caller may go on to help.
    return word_.compare_exchange_strong(expected, desired,
                                         std::memory_order_seq_cst,
                                         std::memory_order_acquire);
  }

  std::atomic<uint64_t> word_;
};

// ---------------------------------------------------------------------------
// Double-word mutable: 64-bit monotonic counter + full 64-bit value.
// ---------------------------------------------------------------------------
template <class T>
class alignas(16) mutable_dw {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);

  struct rep {
    uint64_t val;
    uint64_t cnt;
  };

 public:
  mutable_dw() : rep_{0, 1} {}
  explicit mutable_dw(T v) : rep_{to_bits(v), 1} {}
  mutable_dw(const mutable_dw&) = delete;
  mutable_dw& operator=(const mutable_dw&) = delete;

  void init(T v) {
    rep_.val = to_bits(v);
    rep_.cnt = 1;
  }

  T load() const {
    detail::thread_context* c = detail::my_ctx();
    uint64_t v = use_ccas() ? load_pair_ctx<true>(c).val
                            : load_pair_ctx<false>(c).val;
    return from_bits(v);
  }

  void store(T v) {
    detail::thread_context* c = detail::my_ctx();
    if (use_ccas())
      store_ctx<true>(c, v);
    else
      store_ctx<false>(c, v);
  }

  void cam(T expected, T desired) {
    detail::thread_context* c = detail::my_ctx();
    if (use_ccas())
      cam_ctx<true>(c, expected, desired);
    else
      cam_ctx<false>(c, expected, desired);
  }

  mutable_dw& operator=(T v) {
    store(v);
    return *this;
  }

  T read_raw() const {
    // mo: acquire — value half only; carries a loaded pointer's referent
    // like the compact flavor's read_raw.
    return from_bits(__atomic_load_n(&rep_.val, __ATOMIC_ACQUIRE));
  }

 private:
  template <bool Ccas>
  void store_ctx(detail::thread_context* c, T v) {
    rep pair = load_pair_ctx<Ccas>(c);
    rep desired{to_bits(v), pair.cnt + 1};
    cas_pair<Ccas>(pair, desired);
  }

  template <bool Ccas>
  void cam_ctx(detail::thread_context* c, T expected, T desired) {
    rep pair = load_pair_ctx<Ccas>(c);
    if (pair.val != to_bits(expected)) return;
    cas_pair<Ccas>(pair, rep{to_bits(desired), pair.cnt + 1});
  }

  static uint64_t to_bits(T v) {
    uint64_t b = 0;
    __builtin_memcpy(&b, &v, sizeof(T));
    return b;
  }
  static T from_bits(uint64_t b) {
    T v{};
    __builtin_memcpy(&v, &b, sizeof(T));
    return v;
  }

  /// §6 first optimization: no 16-byte atomic load. Read the counter, then
  /// the value; the pair is logged so all runs of the thunk agree, and a
  /// torn read simply makes the subsequent CAS fail (which is only
  /// possible when another location's lock raced a pure reader — stores
  /// to this location cannot race by assumption).
  template <bool Ccas>
  rep load_pair_ctx(detail::thread_context* c) const {
    // Counter first, then value: the acquire on cnt keeps the value read
    // no older than the counter it is paired with, and the value's
    // acquire carries its referent (see load()).
    // mo: acquire (both halves of the §6 unpaired read).
    uint64_t cnt = __atomic_load_n(&rep_.cnt, __ATOMIC_ACQUIRE);
    uint64_t v = __atomic_load_n(&rep_.val, __ATOMIC_ACQUIRE);
    if (c->log.block != nullptr) {
      // Counter fits in 63 bits; bit 127 stays free for the present bit.
      u128 committed =
          detail::commit_raw_ctx<Ccas>(c, (static_cast<u128>(cnt) << 64) | v)
              .first;
      cnt = static_cast<uint64_t>(committed >> 64);
      v = static_cast<uint64_t>(committed);
    }
    return rep{v, cnt};
  }

  template <bool Ccas>
  bool cas_pair(rep expected, rep desired) {
    if constexpr (Ccas) {
      // mo: acquire — ccas pre-check stands in for the CAS failure path
      // (same argument as the compact flavor's cas_packed_ctx).
      uint64_t cnt = __atomic_load_n(&rep_.cnt, __ATOMIC_ACQUIRE);
      if (cnt != expected.cnt) return false;
    }
    // mo: acq_rel / acquire-on-failure — release publishes the stored
    // value's referent to load_pair_ctx's acquire reads; mutable_dw words
    // are not lock words, so the seq_cst hand-off argument does not apply.
    return __atomic_compare_exchange(&rep_, &expected, &desired,
                                     /*weak=*/false, __ATOMIC_ACQ_REL,
                                     __ATOMIC_ACQUIRE);
  }

  mutable rep rep_;
};

}  // namespace flock
