// oversubscription_demo — the paper's headline result, live: with more
// threads than cores, blocking locks stall whenever a lock holder is
// descheduled, while lock-free locks let anyone finish the holder's
// critical section. Runs the same leaftree workload at 1x and 4x the
// hardware concurrency in both modes and prints the ratio (paper: up to
// 2.4x in favour of lock-free when oversubscribed — Figures 5d/5g/5h).
//
//   $ ./oversubscription_demo [millis]
#include <cstdio>
#include <cstdlib>

#include "flock/flock.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

double run_one(bool blocking, int threads, int millis) {
  flock::set_blocking(blocking);
  const uint64_t range = 100000;
  flock_workload::leaftree_try tree;
  flock_workload::prefill_half(tree, range);
  flock_workload::zipf_distribution dist(range, 0.75);
  flock_workload::run_config cfg;
  cfg.threads = threads;
  cfg.update_percent = 50;
  cfg.millis = millis;
  auto res = flock_workload::run_mixed(tree, dist, cfg);
  flock::epoch_manager::instance().flush();
  return res.mops;
}

}  // namespace

int main(int argc, char** argv) {
  int millis = argc > 1 ? std::atoi(argv[1]) : 500;
  int cores = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("oversubscription demo: leaftree, 100K keys, 50%% updates\n");
  std::printf("%-22s %10s %10s %8s\n", "config", "blocking", "lock-free",
              "lf/bl");
  for (int mult : {1, 2, 4}) {
    int threads = mult * cores;
    double bl = run_one(true, threads, millis);
    double lf = run_one(false, threads, millis);
    std::printf("%2dx cores (%3d thr)    %7.2f M/s %7.2f M/s %7.2fx\n", mult,
                threads, bl, lf, lf / bl);
  }
  std::printf(
      "\nExpected shape (paper Figs. 5d/5g/5h): ~parity at 1x, lock-free\n"
      "pulling ahead as oversubscription grows.\n");
  return 0;
}
