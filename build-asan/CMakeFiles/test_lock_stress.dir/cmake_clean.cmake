file(REMOVE_RECURSE
  "CMakeFiles/test_lock_stress.dir/tests/test_lock_stress.cpp.o"
  "CMakeFiles/test_lock_stress.dir/tests/test_lock_stress.cpp.o.d"
  "test_lock_stress"
  "test_lock_stress.pdb"
  "test_lock_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
