// Stress tests for the mode-specialized hot paths (lock.hpp): the same
// workload through every dispatch specialization (blocking/helping ×
// ccas on/off), deterministic forced helping with observable counters,
// and epoch-batch draining leaving the pools balanced after flush().
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "helping_test_util.hpp"

namespace {

// One workload, every specialization: concurrent counter increments
// through try_lock plus a nested inner lock, validated against the number
// of successful acquisitions.
TEST(HotPath, SameWorkloadThroughEveryDispatchSpecialization) {
  for (bool blocking : {false, true}) {
    for (bool ccas : {true, false}) {
      flock::mode_guard mode(blocking);
      flock::set_ccas(ccas);
      flock::lock outer, inner;
      auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
      auto* y = flock::pool_new<flock::mutable_<uint64_t>>();
      x->init(0);
      y->init(0);
      constexpr int kThreads = 4;
      constexpr int kOps = 1500;
      std::atomic<long long> outer_wins{0};
      std::vector<std::thread> ts;
      for (int t = 0; t < kThreads; t++) {
        ts.emplace_back([&] {
          long long ow = 0;
          for (int i = 0; i < kOps; i++) {
            bool got = flock::with_epoch([&] {
              return flock::try_lock(outer, [&inner, x, y] {
                x->store(x->load() + 1);
                // Nested acquisition: exercises the log-slot discipline
                // under the specialized paths. The outer lock serializes
                // all access to `inner`, so this always succeeds (stale
                // helper runs can't re-lock it: their CASes are
                // tag-guarded effects-once).
                flock::try_lock(inner, [y] {
                  y->store(y->load() + 1);
                  return true;
                });
                return true;
              });
            });
            if (got) ow++;
          }
          outer_wins.fetch_add(ow);
        });
      }
      for (auto& t : ts) t.join();
      EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(outer_wins.load()))
          << "blocking=" << blocking << " ccas=" << ccas;
      // Exactly one effective inner acquisition per outer win.
      EXPECT_EQ(y->read_raw(), x->read_raw())
          << "blocking=" << blocking << " ccas=" << ccas;
      flock::pool_delete(x);
      flock::pool_delete(y);
      flock::set_ccas(true);
      flock::epoch_manager::instance().flush();
    }
  }
}

// Deterministic helping in both ccas specializations (scaffold in
// helping_test_util.hpp).
TEST(HotPath, ForcedHelpingRunsThunksInBothCcasModes) {
  flock::set_blocking(false);
  for (bool ccas : {true, false}) {
    flock::set_ccas(ccas);
    auto before = flock::stats();
    uint64_t applied = helping_test::force_one_help();
    auto after = flock::stats();
    EXPECT_GT(after.helps_attempted - before.helps_attempted, 0u)
        << "ccas=" << ccas;
    EXPECT_GT(after.helps_run - before.helps_run, 0u) << "ccas=" << ccas;
    EXPECT_EQ(applied, 1u) << "ccas=" << ccas;
    flock::set_ccas(true);
    flock::epoch_manager::instance().flush();
  }
}

// Epoch-batch draining: push far more retires than one batch holds (so
// sealing, the cached-bound fast path, and the scan path all execute),
// then verify flush() leaves zero outstanding pool objects and no pending
// retired items.
TEST(HotPath, EpochBatchDrainingBalancesPools) {
  struct node {
    uint64_t payload[6];
  };
  flock::epoch_manager::instance().flush();
  long long node_base = flock::pool_outstanding<node>();
  long long desc_base = flock::pool_outstanding<flock::descriptor>();

  constexpr int kThreads = 4;
  constexpr int kOps = 5000;  // ~78 batches per thread at capacity 64
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOps; i++) {
        flock::with_epoch([&] {
          node* n = flock::pool_new<node>();
          flock::epoch_retire(n);
        });
      }
    });
  }
  for (auto& t : ts) t.join();

  // Contended lock traffic on top, so descriptors also flow through the
  // epoch-retire path (helped descriptors cannot take the reuse shortcut).
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  std::vector<std::thread> ls;
  for (int t = 0; t < kThreads; t++) {
    ls.emplace_back([&] {
      for (int i = 0; i < 2000; i++) {
        flock::with_epoch([&] {
          return flock::try_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
      }
    });
  }
  for (auto& t : ls) t.join();
  flock::pool_delete(x);

  for (int i = 0; i < 3; i++) flock::epoch_manager::instance().flush();
  EXPECT_EQ(flock::pool_outstanding<node>(), node_base);
  EXPECT_EQ(flock::pool_outstanding<flock::descriptor>(), desc_base);
  EXPECT_EQ(flock::epoch_manager::instance().pending(), 0);
}

}  // namespace
