// Workload substrate tests: zipfian distribution statistics, prefill
// determinism, driver bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"
#include "workload/zipf.hpp"

namespace {

using flock_workload::rng64;
using flock_workload::zipf_distribution;

TEST(Zipf, UniformCoversRange) {
  zipf_distribution d(100, 0.0);
  rng64 rng(1);
  std::vector<int> hits(101, 0);
  for (int i = 0; i < 100000; i++) {
    uint64_t k = d.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
    hits[k]++;
  }
  // Every key hit; roughly uniform (within 5x of each other).
  auto [mn, mx] = std::minmax_element(hits.begin() + 1, hits.end());
  EXPECT_GT(*mn, 0);
  EXPECT_LT(*mx, 5 * *mn);
}

TEST(Zipf, SkewConcentratesMass) {
  zipf_distribution d(10000, 0.99);
  rng64 rng(2);
  std::map<uint64_t, int> hits;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; i++) hits[d.sample(rng)]++;
  // Top-10 keys should hold a large fraction of the mass at alpha=0.99.
  std::vector<int> counts;
  counts.reserve(hits.size());
  for (auto& [k, c] : hits) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  long long top10 = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(counts.size()); i++)
    top10 += counts[i];
  EXPECT_GT(top10, kSamples / 5);  // >20% in top 10 of 10000 keys
  // And far more distinct keys than 10 were still touched.
  EXPECT_GT(hits.size(), 1000u);
}

TEST(Zipf, HigherAlphaMoreSkew) {
  rng64 rng(3);
  auto top1_fraction = [&](double alpha) {
    zipf_distribution d(1000, alpha);
    std::map<uint64_t, int> hits;
    for (int i = 0; i < 50000; i++) hits[d.sample(rng)]++;
    int mx = 0;
    for (auto& [k, c] : hits) mx = std::max(mx, c);
    return static_cast<double>(mx) / 50000.0;
  };
  double f75 = top1_fraction(0.75);
  double f99 = top1_fraction(0.99);
  EXPECT_GT(f99, f75);
}

TEST(Zipf, ScramblingSpreadsHotKeys) {
  // The hottest keys must not be the numerically smallest ones.
  zipf_distribution d(10000, 0.99);
  rng64 rng(4);
  std::map<uint64_t, int> hits;
  for (int i = 0; i < 100000; i++) hits[d.sample(rng)]++;
  uint64_t hottest = 0;
  int best = 0;
  for (auto& [k, c] : hits)
    if (c > best) {
      best = c;
      hottest = k;
    }
  // With a random permutation the hottest key is essentially uniform on
  // [1,10000]; the probability it lands in [1,10] is 0.1%.
  EXPECT_GT(hottest, 10u);
}

TEST(Prefill, DeterministicHalf) {
  flock_workload::hashtable_try s;
  flock_workload::prefill_half(s, 2000, 4);
  std::size_t expected = 0;
  for (uint64_t k = 1; k <= 2000; k++)
    if (flock_workload::prefill_selects(k)) expected++;
  EXPECT_EQ(s.size(), expected);
  // Roughly half.
  EXPECT_GT(expected, 800u);
  EXPECT_LT(expected, 1200u);
}

TEST(Prefill, BucketOccupancyNearUniform) {
  // Regression: prefill selection used to be `splitmix64(k) & 1` — the
  // same bit as bit 0 of the hashtable's bucket index — so every
  // prefilled key landed in an odd-indexed bucket, half the table stayed
  // empty, and measured chain lengths doubled. The selection hash is now
  // decorrelated; even- and odd-indexed buckets must fill evenly.
  const uint64_t range = 1 << 15;
  flock_workload::set_adapter<flock_ds::hashtable<uint64_t, uint64_t, false>>
      s(std::size_t{range});
  flock_workload::prefill_half(s, range, 4);
  auto occ = s.underlying().bucket_occupancy();
  ASSERT_GE(occ.size(), 2u);
  std::size_t even = 0, odd = 0, empty = 0;
  for (std::size_t i = 0; i < occ.size(); i++) {
    ((i & 1) ? odd : even) += occ[i];
    if (occ[i] == 0) empty++;
  }
  ASSERT_GT(even, 0u);
  ASSERT_GT(odd, 0u);
  double parity = static_cast<double>(even) / static_cast<double>(odd);
  EXPECT_GT(parity, 0.8) << "even buckets starved";
  EXPECT_LT(parity, 1.25) << "odd buckets starved";
  // With ~n/2 keys in n buckets the empty fraction should be near
  // e^-0.5 ~ 0.607; the parity bug put it at 1/2 + e^-1/2 ~ 0.684.
  double empty_frac =
      static_cast<double>(empty) / static_cast<double>(occ.size());
  EXPECT_LT(empty_frac, 0.65);
  flock::epoch_manager::instance().flush();
}

TEST(Driver, CountsAndRates) {
  flock_workload::leaftree_try s;
  flock_workload::prefill_half(s, 1000, 4);
  flock_workload::zipf_distribution dist(1000, 0.75);
  flock_workload::run_config cfg;
  cfg.threads = 4;
  cfg.update_percent = 50;
  cfg.millis = 150;
  auto res = flock_workload::run_mixed(s, dist, cfg);
  EXPECT_GT(res.total_ops, 1000u);
  EXPECT_EQ(res.total_ops, res.finds + res.inserts + res.removes);
  EXPECT_GT(res.mops, 0.0);
  // Update fraction within a few points of 50%.
  double updates = static_cast<double>(res.inserts + res.removes);
  double frac = updates / static_cast<double>(res.total_ops);
  EXPECT_GT(frac, 0.42);
  EXPECT_LT(frac, 0.58);
  flock::epoch_manager::instance().flush();
}

TEST(Driver, ZeroUpdatesMeansReadOnly) {
  flock_workload::leaftree_try s;
  flock_workload::prefill_half(s, 100, 2);
  std::size_t before = s.size();
  flock_workload::zipf_distribution dist(100, 0.0);
  flock_workload::run_config cfg;
  cfg.threads = 4;
  cfg.update_percent = 0;
  cfg.millis = 80;
  auto res = flock_workload::run_mixed(s, dist, cfg);
  EXPECT_EQ(res.inserts + res.removes, 0u);
  EXPECT_EQ(s.size(), before);
}

}  // namespace
