# Empty compiler generated dependencies file for test_dlist.
# This may be replaced when dependencies are built.
