// micro_flock — microbenchmarks for the paper's §6/§8 overhead claims:
//  * cost of a logged vs raw mutable load/store (the idempotence tax);
//  * descriptor allocation + try_lock cycle in both modes ("(1) allocating
//    and initializing a new descriptor every time a lock is acquired");
//  * commitValue under contention with compare-and-compare-and-swap on
//    vs off ("this rather simple change made a significant improvement...
//    sometimes a factor of two or more");
//  * log entries per successful dlist insert/remove ("A successful
//    insert commits about 5 entries to the log").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "ds/dlist.hpp"
#include "ds/hashtable.hpp"
#include "flock/flock.hpp"
#include "harness.hpp"
#include "store/sharded_map.hpp"
#include "workload/driver.hpp"
#include "workload/zipf.hpp"

namespace {

// --- mutable load/store, raw vs logged -----------------------------------

void BM_mutable_load_raw(benchmark::State& state) {
  flock::mutable_<uint64_t> m(42);
  for (auto _ : state) benchmark::DoNotOptimize(m.load());
}
BENCHMARK(BM_mutable_load_raw);

void BM_mutable_load_logged(benchmark::State& state) {
  flock::mutable_<uint64_t> m(42);
  auto* blk = flock::pool_new<flock::log_block>();
  // Reset the cursor and slot through a context pointer fetched once,
  // outside the loop: real thunks fetch the context once per operation
  // (in the lock entry), so per-iteration bench bookkeeping must not add
  // a second TLS fetch on top of the one inside load() being measured.
  auto* ctx = flock::detail::my_ctx();
  for (auto _ : state) {
    ctx->log = {blk, 0};  // fresh position: commit always CASes
    blk->entries[0].v.store(0, std::memory_order_relaxed);
    benchmark::DoNotOptimize(m.load());
  }
  ctx->log = {};
  flock::pool_delete(blk);
}
BENCHMARK(BM_mutable_load_logged);

void BM_mutable_store_raw(benchmark::State& state) {
  flock::mutable_<uint64_t> m(0);
  uint64_t i = 0;
  for (auto _ : state) m.store(i++ & 0xFFFF);
}
BENCHMARK(BM_mutable_store_raw);

void BM_mutable_store_logged(benchmark::State& state) {
  flock::mutable_<uint64_t> m(0);
  auto* blk = flock::pool_new<flock::log_block>();
  auto* ctx = flock::detail::my_ctx();  // fetched once, as in a real thunk
  uint64_t i = 0;
  for (auto _ : state) {
    ctx->log = {blk, 0};
    blk->entries[0].v.store(0, std::memory_order_relaxed);
    m.store(i++ & 0xFFFF);
  }
  ctx->log = {};
  flock::pool_delete(blk);
}
BENCHMARK(BM_mutable_store_logged);

void BM_mutable_dw_store(benchmark::State& state) {
  flock::mutable_dw<uint64_t> m(0);
  uint64_t i = 0;
  for (auto _ : state) m.store(i++);
}
BENCHMARK(BM_mutable_dw_store);

// --- lock acquisition cycle -----------------------------------------------

void BM_trylock_cycle_lockfree(benchmark::State& state) {
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  for (auto _ : state) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [x] {
        x->store(x->load() + 1);
        return true;
      });
    });
  }
  flock::pool_delete(x);
  flock::epoch_manager::instance().flush();
}
BENCHMARK(BM_trylock_cycle_lockfree);

void BM_trylock_cycle_blocking(benchmark::State& state) {
  flock::set_blocking(true);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  for (auto _ : state) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [x] {
        x->store(x->load() + 1);
        return true;
      });
    });
  }
  flock::set_blocking(false);
  flock::pool_delete(x);
}
BENCHMARK(BM_trylock_cycle_blocking);

void BM_descriptor_create_destroy(benchmark::State& state) {
  for (auto _ : state) {
    flock::descriptor* d = flock::create_descriptor([] { return true; });
    benchmark::DoNotOptimize(d);
    flock::pool_delete(d);
  }
}
BENCHMARK(BM_descriptor_create_destroy);

// --- contended commits: compare-and-compare-and-swap ablation -------------

struct shared_log_fixture {
  flock::log_block* blk;
  std::atomic<int> round{0};
};
shared_log_fixture g_fix;

void BM_contended_commit(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_fix.blk = flock::pool_new<flock::log_block>();
    flock::set_ccas(state.range(0) != 0);
  }
  for (auto _ : state) {
    // All threads commit to the same slot: exactly the helping-storm
    // pattern of §6.
    flock::tls_log() = {g_fix.blk, 0};
    benchmark::DoNotOptimize(flock::commit64(state.thread_index() + 1));
  }
  flock::tls_log() = {};
  if (state.thread_index() == 0) {
    flock::set_ccas(true);
    flock::pool_delete(g_fix.blk);
  }
}
BENCHMARK(BM_contended_commit)
    ->Arg(0)
    ->Arg(1)
    ->Threads(8)
    ->UseRealTime();

// --- epoch machinery -------------------------------------------------------

void BM_with_epoch(benchmark::State& state) {
  for (auto _ : state) {
    flock::with_epoch([] { return 1; });
  }
}
BENCHMARK(BM_with_epoch);

void BM_pool_new_delete(benchmark::State& state) {
  struct obj {
    uint64_t a[4];
  };
  for (auto _ : state) {
    obj* p = flock::pool_new<obj>();
    benchmark::DoNotOptimize(p);
    flock::pool_delete(p);
  }
}
BENCHMARK(BM_pool_new_delete);

// --- JSON throughput series (BENCH_micro.json) -----------------------------
//
// Timed loops independent of the google-benchmark harness so the numbers
// are directly comparable across PRs: single-thread uncontended try_lock
// cycles in Mops for both modes, plus raw/logged mutable ops.

template <class Op>
double mops_of(Op&& op, long iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; i++) op();
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(iters) / secs / 1e6;
}

void emit_json_series() {
  const long iters = bench::env_long("FLOCK_MICRO_ITERS", 2000000);
  bench::json_reporter rep;

  {
    flock::set_blocking(false);
    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    auto cycle = [&] {
      flock::with_epoch([&] {
        return flock::try_lock(l, [x] {
          x->store(x->load() + 1);
          return true;
        });
      });
    };
    mops_of(cycle, iters / 10);  // warmup
    rep.add("trylock_lockfree_uncontended", mops_of(cycle, iters));
    flock::pool_delete(x);
    flock::epoch_manager::instance().flush();
  }
  {
    flock::mode_guard mode(true);
    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    auto cycle = [&] {
      flock::with_epoch([&] {
        return flock::try_lock(l, [x] {
          x->store(x->load() + 1);
          return true;
        });
      });
    };
    mops_of(cycle, iters / 10);
    rep.add("trylock_blocking_uncontended", mops_of(cycle, iters));
    flock::pool_delete(x);
  }
  {
    flock::set_blocking(false);
    flock::lock l;
    auto cycle = [&] {
      flock::with_epoch(
          [&] { return flock::try_lock(l, [] { return true; }); });
    };
    mops_of(cycle, iters / 10);
    rep.add("trylock_lockfree_empty_thunk", mops_of(cycle, iters));
    flock::epoch_manager::instance().flush();
  }
  {
    flock::mutable_<uint64_t> m(42);
    rep.add("mutable_load_raw",
            mops_of([&] { benchmark::DoNotOptimize(m.load()); }, iters));
    auto* blk = flock::pool_new<flock::log_block>();
    // Context fetched once outside the loop (see BM_mutable_load_logged):
    // the measured my_ctx() is the one inside load(), as in a real thunk.
    auto* ctx = flock::detail::my_ctx();
    rep.add("mutable_load_logged", mops_of(
                                       [&] {
                                         ctx->log = {blk, 0};
                                         blk->entries[0].v.store(
                                             0, std::memory_order_relaxed);
                                         benchmark::DoNotOptimize(m.load());
                                       },
                                       iters));
    ctx->log = {};
    flock::pool_delete(blk);
  }
  {
    struct obj {
      uint64_t a[4];
    };
    rep.add("pool_new_delete", mops_of(
                                   [&] {
                                     obj* p = flock::pool_new<obj>();
                                     benchmark::DoNotOptimize(p);
                                     flock::pool_delete(p);
                                   },
                                   iters));
  }
  {
    rep.add("epoch_retire_cycle", mops_of(
                                      [&] {
                                        flock::with_epoch([&] {
                                          auto* p = flock::pool_new<uint64_t>();
                                          flock::epoch_retire(p);
                                        });
                                      },
                                      iters));
    flock::epoch_manager::instance().flush();
  }
  {
    // Incremental-resize scenario: grow a 64-bucket-hinted hashtable
    // through a 1M-key insert ramp, then compare mixed-workload
    // throughput on the grown table against a correctly pre-sized one
    // holding the same keys (the resize tax the serving path pays).
    flock::set_blocking(false);
    const uint64_t range =
        static_cast<uint64_t>(bench::env_long("FLOCK_GROW_KEYS", 1000000));
    const int threads =
        static_cast<int>(bench::env_long("FLOCK_GROW_THREADS", 4));

    flock_ds::hashtable<uint64_t, uint64_t, false> grown(64);
    auto g = flock_workload::run_growth(grown, range, threads);
    rep.add("ht_grow_insert_mops", g.mops);
    rep.add("ht_grow_invariants_ok", grown.check_invariants() ? 1.0 : 0.0);
    rep.add("ht_grow_final_buckets",
            static_cast<double>(grown.bucket_count()));

    flock_ds::hashtable<uint64_t, uint64_t, false> presized(range);
    auto p = flock_workload::run_growth(presized, range, threads);
    rep.add("ht_presized_insert_mops", p.mops);

    flock_workload::zipf_distribution dist(range, 0.75);
    flock_workload::run_config cfg;
    cfg.threads = threads;
    cfg.update_percent = 20;
    cfg.millis = 300;
    auto mg = flock_workload::run_mixed(grown, dist, cfg);
    auto mp = flock_workload::run_mixed(presized, dist, cfg);
    rep.add("ht_mixed_grown_mops", mg.mops);
    rep.add("ht_mixed_presized_mops", mp.mops);
    rep.add("ht_mixed_grown_over_presized",
            mp.mops > 0 ? mg.mops / mp.mops : 0.0);
    flock::epoch_manager::instance().flush();
  }
  {
    // Store-tier churn scenario: the full ramp -> drain -> settle
    // lifecycle on the sharded store (1 shard vs 8), ending with the
    // steady mixed throughput of the SHRUNK store bounded against a
    // fresh correctly-presized single table holding the same small
    // population — the shrink tax on the serving path, mirror of the
    // grow scenario above.
    flock::set_blocking(false);
    const uint64_t range =
        static_cast<uint64_t>(bench::env_long("FLOCK_CHURN_KEYS", 500000));
    const int threads =
        static_cast<int>(bench::env_long("FLOCK_CHURN_THREADS", 4));
    const uint64_t small_range = range / 64;  // post-drain working set

    flock_workload::zipf_distribution dist_small(small_range, 0.75);
    flock_workload::run_config cfg;
    cfg.threads = threads;
    cfg.update_percent = 50;
    cfg.millis = 300;

    double steady_mops[2] = {0, 0};
    int si = 0;
    for (std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      std::string p = "churn_s" + std::to_string(shards) + "_";
      flock_store::sharded_map<uint64_t, uint64_t, false> store(shards);
      auto g = flock_workload::run_growth(store, range, threads);
      rep.add(p + "ramp_insert_mops", g.mops);
      const double peak = static_cast<double>(store.bucket_count());
      rep.add(p + "peak_buckets", peak);
      auto d = flock_workload::run_drain(store, range, threads);
      rep.add(p + "drain_remove_mops", d.mops);
      // Settle window: steady mixed traffic over the small working set
      // supplies the update ticks and migration help that carry every
      // shard's shrink down to its new equilibrium.
      flock_workload::run_mixed(store, dist_small, cfg);
      const double shrunk = static_cast<double>(store.bucket_count());
      rep.add(p + "shrunk_buckets", shrunk);
      rep.add(p + "shrank_4x_ok", shrunk * 4 <= peak ? 1.0 : 0.0);
      auto m = flock_workload::run_mixed(store, dist_small, cfg);
      rep.add(p + "steady_mixed_mops", m.mops);
      rep.add(p + "invariants_ok", store.check_invariants() ? 1.0 : 0.0);
      steady_mops[si++] = m.mops;
    }

    flock_ds::hashtable<uint64_t, uint64_t, false> presized(small_range);
    flock_workload::prefill_half(presized, small_range, threads);
    auto mp = flock_workload::run_mixed(presized, dist_small, cfg);
    rep.add("churn_presized_small_mixed_mops", mp.mops);
    rep.add("churn_s1_shrunk_over_presized",
            mp.mops > 0 ? steady_mops[0] / mp.mops : 0.0);
    rep.add("churn_s8_shrunk_over_presized",
            mp.mops > 0 ? steady_mops[1] / mp.mops : 0.0);
    flock::epoch_manager::instance().flush();
  }
  {
    // Read-mostly scenario (pr9_read_path): zipf(0.99) read-dominated
    // mixes over a warmed store, the optimistic validated read path
    // (seqlock snapshot + read_guard announce amortization + per-thread
    // memo cache) A/B'd IN-BINARY against the pre-optimistic logged walk
    // (find_baseline). Methodology, earned the hard way on a drifting
    // shared box:
    //
    //  * One store, alternating turns: both read paths serve the SAME
    //    warmed store — the deterministic 95/5 (or 99/1) op stream runs
    //    in order, chunk by chunk, with the sides taking alternate
    //    chunks (baseline reads on even chunks, optimistic on odd); a
    //    real serving store's hot lines are warm, and a split-store
    //    design (tried first) doubles the random-access footprint and
    //    measures cold-line physics instead of read-path cost, while a
    //    read-everything-twice design (also tried) hands each side the
    //    other's line warming and erases the misses the memo cache
    //    exists to skip. No position is executed twice.
    //  * Tight interleaving + medians: the sides alternate every chunk
    //    and each reports its MEDIAN per-chunk rate, so slow machine
    //    drift hits both sides equally and a background burst costs one
    //    chunk, not one side. Each baseline/optimistic pair is
    //    same-process, same-second by construction — never compare the
    //    absolute Mops across scenarios or runs, only the within-duel
    //    ratio.
    //  * Read-path timing: updates are ~10x a read's cost, so at 5%
    //    frequency they are ~40% of wall time and whole-mix timing would
    //    mostly measure the write path this PR does not touch; the
    //    headline metric is read-path Mops at the stated mix ratio
    //    (every update in the stream runs, block-interleaved with the
    //    reads it invalidates), with the whole-duel rate emitted
    //    alongside (readm_*_mix_mops) for transparency.
    flock::set_blocking(false);
    const uint64_t range =
        static_cast<uint64_t>(bench::env_long("FLOCK_READM_KEYS", 16384));
    const int threads =
        static_cast<int>(bench::env_long("FLOCK_READM_THREADS", 1));
    const long chunk = bench::env_long("FLOCK_READM_CHUNK", 200000);
    const int rounds =
        static_cast<int>(bench::env_long("FLOCK_READM_ROUNDS", 9));

    using store_t = flock_store::sharded_map<uint64_t, uint64_t, false>;
    store_t store(8, range);
    flock_workload::prefill_half(store, range, threads);

    // Deterministic streams: zipf(0.99) keys over [0, range) — half of
    // which are absent (prefill_half), exercising the negative-result
    // memoization — and a per-position op draw.
    const std::size_t kStream = std::size_t{1} << 20;
    std::vector<uint64_t> keys(kStream);
    std::vector<uint16_t> opv(kStream);
    flock_workload::zipf_distribution dist(range, 0.99);
    flock_workload::rng64 krng(42), orng(7);
    for (auto& k : keys) k = dist.sample(krng);
    for (auto& u : opv) u = static_cast<uint16_t>(orng.next() % 1000);

    struct chunk_rate {
      double read_mops = 0;
      double mix_mops = 0;
    };
    uint64_t sink = 0;
    // One chunk of the stream on the shared store: per 1K-op block the
    // block's updates run first (untimed), then its reads are timed in
    // one batch through this side's routing. Invalidation pressure is
    // real — every update runs, block-interleaved with the reads.
    auto run_chunk = [&](long start, int upd_permille, bool fast) {
      const long kBlock = 1024;
      long reads = 0;
      double read_sec = 0;
      auto c0 = std::chrono::steady_clock::now();
      for (long done = 0; done < chunk; done += kBlock) {
        const long lo = start + done;
        const long hi = lo + std::min(kBlock, chunk - done);
        for (long i = lo; i < hi; i++) {
          const std::size_t j = static_cast<std::size_t>(i) & (kStream - 1);
          if (opv[j] < upd_permille) {
            const uint64_t k = keys[j];
            if (opv[j] & 1)
              store.insert(k, k + 1);
            else
              store.remove(k);
          }
        }
        auto t0 = std::chrono::steady_clock::now();
        if (fast) {
          for (long i = lo; i < hi; i++) {
            const std::size_t j = static_cast<std::size_t>(i) & (kStream - 1);
            if (opv[j] >= upd_permille) {
              sink += store.find(keys[j]).has_value();
              reads++;
            }
          }
        } else {
          for (long i = lo; i < hi; i++) {
            const std::size_t j = static_cast<std::size_t>(i) & (kStream - 1);
            if (opv[j] >= upd_permille) {
              sink += store.find_baseline(keys[j]).has_value();
              reads++;
            }
          }
        }
        auto t1 = std::chrono::steady_clock::now();
        read_sec += std::chrono::duration<double>(t1 - t0).count();
      }
      auto c1 = std::chrono::steady_clock::now();
      chunk_rate r;
      r.read_mops = read_sec > 0 ? reads / read_sec / 1e6 : 0.0;
      r.mix_mops =
          chunk / std::chrono::duration<double>(c1 - c0).count() / 1e6;
      return r;
    };
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v.empty() ? 0.0 : v[v.size() / 2];
    };

    const auto& cs =
        flock_store::tls_read_cache<uint64_t, uint64_t>().counters();
    long pos = 0;  // stream cursor: every chunk consumes fresh positions
    // Three mix points: 95/5 and 99/1 read/update, plus a pure-read
    // phase (100/0) over the store the mixed phases left behind — the
    // read-batch serving pattern the memo cache is designed for, where
    // no writer invalidates and the hit rate runs at its capacity
    // ceiling instead of the churn equilibrium.
    for (int upd_permille : {50, 10, 0}) {
      const std::string p = upd_permille == 50   ? "readm_95_5_"
                            : upd_permille == 10 ? "readm_99_1_"
                                                 : "readm_100_0_";
      // Warm store lines and the memo cache at this mix. The cache
      // converges slowly BY DESIGN (sampled admission lets only one miss
      // in kFillPeriod contend for a slot), so the timed chunks must see
      // the steady-state hit rate, not the ramp.
      for (int w = 0; w < 3; w++) {
        run_chunk(pos, upd_permille, false);
        pos += chunk;
        run_chunk(pos, upd_permille, true);
        pos += chunk;
      }
      const uint64_t h0 = cs.hits, m0 = cs.misses + cs.invalidated;
      std::vector<double> ra, rb, mm;
      for (int r = 0; r < rounds; r++) {
        auto a = run_chunk(pos, upd_permille, false);
        pos += chunk;
        auto b = run_chunk(pos, upd_permille, true);
        pos += chunk;
        ra.push_back(a.read_mops);
        rb.push_back(b.read_mops);
        mm.push_back(a.mix_mops);
        mm.push_back(b.mix_mops);
      }
      const double bm = median(ra), om = median(rb);
      rep.add(p + "baseline_mops", bm);
      rep.add(p + "optimistic_mops", om);
      rep.add(p + "speedup", bm > 0 ? om / bm : 0.0);
      rep.add(p + "mix_mops", median(mm));
      const uint64_t dh = cs.hits - h0, dm = cs.misses + cs.invalidated - m0;
      rep.add(p + "hit_rate",
              dh + dm > 0 ? static_cast<double>(dh) / (dh + dm) : 0.0);
    }
    rep.add("readm_invariants_ok",
            store.check_invariants() && sink > 0 ? 1.0 : 0.0);
    flock::epoch_manager::instance().flush();
  }
  rep.write();
}

// --- log entries per operation (paper §8: "about 5") -----------------------

void report_log_entries_per_op() {
  flock::set_blocking(false);
  flock_ds::dlist<uint64_t, uint64_t> d;
  // Warm: one resident element so inserts splice between sentinels/nodes.
  d.insert(500, 500);
  uint64_t before = flock::tls_commit_count();
  const int n = 1000;
  for (int i = 0; i < n; i++) d.insert(1000 + i, i);
  uint64_t after_ins = flock::tls_commit_count();
  for (int i = 0; i < n; i++) d.remove(1000 + i);
  uint64_t after_rem = flock::tls_commit_count();
  std::printf("log_entries_per_dlist_insert,%.2f\n",
              static_cast<double>(after_ins - before) / n);
  std::printf("log_entries_per_dlist_remove,%.2f\n",
              static_cast<double>(after_rem - after_ins) / n);
  flock::epoch_manager::instance().flush();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  report_log_entries_per_op();
  emit_json_series();
  return 0;
}
