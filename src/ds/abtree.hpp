// abtree.hpp — leaf-oriented (a,b)-tree with fine-grained optimistic
// locking (paper §7 "an (a,b)-tree (abtree)").
//
// Design:
//  * Leaves are immutable batches (copy-on-write): a point update locks
//    only the leaf's parent and swaps one child slot.
//  * Internal nodes have an immutable key array and mutable child slots;
//    slot updates require the node's lock. Structural changes that alter
//    a node's key set build a new node and swap it in the parent (so they
//    lock parent -> node -> affected children, a simply nested chain in
//    descent order; siblings are locked left-before-right).
//  * Splits and merges are PREEMPTIVE (top-down): while descending, a
//    full child (count == B) is split and a minimal child (count <= A) is
//    fixed by borrow/merge, then the operation restarts from the root.
//    Hence a leaf update never propagates upward: lock scope is bounded.
//  * An `anchor` with a single child slot plays root-parent, so the root
//    needs no special-casing for slot swaps.
//
// Parameters: A = 3, B = 12 (b >= 2a+1 so preemptive splits/merges keep
// every non-root node within [A, B] keys).
#pragma once

#include <optional>

#include "flock/flock.hpp"

namespace flock_ds {

template <class K, class V, bool Strict = false, int A = 3, int B = 12>
class abtree {
  static_assert(B >= 2 * A + 1, "preemptive (a,b) maintenance needs b >= 2a+1");

  struct node {
    const bool is_leaf;
    const int count;  // number of keys; internals have count+1 children
    K keys[B];
    node(bool leaf, int n) : is_leaf(leaf), count(n) {}
  };

  struct leafnode : node {
    V vals[B];
    leafnode(const K* ks, const V* vs, int n) : node(true, n) {
      for (int i = 0; i < n; i++) {
        this->keys[i] = ks[i];
        vals[i] = vs[i];
      }
    }
  };

  struct inode : node {
    flock::mutable_<node*> children[B + 1];
    flock::write_once<bool> removed;
    flock::lock lck;
    inode(const K* ks, int n, node* const* cs) : node(false, n) {
      for (int i = 0; i < n; i++) this->keys[i] = ks[i];
      for (int i = 0; i <= n; i++) children[i].init(cs[i]);
      removed.init(false);
    }
  };

  // The anchor holds the root pointer; it is never removed or replaced.
  struct anchor_t {
    flock::mutable_<node*> child;
    flock::lock lck;
  };

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

  static inode* as_int(node* n) { return static_cast<inode*>(n); }
  static leafnode* as_leaf(node* n) { return static_cast<leafnode*>(n); }

  // Child index for k: first i with k < keys[i], else count.
  static int route(const node* n, K k) {
    int i = 0;
    while (i < n->count && !(k < n->keys[i])) i++;
    return i;
  }

  static int find_in_leaf(const leafnode* l, K k) {
    for (int i = 0; i < l->count; i++)
      if (l->keys[i] == k) return i;
    return -1;
  }

 public:
  abtree() { anchor_.child.init(nullptr); }

  ~abtree() { destroy(anchor_.child.read_raw()); }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      node* n = anchor_.child.load();
      while (n != nullptr && !n->is_leaf)
        n = as_int(n)->children[route(n, k)].load();
      if (n == nullptr) return {};
      int i = find_in_leaf(as_leaf(n), k);
      if (i < 0) return {};
      return as_leaf(n)->vals[i];
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        node* n = anchor_.child.load();
        if (n == nullptr) {
          if (acquire(anchor_.lck, [=, this] {
                if (anchor_.child.load() != nullptr) return false;
                anchor_.child =
                    static_cast<node*>(flock::allocate<leafnode>(&k, &v, 1));
                return true;
              }))
            return true;
          continue;
        }
        if (n->count == B) {  // preemptive root split
          split_root(n);
          continue;
        }
        // Descend; split any full child before entering it.
        inode* parent = nullptr;  // nullptr => anchor
        bool restart = false;
        while (!n->is_leaf) {
          int idx = route(n, k);
          node* c = as_int(n)->children[idx].load();
          if (c->count == B) {
            split_child(parent, as_int(n), idx, c);
            restart = true;
            break;
          }
          parent = as_int(n);
          n = c;
        }
        if (restart) continue;
        leafnode* lf = as_leaf(n);
        if (find_in_leaf(lf, k) >= 0) return false;
        if (replace_leaf(parent, lf, [=](const leafnode* src) {
              K ks[B + 1];
              V vs[B + 1];
              int cnt = merge_into(src, k, v, ks, vs);
              return flock::allocate<leafnode>(ks, vs, cnt);
            }))
          return true;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        node* n = anchor_.child.load();
        if (n == nullptr) return false;
        if (!n->is_leaf && n->count == 0) {  // collapse trivial root
          collapse_root(as_int(n));
          continue;
        }
        inode* parent = nullptr;
        bool restart = false;
        while (!n->is_leaf) {
          int idx = route(n, k);
          node* c = as_int(n)->children[idx].load();
          if (c->count <= A) {  // preemptive borrow/merge
            fix_child(parent, as_int(n), idx, c);
            restart = true;
            break;
          }
          parent = as_int(n);
          n = c;
        }
        if (restart) continue;
        leafnode* lf = as_leaf(n);
        if (find_in_leaf(lf, k) < 0) return false;
        if (parent == nullptr && lf->count == 1) {
          // Removing the only key in the tree.
          if (acquire(anchor_.lck, [=, this] {
                if (anchor_.child.load() != static_cast<node*>(lf))
                  return false;
                anchor_.child = static_cast<node*>(nullptr);
                flock::retire<leafnode>(lf);
                return true;
              }))
            return true;
          continue;
        }
        if (replace_leaf(parent, lf, [=](const leafnode* src) {
              K ks[B];
              V vs[B];
              int cnt = remove_from(src, k, ks, vs);
              return flock::allocate<leafnode>(ks, vs, cnt);
            }))
          return true;
      }
    });
  }

  /// Quiescent audits. ---------------------------------------------------
  std::size_t size() const { return count_keys(anchor_.child.read_raw()); }

  bool check_invariants() const {
    bool ok = true;
    node* r = anchor_.child.read_raw();
    if (r != nullptr) {
      int depth = -1;
      validate(r, true, K{}, false, K{}, false, 0, depth, ok);
    }
    return ok;
  }

  template <class F>
  void for_each(F&& f) const {
    walk(anchor_.child.read_raw(), f);
  }

 private:
  // ---- point update at a leaf: lock the parent, swap the slot ----------
  template <class Make>
  bool replace_leaf(inode* parent, leafnode* lf, Make make) {
    if (parent == nullptr) {
      return acquire(anchor_.lck, [=, this] {
        if (anchor_.child.load() != static_cast<node*>(lf)) return false;
        anchor_.child = static_cast<node*>(make(lf));
        flock::retire<leafnode>(lf);
        return true;
      });
    }
    // The slot index must be revalidated by value: parent's key array is
    // immutable, so the index for lf's key range is stable.
    int idx = route(parent, lf->keys[0]);
    return acquire(parent->lck, [=] {
      if (parent->removed.load()) return false;
      if (parent->children[idx].load() != static_cast<node*>(lf))
        return false;
      parent->children[idx].store(make(lf));
      flock::retire<leafnode>(lf);
      return true;
    });
  }

  // ---- structural operations (all restart the caller) ------------------

  // Split the full root n into two nodes under a fresh root.
  void split_root(node* n) {
    acquire(anchor_.lck, [=, this] {
      if (anchor_.child.load() != n) return false;
      if (n->is_leaf) {
        node* parts[2];
        K sep = split_leaf(as_leaf(n), parts);
        node* nr[1] = {nullptr};
        (void)nr;
        node* cs[2] = {parts[0], parts[1]};
        anchor_.child =
            static_cast<node*>(flock::allocate<inode>(&sep, 1, cs));
        flock::retire<leafnode>(as_leaf(n));
        return true;
      }
      inode* in = as_int(n);
      return acquire(in->lck, [=, this] {
        if (in->removed.load()) return false;
        node* parts[2];
        K sep = split_internal(in, parts);
        node* cs[2] = {parts[0], parts[1]};
        anchor_.child =
            static_cast<node*>(flock::allocate<inode>(&sep, 1, cs));
        in->removed = true;
        flock::retire<inode>(in);
        return true;
      });
    });
  }

  // Replace a 0-key internal root by its only child.
  void collapse_root(inode* r) {
    acquire(anchor_.lck, [=, this] {
      if (anchor_.child.load() != static_cast<node*>(r)) return false;
      return acquire(r->lck, [=, this] {
        if (r->removed.load()) return false;
        node* only = r->children[0].load();
        anchor_.child = only;
        r->removed = true;
        flock::retire<inode>(r);
        return true;
      });
    });
  }

  // Split child c (full) of n at slot idx; n is replaced by n' in parent
  // (or anchor). Locks: parent -> n -> c (c only if internal).
  void split_child(inode* parent, inode* n, int idx, node* c) {
    auto body = [=, this] {
      return acquire(n->lck, [=, this] {
        if (n->removed.load()) return false;
        if (n->children[idx].load() != c) return false;
        auto finish = [=, this](node* const parts[2], K sep) {
          K ks[B + 1];
          node* cs[B + 2];
          for (int i = 0; i < idx; i++) ks[i] = n->keys[i];
          ks[idx] = sep;
          for (int i = idx; i < n->count; i++) ks[i + 1] = n->keys[i];
          for (int i = 0; i < idx; i++) cs[i] = n->children[i].load();
          cs[idx] = parts[0];
          cs[idx + 1] = parts[1];
          for (int i = idx + 1; i <= n->count; i++)
            cs[i + 1] = n->children[i].load();
          inode* nn = flock::allocate<inode>(ks, n->count + 1, cs);
          swap_in(parent, n, nn);
          n->removed = true;
          flock::retire<inode>(n);
        };
        if (c->is_leaf) {
          node* parts[2];
          K sep = split_leaf(as_leaf(c), parts);
          finish(parts, sep);
          flock::retire<leafnode>(as_leaf(c));
          return true;
        }
        return acquire(as_int(c)->lck, [=, this] {
          if (as_int(c)->removed.load()) return false;
          node* parts[2];
          K sep = split_internal(as_int(c), parts);
          finish(parts, sep);
          as_int(c)->removed = true;
          flock::retire<inode>(as_int(c));
          return true;
        });
      });
    };
    lock_parent_then(parent, n, body);
  }

  // Fix child c (count <= A) of n at slot idx by borrowing from or
  // merging with an adjacent sibling. Locks: parent -> n -> left sibling
  // -> right sibling (internal children only).
  void fix_child(inode* parent, inode* n, int idx, node* c) {
    auto body = [=, this] {
      return acquire(n->lck, [=, this] {
        if (n->removed.load()) return false;
        if (n->children[idx].load() != c) return false;
        // Choose sibling: right if one exists, else left.
        bool use_right = idx < n->count;
        int sidx = use_right ? idx + 1 : idx - 1;
        node* s = n->children[sidx].load();
        int li = use_right ? idx : sidx;   // left child slot
        node* lc = use_right ? c : s;
        node* rc = use_right ? s : c;
        K sep = n->keys[li];
        auto finish = [=, this](node* const* repl, const K* rkeys,
                                int nrepl) {
          // Replace children [li, li+1] by repl[0..nrepl) and separator
          // keys accordingly (nrepl==2: borrow, new separator rkeys[0];
          // nrepl==1: merge, separator removed).
          K ks[B + 1];
          node* cs[B + 2];
          int kn = 0, cn = 0;
          for (int i = 0; i < li; i++) ks[kn++] = n->keys[i];
          if (nrepl == 2) ks[kn++] = rkeys[0];
          for (int i = li + 1; i < n->count; i++) ks[kn++] = n->keys[i];
          for (int i = 0; i < li; i++) cs[cn++] = n->children[i].load();
          for (int i = 0; i < nrepl; i++) cs[cn++] = repl[i];
          for (int i = li + 2; i <= n->count; i++)
            cs[cn++] = n->children[i].load();
          inode* nn = flock::allocate<inode>(ks, kn, cs);
          swap_in(parent, n, nn);
          n->removed = true;
          flock::retire<inode>(n);
        };
        if (c->is_leaf) {
          leafnode* L = as_leaf(lc);
          leafnode* R = as_leaf(rc);
          if (L->count + R->count <= B) {  // merge
            K ks[B];
            V vs[B];
            int cnt = 0;
            for (int i = 0; i < L->count; i++) {
              ks[cnt] = L->keys[i];
              vs[cnt++] = L->vals[i];
            }
            for (int i = 0; i < R->count; i++) {
              ks[cnt] = R->keys[i];
              vs[cnt++] = R->vals[i];
            }
            node* repl[1] = {flock::allocate<leafnode>(ks, vs, cnt)};
            finish(repl, nullptr, 1);
          } else {  // borrow: rebalance evenly
            K ks[2 * B];
            V vs[2 * B];
            int cnt = 0;
            for (int i = 0; i < L->count; i++) {
              ks[cnt] = L->keys[i];
              vs[cnt++] = L->vals[i];
            }
            for (int i = 0; i < R->count; i++) {
              ks[cnt] = R->keys[i];
              vs[cnt++] = R->vals[i];
            }
            int half = cnt / 2;
            node* repl[2] = {
                flock::allocate<leafnode>(ks, vs, half),
                flock::allocate<leafnode>(ks + half, vs + half, cnt - half)};
            K nsep[1] = {ks[half]};
            finish(repl, nsep, 2);
          }
          flock::retire<leafnode>(L);
          flock::retire<leafnode>(R);
          return true;
        }
        // Internal children: lock left then right for a stable snapshot.
        inode* L = as_int(lc);
        inode* R = as_int(rc);
        return acquire(L->lck, [=, this] {
          if (L->removed.load()) return false;
          return acquire(R->lck, [=, this] {
            if (R->removed.load()) return false;
            // Merge keys: L.keys + sep + R.keys; children concatenated.
            K ks[2 * B + 1];
            node* cs[2 * B + 2];
            int kn = 0, cn = 0;
            for (int i = 0; i < L->count; i++) ks[kn++] = L->keys[i];
            ks[kn++] = sep;
            for (int i = 0; i < R->count; i++) ks[kn++] = R->keys[i];
            for (int i = 0; i <= L->count; i++)
              cs[cn++] = L->children[i].load();
            for (int i = 0; i <= R->count; i++)
              cs[cn++] = R->children[i].load();
            if (kn <= B) {  // merge
              node* repl[1] = {flock::allocate<inode>(ks, kn, cs)};
              finish(repl, nullptr, 1);
            } else {  // borrow: split the concatenation evenly
              int half = kn / 2;
              node* repl[2] = {
                  flock::allocate<inode>(ks, half, cs),
                  flock::allocate<inode>(ks + half + 1, kn - half - 1,
                                         cs + half + 1)};
              K nsep[1] = {ks[half]};
              finish(repl, nsep, 2);
            }
            L->removed = true;
            R->removed = true;
            flock::retire<inode>(L);
            flock::retire<inode>(R);
            return true;
          });
        });
      });
    };
    lock_parent_then(parent, n, body);
  }

  // Run `body` under the lock that owns n's slot (anchor or parent).
  template <class Body>
  void lock_parent_then(inode* parent, inode* n, Body body) {
    if (parent == nullptr) {
      acquire(anchor_.lck, [=, this] {
        if (anchor_.child.load() != static_cast<node*>(n)) return false;
        return body();
      });
    } else {
      int idx = route(parent, n->keys[0]);
      acquire(parent->lck, [=] {
        if (parent->removed.load()) return false;
        if (parent->children[idx].load() != static_cast<node*>(n))
          return false;
        return body();
      });
    }
  }

  // Swap n -> nn in whoever owns n's slot. Caller holds that lock and has
  // validated the slot, so a plain store is safe.
  void swap_in(inode* parent, inode* n, inode* nn) {
    if (parent == nullptr) {
      anchor_.child.store(nn);
    } else {
      int idx = route(parent, n->keys[0]);
      parent->children[idx].store(nn);
    }
  }

  // ---- pure array helpers ----------------------------------------------

  static int merge_into(const leafnode* src, K k, V v, K* ks, V* vs) {
    int i = 0, j = 0;
    while (i < src->count && src->keys[i] < k) {
      ks[j] = src->keys[i];
      vs[j] = src->vals[i];
      i++;
      j++;
    }
    ks[j] = k;
    vs[j] = v;
    j++;
    while (i < src->count) {
      ks[j] = src->keys[i];
      vs[j] = src->vals[i];
      i++;
      j++;
    }
    return j;
  }

  static int remove_from(const leafnode* src, K k, K* ks, V* vs) {
    int j = 0;
    for (int i = 0; i < src->count; i++) {
      if (src->keys[i] == k) continue;
      ks[j] = src->keys[i];
      vs[j] = src->vals[i];
      j++;
    }
    return j;
  }

  // Split a full leaf into halves; returns the separator.
  K split_leaf(const leafnode* l, node* parts[2]) {
    int half = l->count / 2;
    parts[0] = flock::allocate<leafnode>(l->keys, l->vals, half);
    parts[1] = flock::allocate<leafnode>(l->keys + half, l->vals + half,
                                         l->count - half);
    return l->keys[half];
  }

  // Split a full internal node (caller holds its lock).
  K split_internal(inode* n, node* parts[2]) {
    int half = n->count / 2;
    node* cs[B + 1];
    for (int i = 0; i <= n->count; i++) cs[i] = n->children[i].load();
    parts[0] = flock::allocate<inode>(n->keys, half, cs);
    parts[1] = flock::allocate<inode>(n->keys + half + 1,
                                      n->count - half - 1, cs + half + 1);
    return n->keys[half];
  }

  // ---- audits ------------------------------------------------------------

  static void destroy(node* n) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      flock::pool_delete(as_leaf(n));
      return;
    }
    for (int i = 0; i <= n->count; i++)
      destroy(as_int(n)->children[i].read_raw());
    flock::pool_delete(as_int(n));
  }

  static std::size_t count_keys(node* n) {
    if (n == nullptr) return 0;
    if (n->is_leaf) return static_cast<std::size_t>(n->count);
    std::size_t s = 0;
    for (int i = 0; i <= n->count; i++)
      s += count_keys(as_int(n)->children[i].read_raw());
    return s;
  }

  static void validate(node* n, bool is_root, K lo, bool has_lo, K hi,
                       bool has_hi, int depth, int& leaf_depth, bool& ok) {
    if (!ok || n == nullptr) {
      ok = false;
      return;
    }
    if (!is_root && n->count < A) ok = false;  // occupancy
    if (n->count > B) ok = false;
    for (int i = 1; i < n->count; i++)
      if (!(n->keys[i - 1] < n->keys[i])) ok = false;
    for (int i = 0; i < n->count; i++) {
      if (has_lo && n->keys[i] < lo) ok = false;
      if (has_hi && !(n->keys[i] < hi)) ok = false;
    }
    if (n->is_leaf) {
      if (is_root && n->count < 1) ok = false;
      if (leaf_depth < 0)
        leaf_depth = depth;
      else if (leaf_depth != depth)
        ok = false;  // perfect leaf depth (B+tree property)
      return;
    }
    if (is_root && n->count < 1) ok = false;
    if (as_int(n)->removed.read_raw()) ok = false;
    for (int i = 0; i <= n->count; i++) {
      K clo = i == 0 ? lo : n->keys[i - 1];
      bool chas_lo = i == 0 ? has_lo : true;
      K chi = i == n->count ? hi : n->keys[i];
      bool chas_hi = i == n->count ? has_hi : true;
      validate(as_int(n)->children[i].read_raw(), false, clo, chas_lo, chi,
               chas_hi, depth + 1, leaf_depth, ok);
    }
  }

  template <class F>
  static void walk(node* n, F&& f) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      for (int i = 0; i < n->count; i++)
        f(n->keys[i], as_leaf(n)->vals[i]);
      return;
    }
    for (int i = 0; i <= n->count; i++)
      walk(as_int(n)->children[i].read_raw(), std::forward<F>(f));
  }

  anchor_t anchor_;
};

}  // namespace flock_ds
