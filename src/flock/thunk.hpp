// thunk.hpp — a thunk is "a procedure with no arguments" (paper §3.1).
//
// Descriptors store the critical-section lambda by value (the paper's
// "[=]": captures must outlive the caller's stack frame because helpers may
// run the thunk later). Small captures live inline in the descriptor; big
// ones fall back to the heap so the library never silently truncates.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "config.hpp"

namespace flock {

class thunk {
 public:
  thunk() = default;
  thunk(const thunk&) = delete;
  thunk& operator=(const thunk&) = delete;
  ~thunk() { clear(); }

  template <class F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    clear();
    if constexpr (sizeof(Fn) <= kThunkInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { return (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      target_ = buf_;
    } else {
      target_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { return (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { delete static_cast<Fn*>(p); };
    }
  }

  bool operator()() const { return invoke_(target_); }

  bool empty() const { return invoke_ == nullptr; }

  void clear() {
    if (destroy_ != nullptr) destroy_(target_);
    invoke_ = nullptr;
    destroy_ = nullptr;
    target_ = nullptr;
  }

 private:
  alignas(std::max_align_t) unsigned char buf_[kThunkInlineBytes];
  bool (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void* target_ = nullptr;
};

}  // namespace flock
