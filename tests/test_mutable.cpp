// Tests for mutable_<T> (compact) and mutable_dw<T>: atomic semantics
// outside thunks, logged semantics inside thunks, store/CAM idempotence.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

struct scoped_log {
  flock::log_block* head;
  flock::log_cursor saved;
  scoped_log() {
    head = flock::pool_new<flock::log_block>();
    saved = flock::tls_log();
    flock::tls_log() = {head, 0};
  }
  void replay() { flock::tls_log() = {head, 0}; }
  ~scoped_log() {
    flock::tls_log() = saved;
    flock::log_block* b = head;
    while (b != nullptr) {
      flock::log_block* n = b->next.load();
      flock::pool_delete(b);
      b = n;
    }
  }
};

// ---------------- compact ----------------

TEST(MutableCompact, LoadStoreOutsideThunk) {
  flock::mutable_<uint64_t> m(5);
  EXPECT_EQ(m.load(), 5u);
  m.store(9);
  EXPECT_EQ(m.load(), 9u);
  m = 11;
  EXPECT_EQ(m.load(), 11u);
}

TEST(MutableCompact, PointerAndBoolPayloads) {
  int x = 0;
  flock::mutable_<int*> mp(nullptr);
  EXPECT_EQ(mp.load(), nullptr);
  mp.store(&x);
  EXPECT_EQ(mp.load(), &x);

  flock::mutable_<bool> mb(false);
  EXPECT_FALSE(mb.load());
  mb.store(true);
  EXPECT_TRUE(mb.load());
}

TEST(MutableCompact, CamSemantics) {
  flock::mutable_<uint64_t> m(1);
  m.cam(2, 3);  // expected mismatch: no-op
  EXPECT_EQ(m.load(), 1u);
  m.cam(1, 3);
  EXPECT_EQ(m.load(), 3u);
}

TEST(MutableCompact, TagBumpsOnStore) {
  flock::mutable_<uint64_t> m(0);
  uint64_t t0 = flock::tag_of(m.read_raw_packed());
  m.store(1);
  m.store(2);
  uint64_t t2 = flock::tag_of(m.read_raw_packed());
  EXPECT_EQ(t2, t0 + 2);
}

TEST(MutableCompact, StoreIsIdempotentAcrossReplays) {
  flock::mutable_<uint64_t> m(10);
  {
    scoped_log lg;
    m.store(20);  // first run
    EXPECT_EQ(m.read_raw(), 20u);
    // Simulate interference from a *later* critical section...
    flock::log_cursor inner = flock::tls_log();
    flock::tls_log() = {};
    m.store(30);
    flock::tls_log() = inner;
    // ...then a stale replay of the original store. The tag from the log
    // no longer matches, so the replayed CAS must fail.
    lg.replay();
    m.store(20);
    EXPECT_EQ(m.read_raw(), 30u);
  }
}

TEST(MutableCompact, LoadAgreesAcrossReplays) {
  flock::mutable_<uint64_t> m(111);
  scoped_log lg;
  EXPECT_EQ(m.load(), 111u);
  flock::tls_log() = {};
  m.store(222);  // outside the thunk
  lg.replay();
  EXPECT_EQ(m.load(), 111u);  // replay must see the logged value
}

TEST(MutableCompact, CamIdempotentAcrossReplays) {
  flock::mutable_<uint64_t> m(1);
  scoped_log lg;
  m.cam(1, 2);
  EXPECT_EQ(m.read_raw(), 2u);
  // Interference: move value back to 1 (ABA on value, new tag).
  flock::log_cursor inner = flock::tls_log();
  flock::tls_log() = {};
  m.store(1);
  flock::tls_log() = inner;
  lg.replay();
  m.cam(1, 2);  // stale replay: logged tag stops it
  EXPECT_EQ(m.read_raw(), 1u);
}

TEST(MutableCompact, ConcurrentStoreReplayOnce) {
  // N threads all replay the same logged store; exactly one CAS may win,
  // so the final value reflects a single application.
  for (int round = 0; round < 50; round++) {
    flock::mutable_<uint64_t> m(0);
    auto* head = flock::pool_new<flock::log_block>();
    std::atomic<bool> go{false};
    constexpr int kThreads = 4;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        while (!go.load()) {
        }
        flock::tls_log() = {head, 0};
        m.store(m.load() + 1);  // read-modify-write in locked style
        flock::tls_log() = {};
      });
    }
    go.store(true);
    for (auto& t : ts) t.join();
    EXPECT_EQ(m.read_raw(), 1u) << "round " << round;
    flock::pool_delete(head);
  }
}

// ---------------- double-word ----------------

TEST(MutableDW, LoadStoreFull64) {
  flock::mutable_dw<uint64_t> m(~0ull);
  EXPECT_EQ(m.load(), ~0ull);
  m.store(0x123456789abcdef0ull);
  EXPECT_EQ(m.load(), 0x123456789abcdef0ull);
}

TEST(MutableDW, CamSemantics) {
  flock::mutable_dw<int64_t> m(-1);
  m.cam(0, 7);
  EXPECT_EQ(m.load(), -1);
  m.cam(-1, 7);
  EXPECT_EQ(m.load(), 7);
}

TEST(MutableDW, StoreIdempotentAcrossReplays) {
  flock::mutable_dw<uint64_t> m(10);
  scoped_log lg;
  m.store(20);
  flock::log_cursor inner = flock::tls_log();
  flock::tls_log() = {};
  m.store(20);  // same VALUE, new counter — true ABA on the value
  flock::tls_log() = inner;
  lg.replay();
  m.store(20);  // stale replay: counter mismatch, must not fire
  // Observable state: value 20, exactly 3 counter bumps would mean the
  // replay fired; verify by storing a sentinel whose success implies a
  // consistent counter chain.
  flock::tls_log() = {};
  m.store(99);
  EXPECT_EQ(m.load(), 99u);
}

TEST(MutableDW, ConcurrentIncrementViaReplayAppliesOnce) {
  for (int round = 0; round < 50; round++) {
    flock::mutable_dw<uint64_t> m(100);
    auto* head = flock::pool_new<flock::log_block>();
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; t++) {
      ts.emplace_back([&] {
        while (!go.load()) {
        }
        flock::tls_log() = {head, 0};
        m.store(m.load() + 1);
        flock::tls_log() = {};
      });
    }
    go.store(true);
    for (auto& t : ts) t.join();
    EXPECT_EQ(m.read_raw(), 101u) << "round " << round;
    flock::pool_delete(head);
  }
}

}  // namespace
