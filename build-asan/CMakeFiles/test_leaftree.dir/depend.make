# Empty dependencies file for test_leaftree.
# This may be replaced when dependencies are built.
