// epoch.hpp — epoch-based memory reclamation (paper §6 "Epoch-based
// collection") with helper epoch adoption and DEBRA-style amortization.
//
// Scheme: a global epoch counter plus one announcement slot per thread
// (in its thread context). An operation announces the current global
// epoch for its whole duration (`with_epoch`). Retired objects are pushed
// onto a fixed-capacity per-thread batch — an O(1) pointer bump. When a
// batch fills it is *sealed*: stamped with the current global epoch
// (an upper bound on every member's retire-time epoch) and queued FIFO.
// A sealed batch is freeable once every announced epoch is strictly
// greater than its stamp. Because an object is only retired after it was
// unlinked, any reader that can still hold a reference announced an epoch
// no larger than the stamp, so the gate is sound.
//
// Amortization (cf. DEBRA): reclamation keeps a *cached* lower bound on
// the minimum announced epoch (`min_bound_`). Sealing first tries to free
// old batches against the cached bound — no scanning at all. Only when
// the backlog persists does it pay for one announcement scan (bounded by
// thread_id_bound()) plus an epoch-advance attempt, and the scan result
// refreshes the cache for everyone. The cache is sound because the bound
// is monotone: a scan that observed minimum m with global counter g
// guarantees no thread can later announce below min(m, g) — fresh
// announcements take the (validated, see announce()) current global
// >= g, and helper adoption only adopts the epoch of an installed
// descriptor whose creator is still announcing it, which any scan already
// counted.
//
// Helper adoption (paper §6): when a thread helps a descriptor it lowers
// its announcement to min(own, descriptor epoch) and restores it after.
// This is safe because (a) lowering an announcement only widens
// protection, and (b) while a descriptor is installed on a lock and not
// yet unlocked, its creator is still inside `with_epoch` announcing the
// descriptor's epoch, so nothing from that epoch onwards has been freed
// (see lock.hpp for the ordering that makes the hand-off airtight).
#pragma once

#include <atomic>
#include <cstdint>

#include "allocator.hpp"
#include "chaos/faultpoint.hpp"
#include "config.hpp"
#include "thread_context.hpp"
#include "threading.hpp"

namespace flock {

class epoch_manager {
 public:
  /// The manager is constant-initialized static state; instance() is a
  /// plain reference with no initialization guard.
  static epoch_manager& instance() noexcept;

  /// Run `f` inside an epoch-protected region. Nesting is allowed; only the
  /// outermost level announces.
  ///
  /// Outermost entry also takes ownership of the read_sticky state machine
  /// (see thread_context.hpp): state 2 ("owner in region") bars the
  /// collector's sticky-lapse from touching the announcement while this
  /// region depends on it — the collector may otherwise wipe a sticky slot
  /// whose announcement trails the global epoch, and an in-region
  /// announcement legally trails by one (try_advance can move the counter
  /// once past any announcement).
  template <class F>
  auto with_epoch(F&& f) -> decltype(f()) {
    detail::thread_context* c = detail::my_ctx();
    uint8_t sticky_prev = 0;
    if (c->epoch_depth++ == 0) {
      // mo: seq_cst — claim-fence ordering with lapse_idle_sticky(): if a
      // collector's claim (CAS 1->0) precedes this exchange, seq_cst
      // ordering on the global counter makes announce() below re-read a
      // global value at least as new as the one that justified the claim,
      // so the fresh announcement lands ABOVE the collector's sampled
      // epoch and its pending announced-wipe CAS misses. If the claim
      // follows, it sees state 2 and skips this thread entirely.
      sticky_prev = c->read_sticky.exchange(2, std::memory_order_seq_cst);
      announce(c);
    }
    struct guard {
      detail::thread_context* c;
      uint8_t sticky_prev;
      ~guard() {
        if (--c->epoch_depth == 0) {
          if (sticky_prev != 0) {
            // The thread is in a read batch (read_guard armed the sticky
            // flag): keep the announcement across interleaved writes —
            // quiescing here would force the next read in the batch to
            // pay the full validated announce. Re-arm as claimable state
            // 1; an idle tail is bounded by the collector's sticky-lapse
            // (lapse_idle_sticky), not by this thread's cooperation.
            // mo: release — the collector's claim CAS acquire-reads this
            // 1, ordering the region's protected accesses before any
            // free its lapse later justifies.
            c->read_sticky.store(1, std::memory_order_release);
          } else {
            // mo: relaxed — own flag; 0 is never claimed, only observed.
            c->read_sticky.store(0, std::memory_order_relaxed);
            // mo: release — quiescing: every access this thread made to
            // epoch-protected objects happens-before a collector's acquire
            // read of -1 (min_announced), so nothing can be freed under us.
            c->announced.store(-1, std::memory_order_release);
          }
        }
      }
    } g{c, sticky_prev};
    return f();
  }

  /// Defer destruction of `p` until no announced epoch can still reference
  /// it. `del` must be a plain function (e.g. pool_delete_erased<T>).
  /// O(1) amortized: a push, plus batch-granular reclamation on seal.
  void retire(void* p, void (*del)(void*)) {
    retire_ctx(detail::my_ctx(), p, del);
  }

  void retire_ctx(detail::thread_context* c, void* p, void (*del)(void*)) {
    FLOCK_FAULTPOINT("epoch.retire");
    detail::retire_batch* b = c->open;
    if (b == nullptr) [[unlikely]]
      b = c->open = alloc_batch(c);
    b->items[b->n++] = {p, del};
    ++c->retired_pending;
    if (b->n == detail::retire_batch::kCapacity) [[unlikely]]
      seal_and_reclaim(c);
  }

  /// Current announcement of a thread (-1 when quiescent).
  int64_t announced(int tid) const {
    // mo: acquire — pairs with the seq_cst announce / release quiesce
    // stores; an observer acting on the value (lock.hpp adoption checks)
    // must also see the state published before it.
    return detail::g_ctx[tid].announced.load(std::memory_order_acquire);
  }

  /// Helper adoption: lower the calling thread's announcement to
  /// min(current, e). Returns the previous announcement for restore().
  int64_t adopt(int64_t e) { return adopt_ctx(detail::my_ctx(), e); }

  int64_t adopt_ctx(detail::thread_context* c, int64_t e) {
    // mo: relaxed — our OWN announcement slot (this thread is the only
    // writer); only the value is needed, ordering comes from the seq_cst
    // store below when we actually lower it.
    int64_t prev = c->announced.load(std::memory_order_relaxed);
    if (prev < 0 || e < prev)
      c->announced.store(e, std::memory_order_seq_cst);
    return prev;
  }

  void restore(int64_t prev) { restore_ctx(detail::my_ctx(), prev); }

  void restore_ctx(detail::thread_context* c, int64_t prev) {
    c->announced.store(prev, std::memory_order_seq_cst);
  }

  int64_t current_epoch() const {
    // mo: acquire — callers stamp descriptors with the result; acquire
    // keeps the stamp no older than state already observed via the
    // counter's advance (acq_rel CAS in try_advance).
    return global_.load(std::memory_order_acquire);
  }

  /// Objects retired by any thread but not yet freed (approximate).
  long long pending() const {
    long long n = 0;
    const int bound = thread_id_bound();
    for (int i = 0; i < bound; i++)
      n += detail::g_ctx[i].retired_pending;
    return n;
  }

  /// Test/shutdown hook: advance epochs and drain every thread's retire
  /// batches, including batches stranded by exited threads. Requires
  /// quiescence (no concurrent operations in flight) to fully drain; safe
  /// to call concurrently only with other flush() calls being absent.
  void flush() {
    const int bound = thread_id_bound();
    // Release sticky read announcements first (read_guard below): a thread
    // whose last operation was a batched read still pins the epoch it
    // announced, which would hold min_announced down and leave batches
    // undrainable. Claim armed-idle slots only (CAS 1 -> 0): a slot in
    // state 2 belongs to a thread inside an epoch region, whose
    // announcement is load-bearing — flush() nominally runs at
    // quiescence, but being claim-based keeps it harmless against a
    // straggler region instead of freeing memory out from under it. The
    // owners' memoized reads self-invalidate on their next validation
    // (the bucket entry counter / retirement era checks, not this slot).
    for (int i = 0; i < bound; i++) {
      detail::thread_context* c = &detail::g_ctx[i];
      // mo: acquire — pre-claim sample, same shape as lapse_idle_sticky.
      const int64_t e = c->announced.load(std::memory_order_acquire);
      uint8_t claim = 1;
      // mo: seq_cst — same claim as lapse_idle_sticky (see there); an
      // owner re-entry racing this claim re-announces above any epoch
      // this flush's drains can free.
      if (!c->read_sticky.compare_exchange_strong(claim, 0,
                                                  std::memory_order_seq_cst))
        continue;
      if (e >= 0) {
        int64_t expect = e;
        // mo: seq_cst — retraction, CAS not store: if the owner slipped a
        // region in since the sample, its fresh announcement stays.
        c->announced.compare_exchange_strong(expect, -1,
                                             std::memory_order_seq_cst);
      }
    }
    for (int i = 0; i < 3; i++) try_advance();
    for (int i = 0; i < bound; i++) {
      detail::thread_context* c = &detail::g_ctx[i];
      if (c->open != nullptr && c->open->n > 0) seal(c);
    }
    const int64_t b = refresh_bound();
    for (int i = 0; i < bound; i++) drain_sealed(&detail::g_ctx[i], b);
  }

 private:
  friend class read_guard;

  /// Outermost announcement, with validation: re-announce until the
  /// global counter stops moving under us, so a collector that advanced
  /// the epoch concurrently cannot have missed this announcement while we
  /// go on to read shared state (this validation is what lets reclamation
  /// trust a cached minimum, see header comment).
  void announce(detail::thread_context* c) {
    // mo: relaxed — just a first guess for the validation loop; the
    // seq_cst re-read below is what the protocol trusts.
    int64_t e = global_.load(std::memory_order_relaxed);
    c->announced.store(e, std::memory_order_seq_cst);
    int64_t g;
    while ((g = global_.load(std::memory_order_seq_cst)) != e) {
      e = g;
      c->announced.store(e, std::memory_order_seq_cst);
    }
  }

  /// Sticky-lapse: unpin idle readers' announcements (the collector half
  /// of the read_sticky state machine, thread_context.hpp). A sticky slot
  /// (state 1) whose announcement trails the global counter belongs to a
  /// thread that finished a read batch and has not come back — its pinned
  /// epoch is the one thing that can hold reclamation down indefinitely
  /// (an ACTIVE reader refreshes its announcement every batch). Claim the
  /// flag (1 -> 0) so the owner cannot be mid-region, then retract the
  /// announcement. The owner's re-entry exchange (state 2) and the claim
  /// CAS serialize on the flag, and seq_cst ordering on the global counter
  /// guarantees a racing re-entry re-announces ABOVE our sampled epoch, so
  /// the retraction CAS below can never wipe a live announcement.
  /// Called from seal_and_reclaim's backlog-persists path: one O(threads)
  /// pass, same cost class as the announcement scan it precedes.
  void lapse_idle_sticky() {
    // mo: seq_cst — the claim-fence pivot: a later owner re-entry whose
    // exchange follows our claim must re-read a global at least this new
    // (see with_epoch), which is what makes e < g prove idleness.
    const int64_t g = global_.load(std::memory_order_seq_cst);
    const int bound = thread_id_bound();
    for (int i = 0; i < bound; i++) {
      detail::thread_context* c = &detail::g_ctx[i];
      // mo: acquire — pairs with the owner's seq_cst announce store; the
      // sample is only ever compared/CASed, staleness self-corrects.
      const int64_t e = c->announced.load(std::memory_order_acquire);
      // e == g means the reader is current: it pins nothing that an
      // epoch advance (which this caller attempts next) cannot step
      // past, so leave its batch amortization alone. Only e < g — the
      // announcement is the straggler holding min_announced down — is
      // worth retracting. (e > g is impossible: announcements validate
      // against the counter, and the counter never advances past the
      // minimum announcement.)
      if (e < 0 || e >= g) continue;
      uint8_t claim = 1;
      // mo: seq_cst — claim: acquire-reads the owner's release store(1)
      // (guard exit), ordering the owner's protected accesses before any
      // free this lapse justifies; seq_cst for the claim-fence argument
      // above. Failure = owner in region (2), already lapsed (0), or a
      // racing collector won — all mean "hands off".
      if (!c->read_sticky.compare_exchange_strong(
              claim, 0, std::memory_order_seq_cst))
        continue;
      int64_t expect = e;
      // mo: seq_cst — the retraction a min_announced scan may now miss
      // this slot on; seq_cst keeps it ordered after the claim for every
      // observer. Failure means the owner re-announced between our sample
      // and the claim — the slot is live again, so hand the flag back.
      if (!c->announced.compare_exchange_strong(expect, -1,
                                                std::memory_order_seq_cst)) {
        uint8_t zero = 0;
        // mo: seq_cst — undo of the claim. CAS, not a store: the owner
        // may already have re-entered (0 -> 2) and now owns the flag; a
        // blind store(1) would corrupt an in-region state.
        c->read_sticky.compare_exchange_strong(zero, 1,
                                               std::memory_order_seq_cst);
      }
    }
  }

  detail::retire_batch* alloc_batch(detail::thread_context* c) {
    detail::retire_batch* b = c->batch_free;
    if (b != nullptr) {
      c->batch_free = b->next;
      --c->batch_free_n;
      b->epoch = -1;
      b->n = 0;
      b->next = nullptr;
      return b;
    }
    return new detail::retire_batch{};
  }

  void recycle_batch(detail::thread_context* c, detail::retire_batch* b) {
    if (c->batch_free_n < 2) {
      b->next = c->batch_free;
      c->batch_free = b;
      ++c->batch_free_n;
    } else {
      delete b;
    }
  }

  /// Stamp the open batch and queue it FIFO (oldest at head).
  void seal(detail::thread_context* c) {
    detail::retire_batch* b = c->open;
    c->open = nullptr;
    // mo: acquire — the stamp must upper-bound every member's retire
    // epoch; acquire keeps it no older than advances already observed.
    b->epoch = global_.load(std::memory_order_acquire);
    b->next = nullptr;
    if (c->sealed_tail == nullptr)
      c->sealed_head = b;
    else
      c->sealed_tail->next = b;
    c->sealed_tail = b;
  }

  void seal_and_reclaim(detail::thread_context* c) {
    FLOCK_FAULTPOINT("epoch.seal");
    seal(c);
    // Cheap pass: the cached bound, no scanning.
    // mo: acquire — pairs with the acq_rel raise in refresh_bound(); a
    // bound published by another thread's scan implies its announcement
    // reads, which this drain's frees rely on.
    drain_sealed(c, min_bound_.load(std::memory_order_acquire));
    if (c->sealed_head != nullptr) {
      // Backlog persists: unpin idle sticky readers first (a lapsed
      // announcement is the one blocker an epoch advance cannot step
      // past), then pay for one scan + advance and refresh the cache.
      lapse_idle_sticky();
      try_advance();
      drain_sealed(c, refresh_bound());
    }
  }

  /// Free sealed batches whose stamp precedes `bound` (strictly).
  void drain_sealed(detail::thread_context* c, int64_t bound) {
    detail::retire_batch* b = c->sealed_head;
    while (b != nullptr && b->epoch < bound) {
      detail::retire_batch* nxt = b->next;
      for (int i = 0; i < b->n; i++) b->items[i].del(b->items[i].p);
      c->retired_pending -= b->n;
      recycle_batch(c, b);
      b = nxt;
    }
    c->sealed_head = b;
    if (b == nullptr) c->sealed_tail = nullptr;
  }

  int64_t min_announced() const {
    int64_t mn = INT64_MAX;
    const int bound = thread_id_bound();
    for (int i = 0; i < bound; i++) {
      // mo: acquire — pairs with the release quiesce store (with_epoch
      // guard): reading -1 means that thread's accesses to protected
      // objects happen-before any free this scan justifies.
      int64_t e = detail::g_ctx[i].announced.load(std::memory_order_acquire);
      if (e >= 0 && e < mn) mn = e;
    }
    return mn;
  }

  /// One announcement scan; returns a freeing bound for the caller's
  /// *immediate* drain and raises the monotone cache. The immediate bound
  /// matches the classic scheme: with nobody announced, everything
  /// currently retired is free. The *cached* value is clamped to the
  /// global counter read before the scan — the value future decisions can
  /// trust, because validated future announcements can never land below
  /// it.
  int64_t refresh_bound() {
    const int64_t g = global_.load(std::memory_order_seq_cst);
    int64_t mn = min_announced();
    int64_t cacheable = mn == INT64_MAX ? g : (mn < g ? mn : g);
    // mo: relaxed — seeds the CAS expected value only; the CAS re-reads
    // with its own ordering on failure.
    int64_t cur = min_bound_.load(std::memory_order_relaxed);
    // mo: acq_rel — monotone-max raise: release publishes the scan this
    // bound summarizes to seal_and_reclaim's acquire read; acquire so a
    // loser sees the winner's larger bound and exits the loop.
    while (cacheable > cur && !min_bound_.compare_exchange_weak(
                                  cur, cacheable, std::memory_order_acq_rel)) {
    }
    return mn == INT64_MAX ? INT64_MAX : cacheable;
  }

  void try_advance() {
    // mo: acquire — the scan below must run against announcements no
    // older than the counter value we will advance from.
    int64_t g = global_.load(std::memory_order_acquire);
    int64_t mn = min_announced();
    // Advance only when every announced thread has caught up with the
    // current epoch; this bounds the distance between announcements and
    // the global counter to one advance per full quiescence cycle.
    // mo: acq_rel — release publishes the advance so stamps taken from
    // the new value imply this scan; acquire mirrors the load above when
    // the CAS fails and refreshes g.
    if (mn == INT64_MAX || mn >= g)
      global_.compare_exchange_strong(g, g + 1, std::memory_order_acq_rel);
  }

  std::atomic<int64_t> global_{0};
  // Monotone lower bound on the minimum announced epoch (cached scan).
  std::atomic<int64_t> min_bound_{0};
};

namespace detail {
inline constinit epoch_manager g_epoch{};
}  // namespace detail

inline epoch_manager& epoch_manager::instance() noexcept {
  return detail::g_epoch;
}

/// Lightweight epoch guard for read batches. ---------------------------------
///
/// with_epoch pays one seq_cst announce (store + validating re-read) per
/// outermost entry and quiesces (-1) on exit. For a read-dominated caller
/// issuing back-to-back finds, that announce is most of the cost of a hit.
/// read_guard amortizes it:
///
///  * Nested under an active epoch region (epoch_depth > 0) it is free —
///    the existing announcement already protects us.
///  * At top level it checks whether the slot is still announced at the
///    CURRENT global epoch (one relaxed load + one acquire load). If so,
///    the announcement never lapsed since the previous read — no scanner
///    can have missed it — and re-announcing is unnecessary. Only when the
///    slot is empty (-1) or the global epoch moved does it pay the full
///    validated announce.
///  * On destruction it leaves the announcement in place ("sticky",
///    state 1 in the thread context's read_sticky machine) instead of
///    quiescing, so the next read in the batch takes the cheap path. Any
///    later with_epoch simply refreshes the slot; thread exit and
///    epoch_manager::flush() clear it.
///
/// Bounded staleness (collector-enforced): a thread that goes idle right
/// after a read batch keeps its last epoch announced — but only until a
/// reclaiming thread with a persistent backlog runs lapse_idle_sticky(),
/// which claims the sticky flag (so the owner provably is not mid-region)
/// and retracts the announcement. An ACTIVE reader is never lapsed: each
/// new batch refreshes its announcement to the current epoch, and the
/// collector only claims slots trailing the global counter. So sticky
/// announcements delay reclamation by at most one collection cycle once
/// the owner idles; they cannot pin memory for the life of the process.
///
/// Consumers that cache epoch-protected pointers across guards (the
/// store-tier memoized-read cache) do NOT validate against this slot:
/// they carry their own proof of liveness (bucket entry counters plus the
/// bucket-array retirement era — store/read_cache.hpp), which is immune
/// to the announcement being refreshed or lapsed in between.
class read_guard {
 public:
  read_guard() : c_(detail::my_ctx()) {
    if (c_->epoch_depth++ == 0) {
      // mo: seq_cst — enter state 2 (owner in region) BEFORE deciding
      // whether to reuse the announcement: a collector claim that lands
      // before this exchange leaves prev != 1 and we re-announce (with
      // announce()'s seq_cst global read ordered after the claim, so the
      // new announcement lands above the collector's sampled epoch and
      // its pending retraction misses); a claim after it sees 2 and
      // skips. See lapse_idle_sticky.
      const uint8_t prev = c_->read_sticky.exchange(2, std::memory_order_seq_cst);
      // mo: relaxed — own announcement slot; only the value is compared,
      // the protocol-bearing store (if any) happens in announce().
      int64_t a = c_->announced.load(std::memory_order_relaxed);
      // mo: acquire — see current_epoch(); also keeps the comparison no
      // staler than advances this thread already observed.
      int64_t g = detail::g_epoch.global_.load(std::memory_order_acquire);
      // Reuse is only legal from state 1: an unclaimed sticky announcement
      // still at the current epoch was visible to every scan since it was
      // made. From state 0 the slot may have been retracted (collector
      // lapse, with_epoch quiesce) — pay the validated announce.
      if (prev != 1 || a != g) detail::g_epoch.announce(c_);
    }
  }

  read_guard(const read_guard&) = delete;
  read_guard& operator=(const read_guard&) = delete;

  ~read_guard() {
    // Sticky exit: keep the announcement armed for the next read in the
    // batch, and return the flag to claimable state 1. with_epoch's own
    // guard still quiesces normally when used.
    if (--c_->epoch_depth == 0) {
      // mo: release — the collector's claim CAS acquire-reads this 1,
      // ordering this batch's protected loads before any free a later
      // lapse of the announcement justifies.
      c_->read_sticky.store(1, std::memory_order_release);
    }
  }

 private:
  detail::thread_context* c_;
};

/// Convenience wrappers used throughout the library. ------------------------

template <class F>
inline auto with_epoch(F&& f) -> decltype(f()) {
  return epoch_manager::instance().with_epoch(std::forward<F>(f));
}

/// Epoch-deferred pool reclamation of a pool_new<T>'d object.
template <class T>
inline void epoch_retire(T* p) {
  epoch_manager::instance().retire(p, &pool_delete_erased<T>);
}

/// Epoch-deferred reclamation of an array_new<T>'d array (the length
/// travels in the array header, so the plain function-pointer deleter the
/// retire queue stores is enough).
template <class T>
inline void epoch_retire_array(T* p) {
  epoch_manager::instance().retire(p, &array_delete_erased<T>);
}

namespace detail {
/// Context-threaded spelling for hot paths that already hold a context.
template <class T>
inline void epoch_retire_ctx(thread_context* c, T* p) {
  g_epoch.retire_ctx(c, p, &pool_delete_erased<T>);
}
}  // namespace detail

}  // namespace flock
