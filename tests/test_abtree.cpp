// abtree ((a,b)-tree): oracle, stress, and structural tests. The
// invariant checker verifies occupancy bounds, key ordering, range
// containment, and uniform leaf depth.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class AbtreeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(AbtreeTest, BatteryTryLock) {
  set_test::battery<flock_workload::abtree_try>();
}

TEST_P(AbtreeTest, BatteryStrictLock) {
  set_test::battery<flock_workload::abtree_strict>();
}

TEST_P(AbtreeTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::abtree_try>();
}

TEST_P(AbtreeTest, MonotoneFillForcesSplits) {
  flock_workload::abtree_try s;
  for (uint64_t k = 1; k <= 5000; k++) {
    ASSERT_TRUE(s.insert(k, k * 2));
    if (k % 1000 == 0) {
      ASSERT_TRUE(s.check_invariants()) << "at " << k;
    }
  }
  EXPECT_EQ(s.size(), 5000u);
  for (uint64_t k = 1; k <= 5000; k++) ASSERT_EQ(*s.find(k), k * 2);
}

TEST_P(AbtreeTest, DrainForcesMergesAndRootCollapse) {
  flock_workload::abtree_try s;
  for (uint64_t k = 1; k <= 5000; k++) s.insert(k, k);
  // Remove in an order that exercises both borrow directions.
  for (uint64_t k = 1; k <= 5000; k += 2) ASSERT_TRUE(s.remove(k));
  ASSERT_TRUE(s.check_invariants());
  for (uint64_t k = 5000; k >= 2; k -= 2) ASSERT_TRUE(s.remove(k));
  EXPECT_EQ(s.size(), 0u);
  ASSERT_TRUE(s.check_invariants());
  // Tree usable after complete drain.
  EXPECT_TRUE(s.insert(42, 42));
  EXPECT_EQ(*s.find(42), 42u);
}

TEST_P(AbtreeTest, RandomizedStructuralAudit) {
  flock_workload::abtree_try s;
  std::mt19937_64 rng(5);
  std::set<uint64_t> oracle;
  for (int i = 0; i < 30000; i++) {
    uint64_t k = rng() % 2000 + 1;
    if (rng() & 1) {
      ASSERT_EQ(s.insert(k, k), oracle.insert(k).second);
    } else {
      ASSERT_EQ(s.remove(k), oracle.erase(k) > 0);
    }
    if (i % 5000 == 0) {
      ASSERT_TRUE(s.check_invariants()) << "op " << i;
    }
  }
  ASSERT_TRUE(s.check_invariants());
  ASSERT_EQ(s.size(), oracle.size());
}

TEST_P(AbtreeTest, ConcurrentStructuralChanges) {
  // Small key range + high update rate: constant splits and merges.
  flock_workload::abtree_try s;
  set_test::concurrent_stress(s, 8, 128, 8000, 90);
}

INSTANTIATE_TEST_SUITE_P(Modes, AbtreeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
