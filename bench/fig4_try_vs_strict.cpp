// Figure 4 — try lock vs strict lock on leaftree: 100K keys, all
// threads, 50% updates, zipf alpha in {0, 0.75, 0.9, 0.99}, four series:
// {try, strict} x {blocking, lock-free}. The paper's shape: tryLock beats
// strictLock, and the gap widens with contention (higher alpha).
#include <memory>

#include "harness.hpp"

int main() {
  using namespace bench;
  std::fprintf(stderr, "fig4: leaftree try vs strict (keys=%llu, threads=%d, 50%% upd)\n",
               static_cast<unsigned long long>(cfg().small_n),
               cfg().max_threads);
  std::printf("figure,series,zipf_alpha,mops\n");
  const std::vector<double> alphas = {0, 0.75, 0.9, 0.99};
  const uint64_t n = cfg().small_n;
  const int th = cfg().max_threads;

  auto mk_try = [] { return std::make_unique<flock_workload::leaftree_try>(); };
  auto mk_strict = [] {
    return std::make_unique<flock_workload::leaftree_strict>();
  };

  sweep_alpha("fig4", "leaftree-trylock-bl", mk_try, /*blocking=*/true, n,
              th, 50, alphas);
  sweep_alpha("fig4", "leaftree-trylock-lf", mk_try, /*blocking=*/false, n,
              th, 50, alphas);
  sweep_alpha("fig4", "leaftree-strictlock-bl", mk_strict, true, n, th, 50,
              alphas);
  sweep_alpha("fig4", "leaftree-strictlock-lf", mk_strict, false, n, th, 50,
              alphas);

  // Second panel at 1/10 the keys and oversubscribed threads: this
  // machine has ~6x fewer hardware threads than the paper's, so lock
  // contention at 100K keys is proportionally lower; the hot panel
  // restores the paper's contention regime (where strict locks collapse).
  const uint64_t hot = cfg().small_n / 10;
  const int ov = cfg().oversub_threads;
  sweep_alpha("fig4hot", "leaftree-trylock-bl", mk_try, true, hot, ov, 50,
              alphas);
  sweep_alpha("fig4hot", "leaftree-trylock-lf", mk_try, false, hot, ov, 50,
              alphas);
  sweep_alpha("fig4hot", "leaftree-strictlock-bl", mk_strict, true, hot, ov,
              50, alphas);
  sweep_alpha("fig4hot", "leaftree-strictlock-lf", mk_strict, false, hot, ov,
              50, alphas);
  return 0;
}
