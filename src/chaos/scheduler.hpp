// scheduler.hpp — a cooperative schedule explorer over the faultpoint
// layer (CDSChecker/Relacy-style, per the ROADMAP item).
//
// The faultpoint layer (faultpoint.hpp) names the protocol's hardest
// windows; kill/stall plans probe the schedules a test author thought to
// write down. This header turns those same points into *yield points* of
// a cooperative scheduler that serializes N logical threads and decides,
// at every crossing, which thread runs next — so the interleavings nobody
// enumerated get enumerated.
//
// Model. Each scenario thread runs as a real std::thread, but exactly one
// is ever runnable: every other thread is parked on a condvar at its last
// yield point. Yield points are (a) every FLOCK_FAULTPOINT site, (b) the
// scheduler-only FLOCK_SCHEDPOINT sites (descriptor tag revalidation,
// write_once publication, test-local `test.*` markers), and (c) an
// implicit `thread.start` rendezvous before a thread's body runs. A
// per-run prefix filter selects which points count as scheduling steps —
// small filters keep schedule spaces tractable and exclude points whose
// arrival depends on cross-run global state (slab refill, epoch seal).
//
// Deciders (which thread runs next):
//   dfs_decider     exhaustive DFS over all schedules, with preemption
//                   bounding (a switch away from a still-enabled thread
//                   costs one preemption; bound <= 2 keeps scenarios
//                   tractable, and most bugs need few preemptions) and an
//                   optional kill budget: "kill thread t" is a schedule
//                   token like any other, so "thread dies at step k of
//                   schedule S" is one enumerable event.
//   pct_decider     seeded random walk in the style of PCT (probabilistic
//                   concurrency testing): random distinct priorities,
//                   d priority-change points; bit-identically reproducible
//                   from FLOCK_CHAOS_SEED.
//   replay_decider  stateless replay from a recorded schedule string.
//
// Schedule strings. Every run records its decisions as a comma-separated
// token list: `N` runs thread N for one step, `kN` kills thread N at its
// current yield point. "0,0,1,k0,1" replays exactly — the DFS verifies
// prefix determinism (same choices => same enabled sets) as it explores.
//
// Kill semantics. A scheduler kill leaves the victim parked at its yield
// point — dead to the protocol, exactly the paper's dead-holder scenario —
// while the schedule continues without it. When every live thread has
// finished (quiescence), the harness can assert intermediate state; then
// killed threads are *revived* and drained under a fixed default policy
// (never branchable, so it adds no schedule states), modelling the
// paper's "resumed replay is harmless" idempotence claim on every
// explored schedule. Faultpoint *plans* (arm/arm_seeded) compose with the
// scheduler for stall and alloc-fail faults; a plan-armed kill must NOT
// be combined with the scheduler (it parks the only runnable thread
// outside the scheduler's state machine — use kill tokens instead).
//
// Determinism requirements on scenarios: bodies must be deterministic
// given the sequence of scheduling decisions (no wall-clock, no rng not
// derived from the seed), and the yield filter must exclude points whose
// arrival depends on state carried across runs. The engine joins each
// worker the moment it finishes, so thread-id recycling order (LIFO free
// list in thread_context.hpp) is itself schedule-deterministic.
//
// Like the rest of src/chaos/, this header is test-side machinery: the
// runtime never includes it. The runtime's only coupling is the
// thread-local hook in faultpoint.hpp (one TLS load per compiled-in
// point); without FLOCK_CHAOS every yield point compiles to nothing and
// this header is inert.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "faultpoint.hpp"

namespace flock_sched {

// --- schedule tokens and the string codec ----------------------------------

struct token {
  enum class kind : uint8_t { run, kill };
  kind k = kind::run;
  int thread = 0;

  static token run(int t) { return token{kind::run, t}; }
  static token kill(int t) { return token{kind::kill, t}; }
  bool operator==(const token& o) const {
    return k == o.k && thread == o.thread;
  }
};

inline std::string format_schedule(const std::vector<token>& ts) {
  std::string s;
  for (std::size_t i = 0; i < ts.size(); i++) {
    if (i != 0) s += ',';
    if (ts[i].k == token::kind::kill) s += 'k';
    s += std::to_string(ts[i].thread);
  }
  return s;
}

/// Parse a schedule string ("0,0,1,k0,1"). Malformed tokens end the
/// parse (the replay decider falls back to the default policy there).
inline std::vector<token> parse_schedule(const std::string& s) {
  std::vector<token> out;
  std::size_t i = 0;
  while (i < s.size()) {
    token t;
    if (s[i] == 'k') {
      t.k = token::kind::kill;
      i++;
    }
    if (i >= s.size() || s[i] < '0' || s[i] > '9') break;
    int v = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9')
      v = v * 10 + (s[i++] - '0');
    t.thread = v;
    out.push_back(t);
    if (i < s.size()) {
      if (s[i] != ',') break;
      i++;
    }
  }
  return out;
}

// --- per-run report ---------------------------------------------------------

struct run_report {
  std::vector<token> tokens;        // decisions taken, in order
  std::vector<std::string> points;  // yield point of the chosen thread
                                    // at each decision (kills: where the
                                    // victim was parked)
  bool truncated = false;           // max_steps bailout (free-run escape)
  std::string fingerprint;          // filled by the harness (scenario)

  std::string schedule_string() const { return format_schedule(tokens); }

  /// One line fusing decisions with the points they were taken at —
  /// stable across replays of a deterministic scenario, so equality of
  /// trace() between record and replay is the determinism check.
  std::string trace() const {
    std::string s;
    for (std::size_t i = 0; i < tokens.size(); i++) {
      if (i != 0) s += ' ';
      if (tokens[i].k == token::kind::kill) s += 'k';
      s += std::to_string(tokens[i].thread);
      s += '@';
      s += points[i];
    }
    return s;
  }
};

// --- deciders ---------------------------------------------------------------

/// Fixed fallback policy: keep running the last thread while it stays
/// enabled, else the lowest-index enabled thread. Used by replay past the
/// recorded tokens and by the post-quiescence drain; deliberately not
/// branchable so it never adds schedule states.
inline int default_pick(const std::vector<int>& enabled, int last) {
  for (int t : enabled)
    if (t == last) return t;
  return enabled.front();
}

class decider {
 public:
  virtual ~decider() = default;
  /// Called at each decision point with the sorted enabled set (never
  /// empty) and the thread that ran the previous step (-1 at run start,
  /// unchanged by kill tokens). Must return `run t` or `kill t` with t
  /// in the enabled set.
  virtual token decide(const std::vector<int>& enabled, int last) = 0;
  virtual void on_run_begin() {}
};

/// Exhaustive DFS with preemption bounding and a kill budget.
///
///   dfs_decider d(/*preemption_bound=*/2);
///   do { auto rep = run_schedule(bodies, d, opts); ... }
///   while (d.next_schedule());
///
/// Candidate order at each new decision point: continue the current
/// thread first (no preemption), then the other enabled threads in
/// ascending order (one preemption each, only while budget remains; a
/// switch away from a finished/killed thread is free), then kill tokens
/// in ascending order while the kill budget remains.
class dfs_decider : public decider {
 public:
  explicit dfs_decider(int preemption_bound, int kill_bound = 0)
      : preemption_bound_(preemption_bound), kill_bound_(kill_bound) {}

  void on_run_begin() override {
    step_ = 0;
    preempts_ = 0;
    kills_ = 0;
  }

  token decide(const std::vector<int>& enabled, int last) override {
    if (step_ == frames_.size()) {
      frame f;
      f.enabled = enabled;
      f.last = last;
      build_candidates(f);
      frames_.push_back(std::move(f));
    }
    frame& f = frames_[step_];
    // Prefix determinism: replaying the same choices must reproduce the
    // same enabled sets, or recorded schedule strings are meaningless.
    if (f.enabled != enabled || f.last != last) nondet_ = true;
    token t = f.candidates[f.index];
    account(t, enabled, last);
    step_++;
    return t;
  }

  /// Advance to the next unexplored schedule; false when the tree is
  /// exhausted.
  bool next_schedule() {
    while (!frames_.empty()) {
      if (++frames_.back().index < frames_.back().candidates.size())
        return true;
      frames_.pop_back();
    }
    return false;
  }

  bool nondeterminism_detected() const { return nondet_; }

 private:
  struct frame {
    std::vector<int> enabled;
    int last = -1;
    std::vector<token> candidates;
    std::size_t index = 0;
  };

  void build_candidates(frame& f) const {
    bool cur_enabled = false;
    for (int t : f.enabled) cur_enabled |= (t == f.last);
    if (cur_enabled) f.candidates.push_back(token::run(f.last));
    for (int t : f.enabled) {
      if (t == f.last) continue;
      if (!cur_enabled || preempts_ < preemption_bound_)
        f.candidates.push_back(token::run(t));
    }
    if (kills_ < kill_bound_)
      for (int t : f.enabled) f.candidates.push_back(token::kill(t));
  }

  void account(const token& t, const std::vector<int>& enabled, int last) {
    if (t.k == token::kind::kill) {
      kills_++;
      return;
    }
    bool cur_enabled = false;
    for (int e : enabled) cur_enabled |= (e == last);
    if (cur_enabled && t.thread != last) preempts_++;
  }

  int preemption_bound_;
  int kill_bound_;
  std::vector<frame> frames_;
  std::size_t step_ = 0;
  int preempts_ = 0;
  int kills_ = 0;
  bool nondet_ = false;
};

/// Seeded random walk, PCT-style: each thread gets a random distinct
/// priority; at each step the highest-priority enabled thread runs; at d
/// pre-sampled change steps the currently-highest enabled thread's
/// priority drops below everyone's. Optionally spends `kill_budget`
/// seeded kill tokens at pre-sampled steps. Everything derives from the
/// seed via one xorshift stream: the same seed yields bit-identical
/// schedules (recorded tokens make any failure replayable regardless).
class pct_decider : public decider {
 public:
  pct_decider(uint64_t seed, int nthreads, int depth = 3,
              std::size_t expected_steps = 64, int kill_budget = 0)
      : x_(seed ? seed : 0x9e3779b97f4a7c15ULL) {
    prio_.resize(static_cast<std::size_t>(nthreads));
    // Distinct priorities: a random permutation offset high above the
    // demotion range.
    for (std::size_t i = 0; i < prio_.size(); i++)
      prio_[i] = (1u << 20) + i;
    for (std::size_t i = prio_.size(); i > 1; i--)
      std::swap(prio_[i - 1], prio_[next() % i]);
    for (int i = 0; i < depth; i++)
      change_steps_.push_back(next() % (expected_steps ? expected_steps : 1));
    for (int i = 0; i < kill_budget; i++)
      kill_steps_.push_back(next() % (expected_steps ? expected_steps : 1));
  }

  void on_run_begin() override {
    step_ = 0;
    demote_ = 0;
  }

  token decide(const std::vector<int>& enabled, int) override {
    for (std::size_t cs : change_steps_)
      if (cs == step_) prio_[highest(enabled)] = demote_++;
    for (std::size_t ks : kill_steps_) {
      if (ks == step_ && enabled.size() > 1) {
        step_++;
        return token::kill(highest(enabled));
      }
    }
    step_++;
    return token::run(highest(enabled));
  }

 private:
  uint64_t next() {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return x_;
  }
  int highest(const std::vector<int>& enabled) const {
    int best = enabled.front();
    for (int t : enabled)
      if (prio_[static_cast<std::size_t>(t)] >
          prio_[static_cast<std::size_t>(best)])
        best = t;
    return best;
  }

  uint64_t x_;
  std::vector<uint64_t> prio_;
  std::vector<std::size_t> change_steps_;
  std::vector<std::size_t> kill_steps_;
  std::size_t step_ = 0;
  uint64_t demote_ = 0;
};

/// Stateless replay of a recorded schedule string. Tokens naming a
/// thread that is not currently enabled mark the replay as diverged (the
/// scenario changed, or the recording is from a different scenario) and
/// are skipped; past the recorded tokens the default policy finishes the
/// run.
class replay_decider : public decider {
 public:
  explicit replay_decider(const std::string& schedule)
      : tokens_(parse_schedule(schedule)) {}
  explicit replay_decider(std::vector<token> tokens)
      : tokens_(std::move(tokens)) {}

  void on_run_begin() override { index_ = 0; }

  token decide(const std::vector<int>& enabled, int last) override {
    while (index_ < tokens_.size()) {
      token t = tokens_[index_++];
      bool ok = false;
      for (int e : enabled) ok |= (e == t.thread);
      if (ok) return t;
      diverged_ = true;
    }
    return token::run(default_pick(enabled, last));
  }

  bool diverged() const { return diverged_; }

 private:
  std::vector<token> tokens_;
  std::size_t index_ = 0;
  bool diverged_ = false;
};

// --- the serializing engine -------------------------------------------------

struct run_options {
  /// Yield filter: a point participates in scheduling iff its name starts
  /// with one of these prefixes (the `thread.start` rendezvous always
  /// participates). Empty = every point. Keep filters tight: they bound
  /// the schedule space AND exclude points whose arrival depends on
  /// cross-run global state (pool refills, epoch seals).
  std::vector<std::string> point_prefixes;
  /// Decision budget before the run bails out into free-running mode
  /// (report.truncated = true). A safety net, not a tuning knob:
  /// exhaustive tests assert it never trips.
  std::size_t max_steps = 20000;
};

namespace detail {

class engine {
 public:
  engine(const std::vector<std::function<void()>>& bodies,
         decider& d, const run_options& o,
         const std::function<void()>& on_quiescent)
      : opts_(o), decider_(d), on_quiescent_(on_quiescent) {
    w_.resize(bodies.size());
    decider_.on_run_begin();
    for (std::size_t i = 0; i < bodies.size(); i++)
      w_[i].th = std::thread([this, i, body = bodies[i]] {
        worker_main(static_cast<int>(i), body);
      });
    control();
  }

  run_report take_report() { return std::move(rep_); }

 private:
  enum class ws : uint8_t { booting, at_yield, running, killed, finished };

  struct worker {
    ws st = ws::booting;
    const char* point = "";
    std::thread th;
    bool joined = false;
  };

  struct hook_impl {
    flock_chaos::detail::sched_hook base;
    engine* eng;
    int idx;
  };

  static void hook_fn(flock_chaos::detail::sched_hook* self,
                      const char* point) {
    hook_impl* h = reinterpret_cast<hook_impl*>(self);
    h->eng->yield(h->idx, point);
  }

  bool filter_match(const char* point) const {
    if (std::strcmp(point, "thread.start") == 0) return true;
    if (opts_.point_prefixes.empty()) return true;
    for (const std::string& p : opts_.point_prefixes)
      if (std::strncmp(point, p.c_str(), p.size()) == 0) return true;
    return false;
  }

  void worker_main(int idx, const std::function<void()>& body) {
    hook_impl h{};
    h.base.fn = &hook_fn;
    h.eng = this;
    h.idx = idx;
    flock_chaos::detail::tl_sched_hook = &h.base;
    yield(idx, "thread.start");
    try {
      body();
    } catch (...) {
      // A throwing body is a scenario bug; surface it as a normal finish
      // so the controller can join instead of hanging the whole test.
    }
    // Uninstall before finishing: thread-exit teardown (thread-context
    // release, epoch bookkeeping) crosses instrumented code, and the
    // controller joins this thread immediately so that teardown runs
    // exclusively and in schedule order.
    flock_chaos::detail::tl_sched_hook = nullptr;
    std::lock_guard<std::mutex> lk(mu_);
    w_[static_cast<std::size_t>(idx)].st = ws::finished;
    cv_.notify_all();
  }

  /// Called from worker threads at every instrumented point.
  void yield(int idx, const char* point) {
    if (free_run_.load(std::memory_order_acquire)) return;
    if (!filter_match(point)) return;
    std::unique_lock<std::mutex> lk(mu_);
    if (free_run_.load(std::memory_order_relaxed)) return;
    worker& me = w_[static_cast<std::size_t>(idx)];
    me.st = ws::at_yield;
    me.point = point;
    cv_.notify_all();
    cv_.wait(lk, [&] {
      return (active_ == idx && me.st == ws::running) ||
             free_run_.load(std::memory_order_relaxed);
    });
  }

  bool all_parked() const {
    for (const worker& ws_ : w_)
      if (ws_.st == ws::booting || ws_.st == ws::running) return false;
    return true;
  }

  std::vector<int> enabled_set() const {
    std::vector<int> e;
    for (std::size_t i = 0; i < w_.size(); i++)
      if (w_[i].st == ws::at_yield) e.push_back(static_cast<int>(i));
    return e;
  }

  /// Join every finished-but-unjoined worker. The exiting thread never
  /// re-enters the engine after setting `finished`, and nothing else is
  /// runnable while the controller blocks here, so its TLS teardown
  /// (thread-id release — LIFO-recycled, see thread_context.hpp) runs
  /// exclusively and lands at a deterministic position in the schedule.
  void join_finished() {
    for (worker& ws_ : w_)
      if (ws_.st == ws::finished && !ws_.joined) {
        ws_.joined = true;
        ws_.th.join();
      }
  }

  void grant(int t) {
    w_[static_cast<std::size_t>(t)].st = ws::running;
    active_ = t;
    cv_.notify_all();
  }

  /// Serialize until the given enabled-set predicate says stop; record
  /// decisions from `pick`. Shared by the main phase and the drain.
  void control() {
    std::unique_lock<std::mutex> lk(mu_);
    std::size_t decisions = 0;

    // Main phase: the decider owns every choice, including kills.
    for (;;) {
      cv_.wait(lk, [&] { return all_parked(); });
      join_finished();
      std::vector<int> enabled = enabled_set();
      if (enabled.empty()) break;
      if (decisions >= opts_.max_steps) {
        bail_out(lk);
        return;
      }
      decisions++;
      token tok = decider_.decide(enabled, last_);
      rep_.tokens.push_back(tok);
      rep_.points.push_back(w_[static_cast<std::size_t>(tok.thread)].point);
      if (tok.k == token::kind::kill) {
        w_[static_cast<std::size_t>(tok.thread)].st = ws::killed;
      } else {
        last_ = tok.thread;
        grant(tok.thread);
      }
    }

    // Quiescence: every live thread finished; killed threads still parked
    // mid-window. The harness asserts intermediate state here.
    if (on_quiescent_) {
      lk.unlock();
      on_quiescent_();
      lk.lock();
    }

    // Revive and drain under the fixed default policy (not branchable —
    // revival adds no schedule states, it only checks that the resumed
    // replays are harmless).
    for (worker& ws_ : w_)
      if (ws_.st == ws::killed) ws_.st = ws::at_yield;
    for (;;) {
      cv_.wait(lk, [&] { return all_parked(); });
      join_finished();
      std::vector<int> enabled = enabled_set();
      if (enabled.empty()) break;
      if (decisions++ >= opts_.max_steps + w_.size() * 1000) {
        bail_out(lk);
        return;
      }
      int t = default_pick(enabled, last_);
      last_ = t;
      grant(t);
    }
  }

  /// Escape hatch when a run exceeds its step budget: release everything
  /// to free-run concurrently to completion, join, and report truncation.
  void bail_out(std::unique_lock<std::mutex>& lk) {
    rep_.truncated = true;
    free_run_.store(true, std::memory_order_release);
    cv_.notify_all();
    lk.unlock();
    for (worker& ws_ : w_)
      if (!ws_.joined) {
        ws_.joined = true;
        ws_.th.join();
      }
  }

  run_options opts_;
  decider& decider_;
  std::function<void()> on_quiescent_;
  std::vector<worker> w_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> free_run_{false};
  int active_ = -1;
  int last_ = -1;
  run_report rep_;
};

}  // namespace detail

/// Run the thread bodies once under `d`'s schedule. Returns after every
/// worker (including revived kill victims) has finished and been joined.
/// `on_quiescent` runs on the calling thread at the quiescence point:
/// all live threads finished, kill victims still parked mid-window.
inline run_report run_schedule(
    const std::vector<std::function<void()>>& bodies, decider& d,
    const run_options& o = {},
    const std::function<void()>& on_quiescent = {}) {
  detail::engine e(bodies, d, o, on_quiescent);
  return e.take_report();
}

}  // namespace flock_sched
