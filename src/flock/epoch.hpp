// epoch.hpp — epoch-based memory reclamation (paper §6 "Epoch-based
// collection") with helper epoch adoption.
//
// Scheme: a global epoch counter plus one padded announcement slot per
// thread. An operation announces the current global epoch for its whole
// duration (`with_epoch`). Retired objects are stamped with the global
// epoch at retire time and freed once every announced epoch is strictly
// greater than the stamp. Because an object is only retired after it was
// reachable, any reader that can still hold a reference announced an epoch
// no larger than the retire stamp, so the gate is sound.
//
// Helper adoption (paper §6): when a thread helps a descriptor it lowers
// its announcement to min(own, descriptor epoch) and restores it after.
// This is safe because (a) lowering an announcement only widens protection,
// and (b) while a descriptor is installed on a lock and not yet unlocked,
// its creator is still inside `with_epoch` announcing the descriptor's
// epoch, so nothing from that epoch onwards has been freed (see lock.hpp
// for the ordering that makes the hand-off airtight).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "allocator.hpp"
#include "config.hpp"
#include "threading.hpp"

namespace flock {

class epoch_manager {
  struct alignas(kCacheLine) slot_t {
    std::atomic<int64_t> announced{-1};
    int depth = 0;  // touched only by the owning thread
  };

  struct retired_item {
    void* p;
    void (*del)(void*);
    int64_t epoch;
  };

  struct alignas(kCacheLine) retired_list {
    std::vector<retired_item> items;
    int64_t since_scan = 0;
  };

  static constexpr int64_t kScanThreshold = 64;

 public:
  static epoch_manager& instance() {
    static epoch_manager m;
    return m;
  }

  /// Run `f` inside an epoch-protected region. Nesting is allowed; only the
  /// outermost level announces.
  template <class F>
  auto with_epoch(F&& f) -> decltype(f()) {
    const int me = thread_id();
    slot_t& s = slots_[me];
    if (s.depth++ == 0) {
      // seq_cst so the announcement is visible before any reads inside.
      s.announced.store(global_.load(std::memory_order_relaxed),
                        std::memory_order_seq_cst);
    }
    struct guard {
      slot_t* s;
      ~guard() {
        if (--s->depth == 0)
          s->announced.store(-1, std::memory_order_release);
      }
    } g{&s};
    return f();
  }

  /// Defer destruction of `p` until no announced epoch can still reference
  /// it. `del` must be a plain function (e.g. pool_delete_erased<T>).
  void retire(void* p, void (*del)(void*)) {
    const int me = thread_id();
    retired_list& r = retired_[me];
    r.items.push_back({p, del, global_.load(std::memory_order_acquire)});
    if (++r.since_scan >= kScanThreshold) {
      r.since_scan = 0;
      try_advance();
      collect(r);
    }
  }

  /// Current announcement of a thread (-1 when quiescent).
  int64_t announced(int tid) const {
    return slots_[tid].announced.load(std::memory_order_acquire);
  }

  /// Helper adoption: lower the calling thread's announcement to
  /// min(current, e). Returns the previous announcement for restore().
  int64_t adopt(int64_t e) {
    slot_t& s = slots_[thread_id()];
    int64_t prev = s.announced.load(std::memory_order_relaxed);
    if (prev < 0 || e < prev)
      s.announced.store(e, std::memory_order_seq_cst);
    return prev;
  }

  void restore(int64_t prev) {
    slots_[thread_id()].announced.store(prev, std::memory_order_seq_cst);
  }

  int64_t current_epoch() const {
    return global_.load(std::memory_order_acquire);
  }

  /// Objects retired by any thread but not yet freed (approximate).
  long long pending() const {
    long long n = 0;
    for (int i = 0; i < kMaxThreads; i++)
      n += static_cast<long long>(retired_[i].items.size());
    return n;
  }

  /// Test/shutdown hook: advance epochs and drain every thread's retire
  /// list, including lists stranded by exited threads. Requires
  /// quiescence (no concurrent operations in flight) to fully drain; safe
  /// to call concurrently only with other flush() calls being absent.
  void flush() {
    for (int i = 0; i < 3; i++) try_advance();
    const int bound = thread_id_bound();
    for (int i = 0; i < bound; i++) collect(retired_[i]);
  }

 private:
  epoch_manager() = default;
  // Deliberately no cleanup at static destruction: pools may already be
  // gone. Tests drain with flush().
  ~epoch_manager() = default;

  int64_t min_announced() const {
    int64_t mn = INT64_MAX;
    const int bound = thread_id_bound();
    for (int i = 0; i < bound; i++) {
      int64_t e = slots_[i].announced.load(std::memory_order_acquire);
      if (e >= 0 && e < mn) mn = e;
    }
    return mn;
  }

  void try_advance() {
    int64_t g = global_.load(std::memory_order_acquire);
    int64_t mn = min_announced();
    // Advance only when every announced thread has caught up with the
    // current epoch; this bounds the distance between announcements and
    // the global counter to one advance per full quiescence cycle.
    if (mn == INT64_MAX || mn >= g)
      global_.compare_exchange_strong(g, g + 1, std::memory_order_acq_rel);
  }

  void collect(retired_list& r) {
    if (r.items.empty()) return;
    const int64_t mn = min_announced();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < r.items.size(); i++) {
      retired_item& it = r.items[i];
      // Freeable once no announced epoch is <= the retire stamp.
      if (mn == INT64_MAX || it.epoch < mn) {
        it.del(it.p);
      } else {
        r.items[keep++] = it;
      }
    }
    r.items.resize(keep);
  }

  std::atomic<int64_t> global_{0};
  slot_t slots_[kMaxThreads];
  retired_list retired_[kMaxThreads];
};

/// Convenience wrappers used throughout the library. ------------------------

template <class F>
inline auto with_epoch(F&& f) -> decltype(f()) {
  return epoch_manager::instance().with_epoch(std::forward<F>(f));
}

/// Epoch-deferred pool reclamation of a pool_new<T>'d object.
template <class T>
inline void epoch_retire(T* p) {
  epoch_manager::instance().retire(p, &pool_delete_erased<T>);
}

}  // namespace flock
