// dlist (Algorithm 1): oracle, stress, and doubly-linked specifics
// (back-pointer integrity is part of check_invariants).
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class DlistTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(DlistTest, BatteryTryLock) {
  set_test::battery<flock_workload::dlist_try>();
}

TEST_P(DlistTest, BatteryStrictLock) {
  set_test::battery<flock_workload::dlist_strict>();
}

TEST_P(DlistTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::dlist_try>();
}

TEST_P(DlistTest, BackPointersAfterChurn) {
  flock_workload::dlist_try s;
  // Interleave inserts and removes to exercise prev-pointer fixups.
  for (uint64_t k = 1; k <= 200; k++) s.insert(k, k);
  for (uint64_t k = 1; k <= 200; k += 2) s.remove(k);
  for (uint64_t k = 1; k <= 200; k += 4) s.insert(k, k);
  EXPECT_TRUE(s.check_invariants());  // includes prev == predecessor
}

TEST_P(DlistTest, SingleElementEdgeCases) {
  flock_workload::dlist_try s;
  EXPECT_FALSE(s.remove(7));
  EXPECT_TRUE(s.insert(7, 70));
  EXPECT_EQ(*s.find(7), 70u);
  EXPECT_TRUE(s.remove(7));
  EXPECT_FALSE(s.find(7).has_value());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST_P(DlistTest, ConcurrentNeighborsContention) {
  // Adjacent keys force contention on the same prev locks.
  flock_workload::dlist_try s;
  set_test::concurrent_stress(s, 8, 16, 5000, 90);
}

INSTANTIATE_TEST_SUITE_P(Modes, DlistTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
