// faultpoint.hpp — named, compile-time-erasable fault points for
// deterministic chaos testing of the flock runtime.
//
// The paper's core robustness claim (§1, §3) is that a stalled or dead
// lock holder cannot block the system: helpers finish its critical
// section. Validating that with wall-clock stalls is flaky on small
// machines and blind to the narrow protocol windows (merge publication,
// root swing + epoch retire, slab refill). This header gives every such
// window a *name* — `FLOCK_FAULTPOINT("ht.merge.pre_publish")` — and lets
// a test arm a deterministic fault at it:
//
//   stall       bounded spin at the point (replaces wall-clock sleeps);
//   kill        the thread parks at the point until release_killed() —
//               the paper's dead-holder scenario: the operation is
//               abandoned mid-protocol for the rest of the test, then the
//               thread resumes harmlessly at teardown (idempotence makes
//               the resumed replay a no-op);
//   alloc_fail  the allocation guarded by the point reports failure
//               (only honored at FLOCK_FAULTPOINT_ALLOC_FAIL sites).
//
// Erasure: unless FLOCK_CHAOS is defined at compile time, the macros
// expand to nothing (`FLOCK_FAULTPOINT_ALLOC_FAIL` to `false`), so
// release/bench builds carry zero instructions per point. The registry,
// counters, and plan API below always compile (they are cheap inert
// atomics), so stats aggregation and reporters link the same either way.
// Test targets define FLOCK_CHAOS (see CMakeLists.txt); with no plan
// armed a compiled-in point costs one relaxed atomic load.
//
// Determinism: hit arrivals are only counted while a point has a plan
// armed, and each plan entry counts the arrivals that match its own
// filter (any-thread, or victim-only — a thread marked by victim_scope).
// An entry fires on its nth..nth+count-1 matching arrivals. Arm a
// victim-only kill with nth=1 and the *first* protocol-window crossing of
// the designated thread faults, every run, regardless of scheduling.
// Seeded pseudo-random plans (`arm_seeded`, seed from FLOCK_CHAOS_SEED or
// set at runtime like set_backoff) arm stalls across the registered
// points plus alloc-fail at the resize trigger — the two fault classes
// that are safe to inject blindly. (Blind kill/alloc-fail at arbitrary
// points is deliberately not part of seeded plans: a killed thread parks
// until the test releases it, and the runtime's defined alloc-failure
// surface is the resize trigger and the pool/array null contract — see
// allocator.hpp.)
//
// This header is dependency-free with respect to the flock runtime (the
// runtime includes it, not vice versa), so it can be threaded through
// lock.hpp, epoch.hpp, allocator.hpp, hashtable.hpp, and sharded_map.hpp
// without include cycles.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace flock_chaos {

enum class fault : uint8_t { stall, kill, alloc_fail };

/// Canonical names of the fault points threaded through the runtime.
/// Tests may additionally register ad-hoc points (any string literal
/// passed to FLOCK_FAULTPOINT registers itself on first hit).
inline constexpr const char* kKnownPoints[] = {
    "lock.install.post",        // descriptor installed, thunk not yet run
    "lock.handoff.pre_unlock",  // done published, unlock CAS pending
    "lock.help.pre_run",        // helper validated, about to run the thunk
    "ht.grow.pre_publish",      // split copies live, forwarded flag pending
    "ht.merge.pre_publish",     // merge built, single-store publish pending
    "ht.root.pre_swing",        // resize drained, root CAS pending
    "ht.root.pre_retire",       // root swung, table epoch-retire pending
    "ht.resize.alloc",          // successor-table allocation (alloc-fail)
    "ht.move.pre_splice",       // inside the cross-table move's inner CS
    "ht.ver.pre_exit",          // bucket CS done, exit bump pending (a
                                // kill leaves ver_enter ahead for good —
                                // the bucket becomes fallback-only)
    "epoch.retire",             // retire push onto the open batch
    "epoch.seal",               // batch seal + reclamation decision
    "alloc.refill",             // slab refill (alloc-fail capable)
    "alloc.array",              // array_new header allocation (alloc-fail)
    "store.move.pre_nest",      // cross-shard move, before the lock nest
};
inline constexpr std::size_t kKnownPointCount =
    sizeof(kKnownPoints) / sizeof(kKnownPoints[0]);

namespace detail {

inline void chaos_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Injection counters (monotonic, like the flock stat counters) and the
// kill-park rendezvous. Always compiled so reporters can read them
// unconditionally; zero forever in builds without FLOCK_CHAOS.
inline std::atomic<uint64_t> g_stalls{0};
inline std::atomic<uint64_t> g_kills{0};
inline std::atomic<uint64_t> g_alloc_fails{0};
inline std::atomic<uint64_t> g_parked{0};
inline std::atomic<bool> g_release_killed{false};

// Victim marking: plans can restrict a fault to threads inside a
// victim_scope, which is what makes kill tests deterministic (the
// designated holder faults on ITS first crossing, not whichever thread
// arrives first).
inline thread_local bool tl_victim = false;

// Cooperative-scheduler hook (see scheduler.hpp). A thread running under
// the schedule explorer installs a hook; every fault point (and every
// FLOCK_SCHEDPOINT) then yields to the scheduler *before* the fault
// machinery runs, so "which thread runs next" composes with "does a
// fault fire here". Thread-local and a plain function pointer, so the
// runtime keeps zero link-time dependency on the scheduler and threads
// outside the explorer pay one TLS load only when FLOCK_CHAOS is on.
struct sched_hook {
  void (*fn)(sched_hook* self, const char* point);
};
inline thread_local sched_hook* tl_sched_hook = nullptr;

inline void sched_point(const char* name) {
  sched_hook* h = tl_sched_hook;
  if (h != nullptr) [[unlikely]]
    h->fn(h, name);
}

struct plan_entry {
  fault kind = fault::stall;
  bool victim_only = false;
  uint64_t nth = 1;           // fire on matching arrivals [nth, nth+count)
  uint64_t count = 1;
  uint32_t stall_spins = 0;
  std::atomic<uint64_t> seen{0};  // matching arrivals since armed
};

struct point_state {
  static constexpr int kMaxEntries = 6;
  char name[48] = {};
  std::atomic<uint32_t> armed{0};  // active entries; 0 == fast path
  std::atomic<uint64_t> hits{0};   // arrivals while armed (diagnostics)
  plan_entry entries[kMaxEntries];
};

inline constexpr std::size_t kMaxPoints = 64;
inline point_state g_points[kMaxPoints]{};
inline std::atomic<std::size_t> g_npoints{0};
inline std::mutex g_registry_mu;

/// Intern a point by name (cold: once per FLOCK_FAULTPOINT site thanks to
/// the function-local static in the macro, plus arm/reset calls).
inline point_state* registry_get(const char* name) {
  std::lock_guard<std::mutex> g(g_registry_mu);
  std::size_t n = g_npoints.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; i++)
    if (std::strcmp(g_points[i].name, name) == 0) return &g_points[i];
  if (n >= kMaxPoints) std::abort();  // registry overflow: a test bug
  std::strncpy(g_points[n].name, name, sizeof(g_points[n].name) - 1);
  g_npoints.store(n + 1, std::memory_order_release);
  return &g_points[n];
}

/// Apply one fired fault. Returns true when an allocation should fail.
inline bool apply(const plan_entry& e) {
  switch (e.kind) {
    case fault::stall: {
      g_stalls.fetch_add(1, std::memory_order_relaxed);
      for (uint32_t i = 0; i < e.stall_spins; i++) chaos_pause();
      return false;
    }
    case fault::kill: {
      g_kills.fetch_add(1, std::memory_order_relaxed);
      g_parked.fetch_add(1, std::memory_order_acq_rel);
      while (!g_release_killed.load(std::memory_order_acquire))
        std::this_thread::yield();
      g_parked.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    case fault::alloc_fail: {
      g_alloc_fails.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

/// Slow path behind the macro's armed check. `alloc_site` selects whether
/// alloc_fail entries are honored (and whether they tick their arrival
/// counters) at this site.
inline bool on_hit(point_state* p, bool alloc_site) {
  p->hits.fetch_add(1, std::memory_order_relaxed);
  bool fail_alloc = false;
  uint32_t n = p->armed.load(std::memory_order_acquire);
  if (n > static_cast<uint32_t>(point_state::kMaxEntries))
    n = point_state::kMaxEntries;
  for (uint32_t i = 0; i < n; i++) {
    plan_entry& e = p->entries[i];
    if (e.kind == fault::alloc_fail && !alloc_site) continue;
    if (e.victim_only && !tl_victim) continue;
    uint64_t s = e.seen.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (s >= e.nth && s < e.nth + e.count)
      if (apply(e)) fail_alloc = true;
  }
  return fail_alloc;
}

}  // namespace detail

// --- plan control -----------------------------------------------------------

struct arm_options {
  uint64_t nth = 1;            // 1-based matching-arrival index to fire on
  uint64_t count = 1;          // consecutive arrivals that fire
  uint32_t stall_spins = 20000;  // stall budget (bounded, deterministic)
  bool victim_only = false;    // fire only for threads in a victim_scope
};

/// Arm one fault at a named point. Returns false if the point's entry
/// table is full. Arm/reset are test-orchestration calls: arm before the
/// threads under test start arriving at the point.
inline bool arm(const char* point, fault kind, arm_options o = {}) {
  detail::point_state* p = detail::registry_get(point);
  std::lock_guard<std::mutex> g(detail::g_registry_mu);
  uint32_t n = p->armed.load(std::memory_order_relaxed);
  if (n >= detail::point_state::kMaxEntries) return false;
  detail::plan_entry& e = p->entries[n];
  e.kind = kind;
  e.victim_only = o.victim_only;
  e.nth = o.nth == 0 ? 1 : o.nth;
  e.count = o.count == 0 ? 1 : o.count;
  e.stall_spins = o.stall_spins;
  e.seen.store(0, std::memory_order_relaxed);
  p->armed.store(n + 1, std::memory_order_release);
  return true;
}

/// Threads currently parked by a kill fault.
inline uint64_t parked() {
  return detail::g_parked.load(std::memory_order_acquire);
}

/// Unpark every killed thread (idempotent). Call before joining them;
/// their abandoned operations then complete as harmless idempotent
/// replays of work helpers already finished.
inline void release_killed() {
  detail::g_release_killed.store(true, std::memory_order_release);
}

/// Disarm every point and zero the per-plan arrival counters. Requires
/// all killed threads released and joined (parked() == 0). Injection
/// totals (stalls/kills/alloc_fails) stay monotonic, like flock::stats().
inline void reset() {
  std::lock_guard<std::mutex> g(detail::g_registry_mu);
  std::size_t n = detail::g_npoints.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; i++) {
    detail::g_points[i].armed.store(0, std::memory_order_release);
    detail::g_points[i].hits.store(0, std::memory_order_relaxed);
    for (auto& e : detail::g_points[i].entries)
      e.seen.store(0, std::memory_order_relaxed);
  }
  detail::g_release_killed.store(false, std::memory_order_release);
}

/// Arrivals observed at a point while armed (0 for unknown names is not
/// distinguished from never-hit; tests arm first, then drive traffic).
inline uint64_t hits(const char* point) {
  return detail::registry_get(point)->hits.load(std::memory_order_relaxed);
}

inline uint64_t stalls_injected() {
  return detail::g_stalls.load(std::memory_order_relaxed);
}
inline uint64_t kills_injected() {
  return detail::g_kills.load(std::memory_order_relaxed);
}
inline uint64_t alloc_fails_injected() {
  return detail::g_alloc_fails.load(std::memory_order_relaxed);
}

/// RAII victim marker for the calling thread (see header comment).
/// Nests: an inner scope restores the enclosing scope's marking on exit
/// rather than clearing it, so helpers that re-enter instrumented code
/// from within a victim's thunk can scope themselves independently.
class victim_scope {
 public:
  victim_scope() : prev_(detail::tl_victim) { detail::tl_victim = true; }
  ~victim_scope() { detail::tl_victim = prev_; }
  victim_scope(const victim_scope&) = delete;
  victim_scope& operator=(const victim_scope&) = delete;

 private:
  bool prev_;
};

// --- seeded plans -----------------------------------------------------------

/// FLOCK_CHAOS_SEED from the environment; 0 (no plan) when unset.
inline uint64_t seed_from_env() {
  const char* s = std::getenv("FLOCK_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 0;
}

/// Deterministic pseudo-random plan from a seed: bounded stalls scattered
/// across the canonical points (random nth/count/spins), plus — on
/// odd-ish seeds — alloc-fail bursts at the resize trigger. Safe to run
/// under any workload: stalls are bounded and the resize trigger is the
/// one allocation site the runtime survives failing (see hashtable.hpp).
/// Runtime-settable per test, like set_backoff: reset() then
/// arm_seeded(next_seed).
inline void arm_seeded(uint64_t seed, int entries = 6) {
  uint64_t x = seed ? seed : 0x9e3779b97f4a7c15ULL;
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < entries; i++) {
    const char* point = kKnownPoints[next() % kKnownPointCount];
    arm_options o;
    o.nth = 1 + next() % 64;
    o.count = 1 + next() % 4;
    o.stall_spins = 500 + static_cast<uint32_t>(next() % 20000);
    arm(point, fault::stall, o);
  }
  if (seed & 1) {
    arm_options o;
    o.nth = 1 + next() % 4;
    o.count = 1 + next() % 8;
    arm("ht.resize.alloc", fault::alloc_fail, o);
  }
}

}  // namespace flock_chaos

// --- the instrumentation macros --------------------------------------------

#ifdef FLOCK_CHAOS
/// Mark a protocol window. Disarmed cost: one relaxed load + one TLS
/// load + predicted branches. `name` must be a string literal (interned
/// once per site via the function-local static). Under the schedule
/// explorer the yield to the scheduler happens FIRST, so a fault plan
/// composed with a schedule fires after the interleaving decision —
/// "thread dies at step k of schedule S" is one enumerable event.
#define FLOCK_FAULTPOINT(name)                                       \
  do {                                                               \
    ::flock_chaos::detail::sched_point(name);                        \
    static ::flock_chaos::detail::point_state* fp_pt_ =              \
        ::flock_chaos::detail::registry_get(name);                   \
    if (fp_pt_->armed.load(std::memory_order_relaxed) != 0)          \
        [[unlikely]]                                                 \
      ::flock_chaos::detail::on_hit(fp_pt_, /*alloc_site=*/false);   \
  } while (0)

/// Mark an allocation site: evaluates to true when the allocation at
/// this point must report failure (stall/kill entries armed here also
/// fire, before the failure decision is returned).
#define FLOCK_FAULTPOINT_ALLOC_FAIL(name)                            \
  ([]() -> bool {                                                    \
    ::flock_chaos::detail::sched_point(name);                        \
    static ::flock_chaos::detail::point_state* fp_pt_ =              \
        ::flock_chaos::detail::registry_get(name);                   \
    if (fp_pt_->armed.load(std::memory_order_relaxed) == 0)          \
        [[likely]]                                                   \
      return false;                                                  \
    return ::flock_chaos::detail::on_hit(fp_pt_, /*alloc_site=*/true); \
  }())

/// Mark a scheduler-only yield point: a window that the schedule
/// explorer must be able to preempt at, but where no fault plan ever
/// fires (descriptor tag revalidation, write_once publication, ...).
/// No registry entry, no counters — just the thread-local hook check.
#define FLOCK_SCHEDPOINT(name) ::flock_chaos::detail::sched_point(name)
#else
#define FLOCK_FAULTPOINT(name) \
  do {                         \
  } while (0)
#define FLOCK_FAULTPOINT_ALLOC_FAIL(name) false
#define FLOCK_SCHEDPOINT(name) \
  do {                         \
  } while (0)
#endif
