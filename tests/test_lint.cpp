// Drives the flock-lint rule engine (tools/lint/) as a library, with
// embedded fixture snippets: every rule gets at least one firing and one
// passing fixture, the baseline machinery round-trips, and R4 is shown
// catching the exact bug it exists for — a typo'd faultpoint name whose
// chaos plan would silently never fire.
//
// Fixtures live in raw strings, so the real flock_lint run over tests/
// sees them as single string tokens and does not lint their contents.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "rules.hpp"

namespace {

using flock_lint::baseline;
using flock_lint::finding;
using flock_lint::lint_config;
using flock_lint::lint_files;
using flock_lint::source_file;

std::vector<finding> lint_one(const std::string& path, const std::string& text,
                              std::set<std::string> only = {}) {
  lint_config cfg;
  cfg.only_rules = std::move(only);
  return lint_files({source_file::from_string(path, text)}, cfg);
}

int count_rule(const std::vector<finding>& fs, const std::string& rule) {
  int n = 0;
  for (const finding& f : fs) n += f.rule == rule ? 1 : 0;
  return n;
}

bool has_finding_at(const std::vector<finding>& fs, const std::string& rule,
                    int line) {
  for (const finding& f : fs)
    if (f.rule == rule && f.line == line) return true;
  return false;
}

// --- R1: raw atomics / volatile / raw new-delete in CS lambdas --------------

TEST(LintR1, FiresOnRawAtomicsInCsLambda) {
  const std::string src = R"lint(
void op(lock_t& lk, std::atomic<int>& x, std::atomic<int>* p) {
  try_lock(lk, [&] {
    x.store(1, std::memory_order_release);   // line 4: explicit order
    p->fetch_add(1);                         // line 5: RMW member
    __atomic_thread_fence(__ATOMIC_SEQ_CST); // line 6: builtin
    volatile int sink = 0;                   // line 7: volatile
    int* q = new int(3);                     // line 8: raw new
    delete q;                                // line 9: raw delete
    return true;
  });
}
)lint";
  auto fs = lint_one("src/ds/fixture.hpp", src, {"R1"});
  EXPECT_TRUE(has_finding_at(fs, "R1", 4));
  EXPECT_TRUE(has_finding_at(fs, "R1", 5));
  EXPECT_TRUE(has_finding_at(fs, "R1", 6));
  EXPECT_TRUE(has_finding_at(fs, "R1", 7));
  EXPECT_TRUE(has_finding_at(fs, "R1", 8));
  EXPECT_TRUE(has_finding_at(fs, "R1", 9));
}

TEST(LintR1, PassesOutsideCsAndOnSanctionedApi) {
  const std::string src = R"lint(
void op(lock_t& lk, std::atomic<int>& x, flock::mutable_<int>& m) {
  x.store(1, std::memory_order_release);  // outside any CS lambda: fine
  x.fetch_add(1);                         // ditto
  with_lock(lk, [&] {
    m.store(7);          // mutable_ API, no explicit order: fine
    int v = m.load();    // ditto
    return v != 0;
  });
}
)lint";
  EXPECT_EQ(count_rule(lint_one("src/ds/fixture.hpp", src, {"R1"}), "R1"), 0);
}

TEST(LintR1, CommitValueWrappedRawLoadIsSanctioned) {
  const std::string src = R"lint(
void op(lock_t& lk, std::atomic<uint64_t>& x) {
  acquire(lk, [&] {
    uint64_t v = flock::commit_value(x.load(std::memory_order_acquire));
    return v != 0;
  });
}
)lint";
  EXPECT_EQ(count_rule(lint_one("src/ds/fixture.hpp", src, {"R1"}), "R1"), 0);
}

TEST(LintR1, DeletedMemberFunctionIsNotARawDelete) {
  const std::string src = R"lint(
void op(lock_t& lk) {
  strict_lock(lk, [&] {
    struct guard {
      guard(const guard&) = delete;
    };
    return true;
  });
}
)lint";
  EXPECT_EQ(count_rule(lint_one("src/ds/fixture.hpp", src, {"R1"}), "R1"), 0);
}

// --- R2: non-idempotent calls where thunk code runs -------------------------

TEST(LintR2, FiresOnRngClockAndMutableStatic) {
  const std::string src = R"lint(
void op(lock_t& lk) {
  with_lock(lk, [&] {
    int r = rand();                                   // line 4
    auto t = std::chrono::steady_clock::now();        // line 5
    static int calls = 0;                             // line 6
    std::this_thread::sleep_for(std::chrono::seconds(1)); // line 7
    return r + calls > 0 && t.time_since_epoch().count() > 0;
  });
}
)lint";
  auto fs = lint_one("src/ds/fixture.hpp", src, {"R2"});
  EXPECT_TRUE(has_finding_at(fs, "R2", 4));
  EXPECT_TRUE(has_finding_at(fs, "R2", 5));
  EXPECT_TRUE(has_finding_at(fs, "R2", 6));
  EXPECT_TRUE(has_finding_at(fs, "R2", 7));
}

TEST(LintR2, PassesOnImmutableStaticAndOutsideCs) {
  const std::string src = R"lint(
int outside() { return rand(); }  // outside any CS lambda: fine
void op(lock_t& lk, record& rec) {
  with_lock(lk, [&] {
    static const int kTableSize = 48;   // immutable static: fine
    static constexpr int kShift = 4;    // ditto
    int t = rec.time();                 // member named `time`: fine
    return kTableSize + kShift + t > 0;
  });
}
)lint";
  EXPECT_EQ(count_rule(lint_one("src/ds/fixture.hpp", src, {"R2"}), "R2"), 0);
}

// --- R3: weak memory orders need an `// mo:` justification ------------------

TEST(LintR3, FiresOnUnjustifiedWeakOrderInRuntimeLayer) {
  const std::string src = R"lint(
void f(std::atomic<int>& x) {
  x.store(1, std::memory_order_relaxed);
}
)lint";
  auto fs = lint_one("src/flock/fixture.hpp", src, {"R3"});
  EXPECT_EQ(count_rule(fs, "R3"), 1);
  EXPECT_TRUE(has_finding_at(fs, "R3", 3));
}

TEST(LintR3, JustifiedOrdersAndSeqCstPass) {
  const std::string src = R"lint(
void f(std::atomic<int>& x) {
  // mo: relaxed — fixture counter, no ordering needed.
  x.store(1, std::memory_order_relaxed);
  x.load(std::memory_order_relaxed);  // mo: trailing comments count too
  x.store(2, std::memory_order_seq_cst);  // seq_cst needs no justification
}
)lint";
  EXPECT_EQ(count_rule(lint_one("src/flock/fixture.hpp", src, {"R3"}), "R3"),
            0);
}

TEST(LintR3, CoversRuntimeStructureStoreAndServiceLayers) {
  // The justification discipline follows the weak orders: since the
  // optimistic read path put seqlock version words in src/ds/ and cached
  // version snapshots in src/store/, those trees are covered too, and the
  // service tier (ring sequence numbers, completion publication,
  // combiner handoff) joined with PR 10. Code outside the four layers
  // (benches, tests, tools) stays exempt.
  const std::string src = R"lint(
void f(std::atomic<int>& x) { x.store(1, std::memory_order_relaxed); }
)lint";
  EXPECT_EQ(count_rule(lint_one("src/flock/fixture.hpp", src, {"R3"}), "R3"), 1);
  EXPECT_EQ(count_rule(lint_one("src/ds/fixture.hpp", src, {"R3"}), "R3"), 1);
  EXPECT_EQ(count_rule(lint_one("src/store/fixture.hpp", src, {"R3"}), "R3"), 1);
  EXPECT_EQ(count_rule(lint_one("src/service/fixture.hpp", src, {"R3"}), "R3"),
            1);
  EXPECT_EQ(count_rule(lint_one("bench/fixture.hpp", src, {"R3"}), "R3"), 0);
}

TEST(LintR3, JustificationWindowDoesNotReachFarAway) {
  // An mo: comment more than three lines above the statement does not
  // count — it is probably about something else.
  const std::string src = R"lint(
// mo: relaxed — this comment is too far from the store below.
void f(std::atomic<int>& x) {
  int pad1 = 0;
  int pad2 = pad1;
  x.store(pad2, std::memory_order_relaxed);
}
)lint";
  EXPECT_EQ(count_rule(lint_one("src/flock/fixture.hpp", src, {"R3"}), "R3"),
            1);
}

// --- R4: faultpoint name registry -------------------------------------------

// The acceptance demo: a typo'd name in an arm() call is caught. Without
// the rule, chaos::arm interns the misspelled name into the registry and
// the plan silently never fires — the chaos test degrades to a no-op.
TEST(LintR4, CatchesTypodFaultpointName) {
  auto runtime = source_file::from_string("src/flock/fixture.hpp", R"lint(
void acquire_slow() { FLOCK_FAULTPOINT("lock.fake.window"); }
)lint");
  auto test = source_file::from_string("tests/fixture.cpp", R"lint(
void arm_it() { chaos::arm("lock.fake.wndow", chaos::fault::stall); }
)lint");
  lint_config cfg;
  cfg.only_rules = {"R4"};
  auto fs = lint_files({runtime, test}, cfg);
  ASSERT_EQ(count_rule(fs, "R4"), 1);
  EXPECT_EQ(fs[0].path, "tests/fixture.cpp");
  EXPECT_NE(fs[0].message.find("lock.fake.wndow"), std::string::npos);
  EXPECT_NE(fs[0].message.find("never fires"), std::string::npos);
}

TEST(LintR4, CorrectlySpelledArmPasses) {
  auto runtime = source_file::from_string("src/flock/fixture.hpp", R"lint(
void acquire_slow() { FLOCK_FAULTPOINT("lock.fake.window"); }
)lint");
  auto test = source_file::from_string("tests/fixture.cpp", R"lint(
void arm_it() {
  chaos::arm("lock.fake.window", chaos::fault::stall);
  chaos::hits("lock.fake.window");
}
)lint");
  lint_config cfg;
  cfg.only_rules = {"R4"};
  EXPECT_EQ(count_rule(lint_files({runtime, test}, cfg), "R4"), 0);
}

TEST(LintR4, FlagsIllFormedNamesAndSchedOnlyArms) {
  auto f = source_file::from_string("src/flock/fixture.hpp", R"lint(
void a() { FLOCK_FAULTPOINT("BadName"); }
void b() { FLOCK_SCHEDPOINT("mut.fake.pre"); }
void c() { chaos::arm("mut.fake.pre", chaos::fault::stall); }
)lint");
  lint_config cfg;
  cfg.only_rules = {"R4"};
  auto fs = lint_files({f}, cfg);
  bool ill_formed = false, sched_only = false;
  for (const finding& x : fs) {
    ill_formed |= x.message.find("not well-formed") != std::string::npos;
    sched_only |=
        x.message.find("only exists as a FLOCK_SCHEDPOINT") != std::string::npos;
  }
  EXPECT_TRUE(ill_formed);
  EXPECT_TRUE(sched_only);
}

TEST(LintR4, FlagsMultiFileDeclarationButAllowsSameFileRepeats) {
  // Same name at several sites in ONE file marks one protocol window
  // (e.g. lock.install.post) — allowed. The same name in two files is a
  // registry collision — flagged.
  auto one = source_file::from_string("src/flock/one.hpp", R"lint(
void a() { FLOCK_FAULTPOINT("w.x.p"); }
void b() { FLOCK_FAULTPOINT("w.x.p"); }
)lint");
  lint_config cfg;
  cfg.only_rules = {"R4"};
  EXPECT_EQ(count_rule(lint_files({one}, cfg), "R4"), 0);

  auto two = source_file::from_string("src/flock/two.hpp", R"lint(
void c() { FLOCK_FAULTPOINT("w.x.p"); }
)lint");
  auto fs = lint_files({one, two}, cfg);
  ASSERT_EQ(count_rule(fs, "R4"), 1);
  EXPECT_NE(fs[0].message.find("2 files"), std::string::npos);
}

// --- R5: stats counters vs json_reporter keys -------------------------------

namespace r5 {

const char kSnapshotTwoFields[] = R"lint(
struct stats_snapshot {
  uint64_t descriptors_created = 0;
  uint64_t helps_run = 0;
};
)lint";

source_file reporter(const std::string& body) {
  return source_file::from_string("bench/fixture.hpp",
                                  "class json_reporter {\n void dump() {\n" +
                                      body + " }\n};\n");
}

}  // namespace r5

TEST(LintR5, FiresWhenCounterIsNeverDumped) {
  auto snap = source_file::from_string("src/flock/fixture.hpp",
                                       r5::kSnapshotTwoFields);
  auto rep = r5::reporter(
      "  std::printf(\"\\\"descriptors_created\\\": %llu\", 0ull);\n");
  lint_config cfg;
  cfg.only_rules = {"R5"};
  auto fs = lint_files({snap, rep}, cfg);
  ASSERT_EQ(count_rule(fs, "R5"), 1);
  EXPECT_NE(fs[0].message.find("helps_run"), std::string::npos);
  EXPECT_NE(fs[0].message.find("never dumped"), std::string::npos);
}

TEST(LintR5, FiresWhenReporterDumpsUnknownKey) {
  auto snap = source_file::from_string("src/flock/fixture.hpp",
                                       r5::kSnapshotTwoFields);
  auto rep = r5::reporter(
      "  std::printf(\"\\\"descriptors_created\\\": %llu\", 0ull);\n"
      "  std::printf(\"\\\"helps_run\\\": %llu\", 0ull);\n"
      "  std::printf(\"\\\"mystery_key\\\": %llu\", 0ull);\n");
  lint_config cfg;
  cfg.only_rules = {"R5"};
  auto fs = lint_files({snap, rep}, cfg);
  ASSERT_EQ(count_rule(fs, "R5"), 1);
  EXPECT_NE(fs[0].message.find("mystery_key"), std::string::npos);
}

TEST(LintR5, MatchingSetsPassAndStructuralKeysAreIgnored) {
  auto snap = source_file::from_string("src/flock/fixture.hpp",
                                       r5::kSnapshotTwoFields);
  auto rep = r5::reporter(
      "  std::printf(\"\\\"stats\\\": {\");\n"
      "  std::printf(\"\\\"descriptors_created\\\": %llu\", 0ull);\n"
      "  std::printf(\"\\\"helps_run\\\": %llu\", 0ull);\n"
      "  std::printf(\"\\\"series\\\": [\");\n");
  lint_config cfg;
  cfg.only_rules = {"R5"};
  EXPECT_EQ(count_rule(lint_files({snap, rep}, cfg), "R5"), 0);
}

// --- baseline round-trip ----------------------------------------------------

TEST(LintBaseline, RoundTripSuppressesExactlyTheSerializedFindings) {
  const std::string src = R"lint(
void f(std::atomic<int>& x) {
  x.store(1, std::memory_order_relaxed);
  x.store(2, std::memory_order_release);
}
)lint";
  auto fs = lint_one("src/flock/fixture.hpp", src, {"R3"});
  ASSERT_EQ(count_rule(fs, "R3"), 2);

  // Serialize the findings, parse them back, and re-lint: everything is
  // covered and nothing is stale.
  baseline b = baseline::parse(baseline::serialize(fs));
  EXPECT_EQ(b.size(), 2u);
  for (const finding& f : lint_one("src/flock/fixture.hpp", src, {"R3"}))
    EXPECT_TRUE(b.matches(f)) << f.snippet;
  EXPECT_TRUE(b.unused().empty());
}

TEST(LintBaseline, StaleEntriesAreReported) {
  baseline b = baseline::parse(
      "# a comment line\n"
      "R3|src/flock/fixture.hpp|x.store(1, std::memory_order_relaxed);\n");
  const std::string src = R"lint(
void f(std::atomic<int>& x) {
  x.store(9, std::memory_order_relaxed);
}
)lint";
  for (finding& f : lint_one("src/flock/fixture.hpp", src, {"R3"}))
    EXPECT_FALSE(b.matches(f));  // edited line no longer matches
  EXPECT_EQ(b.unused().size(), 1u);  // ...so the entry is stale
}

TEST(LintBaseline, MatchNormalizesWhitespaceButNotContent) {
  const std::string src = R"lint(
void f(std::atomic<int>& x) {
      x.store( 1 ,   std::memory_order_relaxed );
}
)lint";
  auto fs = lint_one("src/flock/fixture.hpp", src, {"R3"});
  ASSERT_EQ(fs.size(), 1u);
  baseline b = baseline::parse(
      "R3|src/flock/fixture.hpp|  x.store( 1 , std::memory_order_relaxed "
      ");\n");
  EXPECT_TRUE(b.matches(fs[0]));
}

TEST(LintBaseline, MalformedLinesAreReportedNotSilentlyDropped) {
  std::vector<std::string> errors;
  baseline b = baseline::parse("R3 missing pipes entirely\n", &errors);
  EXPECT_EQ(b.size(), 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("want RULE|path|snippet"), std::string::npos);
}

// --- engine plumbing --------------------------------------------------------

TEST(LintEngine, FindingsAreSortedAndRuleFilterWorks) {
  const std::string src = R"lint(
void op(lock_t& lk, std::atomic<int>& x) {
  with_lock(lk, [&] {
    x.store(1, std::memory_order_relaxed);  // R1 (and R3: src/flock path)
    return rand() != 0;                     // R2
  });
}
)lint";
  auto all = lint_one("src/flock/fixture.hpp", src);
  EXPECT_GE(count_rule(all, "R1"), 1);
  EXPECT_GE(count_rule(all, "R2"), 1);
  EXPECT_GE(count_rule(all, "R3"), 1);
  for (std::size_t i = 1; i < all.size(); i++) {
    EXPECT_LE(all[i - 1].path, all[i].path);
    if (all[i - 1].path == all[i].path) {
      EXPECT_LE(all[i - 1].line, all[i].line);
    }
  }
  EXPECT_EQ(count_rule(lint_one("src/flock/fixture.hpp", src, {"R2"}), "R1"),
            0);
}

}  // namespace
