// flock.hpp — umbrella header for the Flock reproduction.
//
// "Lock-Free Locks Revisited", Ben-David, Blelloch, Wei. PPoPP 2022.
//
// Quick tour (see README.md for the full story):
//
//   struct node {
//     flock::mutable_<node*> next;     // shared mutable -> logged inside locks
//     flock::write_once<bool> removed; // update-once location
//     Key k; Value v;                  // constants: plain fields
//     flock::lock lck;
//   };
//
//   bool ok = flock::with_epoch([&] {
//     return flock::try_lock(prev->lck, [=] {   // capture BY VALUE
//       if (prev->removed.load() || prev->next.load() != cur) return false;
//       auto* n = flock::allocate<node>(...);
//       prev->next = n;
//       return true;
//     });
//   });
//
//   flock::set_blocking(true);   // run the same code with blocking locks
#pragma once

#include "allocator.hpp"
#include "config.hpp"
#include "descriptor.hpp"
#include "epoch.hpp"
#include "lock.hpp"
#include "log.hpp"
#include "mutable.hpp"
#include "stats.hpp"
#include "tagged.hpp"
#include "threading.hpp"
#include "thunk.hpp"
#include "write_once.hpp"

namespace flock {

/// Idempotent allocation with the paper's name (Alg. 2 `allocate`).
/// Inside a thunk, exactly one run's allocation survives; outside, this is
/// a plain pooled allocation.
template <class T, class... Args>
T* allocate(Args&&... args) {
  return idem_new<T>(std::forward<Args>(args)...);
}

/// Idempotent retirement with the paper's name (Alg. 2 `retire`): at most
/// one run retires the object; reclamation waits for concurrent epochs.
template <class T>
void retire(T* p) {
  idem_retire<T>(p);
}

}  // namespace flock
