// stats.hpp — lightweight introspection counters for the helping
// machinery. The counters live directly in the per-thread context
// (thread_context.hpp), so the hot-path cost is one plain increment on a
// structure that is already resident; this header provides the aggregate
// view. Used by benchmarks to report helping rates and by tests to assert
// helping actually happened.
#pragma once

#include <atomic>
#include <cstdint>

#include "allocator.hpp"
#include "chaos/faultpoint.hpp"
#include "config.hpp"
#include "thread_context.hpp"
#include "threading.hpp"

namespace flock {
namespace detail {

// Resizes deferred because the successor-table allocation failed
// (injected "ht.resize.alloc" fault or real OOM); bumped by the ds tier
// (hashtable.hpp), aggregated here. Monotonic, process-wide.
inline std::atomic<uint64_t> g_resize_deferrals{0};

}  // namespace detail

struct stats_snapshot {
  uint64_t descriptors_created = 0;  // lock acquisitions (lock-free mode)
  uint64_t helps_attempted = 0;      // help() entries
  uint64_t helps_run = 0;            // help() revalidations that ran a thunk
  uint64_t descriptors_reused = 0;   // fast-path pool reuse (never helped)
  uint64_t helps_avoided = 0;        // throttled waits resolved without a help
  uint64_t backoff_spins = 0;        // cpu_pause iterations spent backing off
  // Fault-tolerance counters (chaos instrumentation + allocation failure
  // contract; all zero in builds without FLOCK_CHAOS and without OOM).
  uint64_t alloc_failures = 0;       // null pool/array returns (allocator.hpp)
  uint64_t resize_deferrals = 0;     // resizes deferred on allocation failure
  uint64_t chaos_stalls = 0;         // injected stalls (chaos/faultpoint.hpp)
  uint64_t chaos_kills = 0;          // injected kills (dead-holder parks)
  uint64_t chaos_alloc_fails = 0;    // injected allocation failures
};

/// Aggregate counters across all threads (monotonic since process start).
/// The per-thread cells are plain single-writer words, so a snapshot
/// taken while traffic runs is approximate: each cell is read whole
/// (no tearing on word-aligned targets) but cells are not mutually
/// consistent. Monitoring output only — never use for control flow.
/// (.tsan-suppressions carries the matching race:flock::stats entry.)
inline stats_snapshot stats() {
  stats_snapshot s;
  const int bound = thread_id_bound();
  for (int i = 0; i < bound; i++) {
    const detail::thread_context& c = detail::g_ctx[i];
    s.descriptors_created += c.stat_created;
    s.helps_attempted += c.stat_attempted;
    s.helps_run += c.stat_ran;
    s.descriptors_reused += c.stat_reused;
    s.helps_avoided += c.stat_helps_avoided;
    s.backoff_spins += c.stat_backoff_spins;
  }
  s.alloc_failures = alloc_failures();
  // mo: relaxed — monotonic monitoring counter, same approximate-snapshot
  // contract as the per-thread cells above.
  s.resize_deferrals =
      detail::g_resize_deferrals.load(std::memory_order_relaxed);
  s.chaos_stalls = flock_chaos::stalls_injected();
  s.chaos_kills = flock_chaos::kills_injected();
  s.chaos_alloc_fails = flock_chaos::alloc_fails_injected();
  return s;
}

}  // namespace flock
