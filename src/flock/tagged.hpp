// tagged.hpp — 48-bit value + 16-bit tag packing and the announcement
// protocol that makes 16-bit tag reuse safe (paper §6 "ABA", second
// optimization: "roughly it uses an announcement array to ensure that
// wrapping around is safe — i.e., it never uses a tag that is announced").
//
// Protocol implemented here:
//  * a helper that is about to CAS a compact mutable announces the
//    (location, expected packed word) pair in its thread context, with a
//    seq_cst fence, and clears the slot after the CAS;
//  * a writer that wraps a location's 16-bit tag scans the contexts and
//    picks the next tag not announced for that location.
//
// Residual assumption (documented per DESIGN.md §5): an announcement that
// races with a concurrent wrap scan is only dangerous if the location's
// tag additionally wraps all the way around (2^16 stores) while the
// announcing helper sleeps *and* the packed values collide. The paper's
// own scheme ("the full description is beyond the scope of this paper")
// accepts equivalent engineering assumptions; the fully sound
// mutable_dw<T> (64-bit counter) is available where this is unacceptable.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>

#include "config.hpp"
#include "thread_context.hpp"
#include "threading.hpp"

namespace flock {

inline constexpr int kTagBits = 16;
inline constexpr int kValBits = 48;
inline constexpr uint64_t kValMask = (uint64_t{1} << kValBits) - 1;
inline constexpr uint64_t kTagLimit = uint64_t{1} << kTagBits;

constexpr uint64_t pack_tagged(uint64_t tag, uint64_t val) {
  return (tag << kValBits) | (val & kValMask);
}
constexpr uint64_t tag_of(uint64_t packed) { return packed >> kValBits; }
constexpr uint64_t val_of(uint64_t packed) { return packed & kValMask; }

namespace detail {

/// Announce an expected packed word for `loc` around a CAS. RAII so the
/// slot is always cleared. The caller supplies its context so the hot
/// path performs no TLS lookup of its own.
class announce_guard {
 public:
  announce_guard(thread_context* c, const void* loc, uint64_t packed)
      : c_(c) {
    // mo: relaxed — ann_packed is published by the ann_loc store below
    // (scanners read ann_loc first and only then ann_packed, so the
    // release/fence on ann_loc orders this store for them).
    c_->ann_packed.store(packed, std::memory_order_relaxed);
#if defined(__x86_64__) || defined(__i386__)
    // TSO: stores retire in order and the LOCK-prefixed CAS that every
    // caller issues next cannot complete before prior stores are globally
    // visible, so the announcement is ordered before the CAS without an
    // explicit full barrier. (The compiler cannot sink the store past the
    // CAS either: the CAS's release half must publish earlier writes.)
    // This removes one mfence from every mutable store/CAM and from every
    // lock acquire/release.
    // mo: release — orders ann_packed before ann_loc for scanners; the
    // store->CAS ordering is the hardware argument above.
    c_->ann_loc.store(loc, std::memory_order_release);
#else
    // mo: relaxed — the seq_cst fence right below globally orders both
    // announcement stores before the caller's CAS (non-TSO fallback).
    c_->ann_loc.store(loc, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
  announce_guard(const void* loc, uint64_t packed)
      : announce_guard(my_ctx(), loc, packed) {}
  announce_guard(const announce_guard&) = delete;
  announce_guard& operator=(const announce_guard&) = delete;
  ~announce_guard() {
    // mo: release — a scanner that reads this nullptr must also see the
    // CAS the announcement protected; relaxed would let it un-ban a tag
    // while the CAS is still in flight on a weak machine.
    c_->ann_loc.store(nullptr, std::memory_order_release);
  }

 private:
  thread_context* c_;
};

/// Next tag for `loc`, given the current packed word. Fast path: +1. On
/// wrap, scan announcements and skip tags still held for this location.
inline uint64_t next_tag(const void* loc, uint64_t cur_packed) {
  uint64_t t = tag_of(cur_packed) + 1;
  if (t < kTagLimit) [[likely]]
    return t;
  // Wrapped: gather announced tags for this location.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  uint64_t banned[kMaxThreads];
  int nbanned = 0;
  const int bound = thread_id_bound();
  for (int i = 0; i < bound; i++) {
    // mo: acquire — pairs with the announcer's release on ann_loc: seeing
    // loc here guarantees the matching ann_packed store below is visible.
    if (g_ctx[i].ann_loc.load(std::memory_order_acquire) == loc)
      banned[nbanned++] =
          // mo: acquire — read after ann_loc matched; acquire keeps the
          // two loads ordered (relaxed would allow the packed read to
          // hoist above the ann_loc check and observe a stale pair).
          tag_of(g_ctx[i].ann_packed.load(std::memory_order_acquire));
  }
  for (t = 1;; t++) {  // at most kMaxThreads+1 iterations
    bool ok = true;
    for (int i = 0; i < nbanned; i++)
      if (banned[i] == t) {
        ok = false;
        break;
      }
    if (ok) return t;
  }
}

}  // namespace detail

/// Bit-cast a trivially copyable T (<= 48 bits of payload) to/from the
/// packed value field.
template <class T>
uint64_t to_bits48(T v) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "compact mutables hold trivially copyable values <= 8 bytes");
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(T));
  assert((b & ~kValMask) == 0 &&
         "value does not fit in 48 bits; use mutable_dw<T>");
  return b;
}

template <class T>
T from_bits48(uint64_t b) {
  T v{};
  std::memcpy(&v, &b, sizeof(T));
  return v;
}

}  // namespace flock
