# Empty dependencies file for test_abtree.
# This may be replaced when dependencies are built.
