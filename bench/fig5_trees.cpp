// Figure 5 (panels a-h) — binary trees under a wide range of workloads:
// our leaftree in blocking and lock-free mode against the lock-free
// CAS-based baselines (Natarajan, Ellen). Bronson/Drachsler/Chromatic are
// external SetBench codebases; per DESIGN.md §5 their blocking-baseline
// role is played by the blocking-mode structures.
//
// Paper shapes to look for:
//  * a/e: scaling up to the core count, then blocking series fall off
//    under oversubscription while lock-free series keep going;
//  * b/f: updates are cheap out-of-cache (b), costly in-cache (f);
//  * c: higher alpha helps (locality) until contention bites;
//  * d/g: oversubscribed + skewed: lock-free wins big;
//  * h: small sizes oversubscribed: lock-free >> blocking.
#include <memory>

#include "harness.hpp"

int main() {
  using namespace bench;
  const uint64_t big = cfg().large_n;
  const uint64_t small = cfg().small_n;
  const int th = cfg().max_threads;
  const int ov = cfg().oversub_threads;
  std::fprintf(stderr,
               "fig5: trees (large=%llu, small=%llu, threads=%d, oversub=%d)\n",
               static_cast<unsigned long long>(big),
               static_cast<unsigned long long>(small), th, ov);
  std::printf("figure,series,x,mops\n");

  auto mk_leaftree = [] {
    return std::make_unique<flock_workload::leaftree_try>();
  };
  auto mk_nat = [] { return std::make_unique<flock_workload::natarajan>(); };
  auto mk_ellen = [] { return std::make_unique<flock_workload::ellen>(); };

  const std::vector<int> threads = thread_axis();
  const std::vector<double> updates = {0, 5, 10, 50};
  const std::vector<double> alphas = {0, 0.75, 0.9, 0.99};

  // Panel a: thread sweep, large tree, 50% updates, alpha .75.
  std::fprintf(stderr, "panel a\n");
  sweep_threads("fig5a", "leaftree-bl", mk_leaftree, true, big, 50, 0.75,
                threads);
  sweep_threads("fig5a", "leaftree-lf", mk_leaftree, false, big, 50, 0.75,
                threads);
  sweep_threads("fig5a", "natarajan", mk_nat, false, big, 50, 0.75, threads);
  sweep_threads("fig5a", "ellen", mk_ellen, false, big, 50, 0.75, threads);

  // Panel b: update sweep, large tree.
  std::fprintf(stderr, "panel b\n");
  sweep_updates("fig5b", "leaftree-bl", mk_leaftree, true, big, th, 0.75,
                updates);
  sweep_updates("fig5b", "leaftree-lf", mk_leaftree, false, big, th, 0.75,
                updates);
  sweep_updates("fig5b", "natarajan", mk_nat, false, big, th, 0.75, updates);
  sweep_updates("fig5b", "ellen", mk_ellen, false, big, th, 0.75, updates);

  // Panel c: zipf sweep, large tree, full subscription.
  std::fprintf(stderr, "panel c\n");
  sweep_alpha("fig5c", "leaftree-bl", mk_leaftree, true, big, th, 50, alphas);
  sweep_alpha("fig5c", "leaftree-lf", mk_leaftree, false, big, th, 50, alphas);
  sweep_alpha("fig5c", "natarajan", mk_nat, false, big, th, 50, alphas);
  sweep_alpha("fig5c", "ellen", mk_ellen, false, big, th, 50, alphas);

  // Panel d: zipf sweep, large tree, OVERSUBSCRIBED.
  std::fprintf(stderr, "panel d\n");
  sweep_alpha("fig5d", "leaftree-bl", mk_leaftree, true, big, ov, 50, alphas);
  sweep_alpha("fig5d", "leaftree-lf", mk_leaftree, false, big, ov, 50, alphas);
  sweep_alpha("fig5d", "natarajan", mk_nat, false, big, ov, 50, alphas);
  sweep_alpha("fig5d", "ellen", mk_ellen, false, big, ov, 50, alphas);

  // Panel e: thread sweep, small tree.
  std::fprintf(stderr, "panel e\n");
  sweep_threads("fig5e", "leaftree-bl", mk_leaftree, true, small, 50, 0.75,
                threads);
  sweep_threads("fig5e", "leaftree-lf", mk_leaftree, false, small, 50, 0.75,
                threads);
  sweep_threads("fig5e", "natarajan", mk_nat, false, small, 50, 0.75, threads);
  sweep_threads("fig5e", "ellen", mk_ellen, false, small, 50, 0.75, threads);

  // Panel f: update sweep, small tree.
  std::fprintf(stderr, "panel f\n");
  sweep_updates("fig5f", "leaftree-bl", mk_leaftree, true, small, th, 0.75,
                updates);
  sweep_updates("fig5f", "leaftree-lf", mk_leaftree, false, small, th, 0.75,
                updates);
  sweep_updates("fig5f", "natarajan", mk_nat, false, small, th, 0.75, updates);
  sweep_updates("fig5f", "ellen", mk_ellen, false, small, th, 0.75, updates);

  // Panel g: zipf sweep, small tree, oversubscribed, 5% updates.
  std::fprintf(stderr, "panel g\n");
  sweep_alpha("fig5g", "leaftree-bl", mk_leaftree, true, small, ov, 5, alphas);
  sweep_alpha("fig5g", "leaftree-lf", mk_leaftree, false, small, ov, 5, alphas);
  sweep_alpha("fig5g", "natarajan", mk_nat, false, small, ov, 5, alphas);
  sweep_alpha("fig5g", "ellen", mk_ellen, false, small, ov, 5, alphas);

  // Panel h: size sweep, oversubscribed, 5% updates.
  std::fprintf(stderr, "panel h\n");
  const std::vector<uint64_t> sizes = {1000, 10000, 100000, big, 4 * big};
  sweep_sizes("fig5h", "leaftree-bl", mk_leaftree, true, ov, 5, 0.75, sizes);
  sweep_sizes("fig5h", "leaftree-lf", mk_leaftree, false, ov, 5, 0.75, sizes);
  sweep_sizes("fig5h", "natarajan", mk_nat, false, ov, 5, 0.75, sizes);
  sweep_sizes("fig5h", "ellen", mk_ellen, false, ov, 5, 0.75, sizes);
  return 0;
}
