// config.hpp — build-time and run-time knobs shared by the whole library.
//
// Part of the Flock reproduction ("Lock-Free Locks Revisited", PPoPP 2022).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace flock {

// Cache line size used for padding shared per-thread slots.
inline constexpr std::size_t kCacheLine = 64;

// Hard cap on concurrently registered threads (ids are recycled on thread
// exit, so the cap applies to *live* threads, not total threads created).
inline constexpr int kMaxThreads = 512;

// Entries per log block (paper §6 "Arbitrary Length Logs": default 7).
inline constexpr int kLogBlockEntries = 7;

// Inline storage for thunks captured by descriptors. Larger lambdas fall
// back to the heap (see thunk.hpp).
inline constexpr std::size_t kThunkInlineBytes = 104;

/// Run-time switch between the two lock modes (paper §7: "this choice can
/// be made by changing a flag at runtime").
///   blocking  — test-and-test-and-set locks, no logging, no helping.
///   lock-free — descriptor-based helping with idempotence logs (Alg. 3).
inline std::atomic<bool>& blocking_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

inline void set_blocking(bool b) noexcept {
  blocking_flag().store(b, std::memory_order_relaxed);
}
inline bool is_blocking() noexcept {
  return blocking_flag().load(std::memory_order_relaxed);
}

/// RAII scope that selects a lock mode and restores the previous one.
class mode_guard {
 public:
  explicit mode_guard(bool blocking) : prev_(is_blocking()) {
    set_blocking(blocking);
  }
  mode_guard(const mode_guard&) = delete;
  mode_guard& operator=(const mode_guard&) = delete;
  ~mode_guard() { set_blocking(prev_); }

 private:
  bool prev_;
};

// Compare-and-compare-and-swap toggle (paper §6 "Avoiding CASes").
// On by default; the micro bench flips it off to measure the ablation.
inline std::atomic<bool>& ccas_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline void set_ccas(bool b) noexcept {
  ccas_flag().store(b, std::memory_order_relaxed);
}
inline bool use_ccas() noexcept {
  return ccas_flag().load(std::memory_order_relaxed);
}

}  // namespace flock
