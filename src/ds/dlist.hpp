// dlist.hpp — sorted doubly-linked list, Algorithm 1 of the paper
// rendered with the library: fine-grained optimistic locks, lock-free or
// blocking at runtime. Kept deliberately close to the paper's code: the
// remove takes prev's lock then the link's lock (simply nested), insert
// takes only prev's lock, and back pointers are fixed without locking the
// successor (justified in §1.1).
#pragma once

#include <optional>

#include "flock/flock.hpp"

namespace flock_ds {

template <class K, class V, bool Strict = false>
class dlist {
  struct link {
    flock::mutable_<link*> next;
    flock::mutable_<link*> prev;
    flock::write_once<bool> removed;
    flock::lock lck;
    const K k;
    const V v;
    const int sentinel;  // -1 head (-inf), +1 tail (+inf), 0 ordinary
    link(K key, V val, link* nxt, link* prv, int s = 0)
        : k(key), v(val), sentinel(s) {
      next.init(nxt);
      prev.init(prv);
      removed.init(false);
    }
  };

  // key(l) < k with sentinel semantics.
  static bool key_less(const link* l, K k) {
    if (l->sentinel != 0) return l->sentinel < 0;
    return l->k < k;
  }
  static bool key_is(const link* l, K k) {
    return l->sentinel == 0 && l->k == k;
  }

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

 public:
  dlist() {
    head_ = flock::pool_new<link>(K{}, V{}, nullptr, nullptr, -1);
    tail_ = flock::pool_new<link>(K{}, V{}, nullptr, nullptr, +1);
    head_->next.init(tail_);
    tail_->prev.init(head_);
  }

  ~dlist() {
    link* n = head_;
    while (n != nullptr) {
      link* nxt = n->next.read_raw();
      flock::pool_delete(n);
      n = nxt;
    }
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      link* lnk = find_link(k);
      if (key_is(lnk, k)) return lnk->v;
      return {};
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        link* next = find_link(k);
        // "Already there" needs the removed-flag test find() uses: a key
        // mid-remove (flag set, unlink not yet visible) is absent; fall
        // through and let the validation below force a retry.
        if (key_is(next, k) && !next->removed.load()) return false;
        link* prev = next->prev.load();
        if (key_less(prev, k) &&
            acquire(prev->lck, [=] {
              if (prev->removed.load() ||              // validate
                  prev->next.load() != next)
                return false;
              link* newl = flock::allocate<link>(k, v, next, prev);
              prev->next = newl;  // splice in
              next->prev = newl;
              return true;
            }))
          return true;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        link* lnk = find_link(k);
        if (!key_is(lnk, k)) return false;  // not found
        link* prev = lnk->prev.load();
        if (acquire(prev->lck, [=] {
              return acquire(lnk->lck, [=] {
                if (prev->removed.load() ||              // validate
                    prev->next.load() != lnk)
                  return false;
                link* next = lnk->next.load();
                lnk->removed = true;
                prev->next = next;  // splice out
                next->prev = prev;
                flock::retire<link>(lnk);
                return true;
              });
            }))
          return true;
      }
    });
  }

  /// Quiescent audits. Epoch-guarded (like find) so a concurrent remove
  /// cannot reclaim a link mid-scan; exact only at quiescence. ------------
  std::size_t size() const {
    return flock::with_epoch([&] {
      std::size_t n = 0;
      for (link* c = head_->next.read_raw(); c != tail_;
           c = c->next.read_raw())
        n++;
      return n;
    });
  }

  /// Sorted; back pointers consistent; no removed nodes (quiescent only).
  bool check_invariants() const {
    return flock::with_epoch([&] {
      const link* p = head_;
      for (link* c = head_->next.read_raw(); c != nullptr;
           c = c->next.read_raw()) {
        if (c->prev.read_raw() != p) return false;
        if (c->sentinel == 0 && c->removed.read_raw()) return false;
        if (p->sentinel == 0 && c->sentinel == 0 && !(p->k < c->k))
          return false;
        if (c == tail_) return true;  // reached the end cleanly
        p = c;
      }
      return false;  // fell off without hitting tail
    });
  }

  template <class F>
  void for_each(F&& f) const {
    flock::with_epoch([&] {
      for (link* c = head_->next.read_raw(); c != tail_;
           c = c->next.read_raw())
        f(c->k, c->v);
    });
  }

 private:
  // First link with key >= k (possibly tail).
  link* find_link(K k) {
    link* lnk = head_->next.load();
    while (key_less(lnk, k)) lnk = lnk->next.load();
    return lnk;
  }

  link* head_;
  link* tail_;
};

}  // namespace flock_ds
