file(REMOVE_RECURSE
  "CMakeFiles/test_hashtable_shrink.dir/tests/test_hashtable_shrink.cpp.o"
  "CMakeFiles/test_hashtable_shrink.dir/tests/test_hashtable_shrink.cpp.o.d"
  "test_hashtable_shrink"
  "test_hashtable_shrink.pdb"
  "test_hashtable_shrink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashtable_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
