// Heavier lock stress: helping chains across ordered locks, allocation
// and retirement inside critical sections, oversubscription, and mixed
// try/strict usage. These tests are the integration layer between the
// idempotence runtime and the data structures.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

class StressModes : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

// A bank of accounts with per-account locks; random transfers lock two
// accounts in address order (simply nested, ordered — Theorem 4.2's
// precondition). The total balance is invariant.
TEST_P(StressModes, OrderedTwoLockTransfers) {
  constexpr int kAccounts = 16;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  struct account {
    flock::lock lck;
    flock::mutable_<uint64_t> balance;
  };
  std::vector<account> bank(kAccounts);
  for (auto& a : bank) a.balance.init(100);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(t * 7919 + 13);
      for (int i = 0; i < kOpsPerThread; i++) {
        int x = static_cast<int>(rng() % kAccounts);
        int y = static_cast<int>(rng() % kAccounts);
        if (x == y) continue;
        int lo = std::min(x, y), hi = std::max(x, y);
        account* a = &bank[lo];
        account* b = &bank[hi];
        flock::with_epoch([&] {
          return flock::try_lock(a->lck, [a, b] {
            return flock::try_lock(b->lck, [a, b] {
              uint64_t va = a->balance.load();
              uint64_t vb = b->balance.load();
              if (va > 0) {
                a->balance.store(va - 1);
                b->balance.store(vb + 1);
              }
              return true;
            });
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  uint64_t total = 0;
  for (auto& a : bank) total += a.balance.read_raw();
  EXPECT_EQ(total, 100u * kAccounts);
}

// Allocation + retirement inside critical sections: a lock-protected
// stack of pooled nodes. Push allocates, pop retires; final accounting
// must balance exactly.
TEST_P(StressModes, AllocateRetireInsideLocks) {
  struct node {
    uint64_t v;
    flock::mutable_<node*> next;
    explicit node(uint64_t x) : v(x) { next.init(nullptr); }
  };
  struct stack {
    flock::lock lck;
    flock::mutable_<node*> head;
    flock::mutable_<uint64_t> size;
  };
  flock::epoch_manager::instance().flush();
  long long before = flock::pool_outstanding<node>();

  auto* s = flock::pool_new<stack>();
  s->head.init(nullptr);
  s->size.init(0);

  constexpr int kThreads = 6;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      for (int i = 0; i < 3000; i++) {
        bool push = (rng() & 1) != 0;
        flock::with_epoch([&] {
          return flock::try_lock(s->lck, [s, push, i] {
            if (push) {
              node* n = flock::allocate<node>(i);
              n->next = s->head.load();
              s->head = n;
              s->size.store(s->size.load() + 1);
            } else {
              node* h = s->head.load();
              if (h != nullptr) {
                s->head = h->next.load();
                s->size.store(s->size.load() - 1);
                flock::retire(h);
              }
            }
            return true;
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();

  // Count the list and drain it.
  uint64_t counted = 0;
  node* h = s->head.read_raw();
  while (h != nullptr) {
    counted++;
    node* nxt = h->next.read_raw();
    flock::pool_delete(h);
    h = nxt;
  }
  EXPECT_EQ(counted, s->size.read_raw());
  flock::pool_delete(s);
  for (int i = 0; i < 10; i++) flock::epoch_manager::instance().flush();
  EXPECT_EQ(flock::pool_outstanding<node>(), before);
}

// Hand-over-hand traversal over a chain of locks using early unlock.
// The thunks capture ONLY stable pointers by value: helpers may run a
// thunk after the creator's inner stack frames are gone (§6 "Capturing
// by Value"), so capturing a local std::function by reference would be a
// use-after-free in lock-free mode.
struct hoh_cell {
  flock::lock lck;
  flock::mutable_<uint64_t> v;
};

struct hoh {
  static bool step(hoh_cell* chain, int n, int i) {
    chain[i].v.store(chain[i].v.load() + 1);
    if (i + 1 == n) return true;
    return flock::try_lock(chain[i + 1].lck, [chain, n, i] {
      flock::unlock(chain[i].lck);
      return step(chain, n, i + 1);
    });
  }
};

TEST_P(StressModes, HandOverHandChain) {
  constexpr int kChain = 10;
  std::vector<hoh_cell> chain(kChain);
  for (auto& c : chain) c.v.init(0);

  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int rep = 0; rep < 500; rep++) {
        hoh_cell* base = chain.data();
        flock::with_epoch([&] {
          return flock::strict_lock(chain[0].lck, [base] {
            return hoh::step(base, kChain, 0);
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  // Not all traversals complete (inner try_lock may fail), but every cell
  // must have a count <= cell 0's count, and cell 0 has all attempts.
  uint64_t first = chain[0].v.read_raw();
  EXPECT_GT(first, 0u);
  for (int i = 1; i < kChain; i++)
    EXPECT_LE(chain[i].v.read_raw(), first);
}

// Long helping chains: nested try_locks of depth kDepth in decreasing
// lock order. Ensures nested helping with depth > 2 works (Theorem 4.2's
// chain argument). Thunks capture only stable pointers by value.
struct deep {
  static bool go(hoh_cell* ls, int n, int d) {
    ls[d].v.store(ls[d].v.load() + 1);
    if (d + 1 == n) return true;
    return flock::try_lock(ls[d + 1].lck,
                           [ls, n, d] { return go(ls, n, d + 1); });
  }
};

TEST_P(StressModes, DeepNesting) {
  constexpr int kDepth = 6;
  std::vector<hoh_cell> ls(kDepth);
  for (auto& l : ls) l.v.init(0);

  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int rep = 0; rep < 300; rep++) {
        hoh_cell* base = ls.data();
        flock::with_epoch([&] {
          return flock::try_lock(ls[0].lck, [base] {
            return deep::go(base, kDepth, 0);
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int d = 1; d < kDepth; d++)
    EXPECT_LE(ls[d].v.read_raw(), ls[d - 1].v.read_raw()) << "depth " << d;
  EXPECT_GT(ls[0].v.read_raw(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, StressModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

// Lock-free progress under forced preemption: more threads than cores,
// tiny critical sections, strict locks. In blocking mode this would be
// slow but correct; in lock-free mode helpers keep the system moving.
// We assert completion within a generous wall-clock budget.
TEST(LockStress, LockFreeOversubscribedFinishes) {
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  const int kThreads =
      3 * static_cast<int>(std::thread::hardware_concurrency());
  constexpr int kOps = 300;
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOps; i++) {
        flock::with_epoch([&] {
          return flock::strict_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  auto secs = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_LT(secs, 120.0);
  flock::pool_delete(x);
  flock::epoch_manager::instance().flush();
}

}  // namespace
