// Tests for the tagged-word helpers and the announcement-based tag-wrap
// protection (paper §6, second ABA optimization).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "flock/flock.hpp"

namespace {

TEST(Tagged, PackUnpackRoundTrip) {
  uint64_t p = flock::pack_tagged(0x1234, 0xABCDEF012345ull);
  EXPECT_EQ(flock::tag_of(p), 0x1234u);
  EXPECT_EQ(flock::val_of(p), 0xABCDEF012345ull);
}

TEST(Tagged, ValueMaskIs48Bits) {
  uint64_t p = flock::pack_tagged(1, flock::kValMask);
  EXPECT_EQ(flock::val_of(p), flock::kValMask);
  EXPECT_EQ(flock::tag_of(p), 1u);
}

TEST(Tagged, BitCastHelpers) {
  int x = 0;
  uint64_t b = flock::to_bits48(&x);
  EXPECT_EQ(flock::from_bits48<int*>(b), &x);
  EXPECT_EQ(flock::from_bits48<bool>(flock::to_bits48(true)), true);
  EXPECT_EQ(flock::from_bits48<bool>(flock::to_bits48(false)), false);
}

TEST(Tagged, NextTagIncrementsFastPath) {
  int loc = 0;
  uint64_t p = flock::pack_tagged(5, 0);
  EXPECT_EQ(flock::detail::next_tag(&loc, p), 6u);
}

TEST(Tagged, NextTagWrapsSkippingZero) {
  int loc = 0;
  uint64_t p = flock::pack_tagged(flock::kTagLimit - 1, 0);
  EXPECT_EQ(flock::detail::next_tag(&loc, p), 1u);
}

TEST(Tagged, WrapSkipsAnnouncedTags) {
  int loc = 0;
  // Announce tags 1 and 2 for this location from this thread's slot by
  // nesting guards (each guard uses the same slot; use two threads to hold
  // two distinct announcements).
  std::atomic<bool> hold{true}, ready1{false}, ready2{false};
  std::thread t1([&] {
    flock::detail::announce_guard g(&loc, flock::pack_tagged(1, 0));
    ready1.store(true);
    while (hold.load()) {
    }
  });
  std::thread t2([&] {
    flock::detail::announce_guard g(&loc, flock::pack_tagged(2, 0));
    ready2.store(true);
    while (hold.load()) {
    }
  });
  while (!ready1.load() || !ready2.load()) {
  }
  uint64_t p = flock::pack_tagged(flock::kTagLimit - 1, 0);
  uint64_t t = flock::detail::next_tag(&loc, p);
  EXPECT_NE(t, 0u);
  EXPECT_NE(t, 1u);
  EXPECT_NE(t, 2u);
  hold.store(false);
  t1.join();
  t2.join();
}

TEST(Tagged, WrapIgnoresOtherLocations) {
  int loc = 0, other = 0;
  std::atomic<bool> hold{true}, ready{false};
  std::thread t1([&] {
    flock::detail::announce_guard g(&other, flock::pack_tagged(1, 0));
    ready.store(true);
    while (hold.load()) {
    }
  });
  while (!ready.load()) {
  }
  uint64_t p = flock::pack_tagged(flock::kTagLimit - 1, 0);
  EXPECT_EQ(flock::detail::next_tag(&loc, p), 1u);
  hold.store(false);
  t1.join();
}

TEST(Tagged, AnnounceGuardClearsSlot) {
  int loc = 0;
  {
    flock::detail::announce_guard g(&loc, flock::pack_tagged(3, 0));
  }
  // After the guard, a wrap scan finds nothing for &loc.
  uint64_t p = flock::pack_tagged(flock::kTagLimit - 1, 0);
  EXPECT_EQ(flock::detail::next_tag(&loc, p), 1u);
}

// Drive a compact mutable through full tag wrap-around under concurrent
// replays and verify value integrity (the tag is only 16 bits, so 65536+
// stores wrap it multiple times).
TEST(Tagged, CompactMutableSurvivesTagWrap) {
  flock::mutable_<uint64_t> m(0);
  for (uint64_t i = 1; i <= 3 * flock::kTagLimit; i++) {
    m.store(i & 0xFFFF);
    ASSERT_EQ(m.read_raw(), i & 0xFFFF);
  }
  uint64_t tag = flock::tag_of(m.read_raw_packed());
  EXPECT_GT(tag, 0u);
  EXPECT_LT(tag, flock::kTagLimit);
}

}  // namespace
