// leaftree (external BST): oracle, stress, and shape-specific tests.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class LeaftreeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(LeaftreeTest, BatteryTryLock) {
  set_test::battery<flock_workload::leaftree_try>();
}

TEST_P(LeaftreeTest, BatteryStrictLock) {
  set_test::battery<flock_workload::leaftree_strict>();
}

TEST_P(LeaftreeTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::leaftree_try>();
}

TEST_P(LeaftreeTest, SkewedInsertOrderStillCorrect) {
  flock_workload::leaftree_try s;
  for (uint64_t k = 1; k <= 2000; k++) EXPECT_TRUE(s.insert(k, k));
  EXPECT_TRUE(s.check_invariants());
  for (uint64_t k = 2000; k >= 1; k--) EXPECT_TRUE(s.remove(k));
  EXPECT_EQ(s.size(), 0u);
}

TEST_P(LeaftreeTest, EmptySingletonTransitions) {
  flock_workload::leaftree_try s;
  EXPECT_FALSE(s.find(1).has_value());
  EXPECT_FALSE(s.remove(1));
  EXPECT_TRUE(s.insert(1, 10));   // empty -> singleton
  EXPECT_TRUE(s.remove(1));       // singleton -> empty
  EXPECT_TRUE(s.insert(2, 20));   // empty -> singleton again
  EXPECT_TRUE(s.insert(3, 30));   // singleton -> internal
  EXPECT_TRUE(s.remove(2));       // collapse back
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.check_invariants());
}

TEST_P(LeaftreeTest, GrandparentSpliceRace) {
  // Deleting near-adjacent leaves stresses gp+parent nested locking.
  flock_workload::leaftree_try s;
  set_test::concurrent_stress(s, 8, 32, 8000, 95);
}

INSTANTIATE_TEST_SUITE_P(Modes, LeaftreeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
