// Tests for the idempotence log (src/flock/log.hpp): commit semantics,
// block growth, pass-through outside thunks, and multi-threaded agreement.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

// RAII: install a fresh descriptor-less log for the calling thread.
struct scoped_log {
  flock::log_block* head;
  flock::log_cursor saved;
  scoped_log() {
    head = flock::pool_new<flock::log_block>();
    saved = flock::tls_log();
    flock::tls_log() = {head, 0};
  }
  ~scoped_log() {
    flock::tls_log() = saved;
    // free chain
    flock::log_block* b = head;
    while (b != nullptr) {
      flock::log_block* n = b->next.load();
      flock::pool_delete(b);
      b = n;
    }
  }
};

TEST(Log, PassThroughOutsideThunk) {
  ASSERT_FALSE(flock::in_thunk());
  auto [v, first] = flock::commit64_first(42);
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(first);
  // Every commit outside a thunk is "first": nothing is recorded.
  auto [v2, first2] = flock::commit64_first(43);
  EXPECT_EQ(v2, 43u);
  EXPECT_TRUE(first2);
}

TEST(Log, FirstCommitWinsWithinThunk) {
  scoped_log lg;
  ASSERT_TRUE(flock::in_thunk());
  auto [v, first] = flock::commit64_first(7);
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(first);
  // Replay from position 0 (as a helper would): sees the committed value.
  flock::tls_log() = {lg.head, 0};
  auto [v2, first2] = flock::commit64_first(999);
  EXPECT_EQ(v2, 7u);
  EXPECT_FALSE(first2);
}

TEST(Log, ZeroIsACommittableValue) {
  // The present bit distinguishes "committed 0" from "empty".
  scoped_log lg;
  auto [v, first] = flock::commit64_first(0);
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(first);
  flock::tls_log() = {lg.head, 0};
  auto [v2, first2] = flock::commit64_first(5);
  EXPECT_EQ(v2, 0u);
  EXPECT_FALSE(first2);
}

TEST(Log, SequentialPositionsIndependent) {
  scoped_log lg;
  for (uint64_t i = 0; i < 5; i++)
    EXPECT_EQ(flock::commit64(100 + i), 100 + i);
  flock::tls_log() = {lg.head, 0};
  for (uint64_t i = 0; i < 5; i++)
    EXPECT_EQ(flock::commit64(777), 100 + i);  // replay sees originals
}

TEST(Log, GrowsAcrossBlocks) {
  scoped_log lg;
  const int n = flock::kLogBlockEntries * 3 + 2;
  for (int i = 0; i < n; i++)
    EXPECT_EQ(flock::commit64(static_cast<uint64_t>(i)),
              static_cast<uint64_t>(i));
  EXPECT_NE(lg.head->next.load(), nullptr);
  // Replay the whole thing.
  flock::tls_log() = {lg.head, 0};
  for (int i = 0; i < n; i++)
    EXPECT_EQ(flock::commit64(12345), static_cast<uint64_t>(i));
}

TEST(Log, CommitRaw128) {
  scoped_log lg;
  flock::u128 big = (static_cast<flock::u128>(0xABCDEF) << 64) | 0x123456;
  auto [v, first] = flock::commit_raw(big);
  EXPECT_TRUE(first);
  EXPECT_TRUE(v == big);
  flock::tls_log() = {lg.head, 0};
  auto [v2, first2] = flock::commit_raw(flock::u128{1});
  EXPECT_FALSE(first2);
  EXPECT_TRUE(v2 == big);
}

// Many threads replay the same log concurrently; all must agree on every
// position, and exactly one thread wins each slot.
TEST(Log, ConcurrentReplayAgreement) {
  auto* head = flock::pool_new<flock::log_block>();
  constexpr int kThreads = 8;
  constexpr int kSlots = 100;
  std::atomic<int> winners[kSlots];
  for (auto& w : winners) w.store(0);
  std::vector<uint64_t> seen[kThreads];
  std::atomic<bool> go{false};

  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      while (!go.load()) {
      }
      flock::tls_log() = {head, 0};
      for (int i = 0; i < kSlots; i++) {
        auto [v, first] =
            flock::commit64_first(static_cast<uint64_t>(t * 1000 + i));
        if (first) winners[i].fetch_add(1);
        seen[t].push_back(v);
      }
      flock::tls_log() = {};
    });
  }
  go.store(true);
  for (auto& th : ts) th.join();

  for (int i = 0; i < kSlots; i++) {
    EXPECT_EQ(winners[i].load(), 1) << "slot " << i;
    for (int t = 1; t < kThreads; t++)
      EXPECT_EQ(seen[t][i], seen[0][i]) << "slot " << i << " thread " << t;
    // The committed value must be one actually proposed for slot i.
    EXPECT_EQ(seen[0][i] % 1000, static_cast<uint64_t>(i));
  }
  flock::log_block* b = head;
  while (b != nullptr) {
    flock::log_block* n = b->next.load();
    flock::pool_delete(b);
    b = n;
  }
}

TEST(Log, CcasToggleStillCorrect) {
  flock::set_ccas(false);
  {
    scoped_log lg;
    EXPECT_EQ(flock::commit64(9), 9u);
    flock::tls_log() = {lg.head, 0};
    EXPECT_EQ(flock::commit64(10), 9u);
  }
  flock::set_ccas(true);
}

TEST(Log, IdemNewAndRetireOutsideThunk) {
  struct obj {
    int x;
    explicit obj(int v) : x(v) {}
  };
  long long before = flock::pool_outstanding<obj>();
  obj* p = flock::idem_new<obj>(5);
  EXPECT_EQ(p->x, 5);
  flock::idem_retire(p);
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(flock::pool_outstanding<obj>(), before);
}

}  // namespace
