# Empty compiler generated dependencies file for test_write_once.
# This may be replaced when dependencies are built.
