// kv_store — a small concurrent key-value service on top of the Flock
// hashtable, exercising the public Set API the way the paper's YCSB-like
// evaluation does: a mix of lookups, inserts, and deletes from many
// threads with zipfian-skewed keys, switching lock modes at runtime.
//
//   $ ./kv_store [threads] [millis]
#include <cstdio>
#include <cstdlib>

#include "flock/flock.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

int main(int argc, char** argv) {
  int threads = argc > 1 ? std::atoi(argv[1])
                         : static_cast<int>(std::thread::hardware_concurrency());
  int millis = argc > 2 ? std::atoi(argv[2]) : 300;
  const uint64_t range = 100000;

  std::printf("kv_store: hashtable, %llu keys, %d threads, %d ms per mode\n",
              static_cast<unsigned long long>(range), threads, millis);

  flock_workload::zipf_distribution dist(range, 0.9);

  for (bool blocking : {true, false}) {
    flock::set_blocking(blocking);
    // No capacity guess: the table starts at its 64-bucket floor and
    // resizes itself while the prefill and the workload pour keys in.
    flock_workload::hashtable_try kv;
    flock_workload::prefill_half(kv, range);

    flock_workload::run_config cfg;
    cfg.threads = threads;
    cfg.update_percent = 20;
    cfg.millis = millis;
    auto res = flock_workload::run_mixed(kv, dist, cfg);

    std::printf(
        "[%s] %.2f Mop/s  (%llu ops: %llu finds, %llu inserts, %llu removes; "
        "%llu updates applied)  grown to %llu buckets  invariants=%s\n",
        blocking ? "blocking " : "lock-free", res.mops,
        static_cast<unsigned long long>(res.total_ops),
        static_cast<unsigned long long>(res.finds),
        static_cast<unsigned long long>(res.inserts),
        static_cast<unsigned long long>(res.removes),
        static_cast<unsigned long long>(res.successful_updates),
        static_cast<unsigned long long>(kv.underlying().bucket_count()),
        kv.check_invariants() ? "ok" : "BROKEN");
  }
  flock::epoch_manager::instance().flush();
  return 0;
}
