// set_test_util.hpp — shared oracle/stress/invariant machinery for every
// set data structure (Flock structures and baselines alike).
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace set_test {

/// Random single-threaded op sequence checked against std::map.
template <class Set>
void sequential_oracle(Set& s, uint64_t key_range, int ops, uint64_t seed) {
  std::map<uint64_t, uint64_t> oracle;
  std::mt19937_64 rng(seed);
  for (int i = 0; i < ops; i++) {
    uint64_t k = rng() % key_range + 1;
    switch (rng() % 3) {
      case 0: {
        bool expect = oracle.emplace(k, k * 3).second;
        ASSERT_EQ(s.insert(k, k * 3), expect) << "insert " << k << " op " << i;
        break;
      }
      case 1: {
        bool expect = oracle.erase(k) > 0;
        ASSERT_EQ(s.remove(k), expect) << "remove " << k << " op " << i;
        break;
      }
      default: {
        auto it = oracle.find(k);
        auto got = s.find(k);
        if (it == oracle.end()) {
          ASSERT_FALSE(got.has_value()) << "find " << k << " op " << i;
        } else {
          ASSERT_TRUE(got.has_value()) << "find " << k << " op " << i;
          ASSERT_EQ(*got, it->second) << "find " << k << " op " << i;
        }
        break;
      }
    }
  }
  ASSERT_EQ(s.size(), oracle.size());
  ASSERT_TRUE(s.check_invariants());
  // Full membership sweep.
  for (uint64_t k = 1; k <= key_range; k++) {
    auto got = s.find(k);
    auto it = oracle.find(k);
    ASSERT_EQ(got.has_value(), it != oracle.end()) << "sweep " << k;
  }
}

/// Concurrent mixed stress; afterwards audits invariants and exact
/// membership via per-key success accounting: every thread tracks the net
/// effect of its *successful* inserts/removes per key; the final
/// membership must equal prefill xor net-updates.
template <class Set>
void concurrent_stress(Set& s, int threads, uint64_t key_range,
                       int ops_per_thread, int update_percent,
                       uint64_t seed = 99) {
  // Prefill even keys.
  std::vector<int> net(key_range + 1, 0);  // +1 insert, -1 remove (net)
  for (uint64_t k = 2; k <= key_range; k += 2) {
    ASSERT_TRUE(s.insert(k, k));
    net[k] = 1;
  }
  std::vector<std::vector<int>> deltas(
      static_cast<size_t>(threads),
      std::vector<int>(key_range + 1, 0));
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<uint64_t>(t) * 7919);
      auto& mine = deltas[static_cast<size_t>(t)];
      while (!go.load()) {
      }
      for (int i = 0; i < ops_per_thread; i++) {
        uint64_t k = rng() % key_range + 1;
        int which = static_cast<int>(rng() % 100);
        if (which < update_percent / 2) {
          if (s.insert(k, k)) mine[k]++;
        } else if (which < update_percent) {
          if (s.remove(k)) mine[k]--;
        } else {
          auto v = s.find(k);
          if (v.has_value()) {
            ASSERT_EQ(*v, k);
          }
        }
      }
    });
  }
  go.store(true);
  for (auto& t : ts) t.join();

  ASSERT_TRUE(s.check_invariants());
  std::size_t expected_size = 0;
  for (uint64_t k = 1; k <= key_range; k++) {
    int present = (net[k] != 0) ? 1 : 0;
    for (int t = 0; t < threads; t++)
      present += deltas[static_cast<size_t>(t)][k];
    ASSERT_TRUE(present == 0 || present == 1)
        << "key " << k << " net " << present
        << " (a successful insert/remove must alternate)";
    ASSERT_EQ(s.find(k).has_value(), present == 1) << "key " << k;
    expected_size += static_cast<std::size_t>(present);
  }
  ASSERT_EQ(s.size(), expected_size);
}

/// Disjoint-range parallel inserts then removes: deterministic totals.
template <class Set>
void disjoint_ranges(Set& s, int threads, uint64_t keys_per_thread) {
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      uint64_t base = static_cast<uint64_t>(t) * keys_per_thread;
      for (uint64_t i = 1; i <= keys_per_thread; i++) {
        ASSERT_TRUE(s.insert(base + i, base + i));
        ASSERT_FALSE(s.insert(base + i, base + i));  // duplicate
      }
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_EQ(s.size(),
            static_cast<std::size_t>(threads) * keys_per_thread);
  ASSERT_TRUE(s.check_invariants());
  ts.clear();
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      uint64_t base = static_cast<uint64_t>(t) * keys_per_thread;
      for (uint64_t i = 1; i <= keys_per_thread; i++) {
        ASSERT_TRUE(s.remove(base + i));
        ASSERT_FALSE(s.remove(base + i));
      }
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_EQ(s.size(), 0u);
  ASSERT_TRUE(s.check_invariants());
}

/// Contended single-key hammering: all threads fight over few keys.
template <class Set>
void high_contention(Set& s, int threads, int ops_per_thread,
                     uint64_t hot_keys = 4) {
  std::atomic<long long> balance{0};  // successful inserts - removes
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) * 31 + 7);
      long long mine = 0;
      for (int i = 0; i < ops_per_thread; i++) {
        uint64_t k = rng() % hot_keys + 1;
        if (rng() & 1) {
          if (s.insert(k, k)) mine++;
        } else {
          if (s.remove(k)) mine--;
        }
      }
      balance.fetch_add(mine);
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_TRUE(s.check_invariants());
  ASSERT_EQ(static_cast<long long>(s.size()), balance.load());
}

/// Run a full battery under the current lock mode.
template <class Set>
void battery(int scale = 1) {
  {
    Set s;
    sequential_oracle(s, 128, 4000 * scale, 1);
  }
  {
    Set s;
    sequential_oracle(s, 4096, 8000 * scale, 2);
  }
  {
    Set s;
    concurrent_stress(s, 8, 512, 6000 * scale, 60);
  }
  {
    Set s;
    disjoint_ranges(s, 8, 300);
  }
  {
    Set s;
    high_contention(s, 8, 4000 * scale);
  }
  flock::epoch_manager::instance().flush();
}

/// Oversubscribed battery: more threads than cores, small key range.
template <class Set>
void oversubscribed(int mult = 2) {
  Set s;
  int threads = mult * static_cast<int>(std::thread::hardware_concurrency());
  concurrent_stress(s, threads, 64, 1500, 80);
  flock::epoch_manager::instance().flush();
}

}  // namespace set_test
