// bank_transfer — nested try-locks for multi-object atomicity, the
// motivating use case from the paper's introduction ("If one needs to
// atomically move data among structures, lock-free algorithms become
// particularly tricky"). With Flock it is just two nested try_locks.
//
// A bank of accounts, each with its own lock and balance. Transfers lock
// the two accounts in a fixed order (simply nested, Theorem 4.2) and
// move money atomically. An auditor thread continuously snapshots the
// total; with correct atomicity the sum never drifts. Run in lock-free
// mode, a preempted transferrer cannot block anyone: helpers finish its
// critical section.
#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

struct account {
  flock::lock lck;
  flock::mutable_<uint64_t> balance;
};

constexpr int kAccounts = 64;
constexpr uint64_t kInitial = 1000;

bool transfer(account* from, account* to, uint64_t amount) {
  // Lock order by address keeps the lock order acyclic.
  account* first = from < to ? from : to;
  account* second = from < to ? to : from;
  return flock::with_epoch([&] {
    return flock::try_lock(first->lck, [=] {
      return flock::try_lock(second->lck, [=] {
        uint64_t b = from->balance.load();
        if (b < amount) return false;  // insufficient funds
        from->balance.store(b - amount);
        to->balance.store(to->balance.load() + amount);
        return true;
      });
    });
  });
}

}  // namespace

int main() {
  flock::set_blocking(false);  // lock-free mode
  std::vector<account> bank(kAccounts);
  for (auto& a : bank) a.balance.init(kInitial);

  std::atomic<bool> stop{false};
  std::atomic<long long> transfers{0};
  std::atomic<long long> audits{0};
  std::atomic<long long> max_skew{0};

  std::vector<std::thread> ts;
  // Transferrers (oversubscribed on purpose).
  int workers = 2 * static_cast<int>(std::thread::hardware_concurrency());
  for (int t = 0; t < workers; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      long long mine = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int i = static_cast<int>(rng() % kAccounts);
        int j = static_cast<int>(rng() % kAccounts);
        if (i == j) continue;
        if (transfer(&bank[i], &bank[j], rng() % 10 + 1)) mine++;
      }
      transfers.fetch_add(mine);
    });
  }
  // Auditor: an unsynchronized scan sees transient skew while transfers
  // are in flight (that is expected and unbounded — each transfer that
  // lands between reading its two accounts shifts the racy sum). The real
  // conservation check is the quiescent total at the end; the running
  // scan just exercises read traffic and reports the observed skew.
  ts.emplace_back([&] {
    const long long expected =
        static_cast<long long>(kAccounts) * static_cast<long long>(kInitial);
    while (!stop.load(std::memory_order_relaxed)) {
      long long sum = 0;
      for (auto& a : bank)
        sum += static_cast<long long>(a.balance.read_raw());
      audits.fetch_add(1);
      long long skew = sum > expected ? sum - expected : expected - sum;
      long long cur = max_skew.load(std::memory_order_relaxed);
      while (skew > cur &&
             !max_skew.compare_exchange_weak(cur, skew)) {
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& t : ts) t.join();

  uint64_t total = 0;
  for (auto& a : bank) total += a.balance.read_raw();
  std::printf(
      "transfers: %lld, audits: %lld, max transient racy-scan skew: %lld\n",
      transfers.load(), audits.load(), max_skew.load());
  std::printf("final total: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kAccounts * kInitial),
              total == kAccounts * kInitial ? "conserved" : "LOST MONEY");
  flock::epoch_manager::instance().flush();
  return total == kAccounts * kInitial ? 0 : 1;
}
