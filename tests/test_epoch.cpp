// Tests for epoch-based reclamation: deferral, protection by announced
// epochs, adoption, nesting, and leak accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

struct tracked {
  static std::atomic<long long>& live() {
    static std::atomic<long long> n{0};
    return n;
  }
  uint64_t payload = 0xdeadbeef;
  tracked() { live().fetch_add(1); }
  ~tracked() {
    payload = 0;
    live().fetch_sub(1);
  }
};

TEST(Epoch, RetireEventuallyFrees) {
  long long before = tracked::live().load();
  for (int i = 0; i < 1000; i++) {
    tracked* t = flock::pool_new<tracked>();
    flock::epoch_retire(t);
  }
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), before);
}

TEST(Epoch, AnnouncedEpochBlocksFreeing) {
  tracked* t = flock::pool_new<tracked>();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    flock::with_epoch([&] {
      pinned.store(true);
      while (!release.load()) {
      }
      // Object must still be intact: it was retired after we announced.
      EXPECT_EQ(t->payload, 0xdeadbeefu);
    });
  });

  while (!pinned.load()) {
  }
  long long live_before = tracked::live().load();
  flock::epoch_retire(t);
  // Hammer the collector: the reader's announcement must keep t alive.
  for (int i = 0; i < 1000; i++) flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), live_before);
  release.store(true);
  reader.join();
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), live_before - 1);
}

TEST(Epoch, WithEpochNests) {
  flock::with_epoch([&] {
    int64_t outer = flock::epoch_manager::instance().announced(flock::thread_id());
    EXPECT_GE(outer, 0);
    flock::with_epoch([&] {
      EXPECT_EQ(flock::epoch_manager::instance().announced(flock::thread_id()),
                outer);
    });
    EXPECT_EQ(flock::epoch_manager::instance().announced(flock::thread_id()),
              outer);
  });
  EXPECT_EQ(flock::epoch_manager::instance().announced(flock::thread_id()), -1);
}

TEST(Epoch, AdoptLowersAndRestores) {
  flock::with_epoch([&] {
    auto& em = flock::epoch_manager::instance();
    int me = flock::thread_id();
    int64_t mine = em.announced(me);
    int64_t prev = em.adopt(mine > 0 ? mine - 1 : 0);
    EXPECT_EQ(prev, mine);
    EXPECT_LE(em.announced(me), mine);
    em.restore(prev);
    EXPECT_EQ(em.announced(me), mine);
    // Adopting a larger epoch must not raise the announcement.
    int64_t prev2 = em.adopt(mine + 100);
    EXPECT_EQ(em.announced(me), mine);
    em.restore(prev2);
  });
}

TEST(Epoch, EpochAdvancesUnderQuiescence) {
  auto& em = flock::epoch_manager::instance();
  int64_t e0 = em.current_epoch();
  for (int i = 0; i < 5; i++) em.flush();
  EXPECT_GT(em.current_epoch(), e0);
}

TEST(Epoch, ConcurrentRetireStress) {
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  long long before = tracked::live().load();
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOps; i++) {
        flock::with_epoch([&] {
          tracked* obj = flock::pool_new<tracked>();
          flock::epoch_retire(obj);
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  // Drain retire lists from each participating thread id by recycling ids:
  // flush from this thread repeatedly; other lists drain lazily, so only
  // assert an upper bound here and exact balance after flush cycles.
  for (int i = 0; i < 10; i++) flock::epoch_manager::instance().flush();
  EXPECT_LE(tracked::live().load() - before,
            static_cast<long long>(kThreads) * 64 * 2);
}

// Regression (sticky-lapse): a thread whose LAST operation was a batched
// read leaves its announcement armed (read_guard sticky exit) and then
// goes idle without exiting. That pinned announcement must not block
// reclamation forever: a reclaiming thread with a persistent backlog runs
// lapse_idle_sticky(), claims the idle flag, and retracts the
// announcement — with NO flush() (flush requires quiescence and is no
// safety valve for a live-but-idle thread). Before the lapse existed,
// every object retired after the reader's epoch stayed live for the rest
// of the process.
TEST(Epoch, IdleStickyReaderDoesNotPinReclamation) {
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  // Park a thread right after a read batch: sticky flag 1, announcement
  // held, owner alive but idle — the reviewer's pool-thread scenario.
  std::thread idle_reader([&] {
    { flock::read_guard g; }
    armed.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!armed.load()) std::this_thread::yield();

  long long before = tracked::live().load();
  // Churn enough retires through THIS thread to seal many batches: each
  // seal whose cheap drain leaves a backlog takes the slow path, which
  // lapses idle sticky announcements and advances the epoch. 40 batches
  // give the collector dozens of lapse+advance opportunities.
  constexpr int kChurn = 64 * 40;
  for (int i = 0; i < kChurn; i++) {
    tracked* t = flock::pool_new<tracked>();
    flock::epoch_retire(t);
  }
  // Without the lapse, the idle announcement pins every batch stamped at
  // or after its epoch: live-before stays ~kChurn. With it, all but the
  // newest few batches (open + freshly sealed, not yet past the bound)
  // must have drained.
  EXPECT_LE(tracked::live().load() - before, 64 * 4)
      << "idle sticky reader pinned reclamation";

  release.store(true);
  idle_reader.join();
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), before);
}

// The other half of the state machine: a reader INSIDE a read_guard
// (state 2) must never be lapsed — the collector's claim CAS has to skip
// it, and the object the guard protects has to survive arbitrary retire
// churn from other threads.
TEST(Epoch, InRegionReaderSurvivesLapseChurn) {
  tracked* t = flock::pool_new<tracked>();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    flock::read_guard g;  // held open: read_sticky state 2
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
    // Must still be intact: retired after our announcement, and the
    // in-region state bars the sticky-lapse from retracting it.
    EXPECT_EQ(t->payload, 0xdeadbeefu);
  });
  while (!pinned.load()) std::this_thread::yield();

  long long live_before = tracked::live().load();
  flock::epoch_retire(t);
  // Heavy churn drives seal_and_reclaim's slow path — including
  // lapse_idle_sticky — over and over; the reader's announcement must
  // hold t (and everything retired after it) alive throughout.
  for (int i = 0; i < 64 * 20; i++) {
    tracked* x = flock::pool_new<tracked>();
    flock::epoch_retire(x);
  }
  EXPECT_GE(tracked::live().load(), live_before);
  release.store(true);
  reader.join();
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(tracked::live().load(), live_before - 1);
}

// Back-to-back read batches keep reusing the sticky announcement, and the
// collector must never lapse an ACTIVE reader: every value read under a
// guard stays intact even while another thread's churn runs the lapse
// continuously.
TEST(Epoch, ActiveStickyReaderIsNeverLapsed) {
  std::atomic<tracked*> shared{flock::pool_new<tracked>()};
  std::atomic<bool> stop{false};
  std::atomic<long long> reads{0};

  std::thread reader([&] {
    while (!stop.load()) {
      flock::read_guard g;  // sticky batches: 1 -> 2 -> 1 -> 2 -> ...
      tracked* t = shared.load(std::memory_order_acquire);
      ASSERT_EQ(t->payload, 0xdeadbeefu);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < 20000 && !stop.load(); i++) {
      flock::with_epoch([&] {
        tracked* fresh = flock::pool_new<tracked>();
        tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
        flock::epoch_retire(old);
      });
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  reader.join();
  writer.join();
  EXPECT_GT(reads.load(), 0);
  flock::epoch_retire(shared.load());
  flock::epoch_manager::instance().flush();
}

// Readers continuously dereference objects while writers retire them; any
// premature free turns payload to 0 and the reader would observe it.
TEST(Epoch, ReadersNeverSeeFreedMemory) {
  constexpr int kWriters = 2, kReaders = 4;
  std::atomic<tracked*> shared{flock::pool_new<tracked>()};
  std::atomic<bool> stop{false};
  std::atomic<long long> reads{0};

  std::vector<std::thread> ts;
  for (int r = 0; r < kReaders; r++) {
    ts.emplace_back([&] {
      while (!stop.load()) {
        flock::with_epoch([&] {
          tracked* t = shared.load(std::memory_order_acquire);
          ASSERT_EQ(t->payload, 0xdeadbeefu);
          reads.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (int w = 0; w < kWriters; w++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000 && !stop.load(); i++) {
        flock::with_epoch([&] {
          tracked* fresh = flock::pool_new<tracked>();
          tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
          flock::epoch_retire(old);
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : ts) t.join();
  EXPECT_GT(reads.load(), 0);
  flock::epoch_retire(shared.load());
  flock::epoch_manager::instance().flush();
}

}  // namespace
