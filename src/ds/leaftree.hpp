// leaftree.hpp — leaf-oriented (external) unbalanced binary search tree
// with fine-grained optimistic try-locks (paper §7 "a leaf-oriented
// unbalanced BST (leaftree)").
//
// Shape: internal nodes hold routing keys and two mutable child pointers;
// leaves hold the actual key/value and are immutable. Searches descend
// "k < key ? left : right" with no locks. An insert locks the leaf's
// parent and replaces the leaf by a new internal node with two leaves; a
// remove locks grandparent + parent (simply nested, ordered by depth) and
// splices the sibling up. A single sentinel root (whose left child is the
// whole tree) uniformly provides a parent/grandparent.
#pragma once

#include <optional>

#include "flock/flock.hpp"

namespace flock_ds {

template <class K, class V, bool Strict = false>
class leaftree {
  struct node {
    const bool is_leaf;
    explicit node(bool leaf) : is_leaf(leaf) {}
  };

  struct internal : node {
    const K key;  // routing: keys < key go left, >= key go right
    flock::mutable_<node*> left;
    flock::mutable_<node*> right;
    flock::write_once<bool> removed;
    flock::lock lck;
    internal(K k, node* l, node* r) : node(false), key(k) {
      left.init(l);
      right.init(r);
      removed.init(false);
    }
  };

  struct leaf : node {
    const K k;
    const V v;
    leaf(K key, V val) : node(true), k(key), v(val) {}
  };

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

  static internal* as_int(node* n) { return static_cast<internal*>(n); }
  static leaf* as_leaf(node* n) { return static_cast<leaf*>(n); }

 public:
  leaftree() { root_ = flock::pool_new<internal>(K{}, nullptr, nullptr); }

  ~leaftree() {
    destroy(root_->left.read_raw());
    flock::pool_delete(root_);
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      node* n = root_->left.load();
      while (n != nullptr && !n->is_leaf)
        n = k < as_int(n)->key ? as_int(n)->left.load()
                               : as_int(n)->right.load();
      if (n != nullptr && as_leaf(n)->k == k) return as_leaf(n)->v;
      return {};
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        auto [gp, p, l] = search(k);
        (void)gp;
        if (l == nullptr) {
          // Empty tree: install the first leaf under the sentinel root.
          internal* rp = root_;
          if (acquire(rp->lck, [=] {
                if (rp->left.load() != nullptr) return false;
                rp->left = flock::allocate<leaf>(k, v);
                return true;
              }))
            return true;
          continue;
        }
        if (as_leaf(l)->k == k) return false;  // already present
        internal* par = p;
        node* lf = l;
        bool went_left = child_dir(par, k);
        if (acquire(par->lck, [=, this] {
              if (par != root_ && par->removed.load()) return false;
              flock::mutable_<node*>& slot =
                  went_left ? par->left : par->right;
              if (slot.load() != lf) return false;  // validate
              leaf* nl = flock::allocate<leaf>(k, v);
              K lk = as_leaf(lf)->k;
              internal* ni =
                  k < lk ? flock::allocate<internal>(lk, nl, lf)
                         : flock::allocate<internal>(k, lf, nl);
              slot.store(ni);
              return true;
            }))
          return true;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        auto [gp, p, l] = search(k);
        if (l == nullptr || as_leaf(l)->k != k) return false;
        if (p == root_) {
          // l is the only leaf: clear the sentinel's child.
          internal* rp = root_;
          node* lf = l;
          if (acquire(rp->lck, [=] {
                if (rp->left.load() != lf) return false;
                rp->left = static_cast<node*>(nullptr);
                flock::retire<leaf>(as_leaf(lf));
                return true;
              }))
            return true;
          continue;
        }
        internal* g = gp;
        internal* par = p;
        node* lf = l;
        bool g_left = child_dir(g, k);
        bool p_left = child_dir(par, k);
        if (acquire(g->lck, [=, this] {
              return acquire(par->lck, [=, this] {
                if (g != root_ && g->removed.load()) return false;
                flock::mutable_<node*>& gslot = g_left ? g->left : g->right;
                if (gslot.load() != static_cast<node*>(par)) return false;
                flock::mutable_<node*>& pslot =
                    p_left ? par->left : par->right;
                if (pslot.load() != lf) return false;
                node* sibling =
                    p_left ? par->right.load() : par->left.load();
                par->removed = true;
                gslot.store(sibling);  // splice parent out
                flock::retire<internal>(par);
                flock::retire<leaf>(as_leaf(lf));
                return true;
              });
            }))
          return true;
      }
    });
  }

  /// Quiescent audits. ---------------------------------------------------
  std::size_t size() const { return count(root_->left.read_raw()); }

  bool check_invariants() const {
    bool ok = true;
    K lo{};
    K hi{};
    validate(root_->left.read_raw(), lo, false, hi, false, ok);
    return ok;
  }

  template <class F>
  void for_each(F&& f) const {
    walk(root_->left.read_raw(), f);
  }

 private:
  // true = descend left. For the sentinel root, always left.
  bool child_dir(internal* n, K k) const {
    return n == root_ || k < n->key;
  }

  // (grandparent, parent, leaf-or-null). parent == root_ when the leaf
  // hangs directly off the sentinel.
  std::tuple<internal*, internal*, node*> search(K k) {
    internal* gp = nullptr;
    internal* p = root_;
    node* n = root_->left.load();
    while (n != nullptr && !n->is_leaf) {
      gp = p;
      p = as_int(n);
      n = k < as_int(n)->key ? as_int(n)->left.load()
                             : as_int(n)->right.load();
    }
    return {gp, p, n};
  }

  static void destroy(node* n) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      flock::pool_delete(as_leaf(n));
      return;
    }
    destroy(as_int(n)->left.read_raw());
    destroy(as_int(n)->right.read_raw());
    flock::pool_delete(as_int(n));
  }

  static std::size_t count(node* n) {
    if (n == nullptr) return 0;
    if (n->is_leaf) return 1;
    return count(as_int(n)->left.read_raw()) +
           count(as_int(n)->right.read_raw());
  }

  // BST routing invariant: every leaf key within (lo, hi]; internal nodes
  // route left strictly below their key.
  static void validate(node* n, K lo, bool has_lo, K hi, bool has_hi,
                       bool& ok) {
    if (n == nullptr || !ok) return;
    if (n->is_leaf) {
      K k = as_leaf(n)->k;
      if (has_lo && k < lo) ok = false;
      if (has_hi && !(k < hi)) ok = false;
      return;
    }
    internal* i = as_int(n);
    if (i->removed.read_raw()) {
      ok = false;
      return;
    }
    if (has_lo && i->key < lo) ok = false;
    if (has_hi && hi < i->key) ok = false;
    validate(i->left.read_raw(), lo, has_lo, i->key, true, ok);
    validate(i->right.read_raw(), i->key, true, hi, has_hi, ok);
  }

  template <class F>
  static void walk(node* n, F&& f) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      f(as_leaf(n)->k, as_leaf(n)->v);
      return;
    }
    walk(as_int(n)->left.read_raw(), f);
    walk(as_int(n)->right.read_raw(), f);
  }

  internal* root_;  // sentinel: tree hangs off root_->left
};

}  // namespace flock_ds
