# Empty dependencies file for test_lock_stress.
# This may be replaced when dependencies are built.
