// Baselines (Harris lists, Natarajan BST, Ellen BST): the same oracle and
// stress battery as the Flock structures. These are lock-free CAS-based
// algorithms, so the lock-mode flag is irrelevant; run once.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

template <class T>
class BaselineTest : public ::testing::Test {};

using baseline_types =
    ::testing::Types<flock_workload::harris, flock_workload::harris_opt,
                     flock_workload::natarajan, flock_workload::ellen>;

TYPED_TEST_SUITE(BaselineTest, baseline_types);

TYPED_TEST(BaselineTest, SequentialOracleSmall) {
  TypeParam s;
  set_test::sequential_oracle(s, 128, 4000, 21);
}

TYPED_TEST(BaselineTest, SequentialOracleWide) {
  TypeParam s;
  set_test::sequential_oracle(s, 4096, 8000, 22);
}

TYPED_TEST(BaselineTest, ConcurrentStress) {
  TypeParam s;
  set_test::concurrent_stress(s, 8, 512, 6000, 60);
  flock::epoch_manager::instance().flush();
}

TYPED_TEST(BaselineTest, DisjointRanges) {
  TypeParam s;
  set_test::disjoint_ranges(s, 8, 300);
}

TYPED_TEST(BaselineTest, HighContention) {
  TypeParam s;
  set_test::high_contention(s, 8, 4000);
  flock::epoch_manager::instance().flush();
}

TYPED_TEST(BaselineTest, Oversubscribed) {
  set_test::oversubscribed<TypeParam>();
}

TYPED_TEST(BaselineTest, EmptyAndSingleton) {
  TypeParam s;
  EXPECT_FALSE(s.find(5).has_value());
  EXPECT_FALSE(s.remove(5));
  EXPECT_TRUE(s.insert(5, 50));
  EXPECT_FALSE(s.insert(5, 51));
  EXPECT_EQ(*s.find(5), 50u);
  EXPECT_TRUE(s.remove(5));
  EXPECT_FALSE(s.remove(5));
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
