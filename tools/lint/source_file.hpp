// source_file.hpp — file model for flock-lint: path + content + line table.
//
// The lint library is deliberately filesystem-optional: rules operate on
// in-memory source_file objects so tests can drive the engine with embedded
// fixture snippets (tests/test_lint.cpp), and the CLI (flock_lint.cpp) is
// the only place that touches disk.
#pragma once

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace flock_lint {

struct source_file {
  std::string path;  // as reported in diagnostics (repo-relative in CI)
  std::string text;
  std::vector<std::string> lines;  // 1-based via line(n); split of `text`

  static source_file from_string(std::string p, std::string t) {
    source_file f;
    f.path = std::move(p);
    f.text = std::move(t);
    std::string cur;
    for (char c : f.text) {
      if (c == '\n') {
        f.lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) f.lines.push_back(cur);
    return f;
  }

  static std::optional<source_file> load(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return from_string(p, ss.str());
  }

  /// 1-based line text ("" past EOF).
  const std::string& line(int n) const {
    static const std::string empty;
    if (n < 1 || n > static_cast<int>(lines.size())) return empty;
    return lines[static_cast<std::size_t>(n - 1)];
  }
};

/// Whitespace-normalized form of a line: trimmed, inner runs collapsed to
/// one space. Baseline entries match on this, so findings survive
/// reindentation and line renumbering (but not edits to the line itself).
inline std::string normalize_ws(const std::string& s) {
  std::string out;
  bool in_space = false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\r') {
      in_space = !out.empty();
    } else {
      if (in_space) out.push_back(' ');
      in_space = false;
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace flock_lint
