// oversubscription_demo — the paper's headline result, live: with more
// threads than cores, blocking locks stall whenever a lock holder is
// descheduled, while lock-free locks let anyone finish the holder's
// critical section. Runs the same leaftree workload at 1x and 4x the
// hardware concurrency in both modes and prints the ratio (paper: up to
// 2.4x in favour of lock-free when oversubscribed — Figures 5d/5g/5h).
//
//   $ ./oversubscription_demo [millis]
#include <cstdio>
#include <cstdlib>

#include "flock/flock.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

struct one_result {
  double mops = 0;
  std::size_t resident = 0;     // population after the run (stats read)
  flock::stats_snapshot delta;  // helping/backoff activity during the run
};

one_result run_one(bool blocking, int threads, int millis) {
  flock::set_blocking(blocking);
  const uint64_t range = 100000;
  flock_workload::leaftree_try tree;
  flock_workload::prefill_half(tree, range);
  flock_workload::zipf_distribution dist(range, 0.75);
  flock_workload::run_config cfg;
  cfg.threads = threads;
  cfg.update_percent = 50;
  cfg.millis = millis;
  auto before = flock::stats();
  auto res = flock_workload::run_mixed(tree, dist, cfg);
  auto after = flock::stats();
  flock::epoch_manager::instance().flush();
  one_result r;
  r.mops = res.mops;
  // adapter::approx_size — the counter read on structures that shard an
  // occupancy count (hashtable/sharded_map), the exact scan elsewhere.
  r.resident = tree.approx_size();
  r.delta.helps_attempted = after.helps_attempted - before.helps_attempted;
  r.delta.helps_run = after.helps_run - before.helps_run;
  r.delta.helps_avoided = after.helps_avoided - before.helps_avoided;
  r.delta.backoff_spins = after.backoff_spins - before.backoff_spins;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int millis = argc > 1 ? std::atoi(argv[1]) : 500;
  int cores = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("oversubscription demo: leaftree, 100K keys, 50%% updates\n");
  std::printf("%-22s %10s %10s %8s\n", "config", "blocking", "lock-free",
              "lf/bl");
  for (int mult : {1, 2, 4}) {
    int threads = mult * cores;
    one_result bl = run_one(true, threads, millis);
    one_result lf = run_one(false, threads, millis);
    std::printf("%2dx cores (%3d thr)    %7.2f M/s %7.2f M/s %7.2fx\n", mult,
                threads, bl.mops, lf.mops, lf.mops / bl.mops);
    // Contention-policy accounting for the lock-free run: how often a
    // waiter converted to a helper, and how often backoff let the holder
    // finish on its own (helping avoided entirely).
    std::printf(
        "   lock-free waiters: %llu helped, %llu avoided, %llu backoff "
        "spins; ~%llu keys resident\n",
        static_cast<unsigned long long>(lf.delta.helps_run),
        static_cast<unsigned long long>(lf.delta.helps_avoided),
        static_cast<unsigned long long>(lf.delta.backoff_spins),
        static_cast<unsigned long long>(lf.resident));
  }
  std::printf(
      "\nExpected shape (paper Figs. 5d/5g/5h): ~parity at 1x, lock-free\n"
      "pulling ahead as oversubscription grows. The helping counters show\n"
      "the §4 mechanism at work: helps happen when a holder is\n"
      "descheduled; backoff avoids them when it is merely slow.\n");
  return 0;
}
