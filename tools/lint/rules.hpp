// rules.hpp — the flock-lint rule engine.
//
// Five rules enforce the discipline that the lock-free-locks reproduction
// otherwise states only in comments (see ARCHITECTURE.md "Correctness
// tooling" and the per-rule rationale strings below):
//
//   R1  no raw atomics / volatile / raw new-delete inside CS lambdas
//   R2  no non-idempotent calls (RNG, clocks, env, sleeps, mutable
//       static locals) inside CS lambdas
//   R3  every relaxed/acquire/release/acq_rel memory order in src/flock/,
//       src/ds/, and src/store/ carries a `// mo:` justification comment
//   R4  faultpoint name registry: well-formed, single-file, kind-unique,
//       and every name armed by tests resolves to a real fault point
//   R5  stats counters declared in stats_snapshot and the keys dumped by
//       json_reporter stay in sync
//
// R1–R3 are per-file; R4/R5 need the whole file set (corpus rules).
// Everything is lexical: no type information, no preprocessing. Escapes
// that the lexical level cannot see (e.g. a bare `.load()` on a
// std::atomic member, which is spelled identically to the sanctioned
// mutable_<T>::load()) are out of scope and documented; escapes the rules
// DO see but that are correct by a human argument go into the baseline
// file (baseline.hpp) with a comment — the rule itself is never weakened.
#pragma once

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "regions.hpp"
#include "source_file.hpp"

namespace flock_lint {

struct finding {
  std::string rule;     // "R1".."R5"
  std::string path;
  int line;
  std::string message;
  std::string snippet;  // normalized source line (baseline match key)
};

struct rule_doc {
  const char* id;
  const char* title;
  const char* rationale;
};

inline const std::vector<rule_doc>& rule_docs() {
  static const std::vector<rule_doc> docs = {
      {"R1", "no raw atomics / volatile / raw new-delete in CS lambdas",
       "Critical sections run as thunks that helpers may replay "
       "(Ben-David/Blelloch/Wei, PPoPP 2022, Definition 1). A raw atomic "
       "op, volatile access, or unlogged allocation executes its effect "
       "once per REPLAY instead of once per operation; shared access must "
       "go through mutable_/write_once/commit_value and allocation through "
       "the idempotent pool (flock::allocate/pool_new/array_new, retire)."},
      {"R2", "no non-idempotent calls where thunk code runs",
       "rand()/clocks/getenv/sleeps and mutable static locals return "
       "different values on replay, so two runs of the same thunk diverge "
       "and the helping protocol's lockstep argument collapses."},
      {"R3", "every relaxed/acquire/release/acq_rel order is justified",
       "Non-seq_cst orderings in the runtime, structure, and store "
       "layers are individually "
       "load-bearing; each use must carry a `// mo:` comment (same "
       "statement or just above) explaining why the weaker order is "
       "sufficient, or a reviewed baseline entry."},
      {"R4", "faultpoint name registry is consistent",
       "chaos::arm(\"typo\") silently never fires (the registry interns "
       "names on first crossing), so a misspelled point name turns a "
       "chaos test into a no-op. Names must be well-formed dotted "
       "lower-case, live in one file, keep one kind (fault vs sched), and "
       "every armed name must exist as a real fault point."},
      {"R5", "stats_snapshot fields and json_reporter keys stay in sync",
       "A counter added to stats.hpp but not dumped by the bench "
       "json_reporter (or vice versa) silently drops observability that "
       "perf tracking across PRs depends on."},
  };
  return docs;
}

struct lint_config {
  std::set<std::string> entry_points = default_entry_points();
  // R3 applies only to files whose path contains one of these substrings:
  // the runtime layer plus the container and store tiers, where orderings
  // (lock words, migration publication, seqlock version words) are
  // load-bearing.
  std::vector<std::string> r3_path_substrs = {"src/flock/", "src/ds/",
                                              "src/store/", "src/service/"};
  // Empty = run all rules; else run only these ids.
  std::set<std::string> only_rules;

  bool enabled(const char* id) const {
    return only_rules.empty() || only_rules.count(id) != 0;
  }

  bool r3_covers(const std::string& path) const {
    for (const std::string& s : r3_path_substrs)
      if (path.find(s) != std::string::npos) return true;
    return false;
  }
};

namespace detail {

inline void add(std::vector<finding>& out, const source_file& f,
                const char* rule, int line, std::string msg) {
  out.push_back({rule, f.path, line, std::move(msg),
                 normalize_ws(f.line(line))});
}

/// First line of the statement containing token k (statement = tokens
/// since the previous ; { or }).
inline int stmt_first_line(const std::vector<token>& t, std::size_t k) {
  int ln = t[k].line;
  for (std::size_t i = k; i-- > 0;) {
    if (t[i].kind == tok_kind::comment) continue;
    if (t[i].kind == tok_kind::punct &&
        (t[i].text == ";" || t[i].text == "{" || t[i].text == "}"))
      break;
    ln = t[i].line;
  }
  return ln;
}

/// Does the statement containing token k mention identifier `name`?
inline bool stmt_contains(const std::vector<token>& t, std::size_t k,
                          const std::string& name) {
  auto is_break = [&](std::size_t i) {
    return t[i].kind == tok_kind::punct &&
           (t[i].text == ";" || t[i].text == "{" || t[i].text == "}");
  };
  for (std::size_t i = k; i-- > 0;) {
    if (is_break(i)) break;
    if (t[i].kind == tok_kind::ident && t[i].text == name) return true;
  }
  for (std::size_t i = k; i < t.size(); i++) {
    if (is_break(i)) break;
    if (t[i].kind == tok_kind::ident && t[i].text == name) return true;
  }
  return false;
}

inline bool is_memory_order_ident(const std::string& s) {
  return s == "memory_order_relaxed" || s == "memory_order_acquire" ||
         s == "memory_order_release" || s == "memory_order_acq_rel" ||
         s == "memory_order_seq_cst" || s == "memory_order_consume" ||
         s == "__ATOMIC_RELAXED" || s == "__ATOMIC_ACQUIRE" ||
         s == "__ATOMIC_RELEASE" || s == "__ATOMIC_ACQ_REL" ||
         s == "__ATOMIC_SEQ_CST" || s == "__ATOMIC_CONSUME";
}

/// The non-seq_cst subset R3 demands justification for.
inline bool is_weak_order_ident(const std::string& s) {
  return s == "memory_order_relaxed" || s == "memory_order_acquire" ||
         s == "memory_order_release" || s == "memory_order_acq_rel" ||
         s == "__ATOMIC_RELAXED" || s == "__ATOMIC_ACQUIRE" ||
         s == "__ATOMIC_RELEASE" || s == "__ATOMIC_ACQ_REL";
}

// --- R1 -------------------------------------------------------------------

inline void run_r1(const source_file& f, const std::vector<token>& t,
                   const std::vector<region>& rs, std::vector<finding>& out) {
  static const std::set<std::string> rmw = {
      "fetch_add", "fetch_sub", "fetch_and",       "fetch_or",
      "fetch_xor", "exchange",  "test_and_set",    "compare_exchange_weak",
      "compare_exchange_strong"};
  for (std::size_t k = 0; k < t.size(); k++) {
    if (!in_region(rs, k) || t[k].kind == tok_kind::comment) continue;
    const std::string& x = t[k].text;
    if (t[k].kind == tok_kind::ident) {
      if (is_memory_order_ident(x)) {
        // flock::commit_value(raw.load(acquire)) is the sanctioned way to
        // fold a raw atomic read into the thunk's log — skip those.
        if (!stmt_contains(t, k, "commit_value"))
          add(out, f, "R1", t[k].line,
              "raw atomic operation (explicit " + x +
                  ") inside a critical-section lambda; use "
                  "mutable_/write_once/commit_value");
        continue;
      }
      if (rmw.count(x) != 0) {
        std::size_t p = prev_code(t, k);
        if (p != std::string::npos && t[p].kind == tok_kind::punct &&
            (t[p].text == "." || t[p].text == "->"))
          add(out, f, "R1", t[k].line,
              "raw atomic RMW `." + x +
                  "` inside a critical-section lambda; effects must be "
                  "idempotent — use mutable_::store/cam");
        continue;
      }
      if (x.rfind("__atomic_", 0) == 0) {
        add(out, f, "R1", t[k].line,
            "raw __atomic builtin inside a critical-section lambda");
        continue;
      }
      if (x == "volatile") {
        add(out, f, "R1", t[k].line,
            "volatile access inside a critical-section lambda (not a "
            "synchronization primitive, not logged)");
        continue;
      }
      if (x == "new" || x == "delete") {
        std::size_t p = prev_code(t, k);
        // `= delete` member suppression; also skips the (never valid in a
        // CS body anyway) `= new` initializer shape only for `delete`.
        if (x == "delete" && p != std::string::npos &&
            t[p].kind == tok_kind::punct && t[p].text == "=")
          continue;
        add(out, f, "R1", t[k].line,
            "raw `" + x +
                "` inside a critical-section lambda; replays would " +
                (x == "new" ? std::string("allocate again — use "
                              "flock::allocate/pool_new/array_new")
                            : std::string("double-free — use "
                              "flock::retire/pool_delete")));
        continue;
      }
    }
  }
}

// --- R2 -------------------------------------------------------------------

inline void run_r2(const source_file& f, const std::vector<token>& t,
                   const std::vector<region>& rs, std::vector<finding>& out) {
  static const std::set<std::string> banned_calls = {
      "rand",   "srand",        "rand_r",  "drand48", "lrand48",
      "random", "time",         "clock",   "gettimeofday",
      "clock_gettime",          "getenv",  "system",  "usleep",
      "nanosleep",              "sleep"};
  static const std::set<std::string> banned_anywhere = {
      "random_device", "sleep_for", "sleep_until", "mt19937", "mt19937_64"};
  for (std::size_t k = 0; k < t.size(); k++) {
    if (!in_region(rs, k) || t[k].kind != tok_kind::ident) continue;
    const std::string& x = t[k].text;
    if (banned_anywhere.count(x) != 0) {
      add(out, f, "R2", t[k].line,
          "non-idempotent `" + x +
              "` inside a critical-section lambda; replays would observe "
              "different values");
      continue;
    }
    if (banned_calls.count(x) != 0) {
      std::size_t p = prev_code(t, k);
      std::size_t nx = next_code(t, k + 1);
      bool member = p != std::string::npos && t[p].kind == tok_kind::punct &&
                    (t[p].text == "." || t[p].text == "->");
      bool call = nx < t.size() && t[nx].kind == tok_kind::punct &&
                  t[nx].text == "(";
      if (!member && call)
        add(out, f, "R2", t[k].line,
            "non-idempotent call `" + x +
                "()` inside a critical-section lambda");
      continue;
    }
    if (x == "now") {
      std::size_t p = prev_code(t, k);
      if (p != std::string::npos && t[p].kind == tok_kind::punct &&
          t[p].text == "::")
        add(out, f, "R2", t[k].line,
            "wall-clock read (`::now()`) inside a critical-section lambda");
      continue;
    }
    if (x == "static") {
      // `static const`/`static constexpr` locals are immutable and fine;
      // anything else is per-process mutable state shared across replays.
      std::size_t nx = next_code(t, k + 1);
      if (nx < t.size() && t[nx].kind == tok_kind::ident &&
          (t[nx].text == "const" || t[nx].text == "constexpr" ||
           t[nx].text == "constinit"))
        continue;
      add(out, f, "R2", t[k].line,
          "mutable `static` local inside a critical-section lambda");
      continue;
    }
  }
}

// --- R3 -------------------------------------------------------------------

inline void run_r3(const source_file& f, const std::vector<token>& t,
                   std::vector<finding>& out) {
  // Lines carrying an `mo:` justification comment.
  std::set<int> mo_lines;
  for (const token& tk : t) {
    if (tk.kind == tok_kind::comment && tk.text.find("mo:") != std::string::npos) {
      // A block comment may span lines; credit every line it touches.
      int ln = tk.line;
      mo_lines.insert(ln);
      for (char c : tk.text)
        if (c == '\n') mo_lines.insert(++ln);
    }
  }
  for (std::size_t k = 0; k < t.size(); k++) {
    if (t[k].kind != tok_kind::ident || !is_weak_order_ident(t[k].text))
      continue;
    const int first = stmt_first_line(t, k);
    bool justified = false;
    // Accept a justification anywhere from three lines above the
    // statement through the line of the order token itself (trailing
    // comments included — they lex on the same line).
    for (int ln = first - 3; ln <= t[k].line && !justified; ln++)
      justified = mo_lines.count(ln) != 0;
    if (!justified)
      add(out, f, "R3", t[k].line,
          "`" + t[k].text +
              "` without an `// mo:` justification comment (same statement "
              "or the lines just above)");
  }
}

// --- R4 -------------------------------------------------------------------

struct point_decl {
  std::string file;
  int line;
  bool is_sched;
};

inline std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return s.substr(1, s.size() - 2);
  return s;
}

inline void run_r4(const std::vector<source_file>& files,
                   const std::vector<std::vector<token>>& toks,
                   std::vector<finding>& out) {
  static const std::regex well_formed(
      "[a-z][a-z0-9_]*(\\.[a-z0-9_]+)+");
  // name -> declarations (a name may legitimately mark the same protocol
  // window at several sites in ONE file, e.g. lock.install.post).
  std::map<std::string, std::vector<point_decl>> decls;
  struct armed_use {
    std::string name, file;
    int line;
  };
  std::vector<armed_use> armed;

  for (std::size_t fi = 0; fi < files.size(); fi++) {
    const std::vector<token>& t = toks[fi];
    for (std::size_t k = 0; k + 2 < t.size(); k++) {
      if (t[k].kind != tok_kind::ident) continue;
      const std::string& x = t[k].text;
      bool is_point = x == "FLOCK_FAULTPOINT" ||
                      x == "FLOCK_FAULTPOINT_ALLOC_FAIL" ||
                      x == "FLOCK_SCHEDPOINT";
      bool is_arm = x == "arm" || x == "hits";
      if (!is_point && !is_arm) continue;
      std::size_t paren = next_code(t, k + 1);
      if (paren >= t.size() || t[paren].text != "(") continue;
      std::size_t arg = next_code(t, paren + 1);
      if (arg >= t.size() || t[arg].kind != tok_kind::str)
        continue;  // macro definition site or a variable name — skip
      std::string name = unquote(t[arg].text);
      if (is_point) {
        if (!std::regex_match(name, well_formed))
          out.push_back({"R4", files[fi].path, t[k].line,
                         "fault point name \"" + name +
                             "\" is not well-formed (want dotted lower-case "
                             "segments, e.g. \"ht.grow.pre_publish\")",
                         normalize_ws(files[fi].line(t[k].line))});
        decls[name].push_back(
            {files[fi].path, t[k].line, x == "FLOCK_SCHEDPOINT"});
      } else {
        armed.push_back({name, files[fi].path, t[k].line});
      }
    }
  }

  for (const auto& [name, ds] : decls) {
    std::set<std::string> in_files;
    bool sched = false, fault = false;
    for (const point_decl& d : ds) {
      in_files.insert(d.file);
      (d.is_sched ? sched : fault) = true;
    }
    if (in_files.size() > 1) {
      const point_decl& d = ds.back();
      out.push_back({"R4", d.file, d.line,
                     "fault point \"" + name + "\" is declared in " +
                         std::to_string(in_files.size()) +
                         " files — one window, one owning file",
                     ""});
    }
    if (sched && fault) {
      const point_decl& d = ds.back();
      out.push_back({"R4", d.file, d.line,
                     "\"" + name +
                         "\" is used as both FLOCK_FAULTPOINT and "
                         "FLOCK_SCHEDPOINT — schedpoints have no fault "
                         "registry entry, so arming this name is ambiguous",
                     ""});
    }
  }

  for (const armed_use& a : armed) {
    auto it = decls.find(a.name);
    bool fault_exists = false;
    if (it != decls.end())
      for (const point_decl& d : it->second)
        if (!d.is_sched) fault_exists = true;
    if (!fault_exists) {
      std::string why =
          it == decls.end()
              ? "no such fault point exists anywhere — the plan never fires"
              : "the name only exists as a FLOCK_SCHEDPOINT, which has no "
                "fault registry entry — the plan never fires";
      // Find the file to grab a snippet from.
      std::string snip;
      for (const source_file& f : files)
        if (f.path == a.file) snip = normalize_ws(f.line(a.line));
      out.push_back({"R4", a.file, a.line,
                     "armed fault point \"" + a.name + "\": " + why, snip});
    }
  }
}

// --- R5 -------------------------------------------------------------------

inline void run_r5(const std::vector<source_file>& files,
                   const std::vector<std::vector<token>>& toks,
                   std::vector<finding>& out) {
  // Locate the snapshot struct and the reporter by content marker, not by
  // path, so fixture tests can exercise the rule with embedded snippets.
  std::map<std::string, int> snap_fields;  // name -> line
  std::string snap_file;
  int snap_line = 0;
  std::map<std::string, int> json_keys;
  std::string json_file;
  int json_line = 0;

  for (std::size_t fi = 0; fi < files.size(); fi++) {
    const std::vector<token>& t = toks[fi];
    for (std::size_t k = 0; k + 1 < t.size(); k++) {
      if (t[k].kind == tok_kind::ident && t[k].text == "struct") {
        std::size_t nm = next_code(t, k + 1);
        if (nm < t.size() && t[nm].text == "stats_snapshot") {
          snap_file = files[fi].path;
          snap_line = t[k].line;
          // Member decls: `uint64_t NAME ( = ... )? ;` up to the matching
          // close brace.
          std::size_t j = next_code(t, nm + 1);
          if (j < t.size() && t[j].text == "{") {
            int depth = 1;
            j++;
            while (j < t.size() && depth > 0) {
              if (t[j].kind == tok_kind::punct) {
                if (t[j].text == "{") depth++;
                if (t[j].text == "}") depth--;
              } else if (depth == 1 && t[j].kind == tok_kind::ident &&
                         t[j].text == "uint64_t") {
                std::size_t nmf = next_code(t, j + 1);
                if (nmf < t.size() && t[nmf].kind == tok_kind::ident)
                  snap_fields.emplace(t[nmf].text, t[nmf].line);
              }
              j++;
            }
          }
        }
      }
      if (t[k].kind == tok_kind::ident && t[k].text == "json_reporter") {
        std::size_t p = prev_code(t, k);
        if (p != std::string::npos && t[p].kind == tok_kind::ident &&
            (t[p].text == "class" || t[p].text == "struct")) {
          json_file = files[fi].path;
          json_line = t[k].line;
          // Harvest \"key\": patterns from every string literal in the
          // file (the printf format strings of the stats block).
          static const std::regex key_re(
              "\\\\\"([A-Za-z_][A-Za-z0-9_]*)\\\\\"\\s*:");
          for (const token& tk : toks[fi]) {
            if (tk.kind != tok_kind::str) continue;
            auto begin = std::sregex_iterator(tk.text.begin(), tk.text.end(),
                                              key_re);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
              std::string key = (*it)[1].str();
              if (key == "series" || key == "stats") continue;  // structure
              json_keys.emplace(key, tk.line);
            }
          }
        }
      }
    }
  }

  if (snap_file.empty() || json_file.empty()) return;  // nothing to check
  for (const auto& [name, line] : snap_fields)
    if (json_keys.count(name) == 0)
      out.push_back({"R5", snap_file, line,
                     "stats counter `" + name +
                         "` is declared in stats_snapshot but never dumped "
                         "by json_reporter",
                     ""});
  for (const auto& [name, line] : json_keys)
    if (snap_fields.count(name) == 0)
      out.push_back({"R5", json_file, line,
                     "json_reporter dumps key \"" + name +
                         "\" which is not a stats_snapshot counter",
                     ""});
  (void)snap_line;
  (void)json_line;
}

}  // namespace detail

/// Run all enabled rules over a file set. R1–R3 run per file, R4/R5 over
/// the corpus. Findings come back sorted by (path, line, rule).
inline std::vector<finding> lint_files(const std::vector<source_file>& files,
                                       const lint_config& cfg = {}) {
  std::vector<finding> out;
  std::vector<std::vector<token>> toks;
  toks.reserve(files.size());
  for (const source_file& f : files) toks.push_back(lex(f));

  for (std::size_t i = 0; i < files.size(); i++) {
    const source_file& f = files[i];
    const std::vector<token>& t = toks[i];
    if (cfg.enabled("R1") || cfg.enabled("R2")) {
      std::vector<region> rs = cs_regions(t, cfg.entry_points);
      if (cfg.enabled("R1")) detail::run_r1(f, t, rs, out);
      if (cfg.enabled("R2")) detail::run_r2(f, t, rs, out);
    }
    if (cfg.enabled("R3") && cfg.r3_covers(f.path))
      detail::run_r3(f, t, out);
  }
  if (cfg.enabled("R4")) detail::run_r4(files, toks, out);
  if (cfg.enabled("R5")) detail::run_r5(files, toks, out);

  std::sort(out.begin(), out.end(), [](const finding& a, const finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const finding& a, const finding& b) {
                          return a.path == b.path && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace flock_lint
