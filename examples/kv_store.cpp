// kv_store — a concurrent key-value service on the store tier: a
// flock_store::sharded_map routing the key space across N independently
// grow/shrink-resizing hashtables, driven through the full churn
// lifecycle a long-lived serving instance sees (insert-heavy ramp,
// delete-heavy drain, steady mixed traffic) with zipfian-skewed keys,
// switching lock modes at runtime.
//
// After the churn lifecycle, the same store is driven through the
// batched serving front end (src/service/): FLOCK_SVC_CLIENTS closed-loop
// client threads submit through shard-affine request rings while
// FLOCK_SVC_SERVERS dedicated servers (0 = clients flat-combine) drain
// and execute batches.
//
//   $ ./kv_store [threads] [millis-per-phase] [shards]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "service/service.hpp"
#include "store/sharded_map.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

void print_phase(const char* name, const flock_workload::run_result& res,
                 const flock_workload::sharded_try& kv) {
  // Population via the O(#shards) counter read, not the O(n) scan — this
  // is a stats line, not an audit.
  std::printf(
      "  %-7s %6.2f Mop/s  (%llu ops: %llu finds, %llu ins, %llu rem; "
      "%llu applied)  ~%llu keys in %llu buckets\n",
      name, res.mops, static_cast<unsigned long long>(res.total_ops),
      static_cast<unsigned long long>(res.finds),
      static_cast<unsigned long long>(res.inserts),
      static_cast<unsigned long long>(res.removes),
      static_cast<unsigned long long>(res.successful_updates),
      static_cast<unsigned long long>(kv.approx_size()),
      static_cast<unsigned long long>(kv.underlying().bucket_count()));
}

}  // namespace

int main(int argc, char** argv) {
  int threads = argc > 1 ? std::atoi(argv[1])
                         : static_cast<int>(std::thread::hardware_concurrency());
  int millis = argc > 2 ? std::atoi(argv[2]) : 300;
  std::size_t shards =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 8;
  const uint64_t range = 100000;

  std::printf(
      "kv_store: sharded_map (%zu shards), %llu keys, %d threads, "
      "%d ms per phase\n",
      shards, static_cast<unsigned long long>(range), threads, millis);

  flock_workload::zipf_distribution dist(range, 0.9);

  for (bool blocking : {true, false}) {
    flock::set_blocking(blocking);
    // No capacity guess: every shard starts at its 64-bucket floor, grows
    // through the ramp, and shrinks back through the drain.
    flock_workload::sharded_try kv(shards);
    flock_workload::prefill_half(kv, range);

    std::printf("[%s]\n", blocking ? "blocking" : "lock-free");
    flock_workload::churn_config cc;
    cc.threads = threads;
    cc.ramp_millis = cc.steady_millis = millis;
    cc.drain_millis = 2 * millis;  // the tail of a zipf drain is slow

    std::size_t peak_buckets = 0;
    flock_workload::run_churn(
        kv, dist, cc,
        [&](const char* name, const flock_workload::run_result& res) {
          print_phase(name, res, kv);
          if (peak_buckets == 0) peak_buckets = kv.underlying().bucket_count();
        });

    std::printf(
        "  lifecycle: peak %llu buckets, now %llu; %llu grows, %llu "
        "shrinks across shards; invariants=%s\n",
        static_cast<unsigned long long>(peak_buckets),
        static_cast<unsigned long long>(kv.underlying().bucket_count()),
        static_cast<unsigned long long>(kv.underlying().grow_count()),
        static_cast<unsigned long long>(kv.underlying().shrink_count()),
        kv.check_invariants() ? "ok" : "BROKEN");

    // Service-tier phase: the SAME store, now behind the batched front
    // end. Deployment shape comes from the environment (clamped parsing
    // in flock/config.hpp); the default is two closed-loop clients that
    // flat-combine with no dedicated server.
    const flock::svc_tunables st = flock::svc_tunables_from_env();
    flock_service::service<uint64_t, uint64_t, false> svc(kv.underlying());
    std::atomic<bool> stop{false};
    std::vector<std::thread> servers;
    for (uint32_t s = 0; s < st.servers; s++)
      servers.emplace_back(
          [&svc, &stop, s, servers_n = st.servers] {
            svc.serve(s, servers_n, stop);
          });
    const flock::stats_snapshot before = flock::stats();
    flock_workload::run_config rc;
    rc.threads = static_cast<int>(st.clients);
    rc.update_percent = 20;
    rc.millis = millis;
    auto sres = flock_workload::run_mixed(svc, dist, rc);
    // mo: release — pairs with serve()'s acquire poll so the servers'
    // final sweep sees every request pushed before the stop.
    stop.store(true, std::memory_order_release);
    for (auto& t : servers) t.join();
    const flock::stats_snapshot after = flock::stats();
    const unsigned long long batches = after.svc_batches - before.svc_batches;
    const unsigned long long ops = after.svc_batch_ops - before.svc_batch_ops;
    std::printf(
        "  service %6.2f Mop/s  (%u clients, %u servers; %llu batches, "
        "mean %.2f, max %llu; %llu ring-full, depth hw %llu) "
        "invariants=%s\n",
        sres.mops, st.clients, st.servers, batches,
        batches != 0 ? static_cast<double>(ops) / batches : 0.0,
        static_cast<unsigned long long>(after.svc_batch_max),
        static_cast<unsigned long long>(after.svc_ring_full -
                                        before.svc_ring_full),
        static_cast<unsigned long long>(after.svc_depth_hw),
        kv.check_invariants() ? "ok" : "BROKEN");
  }
  flock::epoch_manager::instance().flush();
  return 0;
}
