# Empty compiler generated dependencies file for test_thunk.
# This may be replaced when dependencies are built.
