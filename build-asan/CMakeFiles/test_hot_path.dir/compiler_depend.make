# Empty compiler generated dependencies file for test_hot_path.
# This may be replaced when dependencies are built.
