# Empty dependencies file for test_tagged.
# This may be replaced when dependencies are built.
