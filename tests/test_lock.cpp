// Tests for try_lock / strict_lock semantics (Algorithm 3) in both
// blocking and lock-free modes: mutual exclusion, helping, nesting,
// descriptor lifecycle, early unlock.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

class LockModes : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(LockModes, TryLockRunsThunkAndReturnsItsValue) {
  flock::lock l;
  int side_effect = 0;
  bool ok = flock::with_epoch([&] {
    return flock::try_lock(l, [&side_effect] {
      side_effect = 1;
      return true;
    });
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(side_effect, 1);
  EXPECT_FALSE(l.is_locked());

  bool ok2 = flock::with_epoch(
      [&] { return flock::try_lock(l, [] { return false; }); });
  EXPECT_FALSE(ok2);  // thunk ran but returned false
  EXPECT_FALSE(l.is_locked());
}

TEST_P(LockModes, MutualExclusionCounter) {
  flock::lock l;
  auto* counter = flock::pool_new<flock::mutable_<uint64_t>>();
  counter->init(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> ts;
  std::atomic<long long> successes{0};
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      long long mine = 0;
      for (int i = 0; i < kPerThread; i++) {
        bool ok = flock::with_epoch([&] {
          return flock::try_lock(l, [counter] {
            counter->store(counter->load() + 1);
            return true;
          });
        });
        if (ok) mine++;
      }
      successes.fetch_add(mine);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter->read_raw(), static_cast<uint64_t>(successes.load()));
  EXPECT_GT(successes.load(), 0);
  flock::pool_delete(counter);
}

TEST_P(LockModes, StrictLockAlwaysSucceeds) {
  flock::lock l;
  auto* counter = flock::pool_new<flock::mutable_<uint64_t>>();
  counter->init(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kPerThread; i++) {
        bool ok = flock::with_epoch([&] {
          return flock::strict_lock(l, [counter] {
            counter->store(counter->load() + 1);
            return true;
          });
        });
        ASSERT_TRUE(ok);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter->read_raw(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  flock::pool_delete(counter);
}

TEST_P(LockModes, NestedLocksBothApply) {
  flock::lock outer, inner;
  auto* a = flock::pool_new<flock::mutable_<uint64_t>>();
  auto* b = flock::pool_new<flock::mutable_<uint64_t>>();
  a->init(0);
  b->init(0);
  bool ok = flock::with_epoch([&] {
    return flock::try_lock(outer, [&outer, &inner, a, b] {
      (void)outer;
      a->store(a->load() + 1);
      return flock::try_lock(inner, [a, b] {
        b->store(b->load() + a->load());
        return true;
      });
    });
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(a->read_raw(), 1u);
  EXPECT_EQ(b->read_raw(), 1u);
  flock::pool_delete(a);
  flock::pool_delete(b);
}

TEST_P(LockModes, NestedMutualExclusionTwoAccounts) {
  // Classic transfer test: invariant a+b constant under concurrent
  // transfers with nested locks (lock a then b).
  flock::lock la, lb;
  auto* a = flock::pool_new<flock::mutable_<uint64_t>>();
  auto* b = flock::pool_new<flock::mutable_<uint64_t>>();
  a->init(1000);
  b->init(1000);
  constexpr int kThreads = 6;
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 3000 && !stop.load(); i++) {
        uint64_t amt = 1 + (i % 3);
        flock::with_epoch([&] {
          return flock::try_lock(la, [&lb, a, b, amt, t] {
            (void)t;
            return flock::try_lock(lb, [a, b, amt] {
              uint64_t va = a->load(), vb = b->load();
              if (va >= amt) {
                a->store(va - amt);
                b->store(vb + amt);
              } else {
                a->store(va + amt);
                b->store(vb - amt);
              }
              return true;
            });
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(a->read_raw() + b->read_raw(), 2000u);
  flock::pool_delete(a);
  flock::pool_delete(b);
}

TEST_P(LockModes, EarlyUnlockAllowsReacquire) {
  flock::lock l;
  bool inner_ok = false;
  bool ok = flock::with_epoch([&] {
    return flock::try_lock(l, [&l, &inner_ok] {
      flock::unlock(l);  // hand-over-hand style early release
      inner_ok = !l.is_locked();
      return true;
    });
  });
  EXPECT_TRUE(ok);
  EXPECT_TRUE(inner_ok);
  EXPECT_FALSE(l.is_locked());
}

TEST_P(LockModes, ThunkValueCapture) {
  // Paper §6 "Capturing by Value": captured locals must survive helping.
  flock::lock l;
  auto* out = flock::pool_new<flock::mutable_<uint64_t>>();
  out->init(0);
  {
    uint64_t local = 77;
    flock::with_epoch([&] {
      return flock::try_lock(l, [out, local] {
        out->store(local);
        return true;
      });
    });
  }
  EXPECT_EQ(out->read_raw(), 77u);
  flock::pool_delete(out);
}

INSTANTIATE_TEST_SUITE_P(BothModes, LockModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

// ---------- lock-free specific: helping ----------

TEST(LockHelping, HelperCompletesStalledOwner) {
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  std::atomic<bool> owner_installed{false};
  std::atomic<bool> owner_may_finish{false};

  // Owner thread: acquires the lock, then stalls *inside* the thunk until
  // released. In lock-free mode another thread must be able to finish the
  // critical section and release the lock.
  std::thread owner([&] {
    flock::with_epoch([&] {
      return flock::try_lock(l, [&, x] {
        uint64_t v = x->load();
        owner_installed.store(true);
        while (!owner_may_finish.load()) {
        }  // simulate a long stall mid-critical-section
        x->store(v + 1);
        return true;
      });
    });
  });

  while (!owner_installed.load()) {
  }

  // Helper: try_lock on the same lock; in lock-free mode this helps the
  // stalled owner's thunk to completion (it re-runs it from the start,
  // and is not blocked by the owner's spin because the helper's run of
  // the thunk reads owner_may_finish only after we set it below).
  owner_may_finish.store(true);
  bool got_in = false;
  for (int i = 0; i < 100000 && !got_in; i++) {
    got_in = flock::with_epoch(
        [&] { return flock::try_lock(l, [] { return true; }); });
  }
  EXPECT_TRUE(got_in);
  owner.join();
  EXPECT_EQ(x->read_raw(), 1u);  // critical section applied exactly once
  flock::pool_delete(x);
  flock::epoch_manager::instance().flush();
}

TEST(LockHelping, HelpedCriticalSectionAppliesOnce) {
  // Many threads hammer one lock; every successful try_lock increments.
  // Helping must never double-apply a thunk. High contention: small loop
  // with no backoff maximizes helper overlap.
  flock::set_blocking(false);
  for (int round = 0; round < 20; round++) {
    flock::lock l;
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    x->init(0);
    std::atomic<long long> wins{0};
    constexpr int kThreads = 8;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        long long mine = 0;
        for (int i = 0; i < 500; i++) {
          if (flock::with_epoch([&] {
                return flock::try_lock(l, [x] {
                  x->store(x->load() + 1);
                  return true;
                });
              }))
            mine++;
        }
        wins.fetch_add(mine);
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(wins.load()))
        << "round " << round;
    flock::pool_delete(x);
  }
  flock::epoch_manager::instance().flush();
}

TEST(LockHelping, TryLockFailsFastWhenHeld) {
  flock::set_blocking(false);
  flock::lock l;
  std::atomic<bool> in{false}, out{false};
  std::thread holder([&] {
    flock::with_epoch([&] {
      return flock::try_lock(l, [&] {
        in.store(true);
        while (!out.load()) {
        }
        return true;
      });
    });
  });
  while (!in.load()) {
  }
  // The holder's thunk spins on `out`, so a helper would spin too —
  // but try_lock on a held lock first helps *then* returns false. To keep
  // the test deterministic, release before probing.
  out.store(true);
  holder.join();
  bool ok = flock::with_epoch(
      [&] { return flock::try_lock(l, [] { return true; }); });
  EXPECT_TRUE(ok);
}

TEST(LockFree, DescriptorPoolBalanced) {
  flock::set_blocking(false);
  flock::epoch_manager::instance().flush();
  long long before = flock::pool_outstanding<flock::descriptor>();
  flock::lock l;
  for (int i = 0; i < 10000; i++) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [] { return true; });
    });
  }
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(flock::pool_outstanding<flock::descriptor>(), before);
}

TEST(LockFree, OversubscribedProgress) {
  // 4x hardware threads hammering one lock in lock-free mode: total work
  // must complete (lock-freedom means no thread parks holding the lock).
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  const int kThreads =
      4 * static_cast<int>(std::thread::hardware_concurrency());
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 200; i++) {
        flock::with_epoch([&] {
          return flock::strict_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(x->read_raw(), static_cast<uint64_t>(kThreads) * 200);
  flock::pool_delete(x);
  flock::epoch_manager::instance().flush();
}

}  // namespace
