// lock.hpp — lock-free try-locks and strict locks (paper §4, Algorithm 3)
// plus the blocking (test-and-test-and-set) mode selected at runtime (§7).
//
// A lock is one compact mutable word holding (descriptor pointer | locked
// bit). In lock-free mode, try_lock either installs a descriptor and runs
// it, or helps whoever is installed and returns false. Anyone may run a
// descriptor at any time; idempotence (descriptor log) makes that safe.
//
// Hot-path structure: try_lock/strict_lock perform exactly one runtime
// mode dispatch at entry — is_blocking() picks the blocking path, and the
// helping path is instantiated for each value of the ccas flag — then run
// with the thread context in a register and every mode choice a
// compile-time constant. No TLS lookups and no shared-flag loads happen
// inside the loops.
//
// Log-slot discipline (this is what keeps nested locks correct): every run
// of an enclosing thunk must consume the *same* log slots in the same
// order. The deterministic prefix of try_lock — logged state load,
// idempotent descriptor allocation, logged re-load, logged done-load, and
// the branch-dependent (but branch-deterministic) retire commit — does.
// Helping and unlocking consume NO enclosing slots: they use raw
// effects-once CASes, which are inherently idempotent because the lock
// word's tag is monotonic while any stale referencer exists (descriptor
// reuse is epoch-gated, see retire paths below).
//
// The ccas flag is resolved once per acquisition, so a concurrent
// set_ccas() may race with in-flight operations running the other
// specialization; that is harmless — both commit protocols agree on the
// log-slot contents, ccas only elides CASes that would fail.
//
// helped/reuse hand-off (§6 "This requires some careful synchronization"):
//   helper:  helped.store(true) [seq_cst]; re-read lock word [seq_cst] ==
//            installed value? run : abort.
//   owner:   unlock (CAS or observing read, both seq_cst); read helped
//            [seq_cst].
// All four accesses are seq_cst, so they have a total order S. Suppose the
// owner's helped-read misses the helper's store AND the helper's re-read
// misses the unlock: then owner-unlock <S owner-helped-read <S
// helper-helped-store <S helper-re-read <S owner-unlock — a cycle. Hence
// either the owner sees helped==true (and epoch-retires), or the helper
// sees the word moved on (and never touches the descriptor). Lock-word
// writes are all seq_cst RMWs, so a later-in-S read cannot observe an
// earlier value; the word's tag is monotonic while any stale referencer
// exists, so "moved on" is observable. This replaces the previous
// fence-based pairing: seq_cst loads cost nothing extra on x86, which
// deletes one full barrier from every uncontended acquisition (the
// retire-side fence) — the helper side pays the xchg, but helping is the
// cold path.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "config.hpp"
#include "descriptor.hpp"
#include "epoch.hpp"
#include "log.hpp"
#include "mutable.hpp"
#include "stats.hpp"

namespace flock {
namespace detail {

inline constexpr uint64_t kLockedBit = 1;

inline bool lv_locked(uint64_t val) { return (val & kLockedBit) != 0; }
inline descriptor* lv_descr(uint64_t val) {
  return reinterpret_cast<descriptor*>(val & ~kLockedBit);
}

/// Polite spin-wait hint. Must be cheap: this sits inside the TAS backoff
/// loop, so a full barrier here would serialize the very path that is
/// trying to back off.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Unknown ISA: a compiler-only barrier keeps the loop from being
  // collapsed without issuing any fence instruction.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

using lock_word = mutable_<uint64_t>;

/// Effects-once unlock: flip (d|locked) -> (d|unlocked) if still current.
/// Raw (no enclosing log slots); the tag makes repeats harmless.
template <bool Ccas>
inline void raw_unlock(thread_context* c, lock_word& st, descriptor* d) {
  // seq_cst read: if the CAS is skipped because someone else already
  // unlocked, this read is the owner's hand-off access (see header).
  uint64_t p = st.read_raw_packed_sc();
  uint64_t lockedv = reinterpret_cast<uint64_t>(d) | kLockedBit;
  if (val_of(p) == lockedv)
    st.cas_raw_packed_ctx<Ccas>(c, p, reinterpret_cast<uint64_t>(d));
}

/// Run the descriptor's thunk (idempotently), mark done, release the lock.
template <bool Ccas>
inline bool run_and_unlock(thread_context* c, lock_word& st, descriptor* d) {
  bool result = d->run(c);
  d->done.store(true, std::memory_order_release);
  raw_unlock<Ccas>(c, st, d);
  return result;
}

/// Help the descriptor currently installed on `st` (Alg. 3 lines 24/26).
/// `cur_packed` is the packed word under which the caller saw it locked.
/// Consumes no enclosing log slots.
template <bool Ccas>
inline void help(thread_context* c, lock_word& st, uint64_t cur_packed) {
  descriptor* d = lv_descr(val_of(cur_packed));
  c->stat_attempted++;
  d->helped.store(true, std::memory_order_seq_cst);  // hand-off (see header)
  // Adopt the descriptor's epoch before validating: if the validation
  // passes, the creator was still announced at d->epoch when we re-read,
  // so everything the thunk can reach is protected from then on by *our*
  // lowered announcement (see epoch.hpp).
  int64_t prev = g_epoch.adopt_ctx(c, d->epoch);
  if (st.read_raw_packed_sc() == cur_packed) {
    c->stat_ran++;
    run_and_unlock<Ccas>(c, st, d);
  }
  g_epoch.restore_ctx(c, prev);
}

/// Retire a descriptor that was successfully installed. The retire
/// decision goes through the log (one slot) so exactly one run of an
/// enclosing thunk performs it. Top-level, never-helped descriptors are
/// returned to the pool immediately (§6 optimization); everything else is
/// epoch-retired because stale runs (of the descriptor itself, or of an
/// enclosing thunk replaying this code) may still hold the pointer.
template <bool Ccas>
inline void retire_installed(thread_context* c, descriptor* d) {
  bool nested = c->log.block != nullptr;
  if (!commit64_first_ctx<Ccas>(c, 1).second) return;
  if (!nested && !d->helped.load(std::memory_order_seq_cst)) {
    c->stat_reused++;
    pool_delete_ctx(c, d);
  } else {
    epoch_retire_ctx(c, d);
  }
}

/// Retire a descriptor whose install CAS lost: it was never on the lock,
/// but nested replays can still reach it through the enclosing log.
template <bool Ccas>
inline void retire_unpublished(thread_context* c, descriptor* d) {
  bool nested = c->log.block != nullptr;
  if (!commit64_first_ctx<Ccas>(c, 1).second) return;
  if (!nested)
    pool_delete_ctx(c, d);
  else
    epoch_retire_ctx(c, d);
}

// --- lock-free (helping) mode ---------------------------------------------

template <bool Ccas, class F>
bool try_lock_helping(thread_context* c, lock_word& st, F&& f) {
  uint64_t cur = st.load_packed_ctx<Ccas>(c);  // logged
  if (!lv_locked(val_of(cur))) {
    descriptor* d =
        create_descriptor_ctx<Ccas>(c, std::forward<F>(f));  // logged alloc
    uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
    st.cas_raw_packed_ctx<Ccas>(c, cur, minev);  // install CAM: effects-once
    uint64_t nowv = val_of(st.load_packed_ctx<Ccas>(c));  // logged
    bool d_done =
        commit_bool_ctx<Ccas>(c, d->done.load(std::memory_order_acquire));
    if (d_done || nowv == minev) {
      // Acquired (possibly already helped to completion).
      bool result = run_and_unlock<Ccas>(c, st, d);
      retire_installed<Ccas>(c, d);
      return result;
    }
    if (lv_locked(nowv)) {
      // Help whoever holds the lock *now*; a fresh read keeps the helped
      // descriptor current, and help() revalidates before running.
      uint64_t fresh = st.read_raw_packed();
      if (lv_locked(val_of(fresh))) help<Ccas>(c, st, fresh);
    }
    retire_unpublished<Ccas>(c, d);
    return false;
  }
  help<Ccas>(c, st, cur);
  return false;
}

template <bool Ccas, class F>
bool strict_lock_helping(thread_context* c, lock_word& st, F&& f) {
  // §4: "by first creating the descriptor, and then putting the attempt to
  // acquire a lock into a while loop". All logged values are identical
  // across runs, so every run executes the same number of iterations.
  descriptor* d = create_descriptor_ctx<Ccas>(c, std::forward<F>(f));
  uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
  while (true) {
    uint64_t cur = st.load_packed_ctx<Ccas>(c);  // logged
    if (!lv_locked(val_of(cur))) {
      st.cas_raw_packed_ctx<Ccas>(c, cur, minev);
      uint64_t nowv = val_of(st.load_packed_ctx<Ccas>(c));  // logged
      bool d_done =
          commit_bool_ctx<Ccas>(c, d->done.load(std::memory_order_acquire));
      if (d_done || nowv == minev) {
        bool result = run_and_unlock<Ccas>(c, st, d);
        retire_installed<Ccas>(c, d);
        return result;
      }
      if (lv_locked(nowv)) {
        uint64_t fresh = st.read_raw_packed();
        if (lv_locked(val_of(fresh))) help<Ccas>(c, st, fresh);
      }
    } else {
      help<Ccas>(c, st, cur);
    }
  }
}

// --- blocking (test-and-test-and-set) mode ---------------------------------
//
// The blocking CASes skip the ccas pre-check (template argument false):
// the caller just read the word, so a second read before the CAS is pure
// overhead here.

template <class F>
bool try_lock_blocking(thread_context* c, lock_word& st, F&& f) {
  uint64_t p = st.read_raw_packed();
  if (lv_locked(val_of(p))) return false;
  if (!st.cas_raw_packed_ctx<false>(c, p, kLockedBit)) return false;
  bool result = f();
  st.store_raw(0);
  return result;
}

template <class F>
bool strict_lock_blocking(thread_context* c, lock_word& st, F&& f) {
  int backoff = 1;
  while (true) {
    uint64_t p = st.read_raw_packed();
    if (!lv_locked(val_of(p))) {
      if (st.cas_raw_packed_ctx<false>(c, p, kLockedBit)) break;
    } else {
      for (int i = 0; i < backoff; i++) cpu_pause();
      if (backoff < 1024)
        backoff <<= 1;
      else
        std::this_thread::yield();
    }
  }
  bool result = f();
  st.store_raw(0);
  return result;
}

}  // namespace detail

/// A Flock lock. One word; zero-initialized means unlocked.
class lock {
 public:
  lock() = default;
  lock(const lock&) = delete;
  lock& operator=(const lock&) = delete;

  /// Acquire-run-release if free; otherwise (lock-free mode) help the
  /// current holder and return false (Alg. 3 tryLock). The thunk must
  /// capture by value and is run idempotently in lock-free mode.
  /// Mode is resolved exactly once, here.
  template <class F>
  bool try_lock(F&& f) {
    detail::thread_context* c = detail::my_ctx();
    if (is_blocking())
      return detail::try_lock_blocking(c, state_, std::forward<F>(f));
    if (use_ccas())
      return detail::try_lock_helping<true>(c, state_, std::forward<F>(f));
    return detail::try_lock_helping<false>(c, state_, std::forward<F>(f));
  }

  /// Strict lock: loops (helping in lock-free mode) until acquired.
  template <class F>
  bool strict_lock(F&& f) {
    detail::thread_context* c = detail::my_ctx();
    if (is_blocking())
      return detail::strict_lock_blocking(c, state_, std::forward<F>(f));
    if (use_ccas())
      return detail::strict_lock_helping<true>(c, state_, std::forward<F>(f));
    return detail::strict_lock_helping<false>(c, state_, std::forward<F>(f));
  }

  /// Early release (§4): undefined unless the calling thread('s thunk)
  /// holds the lock. Enables hand-over-hand locking.
  void unlock() {
    detail::thread_context* c = detail::my_ctx();
    if (is_blocking()) {
      state_.store_raw(0);
      return;
    }
    if (use_ccas())
      unlock_helping<true>(c);
    else
      unlock_helping<false>(c);
  }

  bool is_locked() const {
    return detail::lv_locked(val_of(state_.read_raw_packed()));
  }

 private:
  template <bool Ccas>
  void unlock_helping(detail::thread_context* c) {
    uint64_t cur = state_.load_packed_ctx<Ccas>(c);  // logged
    if (detail::lv_locked(val_of(cur)))
      state_.cas_raw_packed_ctx<Ccas>(c, cur,
                                      val_of(cur) & ~detail::kLockedBit);
  }

  detail::lock_word state_;
};

/// Free-function spellings matching the paper's examples.
template <class F>
bool try_lock(lock& l, F&& f) {
  return l.try_lock(std::forward<F>(f));
}
template <class F>
bool strict_lock(lock& l, F&& f) {
  return l.strict_lock(std::forward<F>(f));
}
inline void unlock(lock& l) { l.unlock(); }

}  // namespace flock
