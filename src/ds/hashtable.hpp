// hashtable.hpp — separate-chaining hash table (paper §7 "a separate
// chaining hashtable") with incremental, non-blocking resizing built out
// of the same lock-free locks.
//
// Layout: an epoch-protected `table` (bucket array + mask) hangs behind a
// flock::mutable_ root pointer. Each bucket is a sorted chain of lock-free
// nodes guarded by ONE lock on the bucket head; at load factor ~1 chains
// hold a node or two, so bucket-grained locking costs no more than the
// old per-predecessor scheme and gives migration a single point at which
// a whole bucket can be frozen. Buckets carry only {chain, forwarded
// flag, lock} and nodes only {chain, deleted flag, k, v} — no dead lock
// word on every key.
//
// Resize protocol (forwarding marks in the spirit of Harris-style
// migration; one bucket per lock-free-lock critical section):
//  * Occupancy is tracked in sharded counters bumped by successful
//    updates. When the count reaches the bucket count, an updater
//    installs a 2x successor in `root->next`. Successors are only ever
//    installed on the root table, so at most one resize is in flight and
//    a successor's buckets cannot themselves forward while they are still
//    receiving migrated chains.
//  * Migration proceeds bucket-by-bucket. Migrating bucket i locks it
//    and, inside that single critical section: copies the frozen chain
//    into successor buckets i and i+n (the chain is sorted and the split
//    keys one hash bit, so relative order — and therefore sortedness —
//    is preserved), publishes each new chain with one store, retires the
//    originals, and only then marks the old bucket "forwarded" (its
//    write_once flag). Every step is idempotent, so helpers can replay
//    the thunk safely.
//  * Updaters re-validate the forwarded flag inside their own critical
//    section (same lock), so a forwarded bucket is frozen forever; any
//    operation that lands on one chases `table->next`. Updaters that
//    find a resize in progress migrate their own bucket first (old
//    tables only ever drain) plus a small batch claimed from a shared
//    cursor — and keep helping while merely chasing, so the straggler
//    tail cannot serialize back-to-back resizes.
//  * Readers never lock and never help: chains are copied, not spliced,
//    so a scan that raced a migration still sees the frozen pre-forward
//    chain, and the forwarded flag is published only after the successor
//    chains are in place (see find() for the ordering argument).
//  * When the last bucket forwards, the winning migrator swings the root
//    to the successor and retires the drained table through the epoch
//    machinery (array-typed retire for the bucket array). Completion is
//    also re-derivable from the forwarded flags themselves (see
//    help_resize), so no single stalled thread can wedge the resize.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "flock/flock.hpp"

namespace flock_ds {

inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <class K, class V, bool Strict>
class hashtable;

template <class K, class V, bool Strict>
bool try_move(hashtable<K, V, Strict>& from, hashtable<K, V, Strict>& to,
              std::type_identity_t<K> k);

template <class K, class V, bool Strict = false>
class hashtable {
  struct node;

  /// Fields shared by a bucket head and a chain node: the link that a
  /// predecessor-of-cur may be either, and the freeze flag (a node's
  /// "deleted", a bucket's "forwarded") that validation reads through the
  /// same pointer.
  struct chain_head {
    flock::mutable_<node*> next;
    flock::write_once<bool> removed;
  };

  struct node : chain_head {
    const K k;
    const V v;
    node(K key, V val, node* nxt) : k(key), v(val) {
      this->next.init(nxt);
      this->removed.init(false);
    }
  };

  struct bucket : chain_head {
    flock::lock lck;  // the bucket lock: every update to the chain and
                      // the bucket's one migration run under it
  };

  struct table {
    std::size_t mask = 0;                   // buckets - 1 (power of two)
    bucket* buckets = nullptr;              // array_new<bucket>(mask + 1)
    flock::mutable_<table*> next;           // successor during a resize
    std::atomic<std::size_t> migrated{0};   // forwarded-bucket count
    std::atomic<std::size_t> cursor{0};     // shared migration claim cursor
    std::atomic<bool> grow_hint{false};     // an allocator is building `next`

    std::size_t nbuckets() const { return mask + 1; }
  };

  struct alignas(flock::kCacheLine) counter_shard {
    std::atomic<long long> n{0};
  };

  static constexpr std::size_t kMinBuckets = 64;
  static constexpr int kCountShards = 32;  // power of two
  static constexpr int kMigrateBatch = 8;  // buckets helped per update

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

 public:
  /// `size_hint`: expected number of keys; the initial bucket count is the
  /// next power of two >= size_hint (load factor ~1). The table now grows
  /// on its own, so the hint is an optimization, not a capacity.
  explicit hashtable(std::size_t size_hint = kMinBuckets) {
    std::size_t b = kMinBuckets;
    while (b < size_hint) b <<= 1;
    root_.init(make_table(b));
  }

  ~hashtable() {
    // Quiescent teardown. Chains of forwarded buckets were already handed
    // to the epoch machinery by their migration; only live chains and the
    // tables themselves are freed here.
    table* t = root_.read_raw();
    while (t != nullptr) {
      table* nxt = t->next.read_raw();
      for (std::size_t i = 0; i <= t->mask; i++) {
        bucket* s = &t->buckets[i];
        if (s->removed.read_raw()) continue;
        node* c = s->next.read_raw();
        while (c != nullptr) {
          node* cn = c->next.read_raw();
          flock::pool_delete(c);
          c = cn;
        }
      }
      free_table(t);
      t = nxt;
    }
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      const table* t = root_.load();
      while (true) {
        const bucket* s = &t->buckets[index_in(t, k)];
        if (!s->removed.load()) {
          // Not forwarded when we looked. If a migration completes under
          // the scan the chain is left frozen (migration copies, never
          // splices), so whatever this scan observes is the bucket's
          // authoritative pre-forward state and both hit and miss
          // linearize within our interval; no re-check is needed. The
          // flag is published only after the successor chains, so a set
          // flag below always finds `next` installed.
          node* cur = s->next.load();
          while (cur != nullptr && cur->k < k) cur = cur->next.load();
          if (cur != nullptr && cur->k == k && !cur->removed.load())
            return cur->v;
          return std::nullopt;
        }
        t = t->next.read_raw();  // forwarded => successor exists
      }
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        bucket* s = locate_update(k);
        auto [prev, cur] = search_from(s, k);
        // "Already present" needs the same removed-flag test find() uses:
        // a key mid-remove (flag set, unlink not yet visible) is absent.
        // Falling through is fine — the critical section's prev->next
        // validation fails against the completed unlink and we retry.
        if (cur != nullptr && cur->k == k && !cur->removed.load())
          return false;
        if (acquire(s->lck, [=] {
              if (s->removed.load()) return false;  // forwarded meanwhile
              if (prev != s && prev->removed.load()) return false;
              if (prev->next.load() != cur) return false;
              node* n = flock::allocate<node>(k, v, cur);
              prev->next = n;
              return true;
            })) {
          note_update(+1);
          return true;
        }
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        bucket* s = locate_update(k);
        auto [prev, cur] = search_from(s, k);
        if (cur == nullptr || cur->k != k) return false;
        if (acquire(s->lck, [=] {
              if (s->removed.load()) return false;  // forwarded meanwhile
              if (prev != s && prev->removed.load()) return false;
              if (cur->removed.load()) return false;
              if (prev->next.load() != cur) return false;
              cur->removed = true;
              prev->next = cur->next.load();
              flock::retire<node>(cur);
              return true;
            })) {
          note_update(-1);
          return true;
        }
      }
    });
  }

  /// Quiescent audits (epoch-guarded so concurrent retirement cannot free
  /// a node mid-scan; counts are exact only at quiescence). -----------------

  std::size_t size() const {
    return flock::with_epoch([&] {
      std::size_t n = 0;
      for_each_live_bucket([&](const table*, std::size_t, const bucket* s) {
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw())
          n++;
      });
      return n;
    });
  }

  /// Sorted chains, no removed node reachable, and every key resident in
  /// the bucket its hash selects in that table (cross-bucket corruption).
  bool check_invariants() const {
    return flock::with_epoch([&] {
      bool ok = true;
      for_each_live_bucket([&](const table* t, std::size_t i,
                               const bucket* s) {
        const node* prev = nullptr;
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw()) {
          if (c->removed.read_raw()) ok = false;
          if (prev != nullptr && !(prev->k < c->k)) ok = false;
          if ((static_cast<std::size_t>(hash_of(c->k)) & t->mask) != i)
            ok = false;  // key lives in a bucket its hash does not select
          prev = c;
        }
      });
      return ok;
    });
  }

  /// Bucket count of the newest table (the capacity the structure is
  /// growing into during a resize).
  std::size_t bucket_count() const {
    return flock::with_epoch([&] { return newest_table()->nbuckets(); });
  }

  /// Number of keys that map to each bucket of the newest table (keys in
  /// not-yet-migrated buckets are attributed to where they will land).
  /// Test support for hash/occupancy-uniformity audits.
  std::vector<std::size_t> bucket_occupancy() const {
    return flock::with_epoch([&] {
      const table* last = newest_table();
      std::vector<std::size_t> occ(last->nbuckets(), 0);
      for_each_live_bucket([&](const table*, std::size_t, const bucket* s) {
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw())
          occ[static_cast<std::size_t>(hash_of(c->k)) & last->mask]++;
      });
      return occ;
    });
  }

  template <class F>
  void for_each(F&& f) const {
    flock::with_epoch([&] {
      for_each_live_bucket([&](const table*, std::size_t, const bucket* s) {
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw())
          f(c->k, c->v);
      });
    });
  }

 private:
  template <class K2, class V2, bool S2>
  friend bool try_move(hashtable<K2, V2, S2>&, hashtable<K2, V2, S2>&,
                       std::type_identity_t<K2>);

  static uint64_t hash_of(K k) {
    return splitmix64(static_cast<uint64_t>(k));
  }
  static std::size_t index_in(const table* t, K k) {
    return static_cast<std::size_t>(hash_of(k)) & t->mask;
  }

  /// First chain position with key >= k and its predecessor (the bucket
  /// head if none). The single point of truth for the walk that insert,
  /// remove, and try_move validate against in their critical sections.
  static std::pair<chain_head*, node*> search_from(bucket* s, K k) {
    chain_head* prev = s;
    node* cur = prev->next.load();
    while (cur != nullptr && cur->k < k) {
      prev = cur;
      cur = cur->next.load();
    }
    return {prev, cur};
  }

  static table* make_table(std::size_t nbuckets) {
    table* t = flock::pool_new<table>();
    t->mask = nbuckets - 1;
    t->buckets = flock::array_new<bucket>(nbuckets);
    t->next.init(nullptr);
    t->migrated.store(0, std::memory_order_relaxed);
    t->cursor.store(0, std::memory_order_relaxed);
    t->grow_hint.store(false, std::memory_order_relaxed);
    return t;
  }

  static void free_table(table* t) {
    flock::array_delete(t->buckets);
    flock::pool_delete(t);
  }

  static void retire_table(table* t) {
    flock::epoch_retire_array(t->buckets);
    flock::epoch_retire(t);
  }

  /// The bucket the update for key k must lock: chases forwarded buckets,
  /// draining a resize in progress along the way so the op lands in the
  /// newest table. Caller must be inside with_epoch.
  bucket* locate_update(K k) {
    table* t = root_.load();
    while (true) {
      std::size_t i = index_in(t, k);
      bucket* s = &t->buckets[i];
      if (s->removed.read_raw()) {  // forwarded => successor exists
        table* nxt = t->next.read_raw();
        // Help even when merely passing through: if only updaters whose
        // own bucket is still live helped, the drain rate would fall to
        // zero exactly when the last stragglers remain (coupon-collector
        // tail) and back-to-back resizes would serialize behind it.
        help_resize(t, nxt);
        t = nxt;
        continue;
      }
      table* nxt = t->next.read_raw();
      if (nxt == nullptr) return s;
      // Resize in progress: forward our own bucket first (so old tables
      // only ever drain), then help a small claimed batch, and re-check —
      // a failed lock attempt means the holder is either the migrator or
      // a completing updater, so just retry.
      migrate_bucket(t, nxt, i);
      help_resize(t, nxt);
    }
  }

  /// Migrate bucket i of t into its two successor buckets. Returns after
  /// the bucket is forwarded or the lock attempt failed.
  void migrate_bucket(table* t, table* nt, std::size_t i) {
    bucket* s = &t->buckets[i];
    if (s->removed.read_raw()) return;  // already forwarded
    bucket* lo = &nt->buckets[i];
    bucket* hi = &nt->buckets[i + t->nbuckets()];
    const uint64_t bit = t->nbuckets();  // hash bit the split keys on
    bool did = acquire(s->lck, [=] {
      if (s->removed.load()) return false;  // lost the race
      // The chain is frozen: every update to this bucket takes this same
      // lock. Logged loads keep replays of this thunk in lockstep, and
      // idempotent allocation/stores/retires make helper replays safe.
      // Copies are appended directly onto the successor buckets (the
      // forward walk preserves sorted order, no side buffers): nothing
      // can observe those chains until the forwarded flag below is set,
      // because successor bucket traffic only begins at that flag.
      chain_head* tail[2] = {lo, hi};
      for (node* c = s->next.load(); c != nullptr; c = c->next.load()) {
        chain_head*& tl = tail[(hash_of(c->k) & bit) ? 1 : 0];
        node* copy = flock::allocate<node>(c->k, c->v, nullptr);
        tl->next = copy;
        tl = copy;
        // Retire the original; epoch-protected readers may still be
        // scanning the frozen chain.
        flock::retire<node>(c);
      }
      s->removed = true;  // forwarded: published after the copies are live
      return true;
    });
    // Exactly one acquire() returns true per bucket (all later critical
    // sections fail the forwarded check), so the count is exact.
    if (did && t->migrated.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                   t->nbuckets())
      advance_root();
  }

  /// Claim and migrate a small batch of buckets (the cursor wraps, so
  /// stragglers whose first lock attempt failed are retried by later
  /// helpers and a resize finishes under any traffic).
  void help_resize(table* t, table* nt) {
    const std::size_t n = t->nbuckets();
    for (int j = 0; j < kMigrateBatch; j++) {
      if (t->migrated.load(std::memory_order_acquire) >= n) {
        advance_root();  // idempotent; rescues a swing whose winner stalled
        return;
      }
      std::size_t claimed = t->cursor.fetch_add(1, std::memory_order_relaxed);
      migrate_bucket(t, nt, claimed & (n - 1));
      // Completion recovery: the fast-path `migrated` count is bumped by
      // each bucket's winning migrator outside its critical section, so a
      // winner stalled (or lost) between forwarding and counting would
      // leave it short. Once per cursor wrap — every bucket has been
      // attempted at least once — re-derive completion from the monotone
      // forwarded flags themselves, so ANY thread can finish the resize.
      if (claimed >= n && (claimed & (n - 1)) == 0) {
        std::size_t fwd = 0;
        for (std::size_t i = 0; i < n; i++)
          if (t->buckets[i].removed.read_raw()) fwd++;
        if (fwd == n) {
          t->migrated.store(n, std::memory_order_release);
          advance_root();
        }
      }
    }
  }

  /// Swing the root past fully-drained tables; the winning CAS retires
  /// the old table (bucket array and all) through the epoch machinery.
  void advance_root() {
    while (true) {
      uint64_t p = root_.read_raw_packed();
      table* r = flock::from_bits48<table*>(flock::val_of(p));
      if (r->next.read_raw() == nullptr ||
          r->migrated.load(std::memory_order_acquire) < r->nbuckets())
        return;
      if (root_.cas_raw_packed(p, r->next.read_raw())) retire_table(r);
    }
  }

  /// Tail of the table chain: the capacity being grown into. Caller must
  /// be inside with_epoch.
  const table* newest_table() const {
    const table* t = root_.read_raw();
    for (const table* nxt = t->next.read_raw(); nxt != nullptr;
         nxt = t->next.read_raw())
      t = nxt;
    return t;
  }

  /// Visit every not-yet-forwarded bucket across the table chain (each
  /// resident key is reachable through exactly one such bucket). Caller
  /// must be inside with_epoch.
  template <class F>
  void for_each_live_bucket(F&& f) const {
    for (const table* t = root_.read_raw(); t != nullptr;
         t = t->next.read_raw()) {
      for (std::size_t i = 0; i <= t->mask; i++) {
        const bucket* s = &t->buckets[i];
        if (!s->removed.read_raw()) f(t, i, s);
      }
    }
  }

  /// Occupancy accounting: sharded counters bumped by successful updates
  /// (outside the critical section — exactly one lock acquisition returns
  /// true per applied update). Inserts periodically sum the shards and
  /// trigger a grow. Must be called inside with_epoch (the trigger reads
  /// epoch-protected tables).
  void note_update(int delta) {
    auto& shard = count_[flock::thread_id() & (kCountShards - 1)].n;
    long long v = shard.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0 && (v & 15) == 0) maybe_grow();
  }

  long long approx_count() const {
    long long s = 0;
    for (const counter_shard& sh : count_)
      s += sh.n.load(std::memory_order_relaxed);
    return s;
  }

  void maybe_grow() {
    table* t = root_.read_raw();
    if (t->next.read_raw() != nullptr) return;  // resize already in flight
    if (approx_count() < static_cast<long long>(t->nbuckets())) return;
    // Duplicate-allocation damping: building a large successor takes long
    // enough that concurrent triggers would each construct (and all but
    // one discard) a full 2x bucket array. The first trigger sets the
    // hint; later ones wait a bounded spin for the install instead of
    // allocating. The wait is bounded, so a stalled allocator cannot
    // wedge growth — after it, the duplicate-and-discard race below is
    // still the lock-free fallback, just no longer the common case.
    if (t->grow_hint.exchange(true, std::memory_order_acq_rel)) {
      for (int i = 0; i < 4096 && t->next.read_raw() == nullptr; i++)
        flock::detail::cpu_pause();
      if (t->next.read_raw() != nullptr) return;
    }
    table* nt = make_table(t->nbuckets() * 2);
    uint64_t p = t->next.read_raw_packed();
    if (flock::val_of(p) != 0 || !t->next.cas_raw_packed(p, nt))
      free_table(nt);  // lost the install race; never published
  }

  flock::mutable_<table*> root_;
  counter_shard count_[kCountShards];
};

/// Atomically move key `k` (and its value) between two hashtables, the
/// paper's cross-structure motivation applied to the resizable table: both
/// splices happen inside one validated nest of bucket critical sections
/// (ordered by bucket address, an acyclic order), so no other *updater*
/// can interleave between them — and because the critical sections
/// re-validate the forwarded flags, the move composes with an in-flight
/// resize on either side. Returns false — changing nothing — if k is
/// absent in `from`, already present in `to`, or any lock/validation
/// fails transiently (callers retry, e.g. via move_retry in ds/move.hpp).
template <class K, class V, bool Strict>
bool try_move(hashtable<K, V, Strict>& from, hashtable<K, V, Strict>& to,
              std::type_identity_t<K> k) {
  using ht = hashtable<K, V, Strict>;
  using node = typename ht::node;
  if (&from == &to) return false;
  return flock::with_epoch([&] {
    auto* fs = from.locate_update(k);
    auto [fprev, fcur] = ht::search_from(fs, k);
    if (fcur == nullptr || fcur->k != k) return false;  // not in source
    auto* ts = to.locate_update(k);
    auto [tprev, tcur] = ht::search_from(ts, k);
    // Mid-remove keys (flag set, unlink pending) count as absent, like
    // find(); the critical section's validation forces a retry for them.
    if (tcur != nullptr && tcur->k == k && !tcur->removed.load())
      return false;  // already in dest
    auto splice = [=] {
      if (fs->removed.load() || ts->removed.load()) return false;
      if (fprev != fs && fprev->removed.load()) return false;
      if (fcur->removed.load()) return false;
      if (fprev->next.load() != fcur) return false;
      if (tprev != ts && tprev->removed.load()) return false;
      if (tprev->next.load() != tcur) return false;
      node* moved = flock::allocate<node>(fcur->k, fcur->v, tcur);
      tprev->next = moved;
      fcur->removed = true;
      fprev->next = fcur->next.load();
      flock::retire<node>(fcur);
      return true;
    };
    bool ok;
    if (reinterpret_cast<uintptr_t>(fs) < reinterpret_cast<uintptr_t>(ts))
      ok = ht::acquire(fs->lck, [=] { return ht::acquire(ts->lck, splice); });
    else
      ok = ht::acquire(ts->lck, [=] { return ht::acquire(fs->lck, splice); });
    if (ok) {
      from.note_update(-1);
      to.note_update(+1);
    }
    return ok;
  });
}

}  // namespace flock_ds
