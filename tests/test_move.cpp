// Cross-structure atomic move (ds/move.hpp): the key must never be
// observable in both lists or in neither, totals are conserved, and the
// operation composes with ordinary inserts/removes — in both lock modes.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "ds/move.hpp"

namespace {

using list_t = flock_ds::lazylist<uint64_t, uint64_t, false>;

class MoveTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(MoveTest, BasicSemantics) {
  list_t a, b;
  a.insert(1, 10);
  a.insert(2, 20);
  EXPECT_TRUE(flock_ds::move_retry(a, b, 1));
  EXPECT_FALSE(a.find(1).has_value());
  EXPECT_EQ(*b.find(1), 10u);  // value travels with the key
  EXPECT_FALSE(flock_ds::move_retry(a, b, 1));  // no longer in source
  EXPECT_FALSE(flock_ds::move_retry(a, b, 99)); // never existed
  b.insert(2, 99);
  EXPECT_FALSE(flock_ds::move_retry(a, b, 2));  // already in dest
  EXPECT_EQ(*a.find(2), 20u);                   // source untouched
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
}

TEST_P(MoveTest, RetryExKeepsExhaustionDistinctFromNotMovable) {
  list_t a, b;
  a.insert(1, 10);
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, 1), flock_ds::move_outcome::moved);
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, 1),
            flock_ds::move_outcome::not_movable);  // gone from source
  a.insert(2, 20);
  b.insert(2, 22);
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, 2),
            flock_ds::move_outcome::not_movable);  // already in dest
  // A spent attempt budget is a different fact: nothing was validated,
  // the caller must treat the key as still pending.
  EXPECT_EQ(flock_ds::move_retry_ex(a, b, 2, 0),
            flock_ds::move_outcome::exhausted);
  // The bool wrapper keeps its old contract (true iff moved).
  EXPECT_FALSE(flock_ds::move_retry(a, b, 2));
  EXPECT_EQ(*a.find(2), 20u);
  EXPECT_EQ(*b.find(2), 22u);
}

TEST_P(MoveTest, SelfMoveRejected) {
  list_t a;
  a.insert(5, 50);
  EXPECT_FALSE(flock_ds::try_move(a, a, 5));
  EXPECT_EQ(*a.find(5), 50u);
}

TEST_P(MoveTest, ConservationUnderConcurrentMoves) {
  // Threads shuttle a fixed population of keys back and forth between
  // two lists. At every moment each key is in exactly one list; at the
  // end the union is exactly the original population.
  constexpr uint64_t kKeys = 32;
  list_t a, b;
  for (uint64_t k = 1; k <= kKeys; k++) ASSERT_TRUE(a.insert(k, k * 7));

  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(t * 13 + 5);
      for (int i = 0; i < 4000; i++) {
        uint64_t k = rng() % kKeys + 1;
        if (rng() & 1)
          flock_ds::try_move(a, b, k);
        else
          flock_ds::try_move(b, a, k);
      }
    });
  }
  for (auto& t : ts) t.join();

  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
  EXPECT_EQ(a.size() + b.size(), kKeys);
  for (uint64_t k = 1; k <= kKeys; k++) {
    bool in_a = a.find(k).has_value();
    bool in_b = b.find(k).has_value();
    EXPECT_TRUE(in_a != in_b) << "key " << k;
    EXPECT_EQ(in_a ? *a.find(k) : *b.find(k), k * 7) << "key " << k;
  }
}

TEST_P(MoveTest, PingPongIntegrity) {
  // One key ping-pongs between lists under heavy reader traffic. Lock-free
  // readers may observe the in-flight instant of a move (the move is
  // atomic with respect to other *updaters*, which is the paper's claim),
  // but any sighting must carry the right value, updaters must conserve
  // the key, and quiescently it lives in exactly one list.
  list_t a, b;
  a.insert(7, 77);
  std::atomic<bool> stop{false};

  std::vector<std::thread> ts;
  for (int r = 0; r < 4; r++) {
    ts.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto va = a.find(7);
        auto vb = b.find(7);
        if (va.has_value()) {
          ASSERT_EQ(*va, 77u);
        }
        if (vb.has_value()) {
          ASSERT_EQ(*vb, 77u);
        }
      }
    });
  }
  for (int m = 0; m < 2; m++) {
    ts.emplace_back([&, m] {
      for (int i = 0; i < 20000; i++) {
        if (m == 0)
          flock_ds::try_move(a, b, 7);
        else
          flock_ds::try_move(b, a, 7);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : ts) t.join();
  EXPECT_EQ(a.size() + b.size(), 1u);
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
}

TEST_P(MoveTest, ComposesWithInsertRemove) {
  list_t a, b;
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  // Producers insert into a, movers shuttle a->b, consumers remove from b.
  std::atomic<long long> produced{0}, consumed{0};
  ts.emplace_back([&] {
    for (uint64_t k = 1; k <= 5000; k++)
      if (a.insert(k, k)) produced.fetch_add(1);
  });
  for (int m = 0; m < 3; m++) {
    ts.emplace_back([&, m] {
      std::mt19937_64 rng(m);
      while (!stop.load(std::memory_order_relaxed)) {
        flock_ds::try_move(a, b, rng() % 5000 + 1);
      }
    });
  }
  ts.emplace_back([&] {
    std::mt19937_64 rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      if (b.remove(rng() % 5000 + 1)) consumed.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : ts) t.join();
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
  EXPECT_EQ(a.size() + b.size() + static_cast<std::size_t>(consumed.load()),
            static_cast<std::size_t>(produced.load()));
}

INSTANTIATE_TEST_SUITE_P(Modes, MoveTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
