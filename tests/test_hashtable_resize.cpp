// Incremental hashtable resizing under concurrency: growth stress with
// invariant audits, forwarded-bucket reads racing the migration, and
// cross-table try_move while one side is mid-resize — in both lock modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "ds/move.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

using ht_try = flock_ds::hashtable<uint64_t, uint64_t, false>;
using ht_strict = flock_ds::hashtable<uint64_t, uint64_t, true>;

class HashtableResizeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(HashtableResizeTest, SingleThreadGrowKeepsEverything) {
  ht_try t(64);
  const uint64_t n = 20000;
  for (uint64_t k = 1; k <= n; k++) ASSERT_TRUE(t.insert(k, k * 3));
  EXPECT_GT(t.bucket_count(), 64u);
  EXPECT_EQ(t.size(), n);
  EXPECT_TRUE(t.check_invariants());
  for (uint64_t k = 1; k <= n; k++) {
    auto v = t.find(k);
    ASSERT_TRUE(v.has_value()) << "lost key " << k << " during growth";
    ASSERT_EQ(*v, k * 3);
  }
  // Shrink-less but removable: deleting half must survive the multi-table
  // layout (some keys still live in not-yet-forwarded buckets).
  for (uint64_t k = 1; k <= n; k += 2) ASSERT_TRUE(t.remove(k));
  EXPECT_EQ(t.size(), n / 2);
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(HashtableResizeTest, ConcurrentGrowthStress) {
  // range >> size_hint: a growth-phase workload from the 64-bucket floor.
  ht_try t(64);
  const uint64_t range = 1 << 18;
  auto res = flock_workload::run_growth(t, range, 8);
  EXPECT_EQ(res.successful_updates, range);
  EXPECT_EQ(t.size(), range);
  EXPECT_GE(t.bucket_count(), range / 2) << "table failed to keep growing";
  EXPECT_TRUE(t.check_invariants());
  // Sampled membership sweep (the full sweep lives in the single-thread
  // test; here the interesting part was the contention).
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; i++) {
    uint64_t k = rng() % range + 1;
    auto v = t.find(k);
    ASSERT_TRUE(v.has_value()) << "lost key " << k;
    ASSERT_EQ(*v, k);
  }
}

TEST_P(HashtableResizeTest, StrictLockVariantGrows) {
  ht_strict t(64);
  auto res = flock_workload::run_growth(t, 1 << 15, 8);
  EXPECT_EQ(res.successful_updates, static_cast<uint64_t>(1 << 15));
  EXPECT_EQ(t.size(), static_cast<std::size_t>(1 << 15));
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(HashtableResizeTest, ForwardedReadsRaceMigration) {
  // Writers publish a per-writer watermark after each insert; readers
  // continuously pick keys at or below a watermark and must always find
  // them — including while the bucket holding them is being forwarded.
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 40000;
  ht_try t(64);
  std::atomic<uint64_t> watermark[kWriters];
  for (auto& w : watermark) w.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> ts;
  for (int w = 0; w < kWriters; w++) {
    ts.emplace_back([&, w] {
      // Writer w owns keys w+1, w+1+kWriters, ... (1-based, disjoint).
      for (uint64_t i = 0; i < kPerWriter; i++) {
        uint64_t k = 1 + static_cast<uint64_t>(w) + i * kWriters;
        ASSERT_TRUE(t.insert(k, k * 7));
        watermark[w].store(i + 1, std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < 4; r++) {
    ts.emplace_back([&, r] {
      std::mt19937_64 rng(static_cast<uint64_t>(r) * 77 + 3);
      while (!done.load(std::memory_order_relaxed)) {
        int w = static_cast<int>(rng() % kWriters);
        uint64_t n = watermark[w].load(std::memory_order_acquire);
        if (n == 0) continue;
        uint64_t i = rng() % n;
        uint64_t k = 1 + static_cast<uint64_t>(w) + i * kWriters;
        auto v = t.find(k);
        ASSERT_TRUE(v.has_value()) << "published key " << k << " unreadable";
        ASSERT_EQ(*v, k * 7);
      }
    });
  }
  for (int w = 0; w < kWriters; w++) ts[static_cast<size_t>(w)].join();
  done.store(true);
  for (size_t i = kWriters; i < ts.size(); i++) ts[i].join();

  EXPECT_EQ(t.size(), kWriters * kPerWriter);
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(HashtableResizeTest, MoveAcrossTablesMidResize) {
  // A fixed population shuttles between two hashtables while grower
  // threads pump disjoint keys into both sides to keep resizes in flight;
  // every shuttled key must stay in exactly one table with its value.
  constexpr uint64_t kKeys = 128;
  ht_try a(64), b(64);
  for (uint64_t k = 1; k <= kKeys; k++) ASSERT_TRUE(a.insert(k, k * 7));

  constexpr uint64_t kGrow = 60000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int m = 0; m < 4; m++) {
    ts.emplace_back([&, m] {
      std::mt19937_64 rng(static_cast<uint64_t>(m) * 13 + 5);
      for (int i = 0; i < 20000; i++) {
        uint64_t k = rng() % kKeys + 1;
        if (rng() & 1)
          flock_ds::try_move(a, b, k);
        else
          flock_ds::try_move(b, a, k);
      }
    });
  }
  // Growers force both tables through several doublings mid-shuttle.
  ts.emplace_back([&] {
    for (uint64_t k = 1; k <= kGrow; k++) a.insert(1000000 + k, k);
  });
  ts.emplace_back([&] {
    for (uint64_t k = 1; k <= kGrow; k++) b.insert(2000000 + k, k);
  });
  for (int r = 0; r < 2; r++) {
    ts.emplace_back([&, r] {
      std::mt19937_64 rng(static_cast<uint64_t>(r) + 99);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t k = rng() % kKeys + 1;
        auto va = a.find(k);
        auto vb = b.find(k);
        if (va.has_value()) {
          ASSERT_EQ(*va, k * 7);
        }
        if (vb.has_value()) {
          ASSERT_EQ(*vb, k * 7);
        }
      }
    });
  }
  for (size_t i = 0; i < 6; i++) ts[i].join();
  stop.store(true);
  for (size_t i = 6; i < ts.size(); i++) ts[i].join();

  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
  EXPECT_GT(a.bucket_count(), 64u);
  EXPECT_GT(b.bucket_count(), 64u);
  std::size_t shuttled_in_a = 0, shuttled_in_b = 0;
  for (uint64_t k = 1; k <= kKeys; k++) {
    bool in_a = a.find(k).has_value();
    bool in_b = b.find(k).has_value();
    ASSERT_TRUE(in_a != in_b) << "key " << k << " lost or duplicated";
    ASSERT_EQ(in_a ? *a.find(k) : *b.find(k), k * 7) << "key " << k;
    (in_a ? shuttled_in_a : shuttled_in_b)++;
  }
  EXPECT_EQ(a.size(), shuttled_in_a + kGrow);
  EXPECT_EQ(b.size(), shuttled_in_b + kGrow);
}

TEST_P(HashtableResizeTest, MoveBasicSemantics) {
  ht_try a(64), b(64);
  a.insert(1, 10);
  a.insert(2, 20);
  EXPECT_TRUE(flock_ds::move_retry(a, b, uint64_t{1}));
  EXPECT_FALSE(a.find(1).has_value());
  EXPECT_EQ(*b.find(1), 10u);                            // value travels
  EXPECT_FALSE(flock_ds::move_retry(a, b, uint64_t{1})); // no longer in src
  EXPECT_FALSE(flock_ds::move_retry(a, b, uint64_t{9})); // never existed
  b.insert(2, 99);
  EXPECT_FALSE(flock_ds::move_retry(a, b, uint64_t{2})); // already in dest
  EXPECT_EQ(*a.find(2), 20u);                            // source untouched
  EXPECT_FALSE(flock_ds::try_move(a, a, uint64_t{2}));   // self-move rejected
  EXPECT_TRUE(a.check_invariants());
  EXPECT_TRUE(b.check_invariants());
}

TEST_P(HashtableResizeTest, EpochArrayRetireBalances) {
  // The resize path retires whole bucket arrays through the epoch
  // machinery; after enough growth plus a flush, no array may leak.
  long long before = flock::arrays_outstanding();
  {
    ht_try t(64);
    auto res = flock_workload::run_growth(t, 1 << 14, 4);
    EXPECT_EQ(res.successful_updates, static_cast<uint64_t>(1 << 14));
    EXPECT_GT(flock::arrays_outstanding(), before);
  }
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(flock::arrays_outstanding(), before);
}

INSTANTIATE_TEST_SUITE_P(Modes, HashtableResizeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
