// regions.hpp — classifies critical-section (CS) lambda regions.
//
// A CS region is the body of a lambda passed (possibly not as the first
// argument) to one of the lock entry points: flock::try_lock,
// flock::strict_lock, with_lock, or the data structures' local acquire /
// acquire_lock wrappers around them. Code inside such a lambda is a thunk
// in the paper's sense — it may be replayed by helpers, so it must obey
// the idempotence discipline rules R1/R2 check.
//
// The classifier is lexical and intra-procedural: a helper function CALLED
// from a CS lambda is not classified (its body is not in the region). That
// is a documented limitation — the repo convention is that such helpers
// either live next to the CS and state their discipline (e.g.
// hashtable.hpp append_copy) or are part of the sanctioned flock API.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace flock_lint {

struct region {
  std::size_t begin_tok;  // first token INSIDE the lambda body
  std::size_t end_tok;    // one past the last token inside the body
  int begin_line;
  int end_line;
  std::string entry;  // the entry-point identifier that owns the lambda
};

inline const std::set<std::string>& default_entry_points() {
  static const std::set<std::string> s = {"try_lock", "strict_lock",
                                          "with_lock", "acquire",
                                          "acquire_lock"};
  return s;
}

namespace detail {

/// With t[i] == "[" of a candidate lambda-introducer, find the body and
/// append a region. Returns one past the body's closing "}" (or i+1 if the
/// shape is not a lambda).
inline std::size_t capture_lambda(const std::vector<token>& t, std::size_t i,
                                  const std::string& entry,
                                  std::vector<region>& out) {
  // Skip the capture list [...] (may nest brackets, e.g. [x = a[0]]).
  std::size_t j = i + 1;
  int depth = 1;
  while (j < t.size() && depth > 0) {
    if (t[j].kind == tok_kind::punct) {
      if (t[j].text == "[") depth++;
      if (t[j].text == "]") depth--;
    }
    j++;
  }
  j = next_code(t, j);
  // Optional parameter list.
  if (j < t.size() && t[j].kind == tok_kind::punct && t[j].text == "(") {
    int pd = 1;
    j++;
    while (j < t.size() && pd > 0) {
      if (t[j].kind == tok_kind::punct) {
        if (t[j].text == "(") pd++;
        if (t[j].text == ")") pd--;
      }
      j++;
    }
    j = next_code(t, j);
  }
  // Optional specifiers / trailing return type up to the body brace.
  while (j < t.size() && !(t[j].kind == tok_kind::punct && t[j].text == "{")) {
    // Only identifiers (mutable, noexcept, type names) and -> :: < > ( )
    // appear here; hitting ; , or ] means this was not a lambda after all.
    if (t[j].kind == tok_kind::punct &&
        (t[j].text == ";" || t[j].text == "," || t[j].text == "]"))
      return i + 1;
    j++;
  }
  if (j >= t.size()) return i + 1;
  std::size_t body_open = j;
  int bd = 1;
  j++;
  std::size_t body_begin = j;
  while (j < t.size() && bd > 0) {
    if (t[j].kind == tok_kind::punct) {
      if (t[j].text == "{") bd++;
      if (t[j].text == "}") bd--;
    }
    j++;
  }
  std::size_t body_end = (j > 0) ? j - 1 : 0;  // the closing "}"
  out.push_back({body_begin, body_end, t[body_open].line,
                 body_end < t.size() ? t[body_end].line : t.back().line,
                 entry});
  return j;
}

}  // namespace detail

/// Find all CS-lambda body regions in a token stream. Nested CS lambdas
/// (hand-over-hand locking) each produce their own region; the nesting
/// overlap is harmless because rules deduplicate findings per token.
inline std::vector<region> cs_regions(
    const std::vector<token>& t,
    const std::set<std::string>& entries = default_entry_points()) {
  std::vector<region> out;
  for (std::size_t i = 0; i < t.size(); i++) {
    if (t[i].kind != tok_kind::ident || entries.count(t[i].text) == 0)
      continue;
    // Require a call: next code token is "(". Rules out declarations of
    // the entry-point functions themselves ("bool try_lock(F&& f)") only
    // when followed by a type — cheap disambiguation: a call argument
    // list that contains a lambda is what we capture; a declaration
    // contains no lambda, so capturing nothing is the right outcome
    // either way.
    std::size_t call = next_code(t, i + 1);
    if (call >= t.size() || t[call].kind != tok_kind::punct ||
        t[call].text != "(")
      continue;
    // Walk the balanced argument list; any lambda-introducer "[" directly
    // following "(" or "," (i.e. starting an argument) is a CS thunk.
    int depth = 1;
    std::size_t j = call + 1;
    while (j < t.size() && depth > 0) {
      if (t[j].kind == tok_kind::punct) {
        if (t[j].text == "(") depth++;
        if (t[j].text == ")") depth--;
        if (t[j].text == "[" && depth >= 1) {
          std::size_t prev = prev_code(t, j);
          if (prev != std::string::npos && t[prev].kind == tok_kind::punct &&
              (t[prev].text == "(" || t[prev].text == ",")) {
            j = detail::capture_lambda(t, j, t[i].text, out);
            continue;
          }
        }
      }
      j++;
    }
  }
  return out;
}

/// True if token index k falls inside any region.
inline bool in_region(const std::vector<region>& rs, std::size_t k) {
  for (const region& r : rs)
    if (k >= r.begin_tok && k < r.end_tok) return true;
  return false;
}

}  // namespace flock_lint
