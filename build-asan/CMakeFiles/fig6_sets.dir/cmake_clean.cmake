file(REMOVE_RECURSE
  "CMakeFiles/fig6_sets.dir/bench/fig6_sets.cpp.o"
  "CMakeFiles/fig6_sets.dir/bench/fig6_sets.cpp.o.d"
  "fig6_sets"
  "fig6_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
