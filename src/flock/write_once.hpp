// write_once.hpp — update-once locations (paper §6 "Constants and
// Update-once Locations").
//
// A write_once<T> has an initial value and is updated at most once. Reads
// may happen before or after the update, so loads must still be logged
// (different runs of a thunk must agree on which side of the update they
// saw). But the store can be a plain write: all runs of the storing thunk
// compute the same value (they are synchronized), and repeated writes of
// one value to a location nothing else writes are idempotent. Update-once
// locations are ABA-free by construction, so no tag is needed.
#pragma once

#include <atomic>
#include <cstdint>

#include "chaos/faultpoint.hpp"
#include "log.hpp"
#include "tagged.hpp"

namespace flock {

template <class T>
class write_once {
 public:
  write_once() : word_(0) {}
  explicit write_once(T v) : word_(to_bits48(v)) {}
  write_once(const write_once&) = delete;
  write_once& operator=(const write_once&) = delete;

  // mo: relaxed — pre-publication init; the object becomes shared only
  // through a subsequent release operation (pool allocate / CS publish).
  void init(T v) { word_.store(to_bits48(v), std::memory_order_relaxed); }

  /// Idempotent (logged) load. One context fetch; the commit core is
  /// specialized on the ccas flag resolved here.
  T load() const {
    detail::thread_context* c = detail::my_ctx();
    // mo: acquire — pairs with store()'s release so a reader that sees
    // the updated value also sees everything published before it (e.g.
    // the bucket copies a forwarded flag covers).
    uint64_t b = word_.load(std::memory_order_acquire);
    if (c->log.block != nullptr) {
      b = use_ccas() ? detail::commit64_ctx<true>(c, b)
                     : detail::commit64_ctx<false>(c, b);
    }
    return from_bits48<T>(b);
  }

  /// The single allowed update; a plain release write (§6). The moment
  /// before publication is a protocol window (e.g. a forwarded flag not
  /// yet visible while its bucket's copies already are), so the schedule
  /// explorer gets a yield point here; erased without FLOCK_CHAOS.
  void store(T v) {
    FLOCK_SCHEDPOINT("wo.publish");
    // mo: release — the §6 publication write: everything the storing
    // thunk wrote before this flag must be visible to any acquire reader
    // that observes the new value.
    word_.store(to_bits48(v), std::memory_order_release);
  }

  write_once& operator=(T v) {
    store(v);
    return *this;
  }

  T read_raw() const {
    // mo: acquire — same pairing as load(): raw readers (epoch-guarded
    // scans, forwarded-flag chases) must see the writes the flag covers.
    return from_bits48<T>(word_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<uint64_t> word_;
};

}  // namespace flock
