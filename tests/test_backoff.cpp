// Contended-path backoff and help throttling (flock/backoff.hpp,
// lock.hpp help_throttled, config.hpp tunables): progress is never
// forfeited — a throttled waiter still helps a stalled owner after a
// bounded delay — and the env-overridable knobs parse and clamp sanely.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "flock/flock.hpp"
#include "helping_test_util.hpp"

namespace {

// RAII restore of the process-wide tunables a test mutates.
struct tunables_guard {
  flock::backoff_tunables saved = flock::backoff_cfg();
  ~tunables_guard() { flock::set_backoff(saved); }
};

// --- knob parsing and clamping ---------------------------------------------

TEST(Backoff, TunablesParseFromStrings) {
  auto t = flock::backoff_tunables_from("64", "512", "3");
  EXPECT_EQ(t.min_spins, 64u);
  EXPECT_EQ(t.max_spins, 512u);
  EXPECT_EQ(t.help_delay, 3u);
}

TEST(Backoff, TunablesNullKeepsDefaults) {
  flock::backoff_tunables d;
  auto t = flock::backoff_tunables_from(nullptr, nullptr, nullptr);
  EXPECT_EQ(t.min_spins, d.min_spins);
  EXPECT_EQ(t.max_spins, d.max_spins);
  EXPECT_EQ(t.help_delay, d.help_delay);
}

TEST(Backoff, TunablesClampHostileValues) {
  // Garbage parses as 0; a zero round length would never pause.
  auto t = flock::backoff_tunables_from("garbage", "also-garbage", "junk");
  EXPECT_EQ(t.min_spins, 1u);
  EXPECT_GE(t.max_spins, t.min_spins);
  EXPECT_EQ(t.help_delay, 0u);  // junk delay -> 0 -> helping unthrottled

  // Oversized values are capped so a single round stays bounded.
  t = flock::backoff_tunables_from("999999999", "999999999", "999999999");
  EXPECT_EQ(t.min_spins, 1u << 16);
  EXPECT_EQ(t.max_spins, 1u << 20);
  EXPECT_EQ(t.help_delay, 256u);

  // max below min is raised to min, not left inverted.
  t = flock::backoff_tunables_from("128", "2", nullptr);
  EXPECT_EQ(t.min_spins, 128u);
  EXPECT_EQ(t.max_spins, 128u);
}

TEST(Backoff, TunablesReadEnvironment) {
  // Exercises the exact production wiring (backoff_tunables_from_env is
  // what initializes the live tunables), so a typo in any of the three
  // getenv names would fail here instead of silently disabling the knob.
  // The live backoff_cfg() snapshot itself was taken at first use and is
  // deliberately not re-read.
  ::setenv("FLOCK_BACKOFF_MIN", "7", 1);
  ::setenv("FLOCK_BACKOFF_MAX", "70", 1);
  ::setenv("FLOCK_HELP_DELAY", "7000", 1);
  auto t = flock::backoff_tunables_from_env();
  ::unsetenv("FLOCK_BACKOFF_MIN");
  ::unsetenv("FLOCK_BACKOFF_MAX");
  ::unsetenv("FLOCK_HELP_DELAY");
  EXPECT_EQ(t.min_spins, 7u);
  EXPECT_EQ(t.max_spins, 70u);
  EXPECT_EQ(t.help_delay, 256u);  // clamped
}

TEST(Backoff, SetBackoffClamps) {
  tunables_guard g;
  flock::set_backoff({0, 0, 99999});
  EXPECT_EQ(flock::backoff_cfg().min_spins, 1u);
  EXPECT_GE(flock::backoff_cfg().max_spins, 1u);
  EXPECT_EQ(flock::backoff_cfg().help_delay, 256u);
}

// --- progress under throttling ---------------------------------------------

// A stalled owner (stuck mid-thunk until released) must still be helped
// by a throttled waiter: the backoff budget is bounded, so the waiter
// converts to a helper and completes the critical section. Covers both
// ccas modes and both probe shapes (try_lock and strict_lock).
TEST(Backoff, ThrottledWaiterStillHelpsStalledOwner) {
  flock::set_blocking(false);
  tunables_guard g;
  // A generous budget: the throttle must delay, not defeat, helping.
  flock::set_backoff({16, 256, 32});
  for (bool ccas : {true, false}) {
    flock::set_ccas(ccas);
    for (auto kind : {helping_test::probe_kind::try_probe,
                      helping_test::probe_kind::strict_probe}) {
      auto before = flock::stats();
      uint64_t applied = helping_test::force_one_help(kind);
      auto after = flock::stats();
      EXPECT_EQ(applied, 1u) << "ccas=" << ccas;
      EXPECT_GT(after.helps_run - before.helps_run, 0u) << "ccas=" << ccas;
      EXPECT_GT(after.backoff_spins - before.backoff_spins, 0u)
          << "ccas=" << ccas;
    }
    flock::epoch_manager::instance().flush();
  }
  flock::set_ccas(true);
}

// help_delay = 0 disables the throttle entirely: the probe helps on first
// contact and never enters a backoff round.
TEST(Backoff, ZeroHelpDelayHelpsImmediately) {
  flock::set_blocking(false);
  tunables_guard g;
  flock::set_backoff({16, 256, 0});
  auto before = flock::stats();
  uint64_t applied = helping_test::force_one_help();
  auto after = flock::stats();
  EXPECT_EQ(applied, 1u);
  EXPECT_GT(after.helps_run - before.helps_run, 0u);
  EXPECT_EQ(after.backoff_spins - before.backoff_spins, 0u);
  flock::epoch_manager::instance().flush();
}

// If the owner releases while the waiter is still backing off, the help
// is avoided altogether (stat_helps_avoided) — the throttle's purpose.
// One narrow race makes a single round inconclusive: the waiter can wake
// exactly between the owner's done-store and its unlock CAS, in which
// case it (correctly) helps instead. Retry until an avoided help is
// observed; with 16K-pause rounds the first attempt almost always lands.
TEST(Backoff, ReleaseDuringBackoffAvoidsTheHelp) {
  flock::set_blocking(false);
  tunables_guard g;
  // Long rounds and a long budget so the waiter is reliably mid-backoff
  // when the owner releases.
  flock::set_backoff({1u << 14, 1u << 16, 256});
  for (bool ccas : {true, false}) {
    flock::set_ccas(ccas);
    bool avoided = false;
    for (int attempt = 0; attempt < 10 && !avoided; attempt++) {
      flock::lock l;
      auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
      x->init(0);

      std::atomic<bool> owner_installed{false};
      std::atomic<bool> owner_may_finish{false};
      std::thread owner([&] {
        int tid = flock::thread_id();
        flock::with_epoch([&] {
          return flock::try_lock(l, [&, x, tid] {
            uint64_t v = x->load();
            owner_installed.store(true);
            while (!owner_may_finish.load() && flock::thread_id() == tid) {
            }
            x->store(v + 1);
            return true;
          });
        });
      });
      while (!owner_installed.load()) {
      }

      auto before = flock::stats();
      std::thread waiter([&] {
        flock::with_epoch(
            [&] { return flock::try_lock(l, [] { return true; }); });
      });
      // Wait until the waiter is demonstrably inside a backoff round,
      // then release the owner; the waiter's next re-check sees the word
      // move and returns without helping.
      while (flock::stats().backoff_spins == before.backoff_spins) {
      }
      owner_may_finish.store(true);
      owner.join();
      waiter.join();
      auto after = flock::stats();

      EXPECT_EQ(x->read_raw(), 1u) << "ccas=" << ccas;
      avoided = after.helps_avoided > before.helps_avoided;
      flock::pool_delete(x);
      flock::epoch_manager::instance().flush();
    }
    EXPECT_TRUE(avoided) << "ccas=" << ccas;
  }
  flock::set_ccas(true);
}

}  // namespace
