// stats.hpp — lightweight introspection counters for the helping
// machinery. The counters live directly in the per-thread context
// (thread_context.hpp), so the hot-path cost is one plain increment on a
// structure that is already resident; this header provides the aggregate
// view. Used by benchmarks to report helping rates and by tests to assert
// helping actually happened.
#pragma once

#include <cstdint>

#include "config.hpp"
#include "thread_context.hpp"
#include "threading.hpp"

namespace flock {

struct stats_snapshot {
  uint64_t descriptors_created = 0;  // lock acquisitions (lock-free mode)
  uint64_t helps_attempted = 0;      // help() entries
  uint64_t helps_run = 0;            // help() revalidations that ran a thunk
  uint64_t descriptors_reused = 0;   // fast-path pool reuse (never helped)
  uint64_t helps_avoided = 0;        // throttled waits resolved without a help
  uint64_t backoff_spins = 0;        // cpu_pause iterations spent backing off
};

/// Aggregate counters across all threads (monotonic since process start).
inline stats_snapshot stats() {
  stats_snapshot s;
  const int bound = thread_id_bound();
  for (int i = 0; i < bound; i++) {
    const detail::thread_context& c = detail::g_ctx[i];
    s.descriptors_created += c.stat_created;
    s.helps_attempted += c.stat_attempted;
    s.helps_run += c.stat_ran;
    s.descriptors_reused += c.stat_reused;
    s.helps_avoided += c.stat_helps_avoided;
    s.backoff_spins += c.stat_backoff_spins;
  }
  return s;
}

}  // namespace flock
