file(REMOVE_RECURSE
  "CMakeFiles/test_hashtable_resize.dir/tests/test_hashtable_resize.cpp.o"
  "CMakeFiles/test_hashtable_resize.dir/tests/test_hashtable_resize.cpp.o.d"
  "test_hashtable_resize"
  "test_hashtable_resize.pdb"
  "test_hashtable_resize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashtable_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
