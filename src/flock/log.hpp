// log.hpp — the shared idempotence log (paper §3, Algorithm 2).
//
// Every thunk (descriptor) carries a log shared by all processes that run
// it. Each loggable event — a load of a mutable location, an allocation, a
// retirement, a committed boolean — occupies one 128-bit slot. A run
// commits its candidate value with a CAS(empty → value) and then adopts
// whatever the slot holds, so all runs of the thunk observe identical
// values and stay synchronized (same branches, same log positions).
//
// Differences from the paper's pseudocode, both strengthenings:
//  * committed entries always carry a "present" bit, so the empty sentinel
//    can never collide with a legitimate value (Alg. 2 instead assumes
//    `empty` is never stored by users);
//  * commits use compare-and-compare-and-swap (§6 "Avoiding CASes"):
//    read the slot first and skip the CAS when it is already full.
//
// Hot-path structure: the commit core is templated on the ccas choice and
// takes the caller's thread context, so the lock machinery (which
// dispatches on the mode once per acquisition, see lock.hpp) performs no
// TLS lookups and no shared-flag loads inside its loops. The public
// commit_* spellings keep the old behavior (one context fetch, one flag
// load per call).
//
// Logs grow in blocks of kLogBlockEntries entries (§6 "Arbitrary Length
// Logs"); extending the chain is itself idempotent: the first run to
// overflow CASes a fresh block into the next pointer, losers free theirs.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

#include "allocator.hpp"
#include "config.hpp"
#include "epoch.hpp"
#include "thread_context.hpp"

namespace flock {

using u128 = unsigned __int128;

inline constexpr u128 kLogPresent = static_cast<u128>(1) << 127;
inline constexpr u128 kLogEmpty = 0;

struct log_entry {
  std::atomic<u128> v{kLogEmpty};
};

struct log_block {
  log_entry entries[kLogBlockEntries];
  std::atomic<log_block*> next{nullptr};

  /// Reset for pool reuse. Only legal when no other thread can access the
  /// block (e.g. a never-helped descriptor, see lock.hpp).
  void reset() {
    // mo: relaxed (both) — reuse precondition above means no concurrent
    // access; re-publication to other threads goes through the pool /
    // descriptor-install release edges.
    for (auto& e : entries) e.v.store(kLogEmpty, std::memory_order_relaxed);
    next.store(nullptr, std::memory_order_relaxed);  // mo: ditto
  }
};

/// Thread-local cursor into the log of the thunk the thread is currently
/// running; {nullptr, 0} outside of any thunk (then commits pass through).
/// (The cursor itself lives in the thread context; log_cursor is defined
/// in thread_context.hpp.)
inline log_cursor& tls_log() noexcept { return detail::my_ctx()->log; }

/// True when the calling thread is executing inside a thunk, i.e. loggable
/// operations will be committed to a shared log.
inline bool in_thunk() noexcept {
  return detail::my_ctx()->log.block != nullptr;
}

/// Per-thread count of log-slot commits, for instrumentation (e.g. the
/// paper's "a successful insert commits about 5 entries to the log").
inline uint64_t& tls_commit_count() noexcept {
  return detail::my_ctx()->commit_count;
}

namespace detail {

/// Move the cursor to the next slot, growing the chain idempotently.
inline void log_bump(thread_context* c, log_cursor& cur) {
  if (++cur.pos < kLogBlockEntries) return;
  // mo: acquire — pairs with the acq_rel append CAS below: a helper that
  // sees another run's block must also see its reset() contents.
  log_block* nxt = cur.block->next.load(std::memory_order_acquire);
  if (nxt == nullptr) {
    log_block* mine = pool_new_ctx<log_block>(c);
    log_block* expected = nullptr;
    // mo: acq_rel — release publishes the freshly reset block to other
    // runs of this thunk; acquire on failure so `expected` (the winner's
    // block) is safe to walk into.
    if (cur.block->next.compare_exchange_strong(expected, mine,
                                                std::memory_order_acq_rel)) {
      nxt = mine;
    } else {
      pool_delete_ctx(c, mine);  // never published
      nxt = expected;
    }
  }
  cur.block = nxt;
  cur.pos = 0;
}

/// commitValue (Alg. 2 line 31) core: ccas choice is a template constant,
/// the context is supplied by the caller. The payload must not use bit
/// 127 (the present bit). Returns the committed payload and whether the
/// calling run was first to commit.
template <bool Ccas>
inline std::pair<u128, bool> commit_raw_ctx(thread_context* c, u128 payload) {
  log_cursor& cur = c->log;
  if (cur.block == nullptr) return {payload, true};  // outside any lock
  log_entry& slot = cur.block->entries[cur.pos];
  log_bump(c, cur);
  ++c->commit_count;

  const u128 desired = payload | kLogPresent;
  if constexpr (Ccas) {
    // Compare-and-compare-and-swap (§6): skip the CAS when already full.
    // mo: acquire — adopting a value another run committed must also
    // acquire whatever that run published before committing it (e.g. the
    // object a committed pointer refers to).
    u128 seen = slot.v.load(std::memory_order_acquire);
    if (seen != kLogEmpty) return {seen & ~kLogPresent, false};
  }
  u128 expected = kLogEmpty;
  // mo: acq_rel — release so the committed payload's referent is visible
  // to runs that adopt it; acquire on failure for the same adoption
  // argument as the ccas pre-check above.
  if (slot.v.compare_exchange_strong(expected, desired,
                                     std::memory_order_acq_rel)) {
    return {payload, true};
  }
  return {expected & ~kLogPresent, false};
}

template <bool Ccas>
inline uint64_t commit64_ctx(thread_context* c, uint64_t v) {
  return static_cast<uint64_t>(commit_raw_ctx<Ccas>(c, v).first);
}

template <bool Ccas>
inline std::pair<uint64_t, bool> commit64_first_ctx(thread_context* c,
                                                    uint64_t v) {
  auto [cv, first] = commit_raw_ctx<Ccas>(c, v);
  return {static_cast<uint64_t>(cv), first};
}

template <bool Ccas>
inline bool commit_bool_ctx(thread_context* c, bool b) {
  return commit64_ctx<Ccas>(c, b ? 1 : 0) != 0;
}

}  // namespace detail

/// commitValue on a raw 128-bit payload (public spelling; one context
/// fetch and one ccas-flag load per call).
inline std::pair<u128, bool> commit_raw(u128 payload) {
  detail::thread_context* c = detail::my_ctx();
  return use_ccas() ? detail::commit_raw_ctx<true>(c, payload)
                    : detail::commit_raw_ctx<false>(c, payload);
}

/// Convenience: commit a 64-bit value.
inline uint64_t commit64(uint64_t v) {
  return static_cast<uint64_t>(commit_raw(v).first);
}

inline std::pair<uint64_t, bool> commit64_first(uint64_t v) {
  auto [c, first] = commit_raw(v);
  return {static_cast<uint64_t>(c), first};
}

inline bool commit_bool(bool b) { return commit64(b ? 1 : 0) != 0; }

/// Users can commit arbitrary nondeterministic results (paper §3.2: "The
/// commitValue can also be used directly by the user").
inline uint64_t commit_value(uint64_t v) { return commit64(v); }

/// Idempotent allocation (Alg. 2 line 51): every run constructs its own
/// candidate, the first to commit wins, losers destroy theirs.
template <class T, class... Args>
T* idem_new(Args&&... args) {
  detail::thread_context* c = detail::my_ctx();
  T* mine = detail::pool_new_ctx<T>(c, std::forward<Args>(args)...);
  auto r = use_ccas()
               ? detail::commit64_first_ctx<true>(
                     c, reinterpret_cast<uint64_t>(mine))
               : detail::commit64_first_ctx<false>(
                     c, reinterpret_cast<uint64_t>(mine));
  if (r.second) return mine;
  detail::pool_delete_ctx(c, mine);  // never published: immediate free is safe
  return reinterpret_cast<T*>(r.first);
}

/// Idempotent retirement (Alg. 2 line 57): the first run to commit the
/// flag owns the retirement; epoch-based collection frees it later.
template <class T>
void idem_retire(T* obj) {
  detail::thread_context* c = detail::my_ctx();
  bool first = use_ccas() ? detail::commit64_first_ctx<true>(c, 1).second
                          : detail::commit64_first_ctx<false>(c, 1).second;
  if (first) detail::epoch_retire_ctx(c, obj);
}

}  // namespace flock
