// backoff.hpp — shared randomized bounded exponential backoff for the
// contended lock paths (lock.hpp).
//
// Both lock modes wait the same way when they observe a held lock: spin
// locally on raw reads, pausing a randomized, exponentially growing number
// of iterations per round (randomization desynchronizes waiters that woke
// together, the plock/Reciprocating-Locks discipline), and yield the core
// once the per-round limit tops out (essential under oversubscription —
// the holder may need this core to make progress). The modes differ only
// in what ends the wait:
//
//   blocking   spin until the lock frees (an episode never "ends");
//   lock-free  spin at most help_delay rounds, then fall back to helping
//              the holder. Helping is *delayed, never skipped*, so the
//              lock-freedom argument is untouched: a waiter converts to a
//              helper after a bounded number of its own steps.
//
// Tunables (min/max spins per round, help_delay) live in config.hpp and
// are env-overridable via FLOCK_BACKOFF_MIN / FLOCK_BACKOFF_MAX /
// FLOCK_HELP_DELAY. The per-thread xorshift state lives in thread_context,
// so an episode costs no TLS fetches beyond the context pointer the lock
// paths already hold.
#pragma once

#include <cstdint>
#include <thread>

#include "config.hpp"
#include "thread_context.hpp"

namespace flock {
namespace detail {

/// Polite spin-wait hint. Must be cheap: this sits inside the backoff
/// loop, so a full barrier here would serialize the very path that is
/// trying to back off.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Unknown ISA: a compiler-only barrier keeps the loop from being
  // collapsed without issuing any fence instruction.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Per-thread xorshift64 step (state in the thread context; lazily seeded
/// from the dense id so every thread draws a distinct sequence).
inline uint64_t backoff_rand(thread_context* c) {
  uint64_t x = c->backoff_rng;
  if (x == 0) [[unlikely]]
    x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(c->id + 2);
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  c->backoff_rng = x;
  return x;
}

/// One backoff episode: construct when a held lock is first observed,
/// call spin() per re-check. Reads the tunables once at construction so
/// the rounds themselves touch no shared configuration state.
class backoff {
 public:
  explicit backoff(thread_context* c) noexcept
      : c_(c), t_(backoff_cfg()), limit_(t_.min_spins) {}

  /// Spin one randomized round and grow the next round's budget; once the
  /// budget is capped, yield instead so a descheduled holder can run.
  void spin() noexcept {
    uint32_t n =
        t_.min_spins + static_cast<uint32_t>(backoff_rand(c_) % limit_);
    for (uint32_t i = 0; i < n; i++) cpu_pause();
    c_->stat_backoff_spins += n;
    if (limit_ < t_.max_spins) {
      limit_ = limit_ << 1 < t_.max_spins ? limit_ << 1 : t_.max_spins;
    } else {
      std::this_thread::yield();
    }
    rounds_++;
  }

  /// Lock-free waiters: true once the episode's round budget is spent and
  /// the waiter must convert to a helper (help_delay = 0 means helping is
  /// never throttled).
  bool exhausted() const noexcept { return rounds_ >= t_.help_delay; }

 private:
  thread_context* c_;
  backoff_tunables t_;
  uint32_t limit_;
  uint32_t rounds_ = 0;
};

}  // namespace detail
}  // namespace flock
