# Empty compiler generated dependencies file for test_epoch.
# This may be replaced when dependencies are built.
