// hashtable.hpp — separate-chaining hash table (paper §7 "a separate
// chaining hashtable"). Each bucket is a sorted lazylist-style chain with
// per-predecessor fine-grained locks; the bucket array is sized at
// construction (the paper's table does not resize either).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flock/flock.hpp"

namespace flock_ds {

inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <class K, class V, bool Strict = false>
class hashtable {
  struct node {
    flock::mutable_<node*> next;
    flock::write_once<bool> removed;
    flock::lock lck;
    const K k;
    const V v;
    node(K key, V val, node* nxt) : k(key), v(val) {
      next.init(nxt);
      removed.init(false);
    }
  };

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

 public:
  /// `size_hint`: expected number of keys; bucket count is the next power
  /// of two >= size_hint (load factor ~1).
  explicit hashtable(std::size_t size_hint = 1 << 16) {
    std::size_t b = 64;
    while (b < size_hint) b <<= 1;
    mask_ = b - 1;
    heads_.resize(b);
    for (auto& h : heads_) h = flock::pool_new<node>(K{}, V{}, nullptr);
  }

  ~hashtable() {
    for (node* h : heads_) {
      node* n = h;
      while (n != nullptr) {
        node* nxt = n->next.read_raw();
        flock::pool_delete(n);
        n = nxt;
      }
    }
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      node* cur = bucket(k)->next.load();
      while (cur != nullptr && cur->k < k) cur = cur->next.load();
      if (cur != nullptr && cur->k == k && !cur->removed.load())
        return cur->v;
      return {};
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        auto [prev, cur] = search(k);
        if (cur != nullptr && cur->k == k) return false;
        if (acquire(prev->lck, [=] {
              if (prev->removed.load()) return false;
              if (prev->next.load() != cur) return false;
              node* n = flock::allocate<node>(k, v, cur);
              prev->next = n;
              return true;
            }))
          return true;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        auto [prev, cur] = search(k);
        if (cur == nullptr || cur->k != k) return false;
        if (acquire(prev->lck, [=] {
              return acquire(cur->lck, [=] {
                if (prev->removed.load() || cur->removed.load())
                  return false;
                if (prev->next.load() != cur) return false;
                cur->removed = true;
                prev->next = cur->next.load();
                flock::retire<node>(cur);
                return true;
              });
            }))
          return true;
      }
    });
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (node* h : heads_)
      for (node* c = h->next.read_raw(); c != nullptr;
           c = c->next.read_raw())
        n++;
    return n;
  }

  bool check_invariants() const {
    for (node* h : heads_) {
      const node* prev = nullptr;
      for (node* c = h->next.read_raw(); c != nullptr;
           c = c->next.read_raw()) {
        if (c->removed.read_raw()) return false;
        if (prev != nullptr && !(prev->k < c->k)) return false;
        // Every key must belong to this bucket.
        if (bucket_index(c->k) != bucket_index(h->k) &&
            h->next.read_raw() != nullptr) {
          // head sentinel key is default-constructed; compare via chain
          // membership instead: recompute from c's key.
        }
        prev = c;
      }
    }
    return true;
  }

  std::size_t bucket_count() const { return heads_.size(); }

  template <class F>
  void for_each(F&& f) const {
    for (node* h : heads_)
      for (node* c = h->next.read_raw(); c != nullptr;
           c = c->next.read_raw())
        f(c->k, c->v);
  }

 private:
  std::size_t bucket_index(K k) const {
    return static_cast<std::size_t>(splitmix64(static_cast<uint64_t>(k))) &
           mask_;
  }
  node* bucket(K k) const { return heads_[bucket_index(k)]; }

  std::pair<node*, node*> search(K k) {
    node* prev = bucket(k);
    node* cur = prev->next.load();
    while (cur != nullptr && cur->k < k) {
      prev = cur;
      cur = cur->next.load();
    }
    return {prev, cur};
  }

  std::size_t mask_;
  std::vector<node*> heads_;
};

}  // namespace flock_ds
