// lazylist: oracle, stress, and list-specific tests across
// {blocking, lock-free} x {try, strict}.
#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

class LazylistTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(LazylistTest, BatteryTryLock) {
  set_test::battery<flock_workload::lazylist_try>();
}

TEST_P(LazylistTest, BatteryStrictLock) {
  set_test::battery<flock_workload::lazylist_strict>();
}

TEST_P(LazylistTest, Oversubscribed) {
  set_test::oversubscribed<flock_workload::lazylist_try>();
}

TEST_P(LazylistTest, SortedTraversal) {
  flock_workload::lazylist_try s;
  for (uint64_t k : {5u, 1u, 9u, 3u, 7u}) EXPECT_TRUE(s.insert(k, k * 10));
  uint64_t prev = 0;
  std::size_t n = 0;
  s.underlying().for_each([&](uint64_t k, uint64_t v) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, k * 10);
    prev = k;
    n++;
  });
  EXPECT_EQ(n, 5u);
}

TEST_P(LazylistTest, RemoveHeadMiddleTail) {
  flock_workload::lazylist_try s;
  for (uint64_t k = 1; k <= 10; k++) s.insert(k, k);
  EXPECT_TRUE(s.remove(1));   // head
  EXPECT_TRUE(s.remove(5));   // middle
  EXPECT_TRUE(s.remove(10));  // tail
  EXPECT_EQ(s.size(), 7u);
  EXPECT_FALSE(s.find(1).has_value());
  EXPECT_FALSE(s.find(5).has_value());
  EXPECT_FALSE(s.find(10).has_value());
  EXPECT_TRUE(s.check_invariants());
}

TEST_P(LazylistTest, NodePoolBalancedAfterChurn) {
  flock::epoch_manager::instance().flush();
  {
    flock_workload::lazylist_try s;
    set_test::high_contention(s, 4, 3000);
  }  // destructor frees the remainder
  flock::epoch_manager::instance().flush();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Modes, LazylistTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
