# Empty compiler generated dependencies file for test_sets_concurrent.
# This may be replaced when dependencies are built.
