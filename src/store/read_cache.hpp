// read_cache.hpp — per-thread memoized-read cache for hot keys, validated
// by bucket writer-entry counters (the store-tier consumer of the
// hashtable's optimistic read path).
//
// A zipf-shaped read-mostly workload spends most of its finds on a few
// keys. The hashtable fast path already makes those wait-free-ish, but
// still pays hash + chain walk + seqlock validation per call. This cache
// memoizes the RESULT of a validated fast-path find — (key, presence,
// value, bucket entry-counter word, snapshot) — and revalidates it with a
// single acquire load of that counter: if ver_enter still holds the
// snapshot, no writer has even ENTERED that bucket since the value was
// read (entries bump the counter before their critical section), so the
// result is still current. Absent results are memoized too: a validated
// miss proves the key was not in the bucket at snapshot time, and any
// insert to that bucket bumps ver_enter, so an unchanged counter
// certifies continued absence exactly as it certifies an unchanged value.
// (Under a zipf read mix roughly half the hot draws are absent keys;
// caching only hits would leave that mass paying the probe for nothing.)
// Writers invalidate for free: every mutation of a bucket bumps its
// entry counter (hashtable.hpp ver_begin/ver_end), including the
// migration engine's copy/forward/merge units, so a stale entry simply
// fails its next validation. No write-side hook, no cross-thread cache
// traffic — the cache is thread-local and entries are only ever touched
// by their owner.
//
// Safety of the dereference (the counter word lives inside a bucket array
// that a resize can retire): an entry may only be validated while the
// reader can prove the array is still allocated. The proof is the
// process-wide bucket-array retirement era (ds/hashtable.hpp
// g_table_retire_era) plus the caller's armed epoch announcement:
//
//  1. A validated read_probe certifies its bucket was root-table and
//     unforwarded as of the probe's closing counter load (forwarding
//     bumps ver_enter, so a forward inside the snapshot window fails
//     validation) — and a table is only retired after every bucket is
//     forwarded, so the array's retirement, if it ever comes, strictly
//     follows the capture.
//  2. Entries stamp the era loaded UNDER THE GUARD, BEFORE the probe was
//     taken. Any later retirement of that array bumps the era past the
//     stamp, so "era unchanged at validation time" means the array was
//     never handed to the epoch reclaimer at all.
//  3. A retirement racing the validation itself is pinned out: it happens
//     at an epoch no older than the validating thread's armed
//     announcement (read_guard keeps it armed across the whole find), so
//     its free cannot run until the reader lets go.
//
// An earlier design considered validating against the owning thread's
// epoch announcement generation — "drop the entry whenever the
// announcement moved". That is sound but brutally conservative: every
// epoch advance (i.e., ordinary update churn) wiped the whole cache,
// which under a 95/5 mix meant a full flush every few dozen operations.
// The era check invalidates on actual resizes only, so the generation
// machinery was never shipped; this cache is the retirement-era design.
//
// Owner identity: entries also record a process-unique id of the owning
// store (not its address — a destroyed store's address can be recycled,
// and a recycled address plus a surviving generation could otherwise
// validate a dangling version pointer). Ids are never reused, so an entry
// can only match the store that created it, which is alive by virtue of
// being the caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "ds/hashtable.hpp"
#include "flock/flock.hpp"

namespace flock_store {

/// Process-unique store id (monotone, never recycled).
inline uint64_t next_store_id() {
  static std::atomic<uint64_t> n{0};
  // mo: relaxed — unique-id ticket; only distinctness matters.
  return n.fetch_add(1, std::memory_order_relaxed) + 1;
}

template <class K, class V>
class read_cache {
 public:
  // Sized for a few-thousand-key hot set, not for L1: the cache only pays
  // off when the working set is already cache-resident (a DRAM-tail find
  // costs ~20x a memoized hit, but the tail by definition never hits), so
  // the regime that matters is "store hot set fits in cache" — and there
  // the slot table should cover most of that hot set. 4096 slots is
  // ~230KB/thread for 8-byte K/V (L2-resident); sampled admission keeps
  // tail draws from paying a cold fill-store on the extra lines. Measured
  // on the zipf(0.99) 16K-key regime: 62% hit rate, ~1.3-1.4x over the
  // uncached fast path; 64 slots managed only ~25% hits and broke even.
#ifndef FLOCK_READCACHE_SLOTS
#define FLOCK_READCACHE_SLOTS 4096
#endif
  static constexpr std::size_t kSlots = FLOCK_READCACHE_SLOTS;
  // 2-way set-associative over the same total entry count (kSlots/2 sets
  // of 2 ways). Direct mapping made every index collision a fight to the
  // death: two hot keys landing on one slot evicted each other on every
  // alternating draw (or, with credit armed, locked each other out), so a
  // colliding pair degraded to the uncached path no matter how hot both
  // were. A second way turns that worst case into "both stay resident";
  // the price is one extra line probed on lookup, paid only when way 0
  // misses. Victim choice is credit-order (evict the way with less proven
  // heat), with the same sampled-admission + second-chance gates as
  // before applied against that victim.
  static constexpr std::size_t kWays = 2;
  static constexpr std::size_t kSets = kSlots / kWays;
  static_assert(kSlots >= 2 * kWays && (kSlots & (kSlots - 1)) == 0,
                "FLOCK_READCACHE_SLOTS must be a power of two >= 4");
  // Hit-earned eviction credit cap: high enough that a hot key survives
  // the tail draws between its own draws, low enough that a key that went
  // cold drains in a few fills and frees the slot.
  static constexpr uint8_t kCreditMax = 3;
  // One miss in kFillPeriod gets to contend for an occupied slot (see
  // fill); power of two.
  static constexpr uint32_t kFillPeriod = 8;

  // Line-aligned: sizeof(entry) is 56 for 8-byte K/V, and an unaligned
  // array would straddle 7 of every 8 slots across two cache lines —
  // doubling the memory traffic of exactly the hot-hit path the cache
  // exists to shorten.
  struct alignas(64) entry {
    uint64_t owner = 0;     // store id; 0 = empty
    uint64_t era = 0;       // bucket-array retirement era at capture
    uint64_t snapshot = 0;  // entry-counter value the read validated against
    const std::atomic<uint64_t>* version = nullptr;  // bucket ver_enter word
    K key{};
    V value{};              // meaningful only when present
    bool present = false;   // validated hit vs validated absence
    uint8_t credit = 0;     // second-chance eviction protection (see fill)
  };

  /// One associative set: kWays line-aligned entries, probed in order.
  /// A (store, key) pair lives in at most one way — fill refreshes a
  /// matching way in place before it ever considers eviction.
  struct set {
    entry ways[kWays];
  };

  struct stats {
    uint64_t hits = 0;         // validated returns (present or absent)
    uint64_t misses = 0;       // empty/other-key/other-store slots
    uint64_t invalidated = 0;  // version or retirement-era mismatches
    uint64_t fills = 0;        // entries (re)captured
    uint64_t denied = 0;       // fills rejected by an incumbent's credit
  };

  /// The associative set a (store, key-hash) pair maps to. `h` is the
  /// key's hashtable::hash_of word, computed ONCE per find by the store
  /// tier and shared with shard routing (top bits) and bucket indexing
  /// (low bits); the set index takes middle bits so the three decisions
  /// stay independent. Callers hand the same set to lookup and fill — the
  /// fill after a cache miss must not pay a second index computation on
  /// the hot path. XORing the store id in keeps two stores' hot keys from
  /// systematically colliding on the same sets (a collision is only ever
  /// a perf event — lookup still compares owner and key exactly).
  set& slot_for(uint64_t owner, uint64_t h) {
    return sets_[static_cast<std::size_t>((h >> 24) ^ owner) & (kSets - 1)];
  }

  /// Validated lookup. Returns the entry iff it holds this (store, key),
  /// no bucket array was retired since capture (`era` — the caller loads
  /// g_table_retire_era under its armed read_guard and passes it in), and
  /// the bucket entry counter still holds the captured snapshot; the
  /// caller reads present/value from it. Must be called under a
  /// read_guard (the armed announcement keeps a racing retirement's free
  /// blocked across the version dereference; see the header comment).
  const entry* lookup(set& s, uint64_t owner, K k, uint64_t era) {
    entry* match = nullptr;
    for (entry& w : s.ways)
      if (w.owner == owner && w.key == k) {
        match = &w;
        break;  // fill keeps a pair in at most one way
      }
    if (match == nullptr) {
      stats_.misses++;
      return nullptr;
    }
    entry& e = *match;
    if (e.era != era) {
      // Some bucket array somewhere was retired since capture: this
      // entry's version pointer may dangle and must not be dereferenced.
      // Invalidation is NOT eviction: the entry stays resident (stale —
      // it can never validate again, eras are monotonic) so the fallback
      // find's refill is a same-key refresh that keeps the slot's credit;
      // zeroing it here would hand a hot key's slot to the tail and make
      // it re-earn admission after every resize or bucket write.
      stats_.invalidated++;
      return nullptr;
    }
    // Single-load validation of ver_enter: an unchanged snapshot proves
    // no writer ENTERED the bucket since capture — neither a completed
    // critical section nor an in-flight one can hide, because both bump
    // the entry counter before touching the chain.
    // mo: acquire — pairs with ver_begin's release fence (see above).
    if (e.version->load(std::memory_order_acquire) != e.snapshot) {
      // A writer entered the bucket. Stale, not evicted (entry counters
      // only grow — this snapshot can never match again); see the era
      // branch above for why the entry keeps its slot.
      stats_.invalidated++;
      return nullptr;
    }
    stats_.hits++;
    // A validated hit is proof of heat: arm the slot against eviction by
    // colder keys (see fill's second-chance gate).
    if (e.credit < kCreditMax) e.credit++;
    return &e;
  }

  /// Capture a validated fast-path result (hashtable read_probe) under the
  /// same read_guard the probe was produced under. `era` MUST be the
  /// g_table_retire_era value loaded after that guard armed and BEFORE the
  /// probe was taken — stamping a later era would let a retirement slip
  /// between capture and stamp undetected (step 2 of the header argument).
  /// `r` may be empty — a validated miss memoizes absence.
  ///
  /// Admission control, two gates (both only for a DIFFERENT key over a
  /// live incumbent — a same-key refresh or an empty slot always installs):
  ///
  ///  * Sampled admission: only one miss in kFillPeriod may even contend
  ///    for an occupied slot. Under a zipf read mix the table sees one
  ///    fill attempt per cache miss; unsampled, the long tail rewrites
  ///    every slot every few draws and no hot entry survives long enough
  ///    to be hit again (measured: hit rate collapses to ~16%, and the
  ///    fill's stores were the single largest read-path tax). A hot key
  ///    is drawn often, so it still wins a ticket within a few of its own
  ///    draws; a tail key almost never does.
  ///  * Second chance: an incumbent that has proven itself with validated
  ///    hits carries credit; an admitted challenger spends one credit
  ///    instead of replacing, so only keys drawn more often than the
  ///    (sampled) challenger traffic through their slot can hold it —
  ///    exactly the hot set.
  void fill(set& s, uint64_t owner, K k, const std::optional<V>& r,
            const std::atomic<uint64_t>* version, uint64_t snapshot,
            uint64_t era) {
    // Way choice, in priority order: the way already holding this pair
    // (refresh in place — never leaves a duplicate behind), else an empty
    // way (free real estate, no incumbent to protect), else the occupied
    // way with the LEAST hit-earned credit (evict the colder of the two;
    // this is where associativity beats direct mapping — the hotter
    // co-resident key is never the one on the block).
    entry* target = nullptr;
    bool same = false;
    for (entry& w : s.ways)
      if (w.owner == owner && w.key == k) {
        target = &w;
        same = true;
        break;
      }
    if (target == nullptr)
      for (entry& w : s.ways)
        if (w.owner == 0) {
          target = &w;
          break;
        }
    if (target == nullptr) {
      target = &s.ways[0];
      for (entry& w : s.ways)
        if (w.credit < target->credit) target = &w;
    }
    entry& e = *target;
    if (!same && e.owner != 0) {
      if ((++tick_ & (kFillPeriod - 1)) != 0 || e.credit > 0) {
        if (e.credit > 0 && (tick_ & (kFillPeriod - 1)) == 0) e.credit--;
        stats_.denied++;
        return;
      }
    }
    e.owner = owner;
    e.era = era;
    e.snapshot = snapshot;
    e.version = version;
    e.key = k;
    e.present = r.has_value();
    if (r.has_value()) e.value = *r;
    if (!same) e.credit = 0;  // a newcomer earns protection via hits
    stats_.fills++;
  }

  void clear() {
    for (set& s : sets_)
      for (entry& e : s.ways) e.owner = 0;
  }

  const stats& counters() const { return stats_; }

 private:
  set sets_[kSets];
  uint32_t tick_ = 0;  // sampled-admission ticket counter
  stats stats_;
};

/// The per-thread cache instance, shared by every store of this K/V shape
/// (entries disambiguate by store id).
template <class K, class V>
inline read_cache<K, V>& tls_read_cache() {
  thread_local read_cache<K, V> c;
  return c;
}

}  // namespace flock_store
