file(REMOVE_RECURSE
  "CMakeFiles/fig7_lists.dir/bench/fig7_lists.cpp.o"
  "CMakeFiles/fig7_lists.dir/bench/fig7_lists.cpp.o.d"
  "fig7_lists"
  "fig7_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
