file(REMOVE_RECURSE
  "CMakeFiles/test_write_once.dir/tests/test_write_once.cpp.o"
  "CMakeFiles/test_write_once.dir/tests/test_write_once.cpp.o.d"
  "test_write_once"
  "test_write_once.pdb"
  "test_write_once[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_once.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
