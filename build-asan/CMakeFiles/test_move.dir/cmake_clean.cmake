file(REMOVE_RECURSE
  "CMakeFiles/test_move.dir/tests/test_move.cpp.o"
  "CMakeFiles/test_move.dir/tests/test_move.cpp.o.d"
  "test_move"
  "test_move.pdb"
  "test_move[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_move.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
