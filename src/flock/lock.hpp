// lock.hpp — lock-free try-locks and strict locks (paper §4, Algorithm 3)
// plus the blocking (test-and-test-and-set) mode selected at runtime (§7).
//
// A lock is one compact mutable word holding (descriptor pointer | locked
// bit). In lock-free mode, try_lock either installs a descriptor and runs
// it, or helps whoever is installed and returns false. Anyone may run a
// descriptor at any time; idempotence (descriptor log) makes that safe.
//
// Log-slot discipline (this is what keeps nested locks correct): every run
// of an enclosing thunk must consume the *same* log slots in the same
// order. The deterministic prefix of try_lock — logged state load,
// idempotent descriptor allocation, logged re-load, logged done-load, and
// the branch-dependent (but branch-deterministic) retire commit — does.
// Helping and unlocking consume NO enclosing slots: they use raw
// effects-once CASes, which are inherently idempotent because the lock
// word's tag is monotonic while any stale referencer exists (descriptor
// reuse is epoch-gated, see retire paths below).
//
// helped/reuse hand-off (§6 "This requires some careful synchronization"):
//   helper:  helped.store(true); seq_cst fence; re-read lock word ==
//            installed value? run : abort.
//   owner:   unlock (or observe unlocked); seq_cst fence; read helped.
// The two seq_cst fences order the pair: either the owner sees
// helped==true (and epoch-retires), or the helper sees the word moved on
// (and never touches the descriptor). C++20 fence/coherence rules make
// this airtight even when the retiring run only *observed* the unlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "config.hpp"
#include "descriptor.hpp"
#include "epoch.hpp"
#include "log.hpp"
#include "mutable.hpp"
#include "stats.hpp"

namespace flock {
namespace detail {

inline constexpr uint64_t kLockedBit = 1;

inline bool lv_locked(uint64_t val) { return (val & kLockedBit) != 0; }
inline descriptor* lv_descr(uint64_t val) {
  return reinterpret_cast<descriptor*>(val & ~kLockedBit);
}

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

using lock_word = mutable_<uint64_t>;

/// Effects-once unlock: flip (d|locked) -> (d|unlocked) if still current.
/// Raw (no enclosing log slots); the tag makes repeats harmless.
inline void raw_unlock(lock_word& st, descriptor* d) {
  uint64_t p = st.read_raw_packed();
  uint64_t lockedv = reinterpret_cast<uint64_t>(d) | kLockedBit;
  if (val_of(p) == lockedv)
    st.cas_raw_packed(p, reinterpret_cast<uint64_t>(d));
}

/// Run the descriptor's thunk (idempotently), mark done, release the lock.
inline bool run_and_unlock(lock_word& st, descriptor* d) {
  bool result = d->run();
  d->done.store(true, std::memory_order_release);
  raw_unlock(st, d);
  return result;
}

/// Help the descriptor currently installed on `st` (Alg. 3 lines 24/26).
/// `cur_packed` is the packed word under which the caller saw it locked.
/// Consumes no enclosing log slots.
inline void help(lock_word& st, uint64_t cur_packed) {
  descriptor* d = lv_descr(val_of(cur_packed));
  my_stats().attempted++;
  d->helped.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Adopt the descriptor's epoch before validating: if the validation
  // passes, the creator was still announced at d->epoch when we re-read,
  // so everything the thunk can reach is protected from then on by *our*
  // lowered announcement (see epoch.hpp).
  epoch_manager& em = epoch_manager::instance();
  int64_t prev = em.adopt(d->epoch);
  if (st.read_raw_packed() == cur_packed) {
    my_stats().ran++;
    run_and_unlock(st, d);
  }
  em.restore(prev);
}

/// Retire a descriptor that was successfully installed. The retire
/// decision goes through the log (one slot) so exactly one run of an
/// enclosing thunk performs it. Top-level, never-helped descriptors are
/// returned to the pool immediately (§6 optimization); everything else is
/// epoch-retired because stale runs (of the descriptor itself, or of an
/// enclosing thunk replaying this code) may still hold the pointer.
inline void retire_installed(descriptor* d) {
  bool nested = in_thunk();
  if (!commit64_first(1).second) return;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!nested && !d->helped.load(std::memory_order_relaxed)) {
    my_stats().reused++;
    pool_delete(d);
  } else {
    epoch_retire(d);
  }
}

/// Retire a descriptor whose install CAS lost: it was never on the lock,
/// but nested replays can still reach it through the enclosing log.
inline void retire_unpublished(descriptor* d) {
  bool nested = in_thunk();
  if (!commit64_first(1).second) return;
  if (!nested)
    pool_delete(d);
  else
    epoch_retire(d);
}

// --- lock-free (helping) mode ---------------------------------------------

template <class F>
bool try_lock_helping(lock_word& st, F&& f) {
  uint64_t cur = st.load_packed();  // logged
  if (!lv_locked(val_of(cur))) {
    descriptor* d = create_descriptor(std::forward<F>(f));  // logged alloc
    uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
    st.cas_raw_packed(cur, minev);  // install CAM: effects-once via tag
    uint64_t nowv = val_of(st.load_packed());  // logged
    bool d_done = commit_bool(d->done.load(std::memory_order_acquire));
    if (d_done || nowv == minev) {
      // Acquired (possibly already helped to completion).
      bool result = run_and_unlock(st, d);
      retire_installed(d);
      return result;
    }
    if (lv_locked(nowv)) {
      // Help whoever holds the lock *now*; a fresh read keeps the helped
      // descriptor current, and help() revalidates before running.
      uint64_t fresh = st.read_raw_packed();
      if (lv_locked(val_of(fresh))) help(st, fresh);
    }
    retire_unpublished(d);
    return false;
  }
  help(st, cur);
  return false;
}

template <class F>
bool strict_lock_helping(lock_word& st, F&& f) {
  // §4: "by first creating the descriptor, and then putting the attempt to
  // acquire a lock into a while loop". All logged values are identical
  // across runs, so every run executes the same number of iterations.
  descriptor* d = create_descriptor(std::forward<F>(f));
  uint64_t minev = reinterpret_cast<uint64_t>(d) | kLockedBit;
  while (true) {
    uint64_t cur = st.load_packed();  // logged
    if (!lv_locked(val_of(cur))) {
      st.cas_raw_packed(cur, minev);
      uint64_t nowv = val_of(st.load_packed());  // logged
      bool d_done = commit_bool(d->done.load(std::memory_order_acquire));
      if (d_done || nowv == minev) {
        bool result = run_and_unlock(st, d);
        retire_installed(d);
        return result;
      }
      if (lv_locked(nowv)) {
        uint64_t fresh = st.read_raw_packed();
        if (lv_locked(val_of(fresh))) help(st, fresh);
      }
    } else {
      help(st, cur);
    }
  }
}

// --- blocking (test-and-test-and-set) mode ---------------------------------

template <class F>
bool try_lock_blocking(lock_word& st, F&& f) {
  uint64_t p = st.read_raw_packed();
  if (lv_locked(val_of(p))) return false;
  if (!st.cas_raw_packed(p, kLockedBit)) return false;
  bool result = f();
  st.store_raw(0);
  return result;
}

template <class F>
bool strict_lock_blocking(lock_word& st, F&& f) {
  int backoff = 1;
  while (true) {
    uint64_t p = st.read_raw_packed();
    if (!lv_locked(val_of(p))) {
      if (st.cas_raw_packed(p, kLockedBit)) break;
    } else {
      for (int i = 0; i < backoff; i++) cpu_pause();
      if (backoff < 1024)
        backoff <<= 1;
      else
        std::this_thread::yield();
    }
  }
  bool result = f();
  st.store_raw(0);
  return result;
}

}  // namespace detail

/// A Flock lock. One word; zero-initialized means unlocked.
class lock {
 public:
  lock() = default;
  lock(const lock&) = delete;
  lock& operator=(const lock&) = delete;

  /// Acquire-run-release if free; otherwise (lock-free mode) help the
  /// current holder and return false (Alg. 3 tryLock). The thunk must
  /// capture by value and is run idempotently in lock-free mode.
  template <class F>
  bool try_lock(F&& f) {
    if (is_blocking())
      return detail::try_lock_blocking(state_, std::forward<F>(f));
    return detail::try_lock_helping(state_, std::forward<F>(f));
  }

  /// Strict lock: loops (helping in lock-free mode) until acquired.
  template <class F>
  bool strict_lock(F&& f) {
    if (is_blocking())
      return detail::strict_lock_blocking(state_, std::forward<F>(f));
    return detail::strict_lock_helping(state_, std::forward<F>(f));
  }

  /// Early release (§4): undefined unless the calling thread('s thunk)
  /// holds the lock. Enables hand-over-hand locking.
  void unlock() {
    if (is_blocking()) {
      state_.store_raw(0);
      return;
    }
    uint64_t cur = state_.load_packed();  // logged
    if (detail::lv_locked(val_of(cur)))
      state_.cas_raw_packed(cur, val_of(cur) & ~detail::kLockedBit);
  }

  bool is_locked() const {
    return detail::lv_locked(val_of(state_.read_raw_packed()));
  }

 private:
  detail::lock_word state_;
};

/// Free-function spellings matching the paper's examples.
template <class F>
bool try_lock(lock& l, F&& f) {
  return l.try_lock(std::forward<F>(f));
}
template <class F>
bool strict_lock(lock& l, F&& f) {
  return l.strict_lock(std::forward<F>(f));
}
inline void unlock(lock& l) { l.unlock(); }

}  // namespace flock
