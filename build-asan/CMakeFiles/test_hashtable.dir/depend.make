# Empty dependencies file for test_hashtable.
# This may be replaced when dependencies are built.
