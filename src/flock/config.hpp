// config.hpp — build-time and run-time knobs shared by the whole library.
//
// Part of the Flock reproduction ("Lock-Free Locks Revisited", PPoPP 2022).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace flock {

// Cache line size used for padding shared per-thread slots.
inline constexpr std::size_t kCacheLine = 64;

// Hard cap on concurrently registered threads (ids are recycled on thread
// exit, so the cap applies to *live* threads, not total threads created).
inline constexpr int kMaxThreads = 512;

// Entries per log block (paper §6 "Arbitrary Length Logs": default 7).
inline constexpr int kLogBlockEntries = 7;

// Inline storage for thunks captured by descriptors. Larger lambdas fall
// back to the heap (see thunk.hpp).
inline constexpr std::size_t kThunkInlineBytes = 104;

/// Run-time switch between the two lock modes (paper §7: "this choice can
/// be made by changing a flag at runtime").
///   blocking  — test-and-test-and-set locks, no logging, no helping.
///   lock-free — descriptor-based helping with idempotence logs (Alg. 3).
inline std::atomic<bool>& blocking_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

// The mode is a configuration knob flipped only at quiescence (tests/bench
// setup); operations never change it mid-flight, so no ordering with data
// accesses is needed, only eventual visibility.
inline void set_blocking(bool b) noexcept {
  // mo: relaxed — quiescent configuration knob (see above).
  blocking_flag().store(b, std::memory_order_relaxed);
}
inline bool is_blocking() noexcept {
  // mo: relaxed — see set_blocking.
  return blocking_flag().load(std::memory_order_relaxed);
}

/// RAII scope that selects a lock mode and restores the previous one.
class mode_guard {
 public:
  explicit mode_guard(bool blocking) : prev_(is_blocking()) {
    set_blocking(blocking);
  }
  mode_guard(const mode_guard&) = delete;
  mode_guard& operator=(const mode_guard&) = delete;
  ~mode_guard() { set_blocking(prev_); }

 private:
  bool prev_;
};

// Compare-and-compare-and-swap toggle (paper §6 "Avoiding CASes").
// On by default; the micro bench flips it off to measure the ablation.
inline std::atomic<bool>& ccas_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline void set_ccas(bool b) noexcept {
  // mo: relaxed — quiescent configuration knob, same contract as
  // set_blocking above.
  ccas_flag().store(b, std::memory_order_relaxed);
}
inline bool use_ccas() noexcept {
  // mo: relaxed — see set_ccas.
  return ccas_flag().load(std::memory_order_relaxed);
}

// --- contended-path backoff tunables (backoff.hpp / lock.hpp) --------------
//
// One randomized-exponential-backoff *round* pauses between min_spins and
// min_spins + current limit iterations; the limit doubles each round up to
// max_spins, after which rounds yield instead of growing. A lock-free
// waiter runs at most help_delay rounds before it falls back to helping
// the lock holder (helping is delayed, never skipped, so lock-freedom is
// preserved; help_delay = 0 disables throttling and helps immediately).
struct backoff_tunables {
  uint32_t min_spins = 16;
  uint32_t max_spins = 2048;
  uint32_t help_delay = 8;
};

/// Clamp to the ranges the spin loops assume (min >= 1 so a round always
/// pauses; max >= min so the doubling terminates; help_delay bounded so a
/// waiter's pre-help delay stays finite even with a hostile environment).
inline backoff_tunables clamp_backoff(backoff_tunables t) noexcept {
  if (t.min_spins < 1) t.min_spins = 1;
  if (t.min_spins > (1u << 16)) t.min_spins = 1u << 16;
  if (t.max_spins < t.min_spins) t.max_spins = t.min_spins;
  if (t.max_spins > (1u << 20)) t.max_spins = 1u << 20;
  if (t.help_delay > 256) t.help_delay = 256;
  return t;
}

/// Parse env-style strings (nullptr = keep default, garbage parses as 0 and
/// clamps). Split from the getenv call so tests can exercise parse+clamp
/// without mutating the process environment.
inline backoff_tunables backoff_tunables_from(const char* min_s,
                                              const char* max_s,
                                              const char* delay_s) noexcept {
  backoff_tunables t;
  if (min_s != nullptr)
    t.min_spins = static_cast<uint32_t>(std::strtoul(min_s, nullptr, 10));
  if (max_s != nullptr)
    t.max_spins = static_cast<uint32_t>(std::strtoul(max_s, nullptr, 10));
  if (delay_s != nullptr)
    t.help_delay = static_cast<uint32_t>(std::strtoul(delay_s, nullptr, 10));
  return clamp_backoff(t);
}

/// The production env wiring, shared with the test that guards it: any
/// typo in these names would silently disable the knob, so the test calls
/// this exact function after setenv'ing the real names.
inline backoff_tunables backoff_tunables_from_env() noexcept {
  return backoff_tunables_from(std::getenv("FLOCK_BACKOFF_MIN"),
                               std::getenv("FLOCK_BACKOFF_MAX"),
                               std::getenv("FLOCK_HELP_DELAY"));
}

// --- service-tier deployment knobs (examples/kv_store, bench) --------------
//
// How many closed-loop client threads drive the serving front end and how
// many dedicated server threads drain its rings (0 servers is a valid
// deployment: waiting clients flat-combine, see src/service/service.hpp).
struct svc_tunables {
  uint32_t clients = 2;
  uint32_t servers = 0;
};

/// Clamp to ranges a deployment can actually run (clients >= 1 so a
/// closed loop exists; servers may be 0 — combining covers progress — but
/// both are bounded so a hostile environment cannot demand thousands of
/// threads from a test box).
inline svc_tunables clamp_svc(svc_tunables t) noexcept {
  if (t.clients < 1) t.clients = 1;
  if (t.clients > 256) t.clients = 256;
  if (t.servers > 64) t.servers = 64;
  return t;
}

/// Parse env-style strings (nullptr = keep default, garbage parses as 0
/// and clamps). Split from the getenv call so tests can exercise
/// parse+clamp without mutating the process environment — the same
/// contract as backoff_tunables_from above.
inline svc_tunables svc_tunables_from(const char* clients_s,
                                      const char* servers_s) noexcept {
  svc_tunables t;
  if (clients_s != nullptr)
    t.clients = static_cast<uint32_t>(std::strtoul(clients_s, nullptr, 10));
  if (servers_s != nullptr)
    t.servers = static_cast<uint32_t>(std::strtoul(servers_s, nullptr, 10));
  return clamp_svc(t);
}

/// The production env wiring, shared with the test that guards the names.
inline svc_tunables svc_tunables_from_env() noexcept {
  return svc_tunables_from(std::getenv("FLOCK_SVC_CLIENTS"),
                           std::getenv("FLOCK_SVC_SERVERS"));
}

namespace detail {
// The live tunables are three relaxed atomics (not a plain struct):
// set_backoff() is advertised for runtime sweeping, so it may race with
// backoff episodes snapshotting the values on the contended paths. Each
// field is individually clamped at write time, so even a sweep landing
// between two reads yields a usable (min >= 1) snapshot — at worst one
// episode mixes old and new fields.
struct backoff_state_t {
  std::atomic<uint32_t> min_spins;
  std::atomic<uint32_t> max_spins;
  std::atomic<uint32_t> help_delay;
};
inline backoff_state_t& backoff_state() noexcept {
  static backoff_tunables init = backoff_tunables_from_env();
  static backoff_state_t s{{init.min_spins}, {init.max_spins},
                           {init.help_delay}};
  return s;
}
}  // namespace detail

/// Snapshot of the process-wide tunables (initialized once from
/// FLOCK_BACKOFF_MIN / FLOCK_BACKOFF_MAX / FLOCK_HELP_DELAY).
inline backoff_tunables backoff_cfg() noexcept {
  auto& s = detail::backoff_state();
  // mo: relaxed (all three) — tunables only shape backoff timing, never
  // correctness; a mixed old/new snapshot is explicitly tolerated (see
  // the racing-sweep note above backoff_state_t).
  return {s.min_spins.load(std::memory_order_relaxed),
          s.max_spins.load(std::memory_order_relaxed),
          s.help_delay.load(std::memory_order_relaxed)};
}

/// Replace the live tunables (clamped). Safe to call while other threads
/// run lock traffic; benchmarks/tests can sweep without re-execing.
inline void set_backoff(backoff_tunables t) noexcept {
  t = clamp_backoff(t);
  auto& s = detail::backoff_state();
  // mo: relaxed (all three) — each field is clamped-valid on its own, so
  // readers need no cross-field ordering; see backoff_cfg.
  s.min_spins.store(t.min_spins, std::memory_order_relaxed);
  s.max_spins.store(t.max_spins, std::memory_order_relaxed);
  s.help_delay.store(t.help_delay, std::memory_order_relaxed);  // mo: ditto
}

}  // namespace flock
