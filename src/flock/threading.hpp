// threading.hpp — small dense thread ids with recycling.
//
// Epoch slots, announcement slots, and per-thread pools are all indexed by
// a dense id in [0, kMaxThreads). Ids are handed out on a thread's first
// use of the library and returned when the thread exits, so long-running
// test binaries that spawn thousands of short-lived threads never exhaust
// the id space.
//
// The id lives in the per-thread context (thread_context.hpp) together
// with every other per-thread structure; these wrappers are the stable
// public spelling.
#pragma once

#include "config.hpp"
#include "thread_context.hpp"

namespace flock {

/// Dense id of the calling thread in [0, kMaxThreads).
inline int thread_id() noexcept { return detail::my_ctx()->id; }

/// Exclusive upper bound on thread ids in use (for slot scans).
inline int thread_id_bound() noexcept {
  return detail::id_allocator::instance().high_water();
}

}  // namespace flock
