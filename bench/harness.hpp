// harness.hpp — shared benchmark harness for the figure-reproduction
// binaries. Reproduces the paper's §8 methodology at this machine's
// scale; all knobs are env-overridable:
//   FLOCK_BENCH_MS      timed window per point   (default 150 ms)
//   FLOCK_BENCH_REPS    repetitions averaged     (default 1; paper used 3)
//   FLOCK_MAX_THREADS   "all threads" point      (default hw concurrency)
//   FLOCK_LARGE_N       the paper's 100M-key axis (default 1M here)
//   FLOCK_SMALL_N       the paper's 100K-key axis (default 100K)
//
// Output format (stdout): one CSV row per measurement:
//   figure,series,x,mops
// Progress notes go to stderr.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "flock/flock.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"
#include "workload/zipf.hpp"

namespace bench {

inline long env_long(const char* name, long dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : dflt;
}

struct env {
  int ms = static_cast<int>(env_long("FLOCK_BENCH_MS", 150));
  int reps = static_cast<int>(env_long("FLOCK_BENCH_REPS", 1));
  int max_threads = static_cast<int>(env_long(
      "FLOCK_MAX_THREADS",
      static_cast<long>(std::thread::hardware_concurrency())));
  uint64_t large_n =
      static_cast<uint64_t>(env_long("FLOCK_LARGE_N", 1000000));
  uint64_t small_n =
      static_cast<uint64_t>(env_long("FLOCK_SMALL_N", 100000));
  // Oversubscription point: 1.5x the paper's 216/144; here 2x cores.
  int oversub_threads = static_cast<int>(
      env_long("FLOCK_OVERSUB_THREADS",
               2 * static_cast<long>(std::thread::hardware_concurrency())));
};

inline env& cfg() {
  static env e;
  return e;
}

inline void emit(const char* figure, const std::string& series, double x,
                 double mops) {
  std::printf("%s,%s,%g,%.3f\n", figure, series.c_str(), x, mops);
  std::fflush(stdout);
}

inline void note(const char* fmt, const std::string& s) {
  std::fprintf(stderr, fmt, s.c_str());
  std::fflush(stderr);
}

/// One measured point: construct (factory), prefill, run, average reps.
template <class Factory>
double measure(Factory&& make, bool blocking,
               const flock_workload::zipf_distribution& dist,
               uint64_t range, int threads, double update_percent) {
  flock::mode_guard mode(blocking);
  auto set = make();
  flock_workload::prefill_half(*set, range);
  double total = 0;
  flock_workload::run_config rc;
  rc.threads = threads;
  rc.update_percent = update_percent;
  rc.millis = cfg().ms;
  for (int r = 0; r < cfg().reps; r++) {
    auto res = flock_workload::run_mixed(*set, dist, rc);
    total += res.mops;
  }
  flock::epoch_manager::instance().flush();
  return total / cfg().reps;
}

/// Thread-axis sweep with one prefill per series (the structure stays at
/// ~half occupancy across balanced runs, matching the paper's steady
/// state).
template <class Factory>
void sweep_threads(const char* figure, const std::string& series,
                   Factory&& make, bool blocking, uint64_t range,
                   double update_percent, double alpha,
                   const std::vector<int>& threads) {
  note("  %s\n", series + " (thread sweep)");
  flock_workload::zipf_distribution dist(range, alpha);
  flock::mode_guard mode(blocking);
  auto set = make();
  flock_workload::prefill_half(*set, range);
  for (int t : threads) {
    flock_workload::run_config rc;
    rc.threads = t;
    rc.update_percent = update_percent;
    rc.millis = cfg().ms;
    double total = 0;
    for (int r = 0; r < cfg().reps; r++)
      total += flock_workload::run_mixed(*set, dist, rc).mops;
    emit(figure, series, t, total / cfg().reps);
  }
  flock::epoch_manager::instance().flush();
}

/// Update-percent axis.
template <class Factory>
void sweep_updates(const char* figure, const std::string& series,
                   Factory&& make, bool blocking, uint64_t range,
                   int threads, double alpha,
                   const std::vector<double>& updates) {
  note("  %s\n", series + " (update sweep)");
  flock_workload::zipf_distribution dist(range, alpha);
  flock::mode_guard mode(blocking);
  auto set = make();
  flock_workload::prefill_half(*set, range);
  for (double u : updates) {
    flock_workload::run_config rc;
    rc.threads = threads;
    rc.update_percent = u;
    rc.millis = cfg().ms;
    double total = 0;
    for (int r = 0; r < cfg().reps; r++)
      total += flock_workload::run_mixed(*set, dist, rc).mops;
    emit(figure, series, u, total / cfg().reps);
  }
  flock::epoch_manager::instance().flush();
}

/// Zipf-alpha axis (distribution tables rebuilt per alpha).
template <class Factory>
void sweep_alpha(const char* figure, const std::string& series,
                 Factory&& make, bool blocking, uint64_t range, int threads,
                 double update_percent, const std::vector<double>& alphas) {
  note("  %s\n", series + " (zipf sweep)");
  flock::mode_guard mode(blocking);
  auto set = make();
  flock_workload::prefill_half(*set, range);
  for (double a : alphas) {
    flock_workload::zipf_distribution dist(range, a);
    flock_workload::run_config rc;
    rc.threads = threads;
    rc.update_percent = update_percent;
    rc.millis = cfg().ms;
    double total = 0;
    for (int r = 0; r < cfg().reps; r++)
      total += flock_workload::run_mixed(*set, dist, rc).mops;
    emit(figure, series, a, total / cfg().reps);
  }
  flock::epoch_manager::instance().flush();
}

/// Structure-size axis (fresh structure per size).
template <class Factory>
void sweep_sizes(const char* figure, const std::string& series,
                 Factory&& make, bool blocking, int threads,
                 double update_percent, double alpha,
                 const std::vector<uint64_t>& sizes) {
  note("  %s\n", series + " (size sweep)");
  for (uint64_t n : sizes) {
    flock_workload::zipf_distribution dist(n, alpha);
    double m = measure(make, blocking, dist, n, threads, update_percent);
    emit(figure, series, static_cast<double>(n), m);
  }
}

// --- machine-readable output (BENCH_micro.json) ----------------------------
//
// Benchmarks that want their numbers tracked across PRs append
// series -> mops pairs here and call write_json() at exit; the driver
// compares the file against the previous PR's copy. Path overridable with
// FLOCK_BENCH_JSON.
class json_reporter {
 public:
  void add(const std::string& series, double mops) {
    series_.emplace_back(series, mops);
  }

  void write(const char* default_path = "BENCH_micro.json") {
    const char* path = std::getenv("FLOCK_BENCH_JSON");
    if (path == nullptr) path = default_path;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_reporter: cannot open %s\n", path);
      return;
    }
    std::fprintf(f, "{\n  \"series\": {\n");
    for (std::size_t i = 0; i < series_.size(); i++)
      std::fprintf(f, "    \"%s\": %.3f%s\n", series_[i].first.c_str(),
                   series_[i].second, i + 1 < series_.size() ? "," : "");
    flock::stats_snapshot s = flock::stats();
    std::fprintf(f,
                 "  },\n  \"stats\": {\n"
                 "    \"descriptors_created\": %llu,\n"
                 "    \"helps_attempted\": %llu,\n"
                 "    \"helps_run\": %llu,\n"
                 "    \"descriptors_reused\": %llu,\n"
                 "    \"helps_avoided\": %llu,\n"
                 "    \"backoff_spins\": %llu,\n"
                 "    \"alloc_failures\": %llu,\n"
                 "    \"resize_deferrals\": %llu,\n"
                 "    \"chaos_stalls\": %llu,\n"
                 "    \"chaos_kills\": %llu,\n"
                 "    \"chaos_alloc_fails\": %llu,\n"
                 "    \"svc_batches\": %llu,\n"
                 "    \"svc_batch_ops\": %llu,\n"
                 "    \"svc_batch_max\": %llu,\n"
                 "    \"svc_ring_full\": %llu,\n"
                 "    \"svc_depth_hw\": %llu\n"
                 "  }\n}\n",
                 static_cast<unsigned long long>(s.descriptors_created),
                 static_cast<unsigned long long>(s.helps_attempted),
                 static_cast<unsigned long long>(s.helps_run),
                 static_cast<unsigned long long>(s.descriptors_reused),
                 static_cast<unsigned long long>(s.helps_avoided),
                 static_cast<unsigned long long>(s.backoff_spins),
                 static_cast<unsigned long long>(s.alloc_failures),
                 static_cast<unsigned long long>(s.resize_deferrals),
                 static_cast<unsigned long long>(s.chaos_stalls),
                 static_cast<unsigned long long>(s.chaos_kills),
                 static_cast<unsigned long long>(s.chaos_alloc_fails),
                 static_cast<unsigned long long>(s.svc_batches),
                 static_cast<unsigned long long>(s.svc_batch_ops),
                 static_cast<unsigned long long>(s.svc_batch_max),
                 static_cast<unsigned long long>(s.svc_ring_full),
                 static_cast<unsigned long long>(s.svc_depth_hw));
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path);
  }

 private:
  std::vector<std::pair<std::string, double>> series_;
};

/// Default thread axis: powers up to max, plus oversubscribed points.
inline std::vector<int> thread_axis() {
  std::vector<int> v;
  for (int t = 1; t < cfg().max_threads; t *= 2) v.push_back(t);
  v.push_back(cfg().max_threads);
  v.push_back(3 * cfg().max_threads / 2);
  v.push_back(2 * cfg().max_threads);
  v.push_back(4 * cfg().max_threads);
  return v;
}

}  // namespace bench
