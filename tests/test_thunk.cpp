// Tests for the inline-storage thunk type.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>

#include "flock/flock.hpp"

namespace {

TEST(Thunk, InvokesSmallLambda) {
  flock::thunk t;
  int x = 41;
  t.emplace([x] { return x + 1 == 42; });
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(t());
}

TEST(Thunk, CapturesByValue) {
  flock::thunk t;
  {
    int local = 7;
    t.emplace([local] { return local == 7; });
    local = 8;  // must not affect the stored copy
  }
  EXPECT_TRUE(t());
}

TEST(Thunk, LargeCapturesFallBackToHeap) {
  flock::thunk t;
  std::array<uint64_t, 64> big{};  // 512 bytes > inline budget
  big[63] = 9;
  t.emplace([big] { return big[63] == 9; });
  EXPECT_TRUE(t());
}

TEST(Thunk, DestructorRunsCaptures) {
  static std::atomic<int> dtors{0};
  struct probe {
    bool moved = false;
    probe() = default;
    probe(const probe&) {}
    probe(probe&& o) noexcept { o.moved = true; }
    ~probe() {
      if (!moved) dtors.fetch_add(1);
    }
  };
  dtors.store(0);
  {
    flock::thunk t;
    probe p;
    t.emplace([p] {
      (void)&p;
      return true;
    });
  }
  // At least the stored copy was destroyed.
  EXPECT_GE(dtors.load(), 1);
}

TEST(Thunk, ReEmplaceReplaces) {
  flock::thunk t;
  t.emplace([] { return false; });
  t.emplace([] { return true; });
  EXPECT_TRUE(t());
}

TEST(Thunk, SharedPtrCaptureRefcount) {
  auto sp = std::make_shared<int>(5);
  flock::thunk t;
  t.emplace([sp] { return *sp == 5; });
  EXPECT_EQ(sp.use_count(), 2);
  EXPECT_TRUE(t());
  t.clear();
  EXPECT_EQ(sp.use_count(), 1);
}

}  // namespace
