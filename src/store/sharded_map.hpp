// sharded_map.hpp — the store tier: a router that partitions the key
// space across N independently-resizing hashtables. This is the
// composition step the lock-free-locks construction makes cheap (paper
// §1's "atomically move data among structures"; the survey direction in
// Cederman et al., "Lock-free Concurrent Data Structures"): each shard is
// a complete flock_ds::hashtable with its own bucket array, occupancy
// counter shards, migration cursor, and grow/shrink lifecycle, so
// counter traffic and resize migrations never cross a shard boundary —
// on a NUMA box, pin one shard per socket and the router is the only
// shared read. (Epoch reclamation stays runtime-global: it is per-thread
// state, not per-container, and already contention-free.)
//
// Routing: shard_of(k) takes the TOP log2(N) bits of splitmix64(k), while
// each shard's hashtable buckets index with the LOW bits of the same
// hash. Disjoint bit ranges keep the two decisions independent — the same
// lesson as the prefill-parity bug (workload/driver.hpp): any selector
// correlated with the bucket index bit-aliases entire bucket classes
// empty. With low-bit shard routing, shard s would only ever populate
// buckets whose index is congruent to s — every shard table 1/N empty.
//
// Cross-shard movement: try_move(sharded_map&, sharded_map&, k) routes
// both endpoints to their shard tables and runs the hashtable try_move —
// one nest of bucket critical sections ordered by bucket address, the
// acyclic-lock-order discipline of ds/move.hpp (Theorem 4.2), so it
// composes with in-flight resizes on either side. rebalance_into() loops
// that move to migrate a store onto a different shard layout online (see
// below).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "ds/hashtable.hpp"
#include "ds/move.hpp"
#include "flock/flock.hpp"
#include "store/read_cache.hpp"

namespace flock_store {

template <class K, class V, bool Strict>
class sharded_map;

template <class K, class V, bool Strict>
bool try_move(sharded_map<K, V, Strict>& from, sharded_map<K, V, Strict>& to,
              std::type_identity_t<K> k);

template <class K, class V, bool Strict = false>
class sharded_map {
 public:
  using shard_t = flock_ds::hashtable<K, V, Strict>;

  /// `shards` is rounded up to a power of two; `size_hint` is the
  /// expected TOTAL key count, split evenly across shards (each shard
  /// grows — and now shrinks — on its own, so both are optimizations,
  /// not capacities).
  explicit sharded_map(std::size_t shards = 8, std::size_t size_hint = 0) {
    std::size_t s = 1;
    while (s < shards) s <<= 1;
    shard_bits_ = 0;
    for (std::size_t b = s; b > 1; b >>= 1) shard_bits_++;
    shards_.reserve(s);
    for (std::size_t i = 0; i < s; i++)
      shards_.push_back(std::make_unique<shard_t>(size_hint / s));
  }

  bool insert(K k, V v) { return shard_for(k).insert(k, v); }
  bool remove(K k) { return shard_for(k).remove(k); }

  /// Read path: consult the per-thread memoized-read cache first (a hot
  /// zipf key resolves to one retirement-era compare plus one version
  /// load), then the shard table's optimistic find; any validated fast-path
  /// result — present OR absent — refreshes the cache. Writers invalidate
  /// for free via the bucket version bump, so no coordination with
  /// insert/remove/try_move or the migration engine is needed here. When
  /// the payload does not support seqlock snapshots this collapses to the
  /// plain routed find.
  std::optional<V> find(K k) {
    if constexpr (shard_t::kSeqlockReads) {
      // One hash serves every tier of the read path: shard routing (top
      // bits), memo-cache slot (middle bits), bucket index (low bits).
      const uint64_t h = shard_t::hash_of(k);
      // One guard across cache probe and fallback find: the armed
      // announcement pins reclamation for the cached version-word
      // dereference and for the probe the fill captures.
      flock::read_guard g;
      // Bucket-array retirement era, loaded AFTER the guard armed (a
      // retire racing an unpinned window could evade both checks) and
      // BEFORE the probe/lookup (so "era unchanged" at a later validation
      // proves no array entered the reclaimer since capture). Both
      // orderings carry the read_cache.hpp safety proof.
      // mo: acquire — pairs with retire_table's seq_cst bump.
      const uint64_t era =
          flock_ds::g_table_retire_era.load(std::memory_order_acquire);
      auto& cache = tls_read_cache<K, V>();
      auto& e = cache.slot_for(store_id_, h);
      if (const auto* hit = cache.lookup(e, store_id_, k, era))
        return hit->present ? std::optional<V>(hit->value) : std::nullopt;
      typename shard_t::read_probe probe;
      std::optional<V> r =
          shards_[shard_bits_ == 0 ? 0 : h >> (64 - shard_bits_)]->find(
              k, probe, h);
      if (probe.version != nullptr)
        cache.fill(e, store_id_, k, r, probe.version, probe.snapshot, era);
      return r;
    } else {
      return shard_for(k).find(k);
    }
  }

  /// Same-binary A/B hook (bench/micro_flock.cpp pr9_read_path): the
  /// routed find with the optimistic read path disabled — no read_guard,
  /// no memo cache, no seqlock snapshot; just the logged walk.
  std::optional<V> find_baseline(K k) { return shard_for(k).find_baseline(k); }

  /// Exact resident-key count: O(total buckets) epoch-guarded scan summed
  /// across shards (exact only at quiescence, like hashtable::size).
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->size();
    return n;
  }

  /// O(shards * kCountShards) estimate off the per-shard occupancy
  /// counters — the stats-line read; never touches a bucket.
  std::size_t approx_size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->approx_size();
    return n;
  }

  /// Total bucket capacity across shards (each shard reports the newest
  /// table of its own resize lifecycle).
  std::size_t bucket_count() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->bucket_count();
    return n;
  }

  /// Resizes initiated across all shards, by direction.
  std::size_t grow_count() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->grow_count();
    return n;
  }
  std::size_t shrink_count() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->shrink_count();
    return n;
  }

  template <class F>
  void for_each(F&& f) const {
    for (const auto& s : shards_) s->for_each(f);
  }

  /// Every shard's own chain/membership invariants, PLUS the router's:
  /// each resident key must live in the shard its hash routes to (a key
  /// in the wrong shard is unreachable through the public API — exactly
  /// the corruption a broken cross-shard move would leave behind).
  bool check_invariants() const {
    bool ok = true;
    for (std::size_t i = 0; i < shards_.size(); i++) {
      if (!shards_[i]->check_invariants()) ok = false;
      shards_[i]->for_each([&](K k, const V&) {
        if (shard_of(k) != i) ok = false;
      });
    }
    return ok;
  }

  std::size_t shard_count() const { return shards_.size(); }
  shard_t& shard(std::size_t i) { return *shards_[i]; }
  const shard_t& shard(std::size_t i) const { return *shards_[i]; }
  std::size_t shard_of(K k) const {
    return shard_bits_ == 0
               ? 0
               : static_cast<std::size_t>(flock_ds::splitmix64(
                     static_cast<uint64_t>(k)) >>
                                          (64 - shard_bits_));
  }

  struct rebalance_report {
    std::size_t moved = 0;       // keys that changed stores
    std::size_t settled = 0;     // definitively done (raced away/ahead)
    std::size_t exhausted = 0;   // still pending after the attempt budget
    bool budget_spent = false;   // stopped on `budget`, keys may remain
  };

  /// Online resharding hook: move up to `budget` resident keys into
  /// `dst` (typically the same data on a different shard layout), each
  /// via the validated cross-shard try_move, so no key is ever lost or
  /// duplicated even against concurrent updaters on both stores. Drives
  /// move_retry_ex and keeps its three outcomes separate: a key that
  /// raced away (removed, or already moved by a concurrent rebalancer)
  /// is settled, while an attempt-budget exhaustion is reported as
  /// pending — callers loop until a pass reports nothing moved and
  /// nothing exhausted. During a migration window readers must probe
  /// `*this` (the SOURCE) first and fall back to `dst` — the double-read
  /// discipline, implemented by the service tier's façade
  /// (src/service/service.hpp). Source-first is forced by the move's
  /// splice order: try_move publishes the key in the destination before
  /// hiding it in the source, so "absent in source" implies the
  /// destination publication already happened and the fallback probe
  /// must find it. Probing dst first admits a false miss (dst probed
  /// before the publication, source after the removal). The stores
  /// themselves stay individually consistent throughout.
  rebalance_report rebalance_into(sharded_map& dst, std::size_t budget,
                                  int attempts_per_key = 1 << 10) {
    rebalance_report rep;
    std::vector<K> batch;
    batch.reserve(budget);
    for (const auto& s : shards_) {
      if (batch.size() >= budget) break;
      // Early-exit scan: filling the batch costs O(budget), not
      // O(resident keys), so a budget-bounded pass stays bounded even
      // on a huge store.
      s->for_each_until([&](K k, const V&) {
        if (batch.size() >= budget) return false;
        batch.push_back(k);
        return true;
      });
    }
    rep.budget_spent = batch.size() >= budget;
    for (K k : batch) {
      switch (flock_ds::move_retry_ex(*this, dst, k, attempts_per_key)) {
        case flock_ds::move_outcome::moved:
          rep.moved++;
          break;
        case flock_ds::move_outcome::not_movable:
          rep.settled++;
          break;
        case flock_ds::move_outcome::exhausted:
          rep.exhausted++;
          break;
      }
    }
    return rep;
  }

 private:
  template <class K2, class V2, bool S2>
  friend bool try_move(sharded_map<K2, V2, S2>&, sharded_map<K2, V2, S2>&,
                       std::type_identity_t<K2>);

  shard_t& shard_for(K k) { return *shards_[shard_of(k)]; }

  std::vector<std::unique_ptr<shard_t>> shards_;
  std::size_t shard_bits_ = 0;
  // Process-unique identity for memoized-read entries (never recycled, so
  // a destroyed store's cache entries can never validate; read_cache.hpp).
  const uint64_t store_id_ = next_store_id();
};

/// Atomically move key `k` between two sharded stores (which may have
/// different shard counts — this is the resharding primitive). Routing on
/// each side picks the shard table; the rest is the hashtable try_move:
/// both splices inside one validated nest of bucket critical sections
/// ordered by bucket address, composing with in-flight grow/shrink on
/// either shard. Returns false — changing nothing — if k is absent in
/// `from`, already present in `to`, or any lock/validation fails
/// transiently (callers retry, e.g. via move_retry_ex in ds/move.hpp).
template <class K, class V, bool Strict>
bool try_move(sharded_map<K, V, Strict>& from, sharded_map<K, V, Strict>& to,
              std::type_identity_t<K> k) {
  if (&from == &to) return false;  // same store: routing is a no-op
  // Window: both endpoints routed, the nested bucket critical sections
  // not yet entered — the store tier's hand-off into the ds-tier nest.
  FLOCK_FAULTPOINT("store.move.pre_nest");
  return flock_ds::try_move(from.shard_for(k), to.shard_for(k), k);
}

}  // namespace flock_store
