// Edge cases of the faultpoint plan layer (chaos/faultpoint.hpp):
// unknown point names, re-arming while a plan is active, nested
// victim_scope, counters across re-interning, and the alloc-site-only
// contract of alloc_fail entries.
#include <gtest/gtest.h>

#include <cstdint>

#include "chaos/faultpoint.hpp"

namespace {

namespace chaos = flock_chaos;

// Ad-hoc points local to this test binary. Each call is one arrival at
// the named point (the macro registers the name on first use).
void cross_p1() { FLOCK_FAULTPOINT("test.edge.p1"); }
void cross_victim_pt() { FLOCK_FAULTPOINT("test.edge.victim"); }
bool cross_alloc() { return FLOCK_FAULTPOINT_ALLOC_FAIL("test.edge.alloc"); }

class FaultpointEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override { chaos::reset(); }
  void TearDown() override { chaos::reset(); }
};

TEST_F(FaultpointEdgeTest, UnknownPointNameArmsButNeverFires) {
  // Arming a name no code ever crosses is legal: it interns a registry
  // entry and sits there. Nothing fires, nothing counts, reset() clears.
  uint64_t stalls_before = chaos::stalls_injected();
  ASSERT_TRUE(chaos::arm("test.edge.nobody_crosses_this", chaos::fault::stall));
  cross_p1();  // traffic at a *different* point
  EXPECT_EQ(chaos::hits("test.edge.nobody_crosses_this"), 0u);
  EXPECT_EQ(chaos::stalls_injected(), stalls_before);
}

TEST_F(FaultpointEdgeTest, ReArmWhileActiveAppendsAnIndependentEntry) {
  uint64_t stalls_before = chaos::stalls_injected();
  chaos::arm_options a;
  a.nth = 1;
  a.stall_spins = 1;
  ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall, a));
  cross_p1();  // entry A fires on its 1st arrival
  EXPECT_EQ(chaos::stalls_injected(), stalls_before + 1);

  // Re-arm while the first plan is still active: the new entry appends
  // and counts arrivals from ITS arm time, independent of entry A.
  chaos::arm_options b;
  b.nth = 2;
  b.stall_spins = 1;
  ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall, b));
  cross_p1();  // A:2nd (past), B:1st (not yet)
  EXPECT_EQ(chaos::stalls_injected(), stalls_before + 1);
  cross_p1();  // A:3rd (past), B:2nd -> fires
  EXPECT_EQ(chaos::stalls_injected(), stalls_before + 2);
  EXPECT_EQ(chaos::hits("test.edge.p1"), 3u);
}

TEST_F(FaultpointEdgeTest, EntryTableFullIsReportedNotSilentlyDropped) {
  for (int i = 0; i < 6; i++)
    ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall,
                           {.nth = 1000, .stall_spins = 1}));
  EXPECT_FALSE(chaos::arm("test.edge.p1", chaos::fault::stall));
  chaos::reset();
  EXPECT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall,
                         {.nth = 1000, .stall_spins = 1}));
}

TEST_F(FaultpointEdgeTest, ZeroNthAndCountNormalizeToOne) {
  uint64_t stalls_before = chaos::stalls_injected();
  chaos::arm_options o;
  o.nth = 0;    // normalized to 1
  o.count = 0;  // normalized to 1
  o.stall_spins = 1;
  ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall, o));
  cross_p1();
  cross_p1();
  EXPECT_EQ(chaos::stalls_injected(), stalls_before + 1);  // fired once, 1st
}

TEST_F(FaultpointEdgeTest, NestedVictimScopeRestoresOuterMarking) {
  uint64_t stalls_before = chaos::stalls_injected();
  chaos::arm_options o;
  o.victim_only = true;
  o.nth = 1;
  o.count = 100;
  o.stall_spins = 1;
  ASSERT_TRUE(chaos::arm("test.edge.victim", chaos::fault::stall, o));

  cross_victim_pt();  // not a victim: filtered, does not even count
  EXPECT_EQ(chaos::stalls_injected(), stalls_before);

  {
    chaos::victim_scope outer;
    {
      chaos::victim_scope inner;  // nested scope (helper re-entry pattern)
      cross_victim_pt();          // victim: fires
    }
    // The inner scope's exit must RESTORE the outer marking, not clear
    // it: still a victim here.
    cross_victim_pt();  // fires
  }
  cross_victim_pt();  // scope closed: filtered again
  EXPECT_EQ(chaos::stalls_injected(), stalls_before + 2);
}

TEST_F(FaultpointEdgeTest, CountersSurviveReInterning) {
  // Every arm()/hits() call re-looks-up the name; all of them must land
  // on the same interned point_state, so arrival counters accumulate
  // across separate arm calls and only reset() zeroes them.
  ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall,
                         {.nth = 1000, .stall_spins = 1}));
  cross_p1();
  cross_p1();
  EXPECT_EQ(chaos::hits("test.edge.p1"), 2u);
  ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::stall,
                         {.nth = 1000, .stall_spins = 1}));
  cross_p1();
  EXPECT_EQ(chaos::hits("test.edge.p1"), 3u);  // same state, kept counting
  chaos::reset();
  EXPECT_EQ(chaos::hits("test.edge.p1"), 0u);
  cross_p1();  // disarmed: arrivals are not counted
  EXPECT_EQ(chaos::hits("test.edge.p1"), 0u);
}

TEST_F(FaultpointEdgeTest, AllocFailOnlyHonoredAtAllocSites) {
  uint64_t fails_before = chaos::alloc_fails_injected();
  // An alloc_fail entry armed at a NON-alloc site is ignored entirely —
  // it neither fires nor consumes its arrival budget there.
  ASSERT_TRUE(chaos::arm("test.edge.p1", chaos::fault::alloc_fail));
  cross_p1();
  cross_p1();
  EXPECT_EQ(chaos::alloc_fails_injected(), fails_before);

  // At a real alloc site the same plan shape fires and the site reports
  // failure exactly count times.
  chaos::arm_options o;
  o.nth = 2;
  o.count = 1;
  ASSERT_TRUE(chaos::arm("test.edge.alloc", chaos::fault::alloc_fail, o));
  EXPECT_FALSE(cross_alloc());  // 1st arrival: below nth
  EXPECT_TRUE(cross_alloc());   // 2nd: fails
  EXPECT_FALSE(cross_alloc());  // 3rd: budget spent
  EXPECT_EQ(chaos::alloc_fails_injected(), fails_before + 1);
}

TEST_F(FaultpointEdgeTest, SchedpointHasNoRegistryFootprint) {
  // FLOCK_SCHEDPOINT is scheduler-only: no interning, no counters, and
  // with no hook installed it must be a no-op even with plans armed
  // elsewhere under the same prefix.
  ASSERT_TRUE(chaos::arm("test.edge.sp", chaos::fault::stall));
  uint64_t stalls_before = chaos::stalls_injected();
  FLOCK_SCHEDPOINT("test.edge.sp");
  EXPECT_EQ(chaos::stalls_injected(), stalls_before);
  EXPECT_EQ(chaos::hits("test.edge.sp"), 0u);
}

}  // namespace
