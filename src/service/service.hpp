// service.hpp — the batched asynchronous serving front end over the
// store tier: MPSC request rings + flat-combining batch execution.
//
// Shape (the one a real serving system has): clients enqueue POD request
// records (request.hpp) onto bounded per-ring MPSC queues
// (ring_queue.hpp) and wait on client-owned completion slots; the
// consumer side dequeues *batches* and executes the whole batch against
// sharded_map under a single epoch entry. Two things make the batch
// cheaper than the same ops issued directly:
//
//  * Amortized entry: one `with_epoch` brackets the whole batch, so
//    every inner epoch entry (each op's with_epoch, each find's
//    read_guard) nests for free — the per-op seq_cst announce that
//    dominates a warm op's fixed cost is paid once per batch.
//  * Flat combining: rings are shard-affine (all keys of a shard land in
//    one ring), and a per-ring combiner lock serializes consumers — so N
//    clients hammering a hot shard become ONE thread executing their
//    combined batch without lock contention, helping traffic, or
//    descriptor churn. Waiting clients do not burn their time slice
//    polling: submit-and-wait tries to BECOME the combiner (drain the
//    ring itself) whenever the lock is free, so the pipeline needs no
//    dedicated server thread to make progress — dedicated servers
//    (serve()) are an optional deployment shape, not a liveness
//    requirement.
//
// Where each of the two actually pays (measured, bench/
// service_pipeline.cpp; recorded in BENCH_micro.json `pr10_service`):
// with BLOCKING locks under oversubscription, direct callers collapse —
// a client preempted while holding a bucket lock stalls every other
// thread that wants that bucket for the rest of its quantum (14.0 ->
// 3.9 Mops from 1 to 16 clients on the 1-core box) — while the combiner
// lock keeps at most one thread executing store ops at a time, so
// bucket locks stay uncontended and the sleeping waiters keep the
// runqueue short; the piped side holds ~5-6.5 Mops for 1.48x direct at
// 16 clients. With LOCK-FREE locks the
// runtime already absorbs preemption by helping — the paper's own
// mechanism — so the pipeline's ring round trip is pure overhead there
// and the direct path wins; the service tier earns its cost in blocking
// deployments, under real multicore contention, or when the async API
// itself is the point. The epoch amortization is real but small on this
// box (~4%): sticky read_guard announcements already amortized the
// seq_cst entry for reads.
//
// Batch execution order: reads first, grouped (each through the
// memoized-read cache and the optimistic find path), then writes.
// Within one batch a read may therefore be served before an
// earlier-enqueued write from a DIFFERENT client; a client that needs
// read-your-write orders its own requests by waiting for the write's
// completion before submitting the read (the closed-loop helpers do
// exactly that). Completion publication is per-op and exactly-once: the
// ring hands each record to exactly one drain, and a drain publishes
// each popped record once — a parked (chaos-killed) combiner still owns
// its popped batch and completes it on release, which the chaos tests
// assert window by window.
//
// Double-read façade (the pending item from sharded_map::rebalance_into):
// during a live rebalance window — begin_rebalance(dst) armed, a
// rebalancer looping rebalance_step() — service-tier reads probe the
// PRIMARY first and fall back to the rebalance target. Source-first is
// load-bearing, not a style choice: the cross-store move publishes the
// key in the destination strictly BEFORE hiding it in the source
// (hashtable try_move: `tprev->next = moved` precedes `fcur->removed =
// true`, and the idempotence log preserves that effect order across
// helper replays), so a key mid-move is visible in at least one store at
// every instant. Probing source first makes that airtight: "absent in
// source" linearizes after the source-side removal, which the move
// orders after the destination-side publication — so the destination
// probe that follows must find the key. The reverse order (destination
// first) admits a miss: destination probed before the publication,
// source probed after the removal. Writes during a window route to the
// primary (inserts) or to both stores (removes — the key may live on
// either side); callers quiesce writes and loop rebalance_step to
// drained before cutting over, the same discipline rebalance_into
// documents.
//
// Fault points (FLOCK_CHAOS test builds only, erased otherwise):
//   svc.enqueue.post_push   request published to the ring, submitter not
//                           yet waiting (a killed CLIENT leaves a request
//                           the combiner must still complete)
//   svc.drain.post_pop      batch popped, not yet executed (a killed
//                           combiner owns in-flight requests; release
//                           resumes and completes them exactly once)
//   svc.exec.pre_complete   op executed, completion not yet published
//                           (the hardest window: work done, waiter blind)
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "flock/flock.hpp"
#include "service/request.hpp"
#include "service/ring_queue.hpp"
#include "store/sharded_map.hpp"

namespace flock_service {

/// Log2-bucketed counter histogram for batch sizes and queue depths
/// (bucket 0 counts zeros, bucket i counts [2^(i-1), 2^i)). Relaxed
/// single-word adds; monitoring only, like the flock stat counters.
struct histogram {
  static constexpr int kBuckets = 17;  // zeros + values up to 2^15, + tail
  std::atomic<uint64_t> buckets[kBuckets] = {};

  static int bucket_of(uint64_t v) {
    const int b = v == 0 ? 0 : std::bit_width(v);
    return b < kBuckets ? b : kBuckets - 1;
  }
  void add(uint64_t v) {
    // mo: relaxed — monitoring counter; no ordering with the observed
    // event is needed.
    buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count(int b) const {
    // mo: relaxed — monitoring read, same contract as add.
    return buckets[b].load(std::memory_order_relaxed);
  }
};

template <class K, class V, bool Strict = false>
class service {
 public:
  using store_t = flock_store::sharded_map<K, V, Strict>;
  using request_t = request<K, V>;
  using completion_t = completion<V>;

  struct options {
    std::size_t rings = 1;          // rounded to a power of two <= shards
    std::size_t ring_capacity = 1024;  // per ring, rounded to a power of two
    std::size_t max_batch = 64;        // drain bound per combining pass
  };

  explicit service(store_t& primary, options o = {}) : primary_(primary) {
    std::size_t r = 1;
    while (r < o.rings) r <<= 1;
    // Shard affinity: ring index is a suffix of the shard index, so one
    // shard's keys never split across rings; more rings than shards would
    // leave the excess permanently empty.
    if (r > primary.shard_count()) r = primary.shard_count();
    max_batch_ = o.max_batch == 0 ? 1 : o.max_batch;
    rings_.reserve(r);
    for (std::size_t i = 0; i < r; i++)
      rings_.push_back(
          std::make_unique<ring_state>(o.ring_capacity, max_batch_));
  }

  store_t& store() { return primary_; }
  std::size_t ring_count() const { return rings_.size(); }
  std::size_t ring_of(K k) const {
    return primary_.shard_of(k) & (rings_.size() - 1);
  }

  /// Non-blocking async submit. The caller must have arm()ed
  /// `r.done` and keep both the completion and any referenced storage
  /// alive until the completion publishes. Returns false on a full ring
  /// (backpressure — the request was NOT enqueued and is retryable;
  /// counted in svc_ring_full).
  bool try_submit(const request_t& r) { return try_submit_to(ring_of(r.key), r); }

  /// Closed-loop helpers: submit one op and combine while waiting. These
  /// make the service a drop-in Set for the workload driver (run_mixed /
  /// run_churn drive them as closed-loop clients).
  /// In the degenerate no-combining configuration (max_batch == 1) the
  /// sync helpers skip the completion slot too: the caller IS the
  /// executor, so the result can flow back as a return value instead of
  /// a publish/ready round trip through an atomic stack slot. execute()
  /// keeps the full completion contract at any max_batch for callers
  /// that hold their own slots.
  std::optional<V> find(K k) {
    if (max_batch_ == 1) return facade_find(k);
    completion_t c;
    execute({op_kind::find, k, V{}, &c});
    return c.ok ? std::optional<V>(c.value) : std::nullopt;
  }
  bool insert(K k, V v) {
    if (max_batch_ == 1)
      return execute_write({op_kind::insert, k, v, nullptr});
    completion_t c;
    execute({op_kind::insert, k, v, &c});
    return c.ok;
  }
  bool remove(K k) {
    if (max_batch_ == 1)
      return execute_write({op_kind::remove, k, V{}, nullptr});
    completion_t c;
    execute({op_kind::remove, k, V{}, &c});
    return c.ok;
  }
  /// Move `k` from the primary into the armed rebalance target through
  /// the pipeline (false when no window is armed or the key raced away).
  bool move_to_target(K k) {
    if (max_batch_ == 1)
      return execute_write({op_kind::move, k, V{}, nullptr});
    completion_t c;
    execute({op_kind::move, k, V{}, &c});
    return c.ok;
  }

  /// Submit-and-wait with combining: push (helping drain a full ring
  /// through the backpressure), then alternate "am I done?" with "can I
  /// be the combiner?" — a waiting client either makes global progress
  /// or yields, never spins the ring hot.
  ///
  /// Degenerate configuration: max_batch == 1 turns combining off, and a
  /// combining pass of one op has all of the pipeline's fixed cost (ring
  /// round trip, combiner handoff, batch accounting) and none of its
  /// benefit — so the closed-loop path executes inline instead, with the
  /// same façade semantics and the same completion contract. "No
  /// batching" then costs what a direct store call costs. Async submits
  /// (try_submit + drain/serve) flow through the ring at any max_batch.
  ///
  /// The queued path lives in a separate noinline member: with the ring
  /// loops (and transitively the whole combining pass) folded into
  /// execute(), the inliner gave up on the entire chain and every
  /// degenerate-mode op paid a spilled out-of-line call — measured ~0.65x
  /// a direct store call where the same work hand-inlined costs ~1.0x.
  void execute(request_t r) {
    r.done->arm();
    if (max_batch_ == 1) {
      if (r.kind == op_kind::find) {
        std::optional<V> f = facade_find(r.key);
        publish(r, f.has_value(), f.has_value() ? *f : V{});
      } else {
        publish(r, execute_write(r), V{});
      }
      return;
    }
    execute_queued(r);
  }

#if defined(__GNUC__)
  __attribute__((noinline))
#endif
  void execute_queued(request_t r) {
    const std::size_t ri = ring_of(r.key);
    while (!try_submit_to(ri, r)) drain(ri);
    // Waiting discipline: combine if possible, then yield a couple of
    // times, then back off to real sleeps. On an oversubscribed core the
    // sleeps are load-bearing: yield-spinning waiters stay runnable and
    // force a context-switch rotation through every waiter each time the
    // combiner is preempted, and that churn — not the ring round trip —
    // is what caps pipelined throughput under oversubscription. Sleeping
    // waiters leave the runqueue, so the combiner gets whole quanta, and
    // a waiter that wakes while the combiner is parked drains the ring
    // itself (progress never depends on the sleeper's timer).
    int idle = 0;
    while (!r.done->ready()) {
      if (drain(ri) != 0) {
        idle = 0;
        continue;
      }
      if (r.done->ready()) break;
      ++idle;
      if (idle <= 2) {
        std::this_thread::yield();
      } else {
        const int shift = idle - 3 < 4 ? idle - 3 : 4;
        std::this_thread::sleep_for(std::chrono::microseconds(50L << shift));
      }
    }
  }

  /// One combining pass over ring `ri`: try to take the combiner lock,
  /// pop a batch, execute it under a single epoch entry, publish the
  /// completions. Returns the number of requests executed (0 when the
  /// ring was empty or another combiner holds the lock).
  std::size_t drain(std::size_t ri) {
    ring_state& rs = *rings_[ri];
    // mo: acquire — combiner lock: pairs with the release below, ordering
    // the previous combiner's consumer-side ring state (head index,
    // scratch batch) before this pass reuses them.
    if (rs.combiner.exchange(1, std::memory_order_acquire) != 0) return 0;
    const std::size_t n = rs.q.pop_up_to(rs.batch.get(), max_batch_);
    if (n != 0) {
      // Window: batch popped and owned by this combiner, nothing
      // executed. A kill here parks the combiner holding both the lock
      // and the in-flight requests; release resumes and completes them.
      FLOCK_FAULTPOINT("svc.drain.post_pop");
      execute_batch(rs.batch.get(), n);
      namespace fd = flock::detail;
      // mo: relaxed (both) — monotonic monitoring counters.
      fd::g_svc_batches.fetch_add(1, std::memory_order_relaxed);
      fd::g_svc_batch_ops.fetch_add(n, std::memory_order_relaxed);
      fd::bump_max(fd::g_svc_batch_max, n);
      batch_hist_.add(n);
    }
    // mo: release — hands the consumer-side state to the next combiner's
    // acquire exchange.
    rs.combiner.store(0, std::memory_order_release);
    return n;
  }

  /// Dedicated server loop: round-robin drain of the rings owned by
  /// server `id` of `servers` (ring i belongs to server i % servers),
  /// yielding when a full sweep found nothing. Optional — clients combine
  /// on their own — but it models the deployment where server threads own
  /// shard-affine rings and absorb the execution work entirely. After
  /// `stop`, one final sweep completes anything already enqueued.
  void serve(std::size_t id, std::size_t servers,
             const std::atomic<bool>& stop) {
    if (servers == 0) servers = 1;
    // mo: acquire — stop release-stored by the controller; ordering here
    // guarantees the final sweep below sees every push that
    // happened-before the stop store.
    while (!stop.load(std::memory_order_acquire)) {
      std::size_t did = 0;
      for (std::size_t r = id; r < rings_.size(); r += servers)
        did += drain(r);
      if (did == 0) std::this_thread::yield();
    }
    for (std::size_t r = id; r < rings_.size(); r += servers)
      while (drain(r) != 0) {
      }
  }

  // --- double-read façade over a live rebalance window ----------------------

  /// Arm the window: service-tier reads now fall back to `dst`, writes
  /// become window-aware (see the header comment). `dst` must outlive
  /// the window.
  void begin_rebalance(store_t& dst) {
    // mo: release — publishes the target's construction to the acquire
    // loads on the read/write paths.
    rebalance_dst_.store(&dst, std::memory_order_release);
  }

  /// One budgeted migration pass primary -> target (a thin wrapper over
  /// rebalance_into so the rebalancer can run as just another client of
  /// the service object). Callers loop until a pass reports nothing
  /// moved and nothing exhausted, then end_rebalance().
  typename store_t::rebalance_report rebalance_step(
      std::size_t budget, int attempts_per_key = 1 << 10) {
    store_t* dst = rebalance_target();
    if (dst == nullptr) return {};
    return primary_.rebalance_into(*dst, budget, attempts_per_key);
  }

  void end_rebalance() {
    // mo: release — symmetric with begin_rebalance; the null store only
    // retracts the fallback.
    rebalance_dst_.store(nullptr, std::memory_order_release);
  }

  store_t* rebalance_target() const {
    // mo: acquire — pairs with begin_rebalance's release store; a
    // non-null target's construction happens-before any probe of it.
    return rebalance_dst_.load(std::memory_order_acquire);
  }

  const histogram& batch_histogram() const { return batch_hist_; }
  const histogram& depth_histogram() const { return depth_hist_; }

 private:
  struct alignas(64) ring_state {
    ring_queue<request_t> q;
    std::atomic<uint32_t> combiner{0};  // 0 = free; serializes consumers
    // Drain scratch, guarded by the combiner lock (handed combiner to
    // combiner through its acquire/release pair).
    std::unique_ptr<request_t[]> batch;
    ring_state(std::size_t cap, std::size_t max_batch)
        : q(cap), batch(new request_t[max_batch]) {}
  };

  bool try_submit_to(std::size_t ri, const request_t& r) {
    ring_state& rs = *rings_[ri];
    if (!rs.q.try_push(r)) {
      // mo: relaxed — monotonic monitoring counter.
      flock::detail::g_svc_ring_full.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t depth = rs.q.approx_size();
    flock::detail::bump_max(flock::detail::g_svc_depth_hw, depth);
    depth_hist_.add(depth);
    // Window: request visible to combiners, submitter not yet waiting.
    FLOCK_FAULTPOINT("svc.enqueue.post_push");
    return true;
  }

  /// Execute one popped batch under ONE epoch entry: reads first, grouped
  /// (through the memo cache / optimistic path), then writes. Inner epoch
  /// entries (each op's with_epoch, each find's read_guard) nest for
  /// free under the outer region.
  void execute_batch(request_t* b, std::size_t n) {
    flock::with_epoch([&] {
      for (std::size_t i = 0; i < n; i++) {
        if (b[i].kind != op_kind::find) continue;
        std::optional<V> r = facade_find(b[i].key);
        publish(b[i], r.has_value(), r.has_value() ? *r : V{});
      }
      for (std::size_t i = 0; i < n; i++) {
        if (b[i].kind == op_kind::find) continue;
        publish(b[i], execute_write(b[i]), V{});
      }
      return true;
    });
  }

  static void publish(request_t& r, bool ok, V v) {
    // Window: op executed, completion unpublished — the waiter is blind
    // to finished work until the release store in publish().
    FLOCK_FAULTPOINT("svc.exec.pre_complete");
    r.done->publish(ok, v);
  }

  /// Source-first double read (see the header comment for why this order
  /// cannot miss a mid-move key, and why destination-first can).
  std::optional<V> facade_find(K k) {
    std::optional<V> r = primary_.find(k);
    if (!r.has_value()) {
      store_t* dst = rebalance_target();
      if (dst != nullptr) r = dst->find(k);
    }
    return r;
  }

  bool execute_write(const request_t& r) {
    switch (r.kind) {
      case op_kind::insert:
        // Window writes land in the primary; the rebalance loop carries
        // them over (callers quiesce writes before cutover).
        return primary_.insert(r.key, r.value);
      case op_kind::remove: {
        // The key may live on either side of a live window: apply to
        // both (set semantics — removed iff it was resident anywhere).
        const bool a = primary_.remove(r.key);
        store_t* dst = rebalance_target();
        const bool b = dst != nullptr && dst->remove(r.key);
        return a || b;
      }
      case op_kind::move: {
        store_t* dst = rebalance_target();
        return dst != nullptr &&
               flock_ds::move_retry_ex(primary_, *dst, r.key, 1 << 10) ==
                   flock_ds::move_outcome::moved;
      }
      case op_kind::find:
        break;  // handled in the read group
    }
    return false;
  }

  store_t& primary_;
  std::atomic<store_t*> rebalance_dst_{nullptr};
  std::vector<std::unique_ptr<ring_state>> rings_;
  std::size_t max_batch_ = 64;
  histogram batch_hist_;
  histogram depth_hist_;
};

}  // namespace flock_service
