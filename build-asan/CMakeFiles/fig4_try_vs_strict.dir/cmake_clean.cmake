file(REMOVE_RECURSE
  "CMakeFiles/fig4_try_vs_strict.dir/bench/fig4_try_vs_strict.cpp.o"
  "CMakeFiles/fig4_try_vs_strict.dir/bench/fig4_try_vs_strict.cpp.o.d"
  "fig4_try_vs_strict"
  "fig4_try_vs_strict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_try_vs_strict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
