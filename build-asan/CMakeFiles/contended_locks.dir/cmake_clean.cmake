file(REMOVE_RECURSE
  "CMakeFiles/contended_locks.dir/bench/contended_locks.cpp.o"
  "CMakeFiles/contended_locks.dir/bench/contended_locks.cpp.o.d"
  "contended_locks"
  "contended_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contended_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
