# Empty compiler generated dependencies file for fig7_lists.
# This may be replaced when dependencies are built.
