// leaftreap.hpp — leaf-oriented tree with fat leaves (paper §7: "a
// leaf-oriented balanced BST (leaftreap) with an optimization that stores
// a batch of key-value pairs (up to 2 cachelines worth) in each leaf to
// minimize height").
//
// The fat-leaf batching is implemented as described: leaves are immutable
// batches of up to B key/value pairs (B = 8 ≈ two cache lines of 8-byte
// pairs); point updates copy-on-write the leaf and swap one parent slot
// under one lock; a full leaf splits into two around a median separator.
//
// Substitution (DESIGN.md §5): separator placement uses median splits —
// balanced in expectation under the benchmarks' random/hashed keys —
// instead of treap priorities with rotations.
#pragma once

#include <algorithm>
#include <optional>

#include "flock/flock.hpp"

namespace flock_ds {

template <class K, class V, bool Strict = false, int B = 8>
class leaftreap {
  static_assert(B >= 2);

  struct node {
    const bool is_leaf;
    explicit node(bool leaf) : is_leaf(leaf) {}
  };

  // Immutable batch: all mutation is copy-on-write. Every constructor
  // fully builds the batch, so idempotent allocation commits only
  // finished objects (losers of the commit are discarded whole; nothing
  // is ever written to a batch after it is published).
  struct batch : node {
    int count;
    K keys[B];
    V vals[B];

    batch(K k, V v) : node(true), count(1) {
      keys[0] = k;
      vals[0] = v;
    }
    // src + (k,v), sorted; caller guarantees space and absence.
    batch(const batch& src, K k, V v) : node(true) {
      int i = 0, j = 0;
      while (i < src.count && src.keys[i] < k) {
        keys[j] = src.keys[i];
        vals[j] = src.vals[i];
        i++;
        j++;
      }
      keys[j] = k;
      vals[j] = v;
      j++;
      while (i < src.count) {
        keys[j] = src.keys[i];
        vals[j] = src.vals[i];
        i++;
        j++;
      }
      count = j;
    }
    // src - k.
    batch(const batch& src, K k) : node(true) {
      int j = 0;
      for (int i = 0; i < src.count; i++) {
        if (src.keys[i] == k) continue;
        keys[j] = src.keys[i];
        vals[j] = src.vals[i];
        j++;
      }
      count = j;
    }
    // Range copy.
    batch(const K* ks, const V* vs, int n) : node(true), count(n) {
      for (int i = 0; i < n; i++) {
        keys[i] = ks[i];
        vals[i] = vs[i];
      }
    }
  };

  struct internal : node {
    const K key;
    flock::mutable_<node*> left;
    flock::mutable_<node*> right;
    flock::write_once<bool> removed;
    flock::lock lck;
    internal(K k, node* l, node* r) : node(false), key(k) {
      left.init(l);
      right.init(r);
      removed.init(false);
    }
  };

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

  static internal* as_int(node* n) { return static_cast<internal*>(n); }
  static batch* as_leaf(node* n) { return static_cast<batch*>(n); }

  static int find_in(const batch* b, K k) {
    for (int i = 0; i < b->count; i++)
      if (b->keys[i] == k) return i;
    return -1;
  }

 public:
  leaftreap() { root_ = flock::pool_new<internal>(K{}, nullptr, nullptr); }

  ~leaftreap() {
    destroy(root_->left.read_raw());
    flock::pool_delete(root_);
  }

  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      node* n = root_->left.load();
      while (n != nullptr && !n->is_leaf)
        n = k < as_int(n)->key ? as_int(n)->left.load()
                               : as_int(n)->right.load();
      if (n == nullptr) return {};
      int i = find_in(as_leaf(n), k);
      if (i < 0) return {};
      return as_leaf(n)->vals[i];
    });
  }

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        auto [gp, p, l] = search(k);
        (void)gp;
        if (l == nullptr) {
          internal* rp = root_;
          if (acquire(rp->lck, [=] {
                if (rp->left.load() != nullptr) return false;
                rp->left = static_cast<node*>(flock::allocate<batch>(k, v));
                return true;
              }))
            return true;
          continue;
        }
        batch* lf = as_leaf(l);
        if (find_in(lf, k) >= 0) return false;
        internal* par = p;
        bool went_left = child_dir(par, k);
        if (acquire(par->lck, [=, this] {
              if (par != root_ && par->removed.load()) return false;
              flock::mutable_<node*>& slot =
                  went_left ? par->left : par->right;
              if (slot.load() != static_cast<node*>(lf)) return false;
              if (lf->count < B) {
                slot.store(copy_insert(lf, k, v));
              } else {
                slot.store(split_insert(lf, k, v));
              }
              flock::retire<batch>(lf);
              return true;
            }))
          return true;
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        auto [gp, p, l] = search(k);
        if (l == nullptr) return false;
        batch* lf = as_leaf(l);
        if (find_in(lf, k) < 0) return false;
        internal* par = p;
        if (lf->count > 1) {
          bool went_left = child_dir(par, k);
          if (acquire(par->lck, [=, this] {
                if (par != root_ && par->removed.load()) return false;
                flock::mutable_<node*>& slot =
                    went_left ? par->left : par->right;
                if (slot.load() != static_cast<node*>(lf)) return false;
                slot.store(copy_remove(lf, k));
                flock::retire<batch>(lf);
                return true;
              }))
            return true;
          continue;
        }
        // Last pair in the batch: splice like an external BST.
        if (par == root_) {
          internal* rp = root_;
          if (acquire(rp->lck, [=] {
                if (rp->left.load() != static_cast<node*>(lf)) return false;
                rp->left = static_cast<node*>(nullptr);
                flock::retire<batch>(lf);
                return true;
              }))
            return true;
          continue;
        }
        internal* g = gp;
        bool g_left = child_dir(g, k);
        bool p_left = child_dir(par, k);
        if (acquire(g->lck, [=, this] {
              return acquire(par->lck, [=, this] {
                if (g != root_ && g->removed.load()) return false;
                flock::mutable_<node*>& gslot = g_left ? g->left : g->right;
                if (gslot.load() != static_cast<node*>(par)) return false;
                flock::mutable_<node*>& pslot =
                    p_left ? par->left : par->right;
                if (pslot.load() != static_cast<node*>(lf)) return false;
                node* sibling =
                    p_left ? par->right.load() : par->left.load();
                par->removed = true;
                gslot.store(sibling);
                flock::retire<internal>(par);
                flock::retire<batch>(lf);
                return true;
              });
            }))
          return true;
      }
    });
  }

  /// Quiescent audits. ---------------------------------------------------
  std::size_t size() const { return count(root_->left.read_raw()); }

  bool check_invariants() const {
    bool ok = true;
    validate(root_->left.read_raw(), K{}, false, K{}, false, ok);
    return ok;
  }

  template <class F>
  void for_each(F&& f) const {
    walk(root_->left.read_raw(), f);
  }

 private:
  bool child_dir(internal* n, K k) const {
    return n == root_ || k < n->key;
  }

  std::tuple<internal*, internal*, node*> search(K k) {
    internal* gp = nullptr;
    internal* p = root_;
    node* n = root_->left.load();
    while (n != nullptr && !n->is_leaf) {
      gp = p;
      p = as_int(n);
      n = k < as_int(n)->key ? as_int(n)->left.load()
                             : as_int(n)->right.load();
    }
    return {gp, p, n};
  }

  // New batch = lf + (k,v), sorted. Caller guarantees space and absence.
  node* copy_insert(const batch* lf, K k, V v) {
    return flock::allocate<batch>(*lf, k, v);
  }

  node* copy_remove(const batch* lf, K k) {
    return flock::allocate<batch>(*lf, k);
  }

  // Full leaf: split around the median of the B+1 merged pairs.
  node* split_insert(const batch* lf, K k, V v) {
    K ks[B + 1];
    V vs[B + 1];
    int i = 0, j = 0;
    while (i < lf->count && lf->keys[i] < k) {
      ks[j] = lf->keys[i];
      vs[j] = lf->vals[i];
      i++;
      j++;
    }
    ks[j] = k;
    vs[j] = v;
    j++;
    while (i < lf->count) {
      ks[j] = lf->keys[i];
      vs[j] = lf->vals[i];
      i++;
      j++;
    }
    int half = (B + 1) / 2;
    batch* lo = flock::allocate<batch>(ks, vs, half);
    batch* hi = flock::allocate<batch>(ks + half, vs + half, (B + 1) - half);
    return flock::allocate<internal>(hi->keys[0], lo, hi);
  }

  static void destroy(node* n) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      flock::pool_delete(as_leaf(n));
      return;
    }
    destroy(as_int(n)->left.read_raw());
    destroy(as_int(n)->right.read_raw());
    flock::pool_delete(as_int(n));
  }

  static std::size_t count(node* n) {
    if (n == nullptr) return 0;
    if (n->is_leaf) return static_cast<std::size_t>(as_leaf(n)->count);
    return count(as_int(n)->left.read_raw()) +
           count(as_int(n)->right.read_raw());
  }

  static void validate(node* n, K lo, bool has_lo, K hi, bool has_hi,
                       bool& ok) {
    if (n == nullptr || !ok) return;
    if (n->is_leaf) {
      batch* b = as_leaf(n);
      if (b->count < 1 || b->count > B) {
        ok = false;
        return;
      }
      for (int i = 0; i < b->count; i++) {
        if (i > 0 && !(b->keys[i - 1] < b->keys[i])) ok = false;
        if (has_lo && b->keys[i] < lo) ok = false;
        if (has_hi && !(b->keys[i] < hi)) ok = false;
      }
      return;
    }
    internal* in = as_int(n);
    if (in->removed.read_raw()) {
      ok = false;
      return;
    }
    validate(in->left.read_raw(), lo, has_lo, in->key, true, ok);
    validate(in->right.read_raw(), in->key, true, hi, has_hi, ok);
  }

  template <class F>
  static void walk(node* n, F&& f) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      batch* b = as_leaf(n);
      for (int i = 0; i < b->count; i++) f(b->keys[i], b->vals[i]);
      return;
    }
    walk(as_int(n)->left.read_raw(), f);
    walk(as_int(n)->right.read_raw(), f);
  }

  internal* root_;
};

}  // namespace flock_ds
