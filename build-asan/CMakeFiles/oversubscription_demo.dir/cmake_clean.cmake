file(REMOVE_RECURSE
  "CMakeFiles/oversubscription_demo.dir/examples/oversubscription_demo.cpp.o"
  "CMakeFiles/oversubscription_demo.dir/examples/oversubscription_demo.cpp.o.d"
  "oversubscription_demo"
  "oversubscription_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversubscription_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
