// Figure 7 — singly and doubly linked lists: our lazylist and dlist
// (blocking + lock-free) vs Harris's lock-free list and the optimized
// Harris list whose finds do not help.
//
// Paper shapes: harris_list_opt fastest (~16% over lazylist-lf);
// dlist costs ~13% over lazylist (back pointers); lock-free versions of
// dlist/lazylist can beat blocking even WITHOUT oversubscription on
// small lists (left of panel a).
#include <memory>

#include "harness.hpp"

int main() {
  using namespace bench;
  const int th = cfg().max_threads;
  std::fprintf(stderr, "fig7: lists (threads=%d)\n", th);
  std::printf("figure,series,x,mops\n");

  auto mk_lazy = [] { return std::make_unique<flock_workload::lazylist_try>(); };
  auto mk_dlist = [] { return std::make_unique<flock_workload::dlist_try>(); };
  auto mk_harris = [] { return std::make_unique<flock_workload::harris>(); };
  auto mk_harris_opt = [] {
    return std::make_unique<flock_workload::harris_opt>();
  };

  // Panel a: size sweep at full subscription, 5% updates, alpha .75.
  std::fprintf(stderr, "panel a\n");
  const std::vector<uint64_t> sizes = {100, 400, 1600, 6400};
  sweep_sizes("fig7a", "harris_list", mk_harris, false, th, 5, 0.75, sizes);
  sweep_sizes("fig7a", "harris_list_opt", mk_harris_opt, false, th, 5, 0.75,
              sizes);
  sweep_sizes("fig7a", "lazylist-bl", mk_lazy, true, th, 5, 0.75, sizes);
  sweep_sizes("fig7a", "lazylist-lf", mk_lazy, false, th, 5, 0.75, sizes);
  sweep_sizes("fig7a", "dlist-bl", mk_dlist, true, th, 5, 0.75, sizes);
  sweep_sizes("fig7a", "dlist-lf", mk_dlist, false, th, 5, 0.75, sizes);

  // Panel b: thread sweep on a 100-key list, 5% updates.
  std::fprintf(stderr, "panel b\n");
  const uint64_t n = 100;
  const std::vector<int> threads = thread_axis();
  sweep_threads("fig7b", "harris_list", mk_harris, false, n, 5, 0.75, threads);
  sweep_threads("fig7b", "harris_list_opt", mk_harris_opt, false, n, 5, 0.75,
                threads);
  sweep_threads("fig7b", "lazylist-bl", mk_lazy, true, n, 5, 0.75, threads);
  sweep_threads("fig7b", "lazylist-lf", mk_lazy, false, n, 5, 0.75, threads);
  sweep_threads("fig7b", "dlist-bl", mk_dlist, true, n, 5, 0.75, threads);
  sweep_threads("fig7b", "dlist-lf", mk_dlist, false, n, 5, 0.75, threads);
  return 0;
}
