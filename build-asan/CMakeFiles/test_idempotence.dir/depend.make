# Empty dependencies file for test_idempotence.
# This may be replaced when dependencies are built.
