# Empty compiler generated dependencies file for test_hashtable_resize.
# This may be replaced when dependencies are built.
