// kv_store — a concurrent key-value service on the store tier: a
// flock_store::sharded_map routing the key space across N independently
// grow/shrink-resizing hashtables, driven through the full churn
// lifecycle a long-lived serving instance sees (insert-heavy ramp,
// delete-heavy drain, steady mixed traffic) with zipfian-skewed keys,
// switching lock modes at runtime.
//
//   $ ./kv_store [threads] [millis-per-phase] [shards]
#include <cstdio>
#include <cstdlib>

#include "flock/flock.hpp"
#include "store/sharded_map.hpp"
#include "workload/driver.hpp"
#include "workload/set_adapter.hpp"

namespace {

void print_phase(const char* name, const flock_workload::run_result& res,
                 const flock_workload::sharded_try& kv) {
  // Population via the O(#shards) counter read, not the O(n) scan — this
  // is a stats line, not an audit.
  std::printf(
      "  %-7s %6.2f Mop/s  (%llu ops: %llu finds, %llu ins, %llu rem; "
      "%llu applied)  ~%llu keys in %llu buckets\n",
      name, res.mops, static_cast<unsigned long long>(res.total_ops),
      static_cast<unsigned long long>(res.finds),
      static_cast<unsigned long long>(res.inserts),
      static_cast<unsigned long long>(res.removes),
      static_cast<unsigned long long>(res.successful_updates),
      static_cast<unsigned long long>(kv.approx_size()),
      static_cast<unsigned long long>(kv.underlying().bucket_count()));
}

}  // namespace

int main(int argc, char** argv) {
  int threads = argc > 1 ? std::atoi(argv[1])
                         : static_cast<int>(std::thread::hardware_concurrency());
  int millis = argc > 2 ? std::atoi(argv[2]) : 300;
  std::size_t shards =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 8;
  const uint64_t range = 100000;

  std::printf(
      "kv_store: sharded_map (%zu shards), %llu keys, %d threads, "
      "%d ms per phase\n",
      shards, static_cast<unsigned long long>(range), threads, millis);

  flock_workload::zipf_distribution dist(range, 0.9);

  for (bool blocking : {true, false}) {
    flock::set_blocking(blocking);
    // No capacity guess: every shard starts at its 64-bucket floor, grows
    // through the ramp, and shrinks back through the drain.
    flock_workload::sharded_try kv(shards);
    flock_workload::prefill_half(kv, range);

    std::printf("[%s]\n", blocking ? "blocking" : "lock-free");
    flock_workload::churn_config cc;
    cc.threads = threads;
    cc.ramp_millis = cc.steady_millis = millis;
    cc.drain_millis = 2 * millis;  // the tail of a zipf drain is slow

    std::size_t peak_buckets = 0;
    flock_workload::run_churn(
        kv, dist, cc,
        [&](const char* name, const flock_workload::run_result& res) {
          print_phase(name, res, kv);
          if (peak_buckets == 0) peak_buckets = kv.underlying().bucket_count();
        });

    std::printf(
        "  lifecycle: peak %llu buckets, now %llu; %llu grows, %llu "
        "shrinks across shards; invariants=%s\n",
        static_cast<unsigned long long>(peak_buckets),
        static_cast<unsigned long long>(kv.underlying().bucket_count()),
        static_cast<unsigned long long>(kv.underlying().grow_count()),
        static_cast<unsigned long long>(kv.underlying().shrink_count()),
        kv.check_invariants() ? "ok" : "BROKEN");
  }
  flock::epoch_manager::instance().flush();
  return 0;
}
