// Stats counters (flock/stats.hpp): creation/help/reuse accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

TEST(Stats, UncontendedLocksReuseDescriptors) {
  flock::set_blocking(false);
  flock::lock l;
  auto before = flock::stats();
  for (int i = 0; i < 1000; i++) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [] { return true; });
    });
  }
  auto after = flock::stats();
  // Every acquisition created a descriptor...
  EXPECT_GE(after.descriptors_created - before.descriptors_created, 1000u);
  // ...and with no contention, every one took the fast reuse path.
  EXPECT_GE(after.descriptors_reused - before.descriptors_reused, 1000u);
  EXPECT_EQ(after.helps_run - before.helps_run, 0u);
}

TEST(Stats, ContendedLocksRecordHelping) {
  flock::set_blocking(false);
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  auto before = flock::stats();
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 3000; i++) {
        flock::with_epoch([&] {
          return flock::try_lock(l, [x] {
            x->store(x->load() + 1);
            return true;
          });
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  auto after = flock::stats();
  EXPECT_GT(after.helps_attempted - before.helps_attempted, 0u);
  flock::pool_delete(x);
  flock::epoch_manager::instance().flush();
}

TEST(Stats, BlockingModeCreatesNoDescriptors) {
  flock::set_blocking(true);
  flock::lock l;
  auto before = flock::stats();
  for (int i = 0; i < 100; i++) {
    flock::with_epoch([&] {
      return flock::try_lock(l, [] { return true; });
    });
  }
  auto after = flock::stats();
  EXPECT_EQ(after.descriptors_created, before.descriptors_created);
  flock::set_blocking(false);
}

}  // namespace
