file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_map.dir/tests/test_sharded_map.cpp.o"
  "CMakeFiles/test_sharded_map.dir/tests/test_sharded_map.cpp.o.d"
  "test_sharded_map"
  "test_sharded_map.pdb"
  "test_sharded_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
