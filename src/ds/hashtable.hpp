// hashtable.hpp — separate-chaining hash table (paper §7 "a separate
// chaining hashtable") with incremental, non-blocking resizing — in BOTH
// directions — built out of the same lock-free locks.
//
// Layout: an epoch-protected `table` (bucket array + mask) hangs behind a
// flock::mutable_ root pointer. Each bucket is a sorted chain of lock-free
// nodes guarded by ONE lock on the bucket head; at load factor ~1 chains
// hold a node or two, so bucket-grained locking costs no more than the
// old per-predecessor scheme and gives migration a single point at which
// a whole bucket can be frozen. Buckets carry only {chain, forwarded
// flag, lock} and nodes only {chain, deleted flag, k, v} — no dead lock
// word on every key.
//
// Migration engine (forwarding marks in the spirit of Harris-style
// migration; one migration *unit* per lock-free-lock critical section).
// Grow and shrink are two policies over one mechanism — they share the
// successor install, the claim cursor, the forwarded-flag protocol, the
// migrated count, completion recovery, and the root swing; they differ
// only in the shape of a unit:
//  * grow  (2x successor):   unit u SPLITS old bucket u into successor
//    buckets u and u+n (one source per destination bucket);
//  * shrink (half successor): unit u MERGES old buckets u and u+n/2 into
//    successor bucket u, under both old-bucket locks nested in address
//    order, building the merged chain privately and publishing it with
//    ONE store before either forwarded flag is set (two sources per
//    destination, so the destination must appear atomically).
//
// Protocol:
//  * Occupancy is tracked in sharded counters bumped by successful
//    updates; every 16th update per shard re-evaluates the resize policy.
//    At load factor >= 1 an updater installs a 2x successor in
//    `root->next`; at load factor < 1/4 (and above the floor) a half-size
//    successor. The 1/4-vs-1 gap is the hysteresis band: right after a
//    grow the count is ~n/2 (needs to fall 2x before shrinking), right
//    after a shrink ~n/2 (needs to double before growing), so a steady
//    workload cannot thrash. Successors are only ever installed on the
//    root table, so at most one resize is in flight and a successor's
//    buckets cannot themselves forward while still receiving chains.
//  * Migration proceeds unit-by-unit. A unit's critical section copies
//    the frozen chain(s) into the successor (chains are sorted; a grow
//    splits on one hash bit and a shrink merges two disjoint sorted
//    chains, so sortedness is preserved), publishes the new chains,
//    retires the originals, and only then marks the old bucket(s)
//    "forwarded" (their write_once flags). Every step is idempotent, so
//    helpers can replay the thunk safely.
//  * Updaters re-validate the forwarded flag inside their own critical
//    section (same lock), so a forwarded bucket is frozen forever; any
//    operation that lands on one chases `table->next`. Updaters that
//    find a resize in progress migrate their own unit first (old
//    tables only ever drain) plus a small batch claimed from a shared
//    cursor — and keep helping while merely chasing, so the straggler
//    tail cannot serialize back-to-back resizes.
//  * Readers never lock and never help: chains are copied, not spliced,
//    so a scan that raced a migration still sees the frozen pre-forward
//    chain, and the forwarded flag is published only after the successor
//    chains are in place (see find() for the ordering argument).
//  * When the last bucket forwards, the winning migrator swings the root
//    to the successor and retires the drained table through the epoch
//    machinery (array-typed retire for the bucket array). Completion is
//    also re-derivable from the forwarded flags themselves (see
//    help_resize), so no single stalled thread can wedge the resize.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "flock/flock.hpp"

namespace flock_ds {

inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Process-wide count of bucket-array retirements (any table of any map),
/// bumped in retire_table BEFORE the array enters the epoch reclaimer.
/// This is the pointer-safety authority for memoized reads
/// (store/read_cache.hpp): a live table's bucket array can only ever be
/// freed through retire_table (the destructor frees arrays too, but a
/// destroyed map's entries are unreachable — owner ids are never reused),
/// so a reader that (1) arms its epoch announcement, (2) loads this era,
/// and then (3) observes the era unchanged at validation time knows the
/// array behind a memoized version pointer was never even SCHEDULED for
/// reclamation — it is alive, no matter how many epochs passed or how the
/// thread's announcement moved in between. A retirement concurrent with
/// step (3) cannot bite either: it happens at an epoch no older than the
/// reader's armed announcement, so the free stays blocked while the
/// reader is pinned.
inline constinit std::atomic<uint64_t> g_table_retire_era{0};

template <class K, class V, bool Strict>
class hashtable;

template <class K, class V, bool Strict>
bool try_move(hashtable<K, V, Strict>& from, hashtable<K, V, Strict>& to,
              std::type_identity_t<K> k);

template <class K, class V, bool Strict = false>
class hashtable {
  struct node;

  // --- optimistic read-path gate -----------------------------------------
  // The seqlock snapshot copies k/v with relaxed atomic_ref loads, and
  // node construction stores k/v with relaxed atomic_ref stores (see
  // node), so the by-design race between a stale-counter walk and a
  // writer building or recycling a node is an ATOMIC race — defined
  // behavior whose possibly-torn result the version validation discards —
  // not UB, and TSan sees no mixed access. That needs lock-free
  // atomic_ref coverage of the payload, plus TRIVIAL default
  // constructibility, which buys two things: the fast path (and the memo
  // cache's entry) materializes an empty snapshot slot before the walk
  // decides whether to keep it, and the constructor's default-init of k/v
  // is guaranteed to touch no memory, so the atomic stores are the ONLY
  // payload writes a racing reader can meet. Anything else takes the
  // logged walk unconditionally, exactly as every K/V did before the fast
  // path existed.
  template <class T>
  static constexpr bool seqlock_copyable() {
    if constexpr (std::is_trivially_copyable_v<T> && !std::is_const_v<T> &&
                  !std::is_reference_v<T> &&
                  std::is_trivially_default_constructible_v<T>) {
      return std::atomic_ref<T>::is_always_lock_free &&
             alignof(T) >= std::atomic_ref<T>::required_alignment;
    } else {
      return false;
    }
  }

 public:
  static constexpr bool kSeqlockReads =
      seqlock_copyable<K>() && seqlock_copyable<V>();

 private:

  /// Fields shared by a bucket head and a chain node: the link that a
  /// predecessor-of-cur may be either, and the freeze flag (a node's
  /// "deleted", a bucket's "forwarded") that validation reads through the
  /// same pointer.
  struct chain_head {
    flock::mutable_<node*> next;
    flock::write_once<bool> removed;
  };

  struct node : chain_head {
    // Not const under kSeqlockReads: construction goes through atomic_ref
    // stores (below), which need mutable fields. Nodes stay logically
    // immutable after construction either way — nothing assigns k or v.
    std::conditional_t<kSeqlockReads, K, const K> k;
    std::conditional_t<kSeqlockReads, V, const V> v;
    // Fast-path construction: an unlogged snapshot walk may read a node's
    // fields with relaxed atomic_ref loads while the pool recycles that
    // memory into a new node (the walk validates-then-discards), so the
    // constructor's stores must be atomic too — plain member init would
    // make that by-design race UB, and TSan flags exactly that pair.
    // Default-init of k/v is a guaranteed no-op (the gate requires
    // trivial default construction), so these are the only payload writes.
    node(K key, V val, node* nxt) requires(kSeqlockReads) {
      // Pre-publication stores: the chain edge that publishes the node
      // releases, and racing snapshot readers are ordered by the seqlock
      // validation, not by these stores.
      // mo: relaxed — both stores below (see above).
      std::atomic_ref<K>(k).store(key, std::memory_order_relaxed);
      std::atomic_ref<V>(v).store(val, std::memory_order_relaxed);
      this->next.init(nxt);
      this->removed.init(false);
    }
    node(K key, V val, node* nxt) requires(!kSeqlockReads)
        : k(key), v(val) {
      this->next.init(nxt);
      this->removed.init(false);
    }
  };

  struct bucket : chain_head {
    flock::lock lck;  // the bucket lock: every update to the chain and
                      // the bucket's one migration run under it
    // Seqlock entry/exit counter pair for the optimistic read path.
    // Every mutation of this bucket's chain — updates AND the bucket's
    // migration unit — is bracketed by ver_begin (ver_enter++) / ver_end
    // (ver_exit++) around its lock acquisition (the bumps are raw RMWs
    // and must stay OUTSIDE the idempotent thunk, see ver_begin). The
    // pair, not a single odd/even word, because brackets of CONTENDING
    // writers overlap: both bump before either holds the lock, and with
    // one word two entry bumps restore "even" while a critical section is
    // still in flight. With the pair, ver_enter == ver_exit certifies
    // every writer that ever entered has exited — quiescence survives any
    // interleaving of brackets. A reader that captures v1 = ver_exit,
    // sees ver_enter == v1, walks unlogged, and re-reads ver_enter == v1
    // holds a consistent snapshot; a single later reload of ver_enter
    // validating against the captured v1 proves the chain unchanged since
    // (read_probe / store/read_cache.hpp). 64-bit monotone: never wraps,
    // so validation is ABA-free.
    std::atomic<uint64_t> ver_enter{0};
    std::atomic<uint64_t> ver_exit{0};
  };

  struct table {
    std::size_t mask = 0;                   // buckets - 1 (power of two)
    bucket* buckets = nullptr;              // array_new<bucket>(mask + 1)
    flock::mutable_<table*> next;           // successor during a resize
    std::atomic<std::size_t> migrated{0};   // forwarded-bucket count
    std::atomic<std::size_t> cursor{0};     // shared migration claim cursor
    std::atomic<bool> resize_hint{false};   // an allocator is building `next`

    std::size_t nbuckets() const { return mask + 1; }
  };

  struct alignas(flock::kCacheLine) counter_shard {
    std::atomic<long long> n{0};    // occupancy delta owned by this shard
    std::atomic<uint64_t> ops{0};   // update tick (drives policy re-checks)
  };

  static constexpr std::size_t kMinBuckets = 64;
  static constexpr int kCountShards = 32;  // power of two
  static constexpr int kMigrateBatch = 8;  // units helped per update

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

  // --- seqlock writer brackets -------------------------------------------
  // The counter bumps are raw fetch_adds and therefore NOT idempotent, so
  // they must never execute inside a lock's thunk (helpers replay thunks;
  // a replayed bump would tear the entry/exit accounting). They bracket
  // the acquire() call instead, which is safe because acquire() returns
  // only AFTER the critical section has fully run (lock.hpp: every return
  // true is preceded by run_and_unlock) — helper-completed stores all
  // land while ver_enter > ver_exit, i.e. while readers see a writer
  // present. Brackets of contending writers may overlap freely: each
  // unmatched entry keeps the pair imbalanced, so no interleaving of
  // bumps can make the bucket look quiescent while any critical section
  // is in flight (the single-word odd/even scheme failed exactly here).
  // A bracket around a FAILED acquire is a harmless balanced +1/+1
  // (readers whose window overlaps it retry/fall back). A writer killed
  // between the brackets leaves ver_enter ahead forever: the bucket's
  // fast path degrades to permanent fallback, correctness is untouched
  // (the logged walk never looks at the counters).
  static void ver_begin(bucket* s) {
    // Seqlock writer entry (Boehm): the fence orders the entry bump
    // before every subsequent chain store, so a reader that observes any
    // CS store and then re-reads ver_enter through its acquire fence is
    // guaranteed to see this bump (or later) and discard its snapshot.
    // mo: relaxed — the release fence below carries all the ordering.
    s->ver_enter.fetch_add(1, std::memory_order_relaxed);
    // mo: release fence — the seqlock writer-entry fence just described.
    std::atomic_thread_fence(std::memory_order_release);
    // Window: entry published, critical section not yet entered.
    // Enumerable by the schedule explorer so torn-read candidates
    // interleave here.
    FLOCK_SCHEDPOINT("ht.ver.post_enter");
  }
  static void ver_end(bucket* s) {
    // Window: critical section complete, exit not yet published. A kill
    // here is the stuck-entry scenario: readers of this bucket fall back
    // to the logged walk forever (perf loss only; see ver_begin).
    FLOCK_FAULTPOINT("ht.ver.pre_exit");
    // mo: release — publishes the critical section's chain stores to the
    // reader's acquire load of ver_exit (seqlock writer exit): a reader
    // whose captured v1 counts this exit sees its stores completely.
    s->ver_exit.fetch_add(1, std::memory_order_release);
  }

 public:
  /// Validation handle filled by a successful fast-path find: the bucket's
  /// writer-ENTRY counter the snapshot was validated against and the
  /// (balanced, == ver_exit at capture) value it held. While the counter
  /// still holds `snapshot`, no writer has entered the bucket since the
  /// validated walk, so the returned value is still current; the caller
  /// must separately prove the bucket array itself is still allocated
  /// before dereferencing (see g_table_retire_era above — the memo
  /// cache's era stamp carries that proof).
  struct read_probe {
    const std::atomic<uint64_t>* version = nullptr;
    uint64_t snapshot = 0;
  };

 private:
  /// Relaxed atomic copy of a possibly-racing node field (see the gate
  /// comment above); the seqlock validation decides whether to keep it.
  template <class T>
  static T relaxed_copy(const T& field) {
    // mo: relaxed — intentionally unordered snapshot load; the version
    // re-read through the acquire fence supplies all needed ordering.
    return std::atomic_ref<T>(const_cast<T&>(field))
        .load(std::memory_order_relaxed);
  }

 public:
  /// `size_hint`: expected number of keys; the initial bucket count is the
  /// next power of two >= size_hint (load factor ~1). The table now grows
  /// on its own, so the hint is an optimization, not a capacity.
  explicit hashtable(std::size_t size_hint = kMinBuckets) {
    std::size_t b = kMinBuckets;
    while (b < size_hint) b <<= 1;
    table* t = make_table(b);
    if (t == nullptr) {
      // The initial table has no degraded mode to fall back to (a resize
      // can be deferred, construction cannot), so this is the one
      // allocation failure the table treats as fatal — loudly, not UB.
      std::fprintf(stderr, "flock_ds::hashtable: initial table allocation failed\n");
      std::abort();
    }
    root_.init(t);
  }

  ~hashtable() {
    // Quiescent teardown. Chains of forwarded buckets were already handed
    // to the epoch machinery by their migration; only live chains and the
    // tables themselves are freed here.
    table* t = root_.read_raw();
    while (t != nullptr) {
      table* nxt = t->next.read_raw();
      for (std::size_t i = 0; i <= t->mask; i++) {
        bucket* s = &t->buckets[i];
        if (s->removed.read_raw()) continue;
        node* c = s->next.read_raw();
        while (c != nullptr) {
          node* cn = c->next.read_raw();
          flock::pool_delete(c);
          c = cn;
        }
      }
      free_table(t);
      t = nxt;
    }
  }

  std::optional<V> find(K k) {
    read_probe probe;
    return find(k, probe);
  }

  /// find with a validation handle: on a fast-path hit/miss, `probe` names
  /// the bucket version word and snapshot the result was validated against
  /// (the store tier's memo cache feeds on it). Fallback paths leave the
  /// probe empty.
  std::optional<V> find(K k, read_probe& probe) {
    return find(k, probe, hash_of(k));
  }

  /// find with the key's hash precomputed. The store tier hashes once and
  /// derives shard, memo-cache slot, AND bucket index from the same word
  /// (disjoint bit ranges) — recomputing splitmix64 at every tier was a
  /// measurable slice of the read path.
  std::optional<V> find(K k, read_probe& probe, uint64_t h) {
    if constexpr (kSeqlockReads) {
      // The fast path walks raw pointers, so it needs epoch protection —
      // bucket arrays of drained tables are truly freed (array_delete) on
      // retire, unlike pool nodes. read_guard amortizes the announce over
      // a batch of reads; the fallback's with_epoch nests under it for
      // free.
      flock::read_guard g;
      V out{};
      switch (find_fast(k, out, probe, h)) {
        case kFastHit:
          return out;
        case kFastMiss:
          return std::nullopt;
        default:
          break;  // contended / mid-migration / unbounded chain
      }
    }
    return find_slow(k, h);
  }

  /// The pre-optimistic read path, kept publicly callable so benchmarks
  /// can A/B the same lookups in one binary (bench/micro_flock.cpp
  /// pr9_read_path): exactly the logged, epoch-guarded walk `find` always
  /// used before the seqlock fast path existed.
  std::optional<V> find_baseline(K k) { return find_slow(k); }

 private:
  // Fast-path outcomes: hit and miss are VALIDATED results; fallback means
  // the snapshot could not be certified and the logged walk must decide.
  static constexpr int kFastHit = 0;
  static constexpr int kFastMiss = 1;
  static constexpr int kFastFallback = 2;
  // Bound on the unlogged walk: a snapshot that raced node recycling can
  // in principle chase stale next pointers in a cycle; the bound turns
  // that into a fallback instead of a hang. Generous — at load factor ~1
  // a chain longer than this means the table is mid-ramp anyway.
  static constexpr int kMaxFastWalk = 64;

  /// Seqlock snapshot read (only instantiated when kSeqlockReads): load
  /// ver_exit → check ver_enter balanced → raw walk → fence → re-load
  /// ver_enter. No logging, no lock traffic, no epoch announce of its own
  /// (caller holds a read_guard).
  int find_fast(K k, V& out, read_probe& probe, uint64_t h) {
    const table* t = root_.read_raw();
    bucket* s = &t->buckets[static_cast<std::size_t>(h) & t->mask];
    // mo: acquire — seqlock v1: pairs with ver_end's release bumps (RMW
    // release sequence), so a snapshot whose captured exit count is v1
    // sees the complete stores of all v1 exited critical sections.
    const uint64_t v1 = s->ver_exit.load(std::memory_order_acquire);
    // Writer-presence gate: entries bump before critical sections and
    // exits after, so ver_enter == v1 proves every writer that ever
    // entered this bucket had exited by the v1 load — the bucket was
    // quiescent no matter how many writer brackets overlapped (or a
    // killed writer left ver_enter ahead for good — then this bucket is
    // permanently fallback-only, see ver_begin).
    // mo: relaxed — pure early-out; the closing reload below, ordered by
    // the acquire fence, is the load the protocol trusts.
    if (s->ver_enter.load(std::memory_order_relaxed) != v1)
      return kFastFallback;  // writer (or corpse) present
    // Window: snapshot begun at a balanced counter pair, chain loads not
    // yet done. The schedule explorer preempts here to drive writers
    // (entry/exit bumps, payload stores, migration forwards) under an
    // in-flight snapshot — the torn-read candidates the validation must
    // reject.
    FLOCK_SCHEDPOINT("ht.read.post_v1");
    if (s->removed.read_raw()) return kFastFallback;  // forwarded ⇒ migrate
    node* cur = raw_next(s);
    bool hit = false;
    int steps = 0;
    while (cur != nullptr) {
      if (++steps > kMaxFastWalk) return kFastFallback;
      const K ck = relaxed_copy(cur->k);
      if (ck < k) {
        cur = raw_next(cur);
        continue;
      }
      if (ck == k && !cur->removed.read_raw()) {
        out = relaxed_copy(cur->v);
        hit = true;
      }
      break;  // first key >= k decides hit or miss
    }
    // Window: chain loads done, validation not yet performed — a writer
    // scheduled here invalidates the snapshot and must force fallback.
    FLOCK_SCHEDPOINT("ht.read.pre_validate");
    // Seqlock validation (Boehm): if any load above observed a store made
    // after a writer's entry fence, this fence forces the re-read below
    // to see that writer's entry bump (or later) — snapshot discarded.
    // Counting argument for overlapping writers: ver_enter is monotone
    // and always >= ver_exit, so "ver_exit was v1 at the open AND
    // ver_enter is still v1 here" pins ver_enter == ver_exit == v1 for
    // the whole window — no writer was inside the bucket at any point,
    // however many brackets raced each other before our window.
    // mo: acquire fence — the seqlock reader-exit fence just described.
    std::atomic_thread_fence(std::memory_order_acquire);
    // mo: relaxed — ordered entirely by the fence above.
    if (s->ver_enter.load(std::memory_order_relaxed) != v1)
      return kFastFallback;
    probe.version = &s->ver_enter;
    probe.snapshot = v1;
    return hit ? kFastHit : kFastMiss;
  }

  /// Unlogged chain-pointer read for the fast path.
  static node* raw_next(const chain_head* p) {
    // mo: relaxed — snapshot traversal load; the seqlock validation (and
    // the ver_exit acquire, for chains quiet since their publishing CS)
    // orders it. Packed accessor: mutable_ has no relaxed value-typed read.
    return flock::from_bits48<node*>(
        flock::val_of(p->next.read_raw_packed_relaxed()));
  }

  /// The pre-existing epoch-guarded logged walk; the authority the fast
  /// path defers to whenever it cannot certify a snapshot.
  std::optional<V> find_slow(K k) { return find_slow(k, hash_of(k)); }

  std::optional<V> find_slow(K k, uint64_t h) {
    return flock::with_epoch([&]() -> std::optional<V> {
      const table* t = root_.load();
      while (true) {
        const bucket* s = &t->buckets[static_cast<std::size_t>(h) & t->mask];
        if (!s->removed.load()) {
          // Not forwarded when we looked. If a migration completes under
          // the scan the chain is left frozen (migration copies, never
          // splices), so whatever this scan observes is the bucket's
          // authoritative pre-forward state and both hit and miss
          // linearize within our interval; no re-check is needed. The
          // flag is published only after the successor chains, so a set
          // flag below always finds `next` installed.
          node* cur = s->next.load();
          while (cur != nullptr && cur->k < k) cur = cur->next.load();
          if (cur != nullptr && cur->k == k && !cur->removed.load())
            return cur->v;
          return std::nullopt;
        }
        t = t->next.read_raw();  // forwarded => successor exists
      }
    });
  }

 public:

  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        bucket* s = locate_update(k);
        auto [prev, cur] = search_from(s, k);
        // "Already present" needs the same removed-flag test find() uses:
        // a key mid-remove (flag set, unlink not yet visible) is absent.
        // Falling through is fine — the critical section's prev->next
        // validation fails against the completed unlink and we retry.
        if (cur != nullptr && cur->k == k && !cur->removed.load())
          return false;
        ver_begin(s);
        const bool ok = acquire(s->lck, [=] {
          if (s->removed.load()) return false;  // forwarded meanwhile
          if (prev != s && prev->removed.load()) return false;
          if (prev->next.load() != cur) return false;
          node* n = flock::allocate<node>(k, v, cur);
          prev->next = n;
          return true;
        });
        ver_end(s);
        if (ok) {
          note_update(+1);
          return true;
        }
      }
    });
  }

  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        bucket* s = locate_update(k);
        auto [prev, cur] = search_from(s, k);
        if (cur == nullptr || cur->k != k) return false;
        ver_begin(s);
        const bool ok = acquire(s->lck, [=] {
          if (s->removed.load()) return false;  // forwarded meanwhile
          if (prev != s && prev->removed.load()) return false;
          if (cur->removed.load()) return false;
          if (prev->next.load() != cur) return false;
          cur->removed = true;
          prev->next = cur->next.load();
          flock::retire<node>(cur);
          return true;
        });
        ver_end(s);
        if (ok) {
          note_update(-1);
          return true;
        }
      }
    });
  }

  /// Quiescent audits (epoch-guarded so concurrent retirement cannot free
  /// a node mid-scan; counts are exact only at quiescence). -----------------

  std::size_t size() const {
    return flock::with_epoch([&] {
      std::size_t n = 0;
      for_each_live_bucket([&](const table*, std::size_t, const bucket* s) {
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw())
          n++;
      });
      return n;
    });
  }

  /// O(kCountShards) size estimate read off the sharded occupancy
  /// counters — the stats-line companion to the O(n) exact size() scan.
  /// Exact at quiescence (every successful update bumps exactly one
  /// shard); during a run it can lag in-flight updates by a few.
  std::size_t approx_size() const {
    long long c = approx_count();
    return c > 0 ? static_cast<std::size_t>(c) : 0;
  }

  /// Resizes initiated since construction, by direction. Test support for
  /// hysteresis audits (a steady mid-band workload must not thrash).
  std::size_t grow_count() const {
    // mo: relaxed — monotone stat counter; callers only need a value.
    return grows_.load(std::memory_order_relaxed);
  }
  std::size_t shrink_count() const {
    // mo: relaxed — monotone stat counter; callers only need a value.
    return shrinks_.load(std::memory_order_relaxed);
  }

  /// Resizes this table wanted but could not start because the successor
  /// allocation failed (injected or real OOM); each deferral re-armed the
  /// trigger. See maybe_resize.
  std::size_t resize_deferrals() const {
    // mo: relaxed — monotone stat counter; callers only need a value.
    return deferrals_.load(std::memory_order_relaxed);
  }

  /// Sorted chains, no removed node reachable, and every key resident in
  /// the bucket its hash selects in that table (cross-bucket corruption).
  /// With `audit_migration` set, additionally flags a stuck migration
  /// (see migration_stuck) — off by default because the audit observes a
  /// time window and would flake tests that merely pause mid-resize.
  bool check_invariants(bool audit_migration = false) const {
    if (audit_migration && migration_stuck()) return false;
    return flock::with_epoch([&] {
      bool ok = true;
      for_each_live_bucket([&](const table* t, std::size_t i,
                               const bucket* s) {
        const node* prev = nullptr;
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw()) {
          if (c->removed.read_raw()) ok = false;
          if (prev != nullptr && !(prev->k < c->k)) ok = false;
          if ((static_cast<std::size_t>(hash_of(c->k)) & t->mask) != i)
            ok = false;  // key lives in a bucket its hash does not select
          prev = c;
        }
      });
      return ok;
    });
  }

  /// Stuck-migration audit: true when a resize is in flight and made no
  /// observable progress — forwarded-bucket count, migrated count, and
  /// claim cursor all static — across a bounded observation window. The
  /// audit is read-only (it never helps), so a positive result means no
  /// OTHER thread is currently draining the resize. That is not a
  /// permanent wedge — migration is helper-driven, so any future update
  /// traffic unsticks it — but it is exactly the signature a killed
  /// migrator leaves behind when no helpers are running.
  bool migration_stuck(int window_spins = 1 << 15) const {
    return flock::with_epoch([&] {
      table* t = root_.read_raw();
      table* nt = t->next.read_raw();
      if (nt == nullptr) return false;  // no resize in flight
      // mo: acquire (all four) — the audit compares progress counters
      // across a window; acquire keeps each sample no older than the
      // migration publications it summarizes.
      const std::size_t m0 = t->migrated.load(std::memory_order_acquire);
      const std::size_t c0 = t->cursor.load(std::memory_order_acquire);  // mo: ditto
      const std::size_t f0 = forwarded_count(t);
      for (int i = 0; i < window_spins; i++) flock::detail::cpu_pause();
      if (root_.read_raw() != t || t->next.read_raw() != nt)
        return false;  // resize chain moved: progress
      // mo: acquire — see the first sample above.
      return t->migrated.load(std::memory_order_acquire) == m0 &&
             t->cursor.load(std::memory_order_acquire) == c0 &&
             forwarded_count(t) == f0;
    });
  }

  /// Bucket count of the newest table (the capacity the structure is
  /// growing into during a resize).
  std::size_t bucket_count() const {
    return flock::with_epoch([&] { return newest_table()->nbuckets(); });
  }

  /// Number of keys that map to each bucket of the newest table (keys in
  /// not-yet-migrated buckets are attributed to where they will land).
  /// Test support for hash/occupancy-uniformity audits.
  std::vector<std::size_t> bucket_occupancy() const {
    return flock::with_epoch([&] {
      const table* last = newest_table();
      std::vector<std::size_t> occ(last->nbuckets(), 0);
      for_each_live_bucket([&](const table*, std::size_t, const bucket* s) {
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw())
          occ[static_cast<std::size_t>(hash_of(c->k)) & last->mask]++;
      });
      return occ;
    });
  }

  template <class F>
  void for_each(F&& f) const {
    flock::with_epoch([&] {
      for_each_live_bucket([&](const table*, std::size_t, const bucket* s) {
        for (node* c = s->next.read_raw(); c != nullptr;
             c = c->next.read_raw())
          f(c->k, c->v);
      });
    });
  }

  /// Early-exit scan: visits keys until `f` returns false. Returns true
  /// iff the scan ran to completion. Batched consumers (e.g. the store
  /// tier's rebalance passes) use this so collecting a bounded batch
  /// costs O(batch), not O(resident keys).
  template <class F>
  bool for_each_until(F&& f) const {
    return flock::with_epoch([&] {
      for (const table* t = root_.read_raw(); t != nullptr;
           t = t->next.read_raw()) {
        for (std::size_t i = 0; i <= t->mask; i++) {
          const bucket* s = &t->buckets[i];
          if (s->removed.read_raw()) continue;
          for (node* c = s->next.read_raw(); c != nullptr;
               c = c->next.read_raw())
            if (!f(c->k, c->v)) return false;
        }
      }
      return true;
    });
  }

 public:
  /// The key hash every tier derives from (bucket index = low bits; the
  /// store tier's shard routing = top bits, memo-cache slot = middle
  /// bits). Public so callers can hash once per operation.
  static uint64_t hash_of(K k) {
    return splitmix64(static_cast<uint64_t>(k));
  }

 private:
  template <class K2, class V2, bool S2>
  friend bool try_move(hashtable<K2, V2, S2>&, hashtable<K2, V2, S2>&,
                       std::type_identity_t<K2>);
  static std::size_t index_in(const table* t, K k) {
    return static_cast<std::size_t>(hash_of(k)) & t->mask;
  }

  /// First chain position with key >= k and its predecessor (the bucket
  /// head if none). The single point of truth for the walk that insert,
  /// remove, and try_move validate against in their critical sections.
  static std::pair<chain_head*, node*> search_from(bucket* s, K k) {
    chain_head* prev = s;
    node* cur = prev->next.load();
    while (cur != nullptr && cur->k < k) {
      prev = cur;
      cur = cur->next.load();
    }
    return {prev, cur};
  }

  /// Returns nullptr when either allocation fails (allocator failure
  /// contract): nothing half-built leaks and nothing null is dereferenced.
  static table* make_table(std::size_t nbuckets) {
    table* t = flock::pool_new<table>();
    if (t == nullptr) [[unlikely]]
      return nullptr;
    t->mask = nbuckets - 1;
    t->buckets = flock::array_new<bucket>(nbuckets);
    if (t->buckets == nullptr) [[unlikely]] {
      flock::pool_delete(t);
      return nullptr;
    }
    t->next.init(nullptr);
    // mo: relaxed (all three) — pre-publication init; the edge that
    // shares the table (root init or the next-pointer install CAS)
    // releases.
    t->migrated.store(0, std::memory_order_relaxed);
    t->cursor.store(0, std::memory_order_relaxed);        // mo: ditto
    t->resize_hint.store(false, std::memory_order_relaxed);  // mo: ditto
    return t;
  }

  static void free_table(table* t) {
    flock::array_delete(t->buckets);
    flock::pool_delete(t);
  }

  static void retire_table(table* t) {
    // mo: seq_cst — the era bump must be ordered before the retire it
    // announces (see g_table_retire_era); cold path, one resize per table.
    g_table_retire_era.fetch_add(1, std::memory_order_seq_cst);
    flock::epoch_retire_array(t->buckets);
    flock::epoch_retire(t);
  }

  /// The bucket the update for key k must lock: chases forwarded buckets,
  /// draining a resize in progress along the way so the op lands in the
  /// newest table. Caller must be inside with_epoch.
  bucket* locate_update(K k) {
    table* t = root_.load();
    while (true) {
      std::size_t i = index_in(t, k);
      bucket* s = &t->buckets[i];
      if (s->removed.read_raw()) {  // forwarded => successor exists
        table* nxt = t->next.read_raw();
        // Help even when merely passing through: if only updaters whose
        // own bucket is still live helped, the drain rate would fall to
        // zero exactly when the last stragglers remain (coupon-collector
        // tail) and back-to-back resizes would serialize behind it.
        help_resize(t, nxt);
        t = nxt;
        continue;
      }
      table* nxt = t->next.read_raw();
      if (nxt == nullptr) return s;
      // Resize in progress: forward our own unit first (so old tables
      // only ever drain), then help a small claimed batch, and re-check —
      // a failed lock attempt means the holder is either the migrator or
      // a completing updater, so just retry.
      migrate_unit(t, nxt, i & unit_mask(t, nxt));
      help_resize(t, nxt);
    }
  }

  // --- shared migration engine ------------------------------------------
  // A resize is a sequence of units claimed off `cursor`. Growing n -> 2n
  // has n units (one old bucket each); shrinking n -> n/2 has n/2 units
  // (one old bucket PAIR each). Both directions complete when all n old
  // buckets are forwarded (`migrated` == n).

  static bool is_grow(const table* t, const table* nt) {
    return nt->mask > t->mask;
  }
  static std::size_t unit_count(const table* t, const table* nt) {
    return is_grow(t, nt) ? t->nbuckets() : nt->nbuckets();
  }
  static std::size_t unit_mask(const table* t, const table* nt) {
    return unit_count(t, nt) - 1;
  }

  /// Append an idempotent copy of chain node c after *tl, advancing *tl.
  /// The retire of the original is safe inside the critical section:
  /// epoch-protected readers may still be scanning the frozen chain.
  static void append_copy(chain_head*& tl, node* c) {
    node* copy = flock::allocate<node>(c->k, c->v, nullptr);
    tl->next = copy;
    tl = copy;
    flock::retire<node>(c);
  }

  /// Migrate unit u of the t -> nt resize. Returns after the unit's old
  /// bucket(s) are forwarded or a lock attempt failed (callers retry via
  /// the wrapping cursor).
  void migrate_unit(table* t, table* nt, std::size_t u) {
    if (is_grow(t, nt))
      migrate_unit_grow(t, nt, u);
    else
      migrate_unit_shrink(t, nt, u);
  }

  /// Grow unit: split old bucket u into successor buckets u and u+n.
  void migrate_unit_grow(table* t, table* nt, std::size_t i) {
    bucket* s = &t->buckets[i];
    if (s->removed.read_raw()) return;  // already forwarded
    bucket* lo = &nt->buckets[i];
    bucket* hi = &nt->buckets[i + t->nbuckets()];
    const uint64_t bit = t->nbuckets();  // hash bit the split keys on
    // Seqlock bracket on the SOURCE bucket: the unit retires its nodes and
    // sets its forwarded flag, either of which must invalidate snapshots
    // and memoized reads of s. The successor buckets need no bracket here:
    // they are unreachable by the optimistic path until the root swings,
    // which happens-after every unit completed (migrated-counter acq_rel
    // chain), and direct updates to them bracket normally.
    ver_begin(s);
    bool did = acquire(s->lck, [=] {
      if (s->removed.load()) return false;  // lost the race
      // The chain is frozen: every update to this bucket takes this same
      // lock. Logged loads keep replays of this thunk in lockstep, and
      // idempotent allocation/stores/retires make helper replays safe.
      // Copies are appended directly onto the successor buckets (the
      // forward walk preserves sorted order, no side buffers): nothing
      // can observe those chains until the forwarded flag below is set,
      // because each successor bucket has exactly one source bucket and
      // traffic to it only begins at that source's flag.
      chain_head* tail[2] = {lo, hi};
      for (node* c = s->next.load(); c != nullptr; c = c->next.load())
        append_copy(tail[(hash_of(c->k) & bit) ? 1 : 0], c);
      // Protocol window: copies live, forwarded flag not yet published. A
      // kill here is the paper's dead-holder scenario mid-migration —
      // helpers must replay this thunk to completion.
      FLOCK_FAULTPOINT("ht.grow.pre_publish");
      s->removed = true;  // forwarded: published after the copies are live
      return true;
    });
    ver_end(s);
    finish_unit(t, did ? 1 : 0);
  }

  /// Shrink unit: merge old buckets u and u+n/2 into successor bucket u,
  /// under both old-bucket locks (nested in address order — lo before hi —
  /// the same acyclic discipline try_move uses). Unlike a grow unit, the
  /// successor bucket has TWO source buckets whose forwarded flags commit
  /// at different log positions, so an updater hashed to the other source
  /// could reach the successor while this critical section is still
  /// running; the merged chain is therefore built privately and published
  /// with ONE store, strictly before either flag, so the successor bucket
  /// is never observable half-merged.
  void migrate_unit_shrink(table* t, table* nt, std::size_t u) {
    bucket* lo = &t->buckets[u];
    bucket* hi = &t->buckets[u + nt->nbuckets()];
    bucket* dst = &nt->buckets[u];
    // "Already migrated" must be judged by hi's flag — the thunk's LAST
    // store — not lo's. Flag commits are ordered lo-then-hi, so there is
    // a window where lo is flagged while the thunk is still in flight;
    // an early exit keyed on lo would let every latecomer skip the lock
    // attempt that is the only channel for helping the stalled winner
    // finish, leaving hi-keyed updaters spinning in locate_update until
    // the winner reschedules. Keyed on hi, latecomers fall through to
    // acquire(lo->lck), help the in-flight critical section to
    // completion, and then fail its validation harmlessly. (The grow
    // unit has no such window: its single flag is the thunk's last
    // store.)
    if (hi->removed.read_raw()) return;  // unit already migrated
    // Seqlock brackets on BOTH source buckets (the merge retires nodes of
    // each and forwards both); nesting order mirrors the lock nest. The
    // destination bucket is pre-swing successor state — unreachable by the
    // optimistic path — so its single-store publish needs no bracket (see
    // migrate_unit_grow).
    ver_begin(lo);
    ver_begin(hi);
    bool did = acquire(lo->lck, [=] {
      if (lo->removed.load()) return false;  // lost the race
      return acquire(hi->lck, [=] {
        if (hi->removed.load()) return false;  // cannot happen alone; belt
        // Both chains are frozen under their locks. They hold disjoint
        // keys (different old-bucket residues of the same hash), all of
        // which land in dst, so a standard sorted merge preserves the
        // chain invariant. head/tail are plain locals — deterministic
        // across helper replays because the logged loads fix the walk and
        // idempotent allocation fixes the copy identities — so the only
        // logged stores link shared copy nodes through their unpublished
        // next fields.
        node* a = lo->next.load();
        node* b = hi->next.load();
        node* head = nullptr;
        node* tail = nullptr;
        auto take = [&](node*& src) {
          node* copy = flock::allocate<node>(src->k, src->v, nullptr);
          if (head == nullptr)
            head = copy;
          else
            tail->next = copy;
          tail = copy;
          flock::retire<node>(src);  // readers may still scan the original
          src = src->next.load();
        };
        while (a != nullptr || b != nullptr) {
          if (b == nullptr || (a != nullptr && a->k < b->k))
            take(a);
          else
            take(b);
        }
        // Protocol window: merged chain built privately, single-store
        // publish not yet issued.
        FLOCK_FAULTPOINT("ht.merge.pre_publish");
        dst->next = head;     // single publish of the whole merge
        lo->removed = true;   // flags strictly after the publish: a set
        hi->removed = true;   // flag always finds dst fully merged
        return true;
      });
    });
    ver_end(hi);
    ver_end(lo);
    finish_unit(t, did ? 2 : 0);
  }

  /// Shared unit epilogue: exactly one acquire() returns true per unit
  /// (all later critical sections fail the forwarded check), so counting
  /// the unit's forwarded buckets once keeps `migrated` exact.
  void finish_unit(table* t, std::size_t forwarded) {
    // mo: acq_rel — release chains each unit's migration stores into the
    // counter's release sequence; the completing reader (acquire load in
    // help_resize / advance_root) then sees every unit's writes before
    // swinging the root. Acquire orders this thread's own completion
    // check against earlier contributions.
    if (forwarded != 0 &&
        // mo: acq_rel — the release-sequence chaining just described.
        t->migrated.fetch_add(forwarded, std::memory_order_acq_rel) +
                forwarded ==
            t->nbuckets())
      advance_root();
  }

  /// Claim and migrate a small batch of units (the cursor wraps, so
  /// stragglers whose first lock attempt failed are retried by later
  /// helpers and a resize finishes under any traffic).
  void help_resize(table* t, table* nt) {
    const std::size_t n = t->nbuckets();
    const std::size_t units = unit_count(t, nt);
    for (int j = 0; j < kMigrateBatch; j++) {
      // mo: acquire — completion read: pairs with finish_unit's acq_rel
      // adds so a full count implies every unit's stores are visible.
      if (t->migrated.load(std::memory_order_acquire) >= n) {
        advance_root();  // idempotent; rescues a swing whose winner stalled
        return;
      }
      // mo: relaxed — the cursor only distributes claims; migrate_unit
      // revalidates everything under the bucket lock.
      std::size_t claimed = t->cursor.fetch_add(1, std::memory_order_relaxed);
      migrate_unit(t, nt, claimed & (units - 1));
      // Completion recovery: the fast-path `migrated` count is bumped by
      // each unit's winning migrator outside its critical section, so a
      // winner stalled (or lost) between forwarding and counting would
      // leave it short. Once per cursor wrap — every unit has been
      // attempted at least once — re-derive completion from the monotone
      // forwarded flags themselves, so ANY thread can finish the resize.
      if (claimed >= units && (claimed & (units - 1)) == 0) {
        std::size_t fwd = 0;
        for (std::size_t i = 0; i < n; i++)
          if (t->buckets[i].removed.read_raw()) fwd++;
        if (fwd == n) {
          // mo: release — re-derived completion: publishes (transitively,
          // via the acquire flag reads above) every unit's stores to the
          // acquire completion reads, like finish_unit's adds would have.
          t->migrated.store(n, std::memory_order_release);
          advance_root();
        }
      }
    }
  }

  /// Swing the root past fully-drained tables; the winning CAS retires
  /// the old table (bucket array and all) through the epoch machinery.
  void advance_root() {
    while (true) {
      uint64_t p = root_.read_raw_packed();
      table* r = flock::from_bits48<table*>(flock::val_of(p));
      // mo: acquire — completion read before the swing; see help_resize.
      if (r->next.read_raw() == nullptr ||
          r->migrated.load(std::memory_order_acquire) < r->nbuckets())
        return;
      // Protocol window: table fully drained, root not yet swung. A kill
      // here must be rescued by any later helper (advance_root is
      // idempotent and called from help_resize on every completion check).
      FLOCK_FAULTPOINT("ht.root.pre_swing");
      if (root_.cas_raw_packed(p, r->next.read_raw())) {
        // Window: swing won, drained table not yet retired. A kill here
        // parks the only thread that can retire `r` — the leak audit in
        // tests must see the retire happen after release.
        FLOCK_FAULTPOINT("ht.root.pre_retire");
        retire_table(r);
      }
    }
  }

  /// Tail of the table chain: the capacity being grown into. Caller must
  /// be inside with_epoch.
  const table* newest_table() const {
    const table* t = root_.read_raw();
    for (const table* nxt = t->next.read_raw(); nxt != nullptr;
         nxt = t->next.read_raw())
      t = nxt;
    return t;
  }

  /// Visit every not-yet-forwarded bucket across the table chain (each
  /// resident key is reachable through exactly one such bucket). Caller
  /// must be inside with_epoch.
  template <class F>
  void for_each_live_bucket(F&& f) const {
    for (const table* t = root_.read_raw(); t != nullptr;
         t = t->next.read_raw()) {
      for (std::size_t i = 0; i <= t->mask; i++) {
        const bucket* s = &t->buckets[i];
        if (!s->removed.read_raw()) f(t, i, s);
      }
    }
  }

  /// Occupancy accounting: sharded counters bumped by successful updates
  /// (outside the critical section — exactly one lock acquisition returns
  /// true per applied update). Every 16th update landing on a shard
  /// re-evaluates the resize policy — on the op TICK, not the counter
  /// value: a steady churn workload holds the counter value constant
  /// (insert/remove alternating), and a value-modulo trigger would never
  /// fire for it, starving the shrink path exactly when it matters. Must
  /// be called inside with_epoch (the trigger reads epoch-protected
  /// tables).
  void note_update(int delta) {
    counter_shard& shard = count_[flock::thread_id() & (kCountShards - 1)];
    // mo: relaxed (both) — sharded statistics: only the summed value
    // matters, and the resize policy tolerates lag by design.
    shard.n.fetch_add(delta, std::memory_order_relaxed);
    if ((shard.ops.fetch_add(1, std::memory_order_relaxed) & 15) == 15)
      maybe_resize();
  }

  long long approx_count() const {
    long long s = 0;
    for (const counter_shard& sh : count_)
      // mo: relaxed — approximate by contract (see approx_size).
      s += sh.n.load(std::memory_order_relaxed);
    return s;
  }

  /// Resize policy, with hysteresis: grow at load factor >= 1, shrink at
  /// load factor < 1/4 (never below the kMinBuckets floor). A freshly
  /// grown table sits at ~1/2 and a freshly shrunk one at ~1/2, so the
  /// occupancy must move 2x before the policy fires again in either
  /// direction — grow/shrink cannot oscillate on a steady workload.
  void maybe_resize() {
    table* t = root_.read_raw();
    if (t->next.read_raw() != nullptr) return;  // resize already in flight
    const long long c = approx_count();
    const long long n = static_cast<long long>(t->nbuckets());
    const bool grow = c >= n;
    const bool shrink =
        !grow && t->nbuckets() > kMinBuckets && c < n / 4;
    if (!grow && !shrink) return;
    // Duplicate-allocation damping: building a large successor takes long
    // enough that concurrent triggers would each construct (and all but
    // one discard) a full bucket array. The first trigger sets the
    // hint; later ones wait a bounded spin for the install instead of
    // allocating. The wait is bounded, so a stalled allocator cannot
    // wedge a resize — after it, the duplicate-and-discard race below is
    // still the lock-free fallback, just no longer the common case.
    // mo: acq_rel — hint claim: release publishes this trigger's policy
    // reads to the re-armer, acquire sees a previous claimant's re-arm.
    if (t->resize_hint.exchange(true, std::memory_order_acq_rel)) {
      for (int i = 0; i < 4096 && t->next.read_raw() == nullptr; i++)
        flock::detail::cpu_pause();
      if (t->next.read_raw() != nullptr) return;
    }
    // The resize trigger is the table's one *survivable* allocation-failure
    // surface: a resize is an optimization, so when the successor cannot be
    // built — an injected "ht.resize.alloc" fault or a real OOM propagated
    // as make_table's null — the resize is DEFERRED, not crashed on. The
    // hint is re-armed so a later trigger retries once memory returns, and
    // the deferral is counted (per-instance and process-wide) so tests and
    // the stats line can assert the degradation actually happened.
    table* nt = nullptr;
    if (!FLOCK_FAULTPOINT_ALLOC_FAIL("ht.resize.alloc")) [[likely]]
      nt = make_table(grow ? t->nbuckets() * 2 : t->nbuckets() / 2);
    if (nt == nullptr) [[unlikely]] {
      // mo: relaxed (both) — monotone stat counters; value-only.
      deferrals_.fetch_add(1, std::memory_order_relaxed);
      flock::detail::g_resize_deferrals.fetch_add(1,
                                                  std::memory_order_relaxed);
      // mo: release — re-arm: a later claimant's acquire exchange must see
      // this deferral's bookkeeping before it retries the allocation.
      t->resize_hint.store(false, std::memory_order_release);  // re-arm
      return;
    }
    uint64_t p = t->next.read_raw_packed();
    if (flock::val_of(p) != 0 || !t->next.cas_raw_packed(p, nt)) {
      free_table(nt);  // lost the install race; never published
    } else {
      // mo: relaxed — monotone stat counter; value-only.
      (grow ? grows_ : shrinks_).fetch_add(1, std::memory_order_relaxed);
    }
  }

  static std::size_t forwarded_count(const table* t) {
    std::size_t fwd = 0;
    for (std::size_t i = 0; i <= t->mask; i++)
      if (t->buckets[i].removed.read_raw()) fwd++;
    return fwd;
  }

  flock::mutable_<table*> root_;
  counter_shard count_[kCountShards];
  std::atomic<std::size_t> grows_{0}, shrinks_{0};
  std::atomic<std::size_t> deferrals_{0};
};

/// Atomically move key `k` (and its value) between two hashtables, the
/// paper's cross-structure motivation applied to the resizable table: both
/// splices happen inside one validated nest of bucket critical sections
/// (ordered by bucket address, an acyclic order), so no other *updater*
/// can interleave between them — and because the critical sections
/// re-validate the forwarded flags, the move composes with an in-flight
/// resize on either side. Returns false — changing nothing — if k is
/// absent in `from`, already present in `to`, or any lock/validation
/// fails transiently (callers retry, e.g. via move_retry in ds/move.hpp).
template <class K, class V, bool Strict>
bool try_move(hashtable<K, V, Strict>& from, hashtable<K, V, Strict>& to,
              std::type_identity_t<K> k) {
  using ht = hashtable<K, V, Strict>;
  using node = typename ht::node;
  if (&from == &to) return false;
  return flock::with_epoch([&] {
    auto* fs = from.locate_update(k);
    auto [fprev, fcur] = ht::search_from(fs, k);
    if (fcur == nullptr || fcur->k != k) return false;  // not in source
    auto* ts = to.locate_update(k);
    auto [tprev, tcur] = ht::search_from(ts, k);
    // Mid-remove keys (flag set, unlink pending) count as absent, like
    // find(); the critical section's validation forces a retry for them.
    if (tcur != nullptr && tcur->k == k && !tcur->removed.load())
      return false;  // already in dest
    auto splice = [=] {
      // Window: both bucket locks held, neither side spliced yet.
      FLOCK_FAULTPOINT("ht.move.pre_splice");
      if (fs->removed.load() || ts->removed.load()) return false;
      if (fprev != fs && fprev->removed.load()) return false;
      if (fcur->removed.load()) return false;
      if (fprev->next.load() != fcur) return false;
      if (tprev != ts && tprev->removed.load()) return false;
      if (tprev->next.load() != tcur) return false;
      node* moved = flock::allocate<node>(fcur->k, fcur->v, tcur);
      tprev->next = moved;
      fcur->removed = true;
      fprev->next = fcur->next.load();
      flock::retire<node>(fcur);
      return true;
    };
    bool ok;
    // Seqlock brackets on both endpoint buckets (the splice mutates each
    // side's chain); raw bumps outside the nest, like every other writer.
    ht::ver_begin(fs);
    ht::ver_begin(ts);
    if (reinterpret_cast<uintptr_t>(fs) < reinterpret_cast<uintptr_t>(ts))
      ok = ht::acquire(fs->lck, [=] { return ht::acquire(ts->lck, splice); });
    else
      ok = ht::acquire(ts->lck, [=] { return ht::acquire(fs->lck, splice); });
    ht::ver_end(ts);
    ht::ver_end(fs);
    if (ok) {
      from.note_update(-1);
      to.note_update(+1);
    }
    return ok;
  });
}

}  // namespace flock_ds
