file(REMOVE_RECURSE
  "CMakeFiles/test_dlist.dir/tests/test_dlist.cpp.o"
  "CMakeFiles/test_dlist.dir/tests/test_dlist.cpp.o.d"
  "test_dlist"
  "test_dlist.pdb"
  "test_dlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
