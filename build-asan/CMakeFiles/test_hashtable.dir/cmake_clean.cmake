file(REMOVE_RECURSE
  "CMakeFiles/test_hashtable.dir/tests/test_hashtable.cpp.o"
  "CMakeFiles/test_hashtable.dir/tests/test_hashtable.cpp.o.d"
  "test_hashtable"
  "test_hashtable.pdb"
  "test_hashtable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
