// Service tier (src/service/): the bounded MPSC request ring, the
// flat-combining batch executor, the double-read rebalance façade, and
// the chaos windows of the enqueue -> drain -> complete pipeline.
//
// The ring tests drive the Vyukov sequence-number protocol through its
// edges directly (wraparound, full/empty, slot reuse across thousands of
// laps on a capacity-4 ring — the wrapped-index ABA shape 64-bit
// sequences design out). The service tests run both deployment shapes
// (client combining with zero servers, and a dedicated server thread)
// in both lock modes. The chaos tests park a thread at each pipeline
// window and assert the exactly-once completion story: a killed combiner
// still owns its popped batch and publishes every completion exactly
// once when released; a killed client's already-pushed request is
// completed by whoever drains next.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "chaos/faultpoint.hpp"
#include "flock/flock.hpp"
#include "service/service.hpp"
#include "store/sharded_map.hpp"

namespace {

namespace chaos = flock_chaos;
using flock_service::completion;
using flock_service::op_kind;
using flock_service::ring_queue;
using map_t = flock_store::sharded_map<uint64_t, uint64_t, false>;
using svc_t = flock_service::service<uint64_t, uint64_t, false>;
using req_t = svc_t::request_t;

template <class F>
void spin_until(F&& pred) {
  while (!pred()) std::this_thread::yield();
}

// --- ring_queue -------------------------------------------------------------

TEST(RingQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_queue<uint64_t>(0).capacity(), 2u);
  EXPECT_EQ(ring_queue<uint64_t>(1).capacity(), 2u);
  EXPECT_EQ(ring_queue<uint64_t>(3).capacity(), 4u);
  EXPECT_EQ(ring_queue<uint64_t>(4).capacity(), 4u);
  EXPECT_EQ(ring_queue<uint64_t>(1000).capacity(), 1024u);
}

TEST(RingQueue, FullAndEmptyEdges) {
  ring_queue<uint64_t> q(4);
  uint64_t out[8];
  EXPECT_EQ(q.pop_up_to(out, 8), 0u);  // empty from the start
  for (uint64_t i = 0; i < 4; i++) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: non-blocking reject
  EXPECT_FALSE(q.try_push(99));  // still full, still clean
  EXPECT_EQ(q.pop_up_to(out, 1), 1u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_TRUE(q.try_push(4));    // one slot freed, one push fits
  EXPECT_FALSE(q.try_push(99));  // and exactly one
  EXPECT_EQ(q.pop_up_to(out, 8), 4u);
  for (uint64_t i = 0; i < 4; i++) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(q.pop_up_to(out, 8), 0u);  // drained dry
}

TEST(RingQueue, BatchDrainPreservesFifoOrder) {
  ring_queue<uint64_t> q(16);
  for (uint64_t i = 0; i < 10; i++) ASSERT_TRUE(q.try_push(i));
  uint64_t out[4];
  ASSERT_EQ(q.pop_up_to(out, 4), 4u);
  for (uint64_t i = 0; i < 4; i++) EXPECT_EQ(out[i], i);
  ASSERT_EQ(q.pop_up_to(out, 4), 4u);
  for (uint64_t i = 0; i < 4; i++) EXPECT_EQ(out[i], i + 4);
  ASSERT_EQ(q.pop_up_to(out, 4), 2u);  // partial tail batch
  EXPECT_EQ(out[0], 8u);
  EXPECT_EQ(out[1], 9u);
}

TEST(RingQueue, SpscWraparoundManyLaps) {
  // Capacity-8 ring pushed 4000 items through: every slot is reused 500
  // times, and FIFO order must survive every lap boundary.
  ring_queue<uint64_t> q(8);
  std::thread producer([&q] {
    for (uint64_t i = 0; i < 4000; i++)
      while (!q.try_push(i)) std::this_thread::yield();
  });
  uint64_t expect = 0;
  uint64_t out[8];
  while (expect < 4000) {
    std::size_t got = q.pop_up_to(out, 8);
    for (std::size_t i = 0; i < got; i++) EXPECT_EQ(out[i], expect++);
    if (got == 0) std::this_thread::yield();
  }
  producer.join();
}

TEST(RingQueue, MpscSlotReuseAtCapacityPreservesPerProducerOrder) {
  // The sequence-number ABA shape: a CAPACITY-4 ring, two producers, and
  // thousands of laps, so the same four slots are claimed, published,
  // consumed, and reclaimed over and over under contention. If a stale
  // lap could ever masquerade as a fresh one (the wrapped-index ABA the
  // 64-bit per-slot sequences exist to prevent), items would be lost,
  // duplicated, or reordered within a producer.
  constexpr uint64_t kPerProducer = 2000;
  ring_queue<uint64_t> q(4);
  auto produce = [&q](uint64_t tag) {
    for (uint64_t i = 0; i < kPerProducer; i++)
      while (!q.try_push((tag << 32) | i)) std::this_thread::yield();
  };
  std::thread p1(produce, 1), p2(produce, 2);
  uint64_t next_from[3] = {0, 0, 0};
  uint64_t total = 0;
  uint64_t out[4];
  while (total < 2 * kPerProducer) {
    std::size_t got = q.pop_up_to(out, 4);
    for (std::size_t i = 0; i < got; i++) {
      const uint64_t tag = out[i] >> 32;
      const uint64_t seq = out[i] & 0xffffffffu;
      ASSERT_TRUE(tag == 1 || tag == 2);
      // Per-producer FIFO: each producer's items arrive in push order.
      EXPECT_EQ(seq, next_from[tag]);
      next_from[tag] = seq + 1;
    }
    total += got;
    if (got == 0) std::this_thread::yield();
  }
  p1.join();
  p2.join();
  EXPECT_EQ(next_from[1], kPerProducer);
  EXPECT_EQ(next_from[2], kPerProducer);
  EXPECT_EQ(q.pop_up_to(out, 4), 0u);  // nothing left behind
}

// --- deployment knobs (flock/config.hpp svc_tunables) -----------------------

TEST(SvcTunables, ParseFromStringsAndDefaults) {
  auto t = flock::svc_tunables_from("8", "2");
  EXPECT_EQ(t.clients, 8u);
  EXPECT_EQ(t.servers, 2u);
  t = flock::svc_tunables_from(nullptr, nullptr);
  EXPECT_EQ(t.clients, 2u);  // defaults survive absent env
  EXPECT_EQ(t.servers, 0u);
}

TEST(SvcTunables, ClampsHostileValues) {
  // Garbage parses as 0: clients clamps up to a runnable closed loop,
  // servers stays 0 (a valid deployment — clients combine).
  auto t = flock::svc_tunables_from("garbage", "junk");
  EXPECT_EQ(t.clients, 1u);
  EXPECT_EQ(t.servers, 0u);
  // Huge and negative (strtoul wraps) both clamp to the thread-count caps.
  t = flock::svc_tunables_from("4000000000", "-1");
  EXPECT_EQ(t.clients, 256u);
  EXPECT_EQ(t.servers, 64u);
  t = flock::svc_tunables_from("0", "0");
  EXPECT_EQ(t.clients, 1u);
  EXPECT_EQ(t.servers, 0u);
}

TEST(SvcTunables, ReadsTheRealEnvironmentNames) {
  // Guards the literal env names: a typo here would silently disable the
  // knob (same contract as Backoff.TunablesReadEnvironment).
  ::setenv("FLOCK_SVC_CLIENTS", "5", 1);
  ::setenv("FLOCK_SVC_SERVERS", "3", 1);
  auto t = flock::svc_tunables_from_env();
  ::unsetenv("FLOCK_SVC_CLIENTS");
  ::unsetenv("FLOCK_SVC_SERVERS");
  EXPECT_EQ(t.clients, 5u);
  EXPECT_EQ(t.servers, 3u);
}

// --- service: both lock modes ----------------------------------------------

class ServiceTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { flock::set_blocking(GetParam()); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(ServiceTest, ClosedLoopOpsThroughClientCombining) {
  map_t m(4);
  svc_t svc(m);
  EXPECT_TRUE(svc.insert(7, 70));
  EXPECT_FALSE(svc.insert(7, 71));  // duplicate reports not-inserted
  EXPECT_EQ(svc.find(7), std::optional<uint64_t>(70));
  EXPECT_EQ(svc.find(8), std::nullopt);
  EXPECT_TRUE(svc.remove(7));
  EXPECT_FALSE(svc.remove(7));
  EXPECT_EQ(svc.find(7), std::nullopt);
  // The pipeline writes land in the underlying store.
  EXPECT_TRUE(svc.insert(9, 90));
  EXPECT_EQ(m.find(9), std::optional<uint64_t>(90));
  EXPECT_TRUE(m.check_invariants());
}

TEST_P(ServiceTest, DedicatedServerDrainsAndCompletes) {
  map_t m(4);
  svc_t svc(m);
  std::atomic<bool> stop{false};
  std::thread server([&svc, &stop] { svc.serve(0, 1, stop); });
  // Raw async submits (no combining by the submitter), so the server is
  // the only consumer: its drain loop must execute and publish.
  for (uint64_t k = 0; k < 32; k++) {
    completion<uint64_t> c;
    c.arm();
    req_t r{op_kind::insert, k, k * 10, &c};
    while (!svc.try_submit(r)) std::this_thread::yield();
    c.wait();
    EXPECT_TRUE(c.ok);
  }
  completion<uint64_t> c;
  c.arm();
  req_t r{op_kind::find, 5, 0, &c};
  while (!svc.try_submit(r)) std::this_thread::yield();
  c.wait();
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(c.value, 50u);
  // mo: release — pairs with serve()'s acquire poll; the final sweep
  // sees every push ordered before this store.
  stop.store(true, std::memory_order_release);
  server.join();
  EXPECT_EQ(m.approx_size(), 32u);
}

TEST_P(ServiceTest, CountersAndHistogramsAccountSingleThreaded) {
  const flock::stats_snapshot before = flock::stats();
  map_t m(2);
  svc_t svc(m);
  for (uint64_t k = 0; k < 10; k++) EXPECT_TRUE(svc.insert(k, k));
  for (uint64_t k = 0; k < 10; k++) EXPECT_TRUE(svc.find(k).has_value());
  const flock::stats_snapshot after = flock::stats();
  // Single-threaded closed loop: every op is its own push + drain of a
  // one-element batch, so the accounting is exact, not approximate.
  EXPECT_EQ(after.svc_batch_ops - before.svc_batch_ops, 20u);
  EXPECT_EQ(after.svc_batches - before.svc_batches, 20u);
  EXPECT_GE(after.svc_batch_max, 1u);
  EXPECT_GE(after.svc_depth_hw, 1u);
  EXPECT_EQ(after.svc_ring_full, before.svc_ring_full);
  // Per-service histograms: 20 one-element batches, 20 depth-1 samples
  // (bucket 1 holds the value 1).
  EXPECT_EQ(svc.batch_histogram().count(1), 20u);
  EXPECT_EQ(svc.depth_histogram().count(1), 20u);
}

TEST_P(ServiceTest, DegenerateBatchOneRunsInline) {
  // max_batch == 1 turns combining off: the closed-loop helpers execute
  // inline (no ring round trip, no batch accounting) so "no batching"
  // costs what a direct call costs — but the async submit path still
  // flows through the ring and still drains one op per pass.
  const flock::stats_snapshot before = flock::stats();
  map_t m(2);
  svc_t::options o;
  o.max_batch = 1;
  svc_t svc(m, o);
  EXPECT_TRUE(svc.insert(1, 10));
  EXPECT_EQ(svc.find(1), std::optional<uint64_t>(10));
  EXPECT_TRUE(svc.remove(1));
  EXPECT_EQ(svc.find(1), std::nullopt);
  const flock::stats_snapshot mid = flock::stats();
  EXPECT_EQ(mid.svc_batches, before.svc_batches);  // inline: never drained
  EXPECT_EQ(mid.svc_batch_ops, before.svc_batch_ops);
  // The façade still applies inline: a key moved out of the primary
  // mid-window is served through the source-first fallback.
  map_t dst(2);
  ASSERT_TRUE(svc.insert(2, 20));
  svc.begin_rebalance(dst);
  ASSERT_TRUE(svc.move_to_target(2));
  EXPECT_EQ(svc.find(2), std::optional<uint64_t>(20));
  EXPECT_TRUE(svc.remove(2));
  svc.end_rebalance();
  // Async submits keep using the ring even at max_batch 1.
  completion<uint64_t> c;
  c.arm();
  req_t r{op_kind::insert, 3, 30, &c};
  EXPECT_TRUE(svc.try_submit(r));
  EXPECT_EQ(svc.drain(svc.ring_of(3)), 1u);
  EXPECT_TRUE(c.ready());
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(flock::stats().svc_batches, mid.svc_batches + 1);
  EXPECT_TRUE(m.check_invariants());
}

TEST_P(ServiceTest, RingFullIsRetryableBackpressure) {
  const flock::stats_snapshot before = flock::stats();
  map_t m(2);
  svc_t::options o;
  o.rings = 1;
  o.ring_capacity = 2;
  svc_t svc(m, o);
  completion<uint64_t> c1, c2, c3;
  c1.arm();
  c2.arm();
  c3.arm();
  req_t r1{op_kind::insert, 1, 10, &c1};
  req_t r2{op_kind::insert, 2, 20, &c2};
  req_t r3{op_kind::insert, 3, 30, &c3};
  EXPECT_TRUE(svc.try_submit(r1));
  EXPECT_TRUE(svc.try_submit(r2));
  EXPECT_FALSE(svc.try_submit(r3));  // full: rejected, counted, retryable
  const flock::stats_snapshot mid = flock::stats();
  EXPECT_GE(mid.svc_ring_full - before.svc_ring_full, 1u);
  EXPECT_EQ(svc.drain(0), 2u);  // both queued requests execute
  EXPECT_TRUE(c1.ready());
  EXPECT_TRUE(c2.ready());
  EXPECT_FALSE(c3.ready());        // the rejected one was never enqueued
  EXPECT_TRUE(svc.try_submit(r3));  // the retry fits now
  EXPECT_EQ(svc.drain(0), 1u);
  EXPECT_TRUE(c3.ready());
  EXPECT_TRUE(c3.ok);
  EXPECT_EQ(m.approx_size(), 3u);
  // The drained pair crossed max-batch accounting too.
  EXPECT_GE(flock::stats().svc_batch_max, 2u);
}

TEST_P(ServiceTest, DoubleReadFacadeHidesLiveRebalanceWindow) {
  map_t src(2), dst(4);
  svc_t svc(src);
  std::set<uint64_t> live;
  for (uint64_t k = 0; k < 96; k++) {
    ASSERT_TRUE(svc.insert(k, k * 10));
    live.insert(k);
  }
  svc.begin_rebalance(dst);
  // An explicit pipeline move: the key leaves the primary, yet the
  // service read still serves it through the source-first fallback.
  ASSERT_TRUE(svc.move_to_target(5));
  EXPECT_FALSE(src.find(5).has_value());  // gone from the primary...
  EXPECT_EQ(svc.find(5), std::optional<uint64_t>(50));  // ...not the façade
  // Window-aware removes reach whichever store holds the key.
  EXPECT_TRUE(svc.remove(5));
  EXPECT_FALSE(svc.find(5).has_value());
  EXPECT_FALSE(dst.find(5).has_value());
  live.erase(5);
  ASSERT_TRUE(svc.remove(77));  // and a primary-resident remove still works
  live.erase(77);
  // Drive the migration in small budgeted passes; after EVERY pass the
  // whole key set must be visible through the façade even though it is
  // split across the two stores mid-window.
  while (true) {
    const auto rep = svc.rebalance_step(8);
    for (uint64_t k : live)
      EXPECT_EQ(svc.find(k), std::optional<uint64_t>(k * 10));
    if (rep.moved == 0 && rep.exhausted == 0 && !rep.budget_spent) break;
  }
  svc.end_rebalance();
  for (uint64_t k : live) {
    EXPECT_FALSE(src.find(k).has_value());  // primary fully drained
    EXPECT_EQ(dst.find(k), std::optional<uint64_t>(k * 10));
  }
  EXPECT_TRUE(src.check_invariants());
  EXPECT_TRUE(dst.check_invariants());
}

TEST_P(ServiceTest, ConcurrentReadersNeverMissDuringRebalance) {
  map_t src(2), dst(4);
  svc_t svc(src);
  constexpr uint64_t kKeys = 128;
  for (uint64_t k = 0; k < kKeys; k++) ASSERT_TRUE(svc.insert(k, k + 1));
  svc.begin_rebalance(dst);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> misses{0};
  std::thread reader([&svc, &stop, &misses] {
    while (!stop.load(std::memory_order_acquire)) {
      for (uint64_t k = 0; k < kKeys; k++) {
        const auto r = svc.find(k);
        if (!r.has_value() || *r != k + 1)
          misses.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  while (true) {
    const auto rep = svc.rebalance_step(4);
    if (rep.moved == 0 && rep.exhausted == 0 && !rep.budget_spent) break;
    std::this_thread::yield();  // let the reader overlap the window
  }
  // The window stays armed until the reader stops: end_rebalance before
  // the last reads would re-expose the drained primary.
  stop.store(true, std::memory_order_release);
  reader.join();
  svc.end_rebalance();
  EXPECT_EQ(misses.load(), 0u);
  for (uint64_t k = 0; k < kKeys; k++)
    EXPECT_EQ(dst.find(k), std::optional<uint64_t>(k + 1));
}

INSTANTIATE_TEST_SUITE_P(Modes, ServiceTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

// --- chaos: the pipeline's three fault windows ------------------------------

class ServiceChaos : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    chaos::reset();
    flock::set_blocking(GetParam());
  }
  void TearDown() override {
    chaos::release_killed();
    spin_until([] { return chaos::parked() == 0; });
    chaos::reset();
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

// Window 1 of the drain path: the combiner has popped a batch (owning it
// exclusively — the ring slots are already freed) but executed nothing.
// Killing it there must strand nothing: the parked combiner still owns
// the batch, and releasing it completes every request exactly once.
TEST_P(ServiceChaos, ServerKilledAfterPopStillCompletesItsBatchOnce) {
  map_t m(2);
  svc_t svc(m);
  chaos::arm_options o;
  o.victim_only = true;
  ASSERT_TRUE(chaos::arm("svc.drain.post_pop", chaos::fault::kill, o));

  std::atomic<bool> stop{false};
  std::thread server([&svc, &stop] {
    chaos::victim_scope vs;
    svc.serve(0, 1, stop);
  });

  completion<uint64_t> c;
  c.arm();
  req_t r{op_kind::insert, 42, 420, &c};
  while (!svc.try_submit(r)) std::this_thread::yield();
  spin_until([] { return chaos::parked() == 1; });

  // Parked before execution: the work is pending, not lost. (No service
  // calls here — the parked combiner holds the ring's combiner lock.)
  EXPECT_FALSE(c.ready());
  EXPECT_FALSE(m.find(42).has_value());
  EXPECT_GE(chaos::hits("svc.drain.post_pop"), 1u);

  chaos::release_killed();
  c.wait();  // the resumed combiner finishes the batch it owns
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(m.find(42), std::optional<uint64_t>(420));
  // Exactly once: a second insert of the same key reports "already
  // present" — the rescued request was applied a single time.
  EXPECT_FALSE(svc.insert(42, 999));
  EXPECT_EQ(m.find(42), std::optional<uint64_t>(420));

  // mo: release — pairs with serve()'s acquire poll (final-sweep order).
  stop.store(true, std::memory_order_release);
  server.join();
  EXPECT_TRUE(m.check_invariants());
}

// Window 2: the op has EXECUTED but its completion is unpublished — the
// hardest window, where the store already changed and only the waiter is
// blind. The rescued publish must flip the completion exactly once.
TEST_P(ServiceChaos, ServerKilledBeforeCompleteHasDoneTheWork) {
  map_t m(2);
  svc_t svc(m);
  chaos::arm_options o;
  o.victim_only = true;
  ASSERT_TRUE(chaos::arm("svc.exec.pre_complete", chaos::fault::kill, o));

  std::atomic<bool> stop{false};
  std::thread server([&svc, &stop] {
    chaos::victim_scope vs;
    svc.serve(0, 1, stop);
  });

  completion<uint64_t> c;
  c.arm();
  req_t r{op_kind::insert, 7, 70, &c};
  while (!svc.try_submit(r)) std::this_thread::yield();
  spin_until([] { return chaos::parked() == 1; });

  // The store mutation is already durable; only the publication is stuck.
  EXPECT_FALSE(c.ready());
  EXPECT_EQ(m.find(7), std::optional<uint64_t>(70));

  chaos::release_killed();
  c.wait();
  EXPECT_TRUE(c.ok);
  // Exactly once: the rescued publish did not re-run the insert.
  EXPECT_FALSE(svc.insert(7, 999));
  EXPECT_EQ(m.find(7), std::optional<uint64_t>(70));

  // mo: release — pairs with serve()'s acquire poll (final-sweep order).
  stop.store(true, std::memory_order_release);
  server.join();
  EXPECT_TRUE(m.check_invariants());
}

// Window 3, the client side: a submitter killed right after its push has
// published a request it will never wait on. The request is already in
// the ring, so any drain completes it — a dead client cannot wedge the
// pipeline, and its completion slot (still alive while parked) fills.
TEST_P(ServiceChaos, ClientKilledAfterPushGetsServedAnyway) {
  map_t m(2);
  svc_t svc(m);
  chaos::arm_options o;
  o.victim_only = true;
  ASSERT_TRUE(chaos::arm("svc.enqueue.post_push", chaos::fault::kill, o));

  completion<uint64_t> c;
  c.arm();
  std::thread client([&svc, &c] {
    chaos::victim_scope vs;
    req_t r{op_kind::insert, 13, 130, &c};
    while (!svc.try_submit(r)) std::this_thread::yield();
  });
  spin_until([] { return chaos::parked() == 1; });
  EXPECT_FALSE(c.ready());

  // Another participant (here: the main thread combining) drains the
  // ring and completes the dead client's request.
  EXPECT_EQ(svc.drain(0), 1u);
  EXPECT_TRUE(c.ready());
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(m.find(13), std::optional<uint64_t>(130));

  chaos::release_killed();
  client.join();
  EXPECT_TRUE(m.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Modes, ServiceChaos, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "blocking" : "lockfree";
                         });

}  // namespace
