// flock_lint — static analyzer enforcing the flock idempotence &
// memory-discipline rules (R1–R5, see rules.hpp and ARCHITECTURE.md
// "Correctness tooling").
//
// Usage:
//   flock_lint [options] PATH...
//     PATH            file, or directory scanned recursively for
//                     .hpp/.h/.cpp/.cc (build*/ trees are skipped)
//   --baseline FILE   reviewed-escape list (baseline.hpp format); covered
//                     findings are suppressed, stale entries fail the run
//   --write-baseline FILE
//                     write current findings as baseline entries and exit 0
//   --rules R1,R3     run only the named rules
//   --list-rules      print each rule with its rationale and exit
//
// Exit status: 0 clean, 1 findings (or stale baseline entries), 2 usage
// or I/O error. Diagnostics are `path:line: [Rn] message` so terminals
// and editors link them.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using namespace flock_lint;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".cpp" || e == ".cc";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || name == ".git";
}

int collect(const std::string& root, std::vector<source_file>& out) {
  fs::path rp(root);
  std::error_code ec;
  if (fs::is_regular_file(rp, ec)) {
    auto f = source_file::load(root);
    if (!f) {
      std::fprintf(stderr, "flock_lint: cannot read %s\n", root.c_str());
      return 2;
    }
    out.push_back(std::move(*f));
    return 0;
  }
  if (!fs::is_directory(rp, ec)) {
    std::fprintf(stderr, "flock_lint: no such file or directory: %s\n",
                 root.c_str());
    return 2;
  }
  std::vector<std::string> paths;
  fs::recursive_directory_iterator it(rp, ec), end;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && has_source_ext(it->path()))
      paths.push_back(it->path().generic_string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) {
    auto f = source_file::load(p);
    if (!f) {
      std::fprintf(stderr, "flock_lint: cannot read %s\n", p.c_str());
      return 2;
    }
    out.push_back(std::move(*f));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, write_baseline_path;
  lint_config cfg;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    auto need_arg = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flock_lint: %s needs an argument\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--baseline") {
      baseline_path = need_arg();
    } else if (a == "--write-baseline") {
      write_baseline_path = need_arg();
    } else if (a == "--rules") {
      std::string list = need_arg();
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t c = list.find(',', pos);
        if (c == std::string::npos) c = list.size();
        if (c > pos) cfg.only_rules.insert(list.substr(pos, c - pos));
        pos = c + 1;
      }
    } else if (a == "--list-rules") {
      for (const rule_doc& d : rule_docs())
        std::printf("%s  %s\n    %s\n", d.id, d.title, d.rationale);
      return 0;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: flock_lint [--baseline FILE] [--write-baseline FILE]\n"
          "                  [--rules R1,..] [--list-rules] PATH...\n");
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "flock_lint: unknown option %s\n", a.c_str());
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "flock_lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<source_file> files;
  for (const std::string& r : roots)
    if (int rc = collect(r, files); rc != 0) return rc;

  std::vector<finding> findings = lint_files(files, cfg);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "flock_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << baseline::serialize(findings);
    std::fprintf(stderr, "flock_lint: wrote %zu entr%s to %s\n",
                 findings.size(), findings.size() == 1 ? "y" : "ies",
                 write_baseline_path.c_str());
    return 0;
  }

  baseline bl;
  if (!baseline_path.empty()) {
    auto bf = source_file::load(baseline_path);
    if (!bf) {
      std::fprintf(stderr, "flock_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<std::string> errs;
    bl = baseline::parse(bf->text, &errs);
    for (const std::string& e : errs)
      std::fprintf(stderr, "flock_lint: %s\n", e.c_str());
    if (!errs.empty()) return 2;
  }

  int reported = 0, suppressed = 0;
  for (const finding& f : findings) {
    if (bl.matches(f)) {
      suppressed++;
      continue;
    }
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    if (!f.snippet.empty())
      std::printf("    %s\n", f.snippet.c_str());
    reported++;
  }

  std::vector<std::string> stale = bl.unused();
  for (const std::string& s : stale)
    std::printf("flock_lint: stale baseline entry (no matching finding — "
                "prune or re-review): %s\n",
                s.c_str());

  std::fprintf(stderr,
               "flock_lint: %d file%s, %d finding%s, %d baselined, %zu "
               "stale baseline entr%s\n",
               static_cast<int>(files.size()), files.size() == 1 ? "" : "s",
               reported, reported == 1 ? "" : "s", suppressed, stale.size(),
               stale.size() == 1 ? "y" : "ies");
  return (reported > 0 || !stale.empty()) ? 1 : 0;
}
