// Tests for dense thread-id assignment and recycling.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

TEST(Threading, IdStableWithinThread) {
  int a = flock::thread_id();
  int b = flock::thread_id();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, flock::kMaxThreads);
}

TEST(Threading, IdsDistinctAcrossLiveThreads) {
  constexpr int kThreads = 16;
  std::vector<int> ids(kThreads, -1);
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; i++) {
    ts.emplace_back([&, i] {
      ids[i] = flock::thread_id();
      arrived.fetch_add(1);
      while (!release.load()) {
      }
    });
  }
  while (arrived.load() < kThreads) {
  }
  release.store(true);
  for (auto& t : ts) t.join();
  std::set<int> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), static_cast<size_t>(kThreads));
}

TEST(Threading, IdsRecycledAfterExit) {
  // Spawning far more threads than kMaxThreads sequentially must not
  // exhaust the id space.
  for (int round = 0; round < 2 * flock::kMaxThreads; round++) {
    std::thread([] {
      int id = flock::thread_id();
      ASSERT_GE(id, 0);
      ASSERT_LT(id, flock::kMaxThreads);
    }).join();
  }
  SUCCEED();
}

TEST(Threading, BoundCoversIssuedIds) {
  int id = flock::thread_id();
  EXPECT_GT(flock::thread_id_bound(), id);
}

}  // namespace
