// service_pipeline — the PR 10 A/B duel: closed-loop clients calling the
// store directly vs the same clients driving it through the batched
// serving front end (src/service/: MPSC rings + flat-combining batch
// execution), on ONE shared warmed store per lock mode.
//
// Methodology follows the pr9 read-path duel (bench/micro_flock.cpp):
//
//  * Same binary, same store, alternating chunks: the deterministic
//    mixed zipf(0.99) op stream runs in order, the direct side taking
//    even chunks and the pipelined side odd ones. No position executes
//    twice, both sides inherit each other's line warming, and the store
//    stays at its churn equilibrium (~half occupancy, 50% updates).
//  * Tight interleaving + medians: each side reports its MEDIAN
//    per-chunk Mops across rounds, so background drift on the shared box
//    costs one chunk, not one side. Only the within-duel ratio is
//    comparable across runs — never the absolute Mops.
//  * Chunks must be LONG (default 2M ops/side/round). The blocking
//    collapse is a rare-event phenomenon: a holder preempted mid
//    bucket-lock costs ~one scheduler quantum (~10ms) of global stall,
//    so a chunk whose per-client slice fits inside one quantum never
//    preempts a holder at all (threads run back to back, each finishing
//    its slice unpreempted), and a median over short chunks filters the
//    few that do hit a stall. Measured at c8 blocking: per-client runs
//    of <= 12.5K ops never collapse (~13 Mops), 25K-125K collapse in
//    some repetitions only, 250K+ collapse consistently (~6.5 Mops).
//    2M-op chunks put every chunk in the consistent regime.
//  * Sweep axes: lock mode x closed-loop clients x max batch per
//    combining pass. The lock-mode axis is where the architecture's win
//    and its cost separate (measured on the 1-core box):
//      - BLOCKING + oversubscription is the pipeline's home turf: a
//        direct caller preempted while holding a bucket lock stalls
//        every thread needing that bucket for the rest of its quantum
//        (direct collapses 14.0 -> 3.9 Mops from 1 to 16 clients); the
//        combiner lock keeps at most one thread in the store at a time,
//        so bucket locks stay uncontended, waiters back off to sleeps
//        instead of piling onto the runqueue, and the piped side holds
//        ~5-6.5 Mops — 1.48x direct at 16 clients, crossover at 8.
//      - LOCK-FREE mode is the paper's own answer to preemption
//        (helpers finish the victim's section): direct degrades only
//        gently with clients, so the ring round trip is pure overhead
//        and the piped side runs ~0.5-0.6x direct. Recorded honestly —
//        the service tier earns its cost in blocking deployments, on
//        real multicore contention, or when the async API is the point.
//      - batch=1 is the degenerate no-combining configuration: the
//        closed-loop path executes inline (service.hpp), so it must
//        duel at parity in every mode.
//    The pipelined side runs ZERO dedicated servers (waiting clients
//    flat-combine) — on this box a dedicated server per ring would just
//    add a context switch per batch; combining is the shape that wins.
//
// Per point, alongside the Mops pair, the run reports the service's
// own accounting: mean/max batch size actually formed, ring-full
// rejections, and the log2 batch-size and push-time queue-depth
// histograms (CSV rows `pr10_hist,<point>,<which>,<bucket>,<count>`;
// batch=1 points run inline and have empty histograms by design). Mean
// batch stays ~1 on this box — real multi-request batches need pushers
// that are concurrent in TIME (multicore), while 1-core clients are
// timesliced and mostly self-drain — so the combining win measured here
// is the serialization, not the amortization.
//
// Knobs: FLOCK_SVC_KEYS (16384), FLOCK_SVC_CHUNK (2000000 ops/side/round),
// FLOCK_SVC_ROUNDS (3), FLOCK_SVC_RING (1024 slots/ring), FLOCK_SVC_POINTS
// (comma-separated substrings; run only matching points, e.g. "bl_c8,b1").
// JSON series go to BENCH_service.json (FLOCK_BENCH_JSON overrides).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "service/service.hpp"
#include "store/sharded_map.hpp"
#include "workload/driver.hpp"
#include "workload/zipf.hpp"

namespace {

using store_t = flock_store::sharded_map<uint64_t, uint64_t, false>;
using svc_t = flock_service::service<uint64_t, uint64_t, false>;

struct stream {
  std::vector<uint64_t> keys;
  std::vector<uint16_t> opv;  // per-position op draw in [0, 1000)
};

// One timed chunk: `clients` closed-loop threads split the chunk evenly,
// all released by one barrier, wall-clocked to the last join. The mixed
// draw is 25% insert / 25% remove / 50% find — the 50%-update mixed
// point the pipeline has to survive (a read-only sweep would flatter
// it: writes are where the bucket locks, and therefore the blocking
// collapse, live).
// The op loop is templated over the target so the direct and piped
// sides compile as SEPARATE instantiations. With a runtime `svc ?`
// branch inside one shared worker lambda, the inliner ran out of budget
// for the svc chain and the piped side paid an out-of-line call per op
// (~25% at batch=1) that the service doesn't actually cost — the A in
// an A/B duel must not decide how well the B side compiles.
template <class Target>
double run_chunk_on(Target& tgt, const stream& st, long base, long chunk,
                    int clients) {
  const long per = chunk / clients;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> sink{0};
  auto worker = [&](int t) {
    const std::size_t mask = st.keys.size() - 1;
    uint64_t local = 0;
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (long i = 0; i < per; i++) {
      const std::size_t j =
          static_cast<std::size_t>(base + t * per + i) & mask;
      const uint64_t k = st.keys[j];
      const uint16_t o = st.opv[j];
      if (o < 250)
        tgt.insert(k, k + 1);
      else if (o < 500)
        tgt.remove(k);
      else
        local += tgt.find(k).has_value();
    }
    sink.fetch_add(local);
  };
  std::vector<std::thread> ts;
  ts.reserve(clients);
  for (int t = 0; t < clients; t++) ts.emplace_back(worker, t);
  while (ready.load() != clients) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  return sec > 0 ? static_cast<double>(per) * clients / sec / 1e6 : 0.0;
}

double run_chunk(store_t& store, svc_t* svc, const stream& st, long base,
                 long chunk, int clients) {
  if (svc != nullptr) return run_chunk_on(*svc, st, base, chunk, clients);
  return run_chunk_on(store, st, base, chunk, clients);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// FLOCK_SVC_POINTS: comma-separated substrings; a point runs when any
// one matches (empty/unset runs everything). Iteration aid — a filtered
// run still advances the shared op stream only through the points it
// runs, so absolute numbers shift slightly vs the full sweep.
bool point_selected(const std::string& point) {
  const char* env = std::getenv("FLOCK_SVC_POINTS");
  if (env == nullptr || *env == '\0') return true;
  std::string spec(env);
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!tok.empty() && point.find(tok) != std::string::npos) return true;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

void print_hist(const std::string& point, const char* which,
                const flock_service::histogram& h) {
  for (int b = 0; b < flock_service::histogram::kBuckets; b++)
    if (h.count(b) != 0)
      std::printf("pr10_hist,%s,%s,%d,%llu\n", point.c_str(), which, b,
                  static_cast<unsigned long long>(h.count(b)));
}

}  // namespace

int main() {
  const uint64_t range =
      static_cast<uint64_t>(bench::env_long("FLOCK_SVC_KEYS", 16384));
  const long chunk = bench::env_long("FLOCK_SVC_CHUNK", 2000000);
  const int rounds = static_cast<int>(bench::env_long("FLOCK_SVC_ROUNDS", 3));
  const std::size_t ring_cap =
      static_cast<std::size_t>(bench::env_long("FLOCK_SVC_RING", 1024));

  // Deterministic streams, shared by every point: zipf(0.99) keys over
  // [0, range) — half absent after prefill — plus a per-position op draw.
  const std::size_t kStream = std::size_t{1} << 20;
  stream st;
  st.keys.resize(kStream);
  st.opv.resize(kStream);
  flock_workload::zipf_distribution dist(range, 0.99);
  flock_workload::rng64 krng(42), orng(7);
  for (auto& k : st.keys) k = dist.sample(krng);
  for (auto& o : st.opv) o = static_cast<uint16_t>(orng.next() % 1000);

  bench::json_reporter rep;
  bool invariants_ok = true;
  for (bool blocking : {false, true}) {
    flock::set_blocking(blocking);
    const char* mode = blocking ? "bl" : "lf";
    // A fresh store per lock mode (nodes and lock words are created and
    // consumed under one mode for the mode's whole duel).
    store_t store(8, range);
    flock_workload::prefill_half(store, range);
    long pos = 0;
    for (int clients : {1, 2, 4, 8, 16}) {
      for (int batch : {1, 8, 32}) {
        const std::string point = std::string(mode) + "_c" +
                                  std::to_string(clients) + "_b" +
                                  std::to_string(batch);
        const std::string prefix = "pr10_svc_" + point + "_";
        if (!point_selected(point)) continue;
        std::fprintf(stderr, "point %s\n", point.c_str());
        svc_t::options o;
        o.rings = 1;  // one ring concentrates the combining on this box
        o.ring_capacity = ring_cap;
        o.max_batch = static_cast<std::size_t>(batch);
        svc_t svc(store, o);
        // Warmup: one untimed chunk per side at this point's shape.
        run_chunk(store, nullptr, st, pos, chunk, clients);
        pos += chunk;
        run_chunk(store, &svc, st, pos, chunk, clients);
        pos += chunk;
        const flock::stats_snapshot s0 = flock::stats();
        std::vector<double> direct, piped;
        for (int r = 0; r < rounds; r++) {
          direct.push_back(run_chunk(store, nullptr, st, pos, chunk, clients));
          pos += chunk;
          piped.push_back(run_chunk(store, &svc, st, pos, chunk, clients));
          pos += chunk;
        }
        const flock::stats_snapshot s1 = flock::stats();
        const double dm = median(direct), pm = median(piped);
        rep.add(prefix + "direct_mops", dm);
        rep.add(prefix + "piped_mops", pm);
        rep.add(prefix + "speedup", dm > 0 ? pm / dm : 0.0);
        const uint64_t batches = s1.svc_batches - s0.svc_batches;
        const uint64_t ops = s1.svc_batch_ops - s0.svc_batch_ops;
        rep.add(prefix + "mean_batch",
                batches != 0 ? static_cast<double>(ops) / batches : 0.0);
        rep.add(prefix + "ring_full",
                static_cast<double>(s1.svc_ring_full - s0.svc_ring_full));
        print_hist(point, "batch", svc.batch_histogram());
        print_hist(point, "depth", svc.depth_histogram());
      }
    }
    invariants_ok = invariants_ok && store.check_invariants();
  }
  rep.add("pr10_invariants_ok", invariants_ok ? 1.0 : 0.0);
  rep.write("BENCH_service.json");
  flock::epoch_manager::instance().flush();
  return 0;
}
