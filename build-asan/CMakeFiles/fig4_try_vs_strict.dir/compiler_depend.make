# Empty compiler generated dependencies file for fig4_try_vs_strict.
# This may be replaced when dependencies are built.
