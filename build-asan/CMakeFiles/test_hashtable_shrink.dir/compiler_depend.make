# Empty compiler generated dependencies file for test_hashtable_shrink.
# This may be replaced when dependencies are built.
