// request.hpp — the service tier's wire format: a POD request record
// that travels through a ring_queue by plain copy, plus the completion
// slot the client waits on.
//
// No std::future, no allocation on the hot path: the client owns its
// completion slot (stack or a per-client slab), points the request at
// it, and spins/yields on one atomic word. The server executes the op
// and publishes result-then-state with one release store; the client's
// acquire load of the state admits reading the result fields. A
// completion publishes at most once per armed request: the ring hands
// each record to exactly one drain (single serialized consumer), and the
// drain executes and publishes it exactly once — the chaos tests park a
// server mid-batch and assert exactly that.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace flock_service {

enum class op_kind : uint8_t {
  find,    // result: ok = key present, value = payload when present
  insert,  // result: ok = inserted (false: already present / no window)
  remove,  // result: ok = removed (false: was absent)
  move,    // result: ok = key moved primary -> rebalance target
};

/// The client-side completion slot. Reusable: arm() before (re)submitting
/// the owning request, wait()/ready() after. V must be trivially copyable
/// (same contract as the ring).
template <class V>
struct completion {
  static constexpr uint32_t kPending = 0;
  static constexpr uint32_t kDone = 1;

  std::atomic<uint32_t> state{kPending};
  V value{};        // find payload; valid only when ok after a find
  bool ok = false;  // op outcome (found / applied / moved)

  void arm() {
    ok = false;
    // mo: relaxed — re-arming happens strictly before the request is
    // pushed; the ring's release publication orders it for the server.
    state.store(kPending, std::memory_order_relaxed);
  }

  bool ready() const {
    // mo: acquire — pairs with publish()'s release store; admits reading
    // ok/value written before it.
    return state.load(std::memory_order_acquire) == kDone;
  }

  /// Server side: write the result, then flip the state exactly once.
  void publish(bool ok_, V value_) {
    ok = ok_;
    value = value_;
    // mo: release — publishes ok/value to the waiting client's acquire
    // load in ready().
    state.store(kDone, std::memory_order_release);
  }

  /// Spin briefly, then yield — the closed-loop client wait. Callers that
  /// can make progress themselves (combining) should prefer the service's
  /// submit-and-wait helpers, which drain the ring between polls instead
  /// of burning the time slice.
  void wait() const {
    for (int spins = 0; !ready(); spins++) {
      if (spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
      } else {
        std::this_thread::yield();
      }
    }
  }
};

/// The ring slot payload: one op, by value. `done` points at a
/// client-owned completion that outlives the request's whole lifecycle
/// (push -> drain -> publish); the chaos kill tests rely on that
/// ownership to assert rescued state after a parked server resumes.
template <class K, class V>
struct request {
  op_kind kind = op_kind::find;
  K key{};
  V value{};
  completion<V>* done = nullptr;
};

}  // namespace flock_service
