# Empty compiler generated dependencies file for test_mutable.
# This may be replaced when dependencies are built.
