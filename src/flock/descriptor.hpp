// descriptor.hpp — the descriptor a thread leaves behind when it takes a
// lock (paper §1, §3, §4): the thunk to run, the shared idempotence log,
// a done flag, plus two implementation fields from §6: the creation epoch
// (helpers adopt it) and a helped flag (never-helped descriptors are
// reused immediately instead of epoch-retired).
//
// The first log block is embedded, so acquiring a lock costs exactly one
// pool allocation.
#pragma once

#include <atomic>
#include <cstdint>

#include "allocator.hpp"
#include "config.hpp"
#include "epoch.hpp"
#include "log.hpp"
#include "stats.hpp"
#include "thunk.hpp"

namespace flock {

struct descriptor {
  log_block head;                   // first log block, embedded
  std::atomic<bool> done{false};    // update-once; loads of it are logged
  std::atomic<bool> helped{false};  // §6 reuse optimization (see lock.hpp)
  int64_t epoch = -1;               // creator's announced epoch
  thunk fn;
#ifdef FLOCK_DEBUG_API
  // The descriptor whose thunk was running when this one was created —
  // the lock-holding chain for the non-holder unlock check (lock.hpp).
  // Helpers replaying a nested acquisition create loser candidates with
  // their own parent, but only the first-committed descriptor survives,
  // so the chain reflects the original nesting.
  descriptor* dbg_parent = nullptr;
#endif

  descriptor() = default;
  descriptor(const descriptor&) = delete;
  descriptor& operator=(const descriptor&) = delete;

  ~descriptor() {
    // Free any overflow log blocks. Safe: destruction happens either
    // before the descriptor was ever published (loser of an idempotent
    // allocation) or after epoch reclamation says nobody can reach it.
    // The destroying thread may not be the thread that linked an overflow
    // block, so it must see the block's initialized contents before
    // freeing it.
    // mo: acquire (both loads) — pairs with the acq_rel append CAS in
    // log.hpp's log_bump.
    log_block* b = head.next.load(std::memory_order_acquire);
    while (b != nullptr) {
      log_block* nxt = b->next.load(std::memory_order_acquire);  // mo: ditto
      pool_delete(b);
      b = nxt;
    }
  }

  /// Alg. 2 `run`: install this descriptor's log as the thread's current
  /// log, run the thunk, restore the previous log (supports nesting).
  bool run(detail::thread_context* c) {
    log_cursor saved = c->log;
    c->log = {&head, 0};
#ifdef FLOCK_DEBUG_API
    if (c->dbg_run_depth < detail::thread_context::kDbgRunDepth)
      c->dbg_run_stack[c->dbg_run_depth] = this;
    c->dbg_run_depth++;
#endif
    bool result = fn();
#ifdef FLOCK_DEBUG_API
    c->dbg_run_depth--;
#endif
    c->log = saved;
    return result;
  }

  bool run() { return run(detail::my_ctx()); }
};

namespace detail {

/// Idempotent descriptor creation (Alg. 3 createDescriptor) with the
/// caller's context and compile-time ccas: every run of the enclosing
/// thunk builds a candidate; the first to commit wins and losers free
/// theirs (they were never published).
template <bool Ccas, class F>
descriptor* create_descriptor_ctx(thread_context* c, F&& f) {
  c->stat_created++;
  descriptor* mine = pool_new_ctx<descriptor>(c);
  mine->fn.emplace(std::forward<F>(f));
#ifdef FLOCK_DEBUG_API
  mine->dbg_parent =
      c->dbg_run_depth > 0 && c->dbg_run_depth <= thread_context::kDbgRunDepth
          ? static_cast<descriptor*>(c->dbg_run_stack[c->dbg_run_depth - 1])
          : nullptr;
#endif
  // mo: relaxed — reading our OWN announcement slot (single writer is
  // this thread); only the value matters, not ordering with other slots.
  int64_t e = c->announced.load(std::memory_order_relaxed);
  mine->epoch = e >= 0 ? e : epoch_manager::instance().current_epoch();
  auto [committed, first] =
      commit64_first_ctx<Ccas>(c, reinterpret_cast<uint64_t>(mine));
  if (first) return mine;
  pool_delete_ctx(c, mine);
  return reinterpret_cast<descriptor*>(committed);
}

}  // namespace detail

/// Public spelling (one context fetch, one ccas-flag load).
template <class F>
descriptor* create_descriptor(F&& f) {
  detail::thread_context* c = detail::my_ctx();
  return use_ccas()
             ? detail::create_descriptor_ctx<true>(c, std::forward<F>(f))
             : detail::create_descriptor_ctx<false>(c, std::forward<F>(f));
}

}  // namespace flock
