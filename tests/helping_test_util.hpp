// helping_test_util.hpp — deterministic forced-helping scaffold shared by
// the stats and hot-path tests.
//
// Stochastic contention (N threads hammering one lock) never observes a
// held lock on small machines. Instead: an owner thread acquires the lock
// and stalls *inside its own run* of the thunk — the spin is gated on
// flock::thread_id(), which is not logged state, so all runs stay
// log-identical — while a helper's run (different thread id) sails
// through and completes the critical section. The caller's try_lock is
// therefore guaranteed to find the lock held and take the help path.
#pragma once

#include <atomic>
#include <thread>

#include "flock/flock.hpp"

namespace helping_test {

enum class probe_kind { try_probe, strict_probe };

/// Runs one stalled-owner / helping-probe cycle on a fresh lock in
/// lock-free mode. On return the owner's critical section was applied
/// exactly once (counter == 1) and the calling thread attempted (and,
/// because the helper's run skips the stall, completed) a help. With
/// probe_kind::strict_probe the probe is a strict_lock, which must help
/// the stalled owner and then acquire (and run its empty thunk) itself.
inline uint64_t force_one_help(probe_kind kind = probe_kind::try_probe) {
  flock::lock l;
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);

  std::atomic<bool> owner_installed{false};
  std::atomic<bool> owner_may_finish{false};
  std::thread owner([&] {
    int owner_tid = flock::thread_id();
    flock::with_epoch([&] {
      return flock::try_lock(l, [&, x, owner_tid] {
        uint64_t v = x->load();
        owner_installed.store(true);
        while (!owner_may_finish.load() &&
               flock::thread_id() == owner_tid) {
        }
        x->store(v + 1);
        return true;
      });
    });
  });
  while (!owner_installed.load()) {
  }
  // Lock is observably held: this must take the help path. The owner's
  // stall is indefinite (until owner_may_finish), so any bounded backoff
  // budget runs out and the probe helps — completing the owner's thunk,
  // whose helper-side run skips the thread-id-gated stall.
  if (kind == probe_kind::strict_probe) {
    flock::with_epoch(
        [&] { return flock::strict_lock(l, [] { return true; }); });
  } else {
    flock::with_epoch([&] { return flock::try_lock(l, [] { return true; }); });
  }
  owner_may_finish.store(true);
  owner.join();

  uint64_t final_count = x->read_raw();
  flock::pool_delete(x);
  return final_count;
}

}  // namespace helping_test
