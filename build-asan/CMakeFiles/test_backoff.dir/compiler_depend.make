# Empty compiler generated dependencies file for test_backoff.
# This may be replaced when dependencies are built.
