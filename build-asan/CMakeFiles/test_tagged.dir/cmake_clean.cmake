file(REMOVE_RECURSE
  "CMakeFiles/test_tagged.dir/tests/test_tagged.cpp.o"
  "CMakeFiles/test_tagged.dir/tests/test_tagged.cpp.o.d"
  "test_tagged"
  "test_tagged.pdb"
  "test_tagged[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tagged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
