// Property tests for Definition 1 (idempotence): a thunk run by many
// interleaved processes must appear to run exactly once. We drive
// descriptors directly (no locks) so the tests isolate Algorithm 2.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

using flock::descriptor;

// Build a descriptor for f at top level (outside any thunk the commit
// passes through, handing back a private descriptor).
template <class F>
descriptor* make_descr(F&& f) {
  EXPECT_FALSE(flock::in_thunk());
  return flock::create_descriptor(std::forward<F>(f));
}

void destroy_descr(descriptor* d) { flock::pool_delete(d); }

// Run the descriptor concurrently from kThreads threads, return results.
template <class Check>
void run_concurrently(descriptor* d, int threads, Check check) {
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  // NB: vector<int>, not vector<bool> — adjacent bool bits would be a
  // data race when written from different threads.
  std::vector<int> results(threads);
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      while (!go.load()) {
      }
      results[t] = d->run();
    });
  }
  go.store(true);
  for (auto& t : ts) t.join();
  for (int t = 1; t < threads; t++)
    EXPECT_EQ(results[t], results[0]) << "runs disagree on return value";
  check(results[0]);
}

TEST(Idempotence, CounterIncrementsOnce) {
  for (int round = 0; round < 200; round++) {
    auto* counter = flock::pool_new<flock::mutable_<uint64_t>>();
    counter->init(0);
    descriptor* d = make_descr([counter] {
      counter->store(counter->load() + 1);
      return true;
    });
    run_concurrently(d, 4, [&](bool r) { EXPECT_TRUE(r); });
    EXPECT_EQ(counter->read_raw(), 1u) << "round " << round;
    destroy_descr(d);
    flock::pool_delete(counter);
  }
}

TEST(Idempotence, MultiStepCounterChain) {
  // Several dependent steps: all runs must agree at every step.
  for (int round = 0; round < 100; round++) {
    auto* a = flock::pool_new<flock::mutable_<uint64_t>>();
    auto* b = flock::pool_new<flock::mutable_<uint64_t>>();
    a->init(1);
    b->init(10);
    descriptor* d = make_descr([a, b] {
      uint64_t va = a->load();
      a->store(va + 1);
      uint64_t vb = b->load();
      b->store(vb + va);  // depends on logged va
      return true;
    });
    run_concurrently(d, 4, [](bool) {});
    EXPECT_EQ(a->read_raw(), 2u);
    EXPECT_EQ(b->read_raw(), 11u);
    destroy_descr(d);
    flock::pool_delete(a);
    flock::pool_delete(b);
  }
}

TEST(Idempotence, AllocateExactlyOnce) {
  struct node {
    uint64_t v;
    explicit node(uint64_t x) : v(x) {}
  };
  for (int round = 0; round < 100; round++) {
    auto* slot = flock::pool_new<flock::mutable_<node*>>();
    slot->init(nullptr);
    long long before = flock::pool_outstanding<node>();
    descriptor* d = make_descr([slot] {
      node* n = flock::allocate<node>(42);
      slot->store(n);
      return true;
    });
    run_concurrently(d, 4, [](bool) {});
    // Exactly one node survives (losers freed their copies).
    EXPECT_EQ(flock::pool_outstanding<node>(), before + 1);
    EXPECT_EQ(slot->read_raw()->v, 42u);
    flock::pool_delete(slot->read_raw());
    flock::pool_delete(slot);
    destroy_descr(d);
  }
}

TEST(Idempotence, RetireExactlyOnce) {
  struct node {
    uint64_t v = 7;
  };
  for (int round = 0; round < 100; round++) {
    node* n = flock::pool_new<node>();
    long long before = flock::pool_outstanding<node>();
    descriptor* d = make_descr([n] {
      flock::retire(n);
      return true;
    });
    std::vector<std::thread> ts;
    std::atomic<bool> go{false};
    for (int t = 0; t < 4; t++) {
      ts.emplace_back([&] {
        while (!go.load()) {
        }
        flock::with_epoch([&] { d->run(); });
      });
    }
    go.store(true);
    for (auto& t : ts) t.join();
    flock::epoch_manager::instance().flush();
    // The object was retired exactly once: net -1, not -4.
    EXPECT_EQ(flock::pool_outstanding<node>(), before - 1);
    destroy_descr(d);
  }
}

TEST(Idempotence, BranchesStaySynchronized) {
  // The branch taken depends on a logged load; all runs must take the
  // same branch even if memory changes between runs.
  for (int round = 0; round < 100; round++) {
    auto* flag = flock::pool_new<flock::mutable_<bool>>();
    auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
    flag->init(false);
    x->init(0);
    descriptor* d = make_descr([flag, x] {
      if (flag->load()) {
        x->store(x->load() + 100);
        return true;
      }
      x->store(x->load() + 1);
      return false;
    });
    // First run executes alone; then flip the flag; then replay from many
    // threads — replays must still take the "false" branch.
    bool r1 = d->run();
    EXPECT_FALSE(r1);
    flag->store(true);
    run_concurrently(d, 4, [](bool r) { EXPECT_FALSE(r); });
    EXPECT_EQ(x->read_raw(), 1u);
    destroy_descr(d);
    flock::pool_delete(flag);
    flock::pool_delete(x);
  }
}

TEST(Idempotence, LongThunkCrossesLogBlocks) {
  auto* sum = flock::pool_new<flock::mutable_<uint64_t>>();
  sum->init(0);
  const int steps = flock::kLogBlockEntries * 5 + 3;
  descriptor* d = make_descr([sum, steps] {
    for (int i = 0; i < steps; i++) sum->store(sum->load() + 1);
    return true;
  });
  run_concurrently(d, 8, [](bool) {});
  EXPECT_EQ(sum->read_raw(), static_cast<uint64_t>(steps));
  destroy_descr(d);
  flock::pool_delete(sum);
}

TEST(Idempotence, WriteOnceInThunk) {
  for (int round = 0; round < 100; round++) {
    auto* w = flock::pool_new<flock::write_once<bool>>();
    auto* observed = flock::pool_new<flock::mutable_<uint64_t>>();
    w->init(false);
    observed->init(0);
    descriptor* d = make_descr([w, observed] {
      if (!w->load()) {
        w->store(true);
        observed->store(observed->load() + 1);
      }
      return true;
    });
    run_concurrently(d, 4, [](bool) {});
    EXPECT_TRUE(w->read_raw());
    EXPECT_EQ(observed->read_raw(), 1u);
    destroy_descr(d);
    flock::pool_delete(w);
    flock::pool_delete(observed);
  }
}

TEST(Idempotence, UserCommitValueSynchronizesNondeterminism) {
  // Paper §3.2: commitValue can commit any nondeterministic result.
  for (int round = 0; round < 50; round++) {
    auto* out = flock::pool_new<flock::mutable_<uint64_t>>();
    out->init(0);
    descriptor* d = make_descr([out] {
      uint64_t r = flock::commit_value(
          static_cast<uint64_t>(flock::thread_id()) + 1);
      out->store(out->load() + r);
      return true;
    });
    run_concurrently(d, 4, [](bool) {});
    // Whatever thread's nondeterministic value won, it was added once.
    uint64_t v = out->read_raw();
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, static_cast<uint64_t>(flock::kMaxThreads) + 1);
    destroy_descr(d);
    flock::pool_delete(out);
  }
}

TEST(Idempotence, DoneFlagVisibleAfterFirstFinish) {
  auto* x = flock::pool_new<flock::mutable_<uint64_t>>();
  x->init(0);
  descriptor* d = make_descr([x] {
    x->store(x->load() + 1);
    return true;
  });
  d->run();
  d->done.store(true, std::memory_order_release);
  // A run after completion must still be harmless.
  EXPECT_TRUE(d->run());
  EXPECT_EQ(x->read_raw(), 1u);
  destroy_descr(d);
  flock::pool_delete(x);
}

}  // namespace
