file(REMOVE_RECURSE
  "CMakeFiles/test_abtree.dir/tests/test_abtree.cpp.o"
  "CMakeFiles/test_abtree.dir/tests/test_abtree.cpp.o.d"
  "test_abtree"
  "test_abtree.pdb"
  "test_abtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
