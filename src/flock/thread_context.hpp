// thread_context.hpp — the single per-thread hot-path structure.
//
// Every per-acquisition bookkeeping item the runtime needs — dense thread
// id, cursor into the current thunk's log, stat counters, the epoch
// announcement slot, the tag-wrap announcement pair, and the epoch-retire
// batches — lives in one cache-line-aligned slot of a static array,
// reached through ONE thread-local pointer fetch (`my_ctx()`). The
// previous design paid a separate guarded TLS lookup for each of these
// (thread_id(), tls_log(), my_stats(), epoch slots, announce slots) on
// every lock acquisition.
//
// `tl_ctx` is a trivially-initialized thread_local pointer, so compilers
// emit a plain TLS load with no init guard; the one-time registration
// (dense id acquisition, slot reset) hides behind an [[unlikely]] null
// check. Ids recycle on thread exit exactly as before: the context slot
// is indexed by id, and a new thread that inherits an id also inherits
// the slot's monotonic counters (stats aggregation is cumulative) and any
// retire backlog left by the previous owner (drained by normal sealing or
// by flush(), as the old per-id retire lists were).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#ifdef FLOCK_DEBUG_API
#include <cstdio>
#include <cstdlib>
#endif

#include "config.hpp"

namespace flock {

struct log_block;  // log.hpp

/// Cursor into the log of the thunk the thread is currently running;
/// {nullptr, 0} outside of any thunk (then commits pass through).
struct log_cursor {
  log_block* block = nullptr;
  int pos = 0;
};

namespace detail {

struct retired_item {
  void* p;
  void (*del)(void*);
};

/// A fixed-capacity block of retired objects. retire() is an O(1) push
/// into the open batch; when the batch fills it is sealed — stamped with
/// the global epoch, which upper-bounds every member's retire epoch — and
/// reclamation decisions happen per batch, not per object (DEBRA-style
/// amortization, see epoch.hpp).
struct retire_batch {
  static constexpr int kCapacity = 64;
  int64_t epoch = -1;  // seal stamp; -1 while open
  int n = 0;
  retire_batch* next = nullptr;
  retired_item items[kCapacity];
};

struct alignas(2 * kCacheLine) thread_context {
  // --- owner-private hot state (never written by other threads) ----------
  log_cursor log;            // cursor into the current thunk's log
  int id = -1;               // dense id in [0, kMaxThreads)
  uint64_t commit_count = 0;  // log-slot commits (instrumentation)
  uint64_t stat_created = 0;   // descriptors created (lock acquisitions)
  uint64_t stat_attempted = 0; // help() entries
  uint64_t stat_ran = 0;       // help() revalidations that ran a thunk
  uint64_t stat_reused = 0;    // never-helped fast-path descriptor reuse
  uint64_t stat_helps_avoided = 0;  // throttled waits resolved without helping
  uint64_t stat_backoff_spins = 0;  // cpu_pause iterations spent backing off
  uint64_t backoff_rng = 0;    // xorshift state (lazily seeded from id)

  // --- own cache line: state scanned by other threads --------------------
  alignas(kCacheLine) std::atomic<int64_t> announced{-1};  // epoch slot
  std::atomic<const void*> ann_loc{nullptr};  // tag-wrap announcement
  std::atomic<uint64_t> ann_packed{0};        //   (tagged.hpp)
  int epoch_depth = 0;  // with_epoch nesting; owner-only

  // --- read_guard state machine (epoch.hpp): a read batch leaves the
  // announcement slot armed ("sticky") between reads so consecutive finds
  // skip the seq_cst announce. Three states:
  //   0 — no sticky announcement; the slot quiesces normally.
  //   1 — armed: the announcement is held between reads. Claimable by a
  //       reclaiming thread (epoch_manager::lapse_idle_sticky) when the
  //       announced epoch trails the global counter — an idle reader must
  //       not pin reclamation forever.
  //   2 — owner inside a top-level epoch region (read_guard/with_epoch);
  //       the collector keeps hands off.
  // The owner moves 0/1 -> 2 on region entry (exchange) and 2 -> 1 or 0 on
  // exit; the collector moves 1 -> 0 (claim) before retracting the
  // announcement, and 0 -> 1 only to undo a claim whose retraction missed.
  // All protocol-bearing transitions are RMWs on this one byte, so owner
  // and collector serialize per slot (orderings documented at each site).
  std::atomic<uint8_t> read_sticky{0};

  // --- cold: epoch-retire backlog (owner-only; flush() requires
  // quiescence, same contract as the old per-id retire lists) -------------
  retire_batch* open = nullptr;         // partially filled batch
  retire_batch* sealed_head = nullptr;  // FIFO of sealed batches (oldest first)
  retire_batch* sealed_tail = nullptr;
  retire_batch* batch_free = nullptr;   // small recycling cache
  int batch_free_n = 0;
  long long retired_pending = 0;  // items in open + sealed (stats)

#ifdef FLOCK_DEBUG_API
  // Lock-API misuse tracking (lock.hpp): the stack of descriptors whose
  // thunks are running on this thread, and the number of critical
  // sections this thread is currently completing (asserted zero at
  // thread exit — a leaked, never-released lock). Owner-only.
  static constexpr int kDbgRunDepth = 16;
  void* dbg_run_stack[kDbgRunDepth] = {};
  int dbg_run_depth = 0;
  long long dbg_held = 0;
#endif
};

inline constinit thread_context g_ctx[kMaxThreads]{};

/// Dense id allocation with recycling (cold path: thread birth/death only).
class id_allocator {
 public:
  static id_allocator& instance() {
    static id_allocator a;
    return a;
  }

  int acquire() {
    std::lock_guard<std::mutex> g(mu_);
    if (!free_.empty()) {
      int id = free_.back();
      free_.pop_back();
      return id;
    }
    assert(next_ < kMaxThreads && "too many live threads");
    return next_++;
  }

  void release(int id) {
    std::lock_guard<std::mutex> g(mu_);
    free_.push_back(id);
  }

  /// Upper bound (exclusive) on ids ever handed out; all slot scans use
  /// this instead of kMaxThreads to stay cheap.
  int high_water() const {
    // A scanner that reads bound n sees at least the (mutex-published) id
    // handout, and every g_ctx slot below the bound is a static whose
    // previous holder left it quiescent (announced=-1, ann_loc=null), so
    // a raced raise can only expose a benign idle slot, never garbage.
    // mo: acquire — pairs with the acq_rel raise in note_high_water.
    return next_hint_.load(std::memory_order_acquire);
  }

  void note_high_water(int n) {
    // mo: relaxed — only seeds the CAS expected value; the CAS re-reads
    // with its own ordering on failure.
    int cur = next_hint_.load(std::memory_order_relaxed);
    // mo: acq_rel — monotone-max CAS: release for high_water()'s acquire,
    // acquire so a loser observes the raiser's larger bound and exits.
    while (n > cur &&
           !next_hint_.compare_exchange_weak(cur, n, std::memory_order_acq_rel)) {
    }
  }

 private:
  id_allocator() = default;
  std::mutex mu_;
  std::vector<int> free_;
  int next_ = 0;
  std::atomic<int> next_hint_{0};
};

// Trivially initialized: access compiles to a plain TLS load, no guard.
inline thread_local thread_context* tl_ctx = nullptr;

/// Cold one-time registration for the calling thread.
[[gnu::noinline]] inline thread_context* init_thread_context() {
  struct owner {
    thread_context* c;
    owner() {
      int id = id_allocator::instance().acquire();
      id_allocator::instance().note_high_water(id + 1);
      c = &g_ctx[id];
      // Reset transient state a previous holder of this id may have left;
      // monotonic counters and the retire backlog carry over (see header
      // comment).
      c->id = id;
      c->log = {};
      c->epoch_depth = 0;
      // mo: relaxed (both) — these rewrite the previous holder's already
      // quiescent values with the same quiescent values; the id hand-off
      // itself synchronizes through the allocator mutex.
      c->announced.store(-1, std::memory_order_relaxed);
      c->ann_loc.store(nullptr, std::memory_order_relaxed);  // mo: ditto
      c->read_sticky.store(0, std::memory_order_relaxed);    // mo: ditto
#ifdef FLOCK_DEBUG_API
      c->dbg_run_depth = 0;
      c->dbg_held = 0;
#endif
      tl_ctx = c;
    }
    ~owner() {
#ifdef FLOCK_DEBUG_API
      if (c->dbg_held != 0) {
        std::fprintf(stderr,
                     "[flock] FLOCK_DEBUG_API: thread %d exiting while "
                     "holding %lld never-released lock(s)\n",
                     c->id, c->dbg_held);
        std::abort();
      }
#endif
      tl_ctx = nullptr;
      // A read batch may have left the announcement sticky (read_guard,
      // epoch.hpp); clear it so the slot is handed back quiescent — a
      // dead thread must not pin the epoch for the rest of the process.
      // The exchange also races any in-flight collector claim correctly:
      // exactly one side wins the 1, and the loser leaves the slot alone
      // (a collector that wins retracts the announcement itself).
      // mo: relaxed — own flag; the id hand-off synchronizes via the
      // allocator mutex, and the announced store below carries release.
      if (c->read_sticky.exchange(0, std::memory_order_relaxed) != 0) {
        // mo: release — the next owner's (mutex-synchronized) scan and any
        // collector must see this thread's protected accesses as finished.
        c->announced.store(-1, std::memory_order_release);
      }
      id_allocator::instance().release(c->id);
    }
  };
  thread_local owner o;
  tl_ctx = o.c;
  return o.c;
}

/// THE per-operation TLS access: one pointer load plus a predictable branch.
inline thread_context* my_ctx() noexcept {
  thread_context* c = tl_ctx;
  if (c == nullptr) [[unlikely]] return init_thread_context();
  return c;
}

}  // namespace detail
}  // namespace flock
