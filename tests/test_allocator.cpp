// Tests for the per-thread slab pools.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "flock/flock.hpp"

namespace {

struct payload {
  uint64_t a, b, c;
  payload(uint64_t x, uint64_t y, uint64_t z) : a(x), b(y), c(z) {}
};

TEST(Allocator, ConstructsAndRecycles) {
  long long base = flock::pool_outstanding<payload>();
  payload* p = flock::pool_new<payload>(1, 2, 3);
  EXPECT_EQ(p->a, 1u);
  EXPECT_EQ(p->c, 3u);
  EXPECT_EQ(flock::pool_outstanding<payload>(), base + 1);
  flock::pool_delete(p);
  EXPECT_EQ(flock::pool_outstanding<payload>(), base);
  // Immediately reallocating from the same thread reuses the hot slot.
  payload* q = flock::pool_new<payload>(4, 5, 6);
  EXPECT_EQ(q, p);
  flock::pool_delete(q);
}

TEST(Allocator, ArrayNewRecordsLengthAndBalances) {
  long long base = flock::arrays_outstanding();
  struct elt {
    uint64_t v = 7;  // default ctor must run for every element
  };
  elt* a = flock::array_new<elt>(1000);
  EXPECT_EQ(flock::array_length(a), 1000u);
  EXPECT_EQ(flock::arrays_outstanding(), base + 1);
  for (std::size_t i = 0; i < 1000; i++) EXPECT_EQ(a[i].v, 7u);
  flock::array_delete(a);
  EXPECT_EQ(flock::arrays_outstanding(), base);
}

TEST(Allocator, ArrayEpochRetireRunsElementDtors) {
  static std::atomic<int> dtors{0};
  struct counted {
    ~counted() { dtors.fetch_add(1); }
  };
  long long base = flock::arrays_outstanding();
  counted* a = flock::array_new<counted>(64);
  flock::with_epoch([&] { flock::epoch_retire_array(a); });
  flock::epoch_manager::instance().flush();
  EXPECT_EQ(dtors.load(), 64);
  EXPECT_EQ(flock::arrays_outstanding(), base);
}

TEST(Allocator, DistinctLiveObjects) {
  std::set<payload*> live;
  for (int i = 0; i < 1000; i++)
    live.insert(flock::pool_new<payload>(i, i, i));
  EXPECT_EQ(live.size(), 1000u);
  for (payload* p : live) flock::pool_delete(p);
}

TEST(Allocator, DtorRuns) {
  static std::atomic<int> dtors{0};
  struct counted {
    ~counted() { dtors.fetch_add(1); }
  };
  counted* c = flock::pool_new<counted>();
  flock::pool_delete(c);
  EXPECT_EQ(dtors.load(), 1);
}

TEST(Allocator, CrossThreadFreeIsAllowed) {
  // Helpers retire other threads' nodes; the pool must tolerate frees from
  // a different thread than the allocator.
  constexpr int kRounds = 5000;
  std::vector<payload*> ptrs(kRounds);
  for (int i = 0; i < kRounds; i++)
    ptrs[i] = flock::pool_new<payload>(i, 0, 0);
  std::thread([&] {
    for (payload* p : ptrs) flock::pool_delete(p);
  }).join();
  // Net outstanding is zero again (alloc on main, free on other).
  EXPECT_EQ(flock::pool_outstanding<payload>(), 0);
}

TEST(Allocator, ParallelChurn) {
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      std::vector<payload*> mine;
      for (int i = 0; i < kOps; i++) {
        mine.push_back(flock::pool_new<payload>(i, i, i));
        if (mine.size() > 64) {
          flock::pool_delete(mine.back());
          mine.pop_back();
          flock::pool_delete(mine.front());
          mine.erase(mine.begin());
        }
      }
      for (payload* p : mine) flock::pool_delete(p);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(flock::pool_outstanding<payload>(), 0);
}

TEST(Allocator, ShuffleKeepsAccounting) {
  long long base = flock::pool_outstanding<payload>();
  flock::pool_shuffle<payload>(512);
  EXPECT_EQ(flock::pool_outstanding<payload>(), base);
}

}  // namespace
