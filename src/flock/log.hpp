// log.hpp — the shared idempotence log (paper §3, Algorithm 2).
//
// Every thunk (descriptor) carries a log shared by all processes that run
// it. Each loggable event — a load of a mutable location, an allocation, a
// retirement, a committed boolean — occupies one 128-bit slot. A run
// commits its candidate value with a CAS(empty → value) and then adopts
// whatever the slot holds, so all runs of the thunk observe identical
// values and stay synchronized (same branches, same log positions).
//
// Differences from the paper's pseudocode, both strengthenings:
//  * committed entries always carry a "present" bit, so the empty sentinel
//    can never collide with a legitimate value (Alg. 2 instead assumes
//    `empty` is never stored by users);
//  * commits use compare-and-compare-and-swap (§6 "Avoiding CASes"):
//    read the slot first and skip the CAS when it is already full.
//
// Logs grow in blocks of kLogBlockEntries entries (§6 "Arbitrary Length
// Logs"); extending the chain is itself idempotent: the first run to
// overflow CASes a fresh block into the next pointer, losers free theirs.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

#include "allocator.hpp"
#include "config.hpp"
#include "epoch.hpp"

namespace flock {

using u128 = unsigned __int128;

inline constexpr u128 kLogPresent = static_cast<u128>(1) << 127;
inline constexpr u128 kLogEmpty = 0;

struct log_entry {
  std::atomic<u128> v{kLogEmpty};
};

struct log_block {
  log_entry entries[kLogBlockEntries];
  std::atomic<log_block*> next{nullptr};

  /// Reset for pool reuse. Only legal when no other thread can access the
  /// block (e.g. a never-helped descriptor, see lock.hpp).
  void reset() {
    for (auto& e : entries) e.v.store(kLogEmpty, std::memory_order_relaxed);
    next.store(nullptr, std::memory_order_relaxed);
  }
};

/// Thread-local cursor into the log of the thunk the thread is currently
/// running; {nullptr, 0} outside of any thunk (then commits pass through).
struct log_cursor {
  log_block* block = nullptr;
  int pos = 0;
};

inline log_cursor& tls_log() noexcept {
  thread_local log_cursor cur;
  return cur;
}

/// True when the calling thread is executing inside a thunk, i.e. loggable
/// operations will be committed to a shared log.
inline bool in_thunk() noexcept { return tls_log().block != nullptr; }

/// Per-thread count of log-slot commits, for instrumentation (e.g. the
/// paper's "a successful insert commits about 5 entries to the log").
inline uint64_t& tls_commit_count() noexcept {
  thread_local uint64_t n = 0;
  return n;
}

namespace detail {

/// Move the cursor to the next slot, growing the chain idempotently.
inline void log_bump(log_cursor& cur) {
  if (++cur.pos < kLogBlockEntries) return;
  log_block* nxt = cur.block->next.load(std::memory_order_acquire);
  if (nxt == nullptr) {
    log_block* mine = pool_new<log_block>();
    log_block* expected = nullptr;
    if (cur.block->next.compare_exchange_strong(expected, mine,
                                                std::memory_order_acq_rel)) {
      nxt = mine;
    } else {
      pool_delete(mine);  // never published
      nxt = expected;
    }
  }
  cur.block = nxt;
  cur.pos = 0;
}

}  // namespace detail

/// commitValue (Alg. 2 line 31) on a raw 128-bit payload. The payload must
/// not use bit 127 (the present bit). Returns the committed payload and
/// whether the calling run was first to commit.
inline std::pair<u128, bool> commit_raw(u128 payload) {
  log_cursor& cur = tls_log();
  if (cur.block == nullptr) return {payload, true};  // outside any lock
  log_entry& slot = cur.block->entries[cur.pos];
  detail::log_bump(cur);
  ++tls_commit_count();

  const u128 desired = payload | kLogPresent;
  if (use_ccas()) {
    // Compare-and-compare-and-swap (§6): skip the CAS when already full.
    u128 seen = slot.v.load(std::memory_order_acquire);
    if (seen != kLogEmpty) return {seen & ~kLogPresent, false};
  }
  u128 expected = kLogEmpty;
  if (slot.v.compare_exchange_strong(expected, desired,
                                     std::memory_order_acq_rel)) {
    return {payload, true};
  }
  return {expected & ~kLogPresent, false};
}

/// Convenience: commit a 64-bit value.
inline uint64_t commit64(uint64_t v) {
  return static_cast<uint64_t>(commit_raw(v).first);
}

inline std::pair<uint64_t, bool> commit64_first(uint64_t v) {
  auto [c, first] = commit_raw(v);
  return {static_cast<uint64_t>(c), first};
}

inline bool commit_bool(bool b) { return commit64(b ? 1 : 0) != 0; }

/// Users can commit arbitrary nondeterministic results (paper §3.2: "The
/// commitValue can also be used directly by the user").
inline uint64_t commit_value(uint64_t v) { return commit64(v); }

/// Idempotent allocation (Alg. 2 line 51): every run constructs its own
/// candidate, the first to commit wins, losers destroy theirs.
template <class T, class... Args>
T* idem_new(Args&&... args) {
  T* mine = pool_new<T>(std::forward<Args>(args)...);
  auto [committed, first] =
      commit64_first(reinterpret_cast<uint64_t>(mine));
  if (first) return mine;
  pool_delete(mine);  // never published: immediate free is safe
  return reinterpret_cast<T*>(committed);
}

/// Idempotent retirement (Alg. 2 line 57): the first run to commit the
/// flag owns the retirement; epoch-based collection frees it later.
template <class T>
void idem_retire(T* obj) {
  bool first = commit64_first(1).second;
  if (first) epoch_retire(obj);
}

}  // namespace flock
