// Property-style parameterized sweeps (TEST_P + Combine):
//  * exactly-once thunk semantics swept over thunk length x replayer
//    count (Definition 1, stressed along both axes);
//  * data-structure invariants swept over lock mode x thread count x
//    update rate;
//  * linearizable alternation (insert/remove of one key can only
//    alternate) swept over mode x contention level.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "set_test_util.hpp"
#include "workload/set_adapter.hpp"

namespace {

// ---------------------------------------------------------------------
// Sweep 1: thunk length x replayers.
// ---------------------------------------------------------------------
class ThunkShape
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ThunkShape, CounterChainAppliesOnce) {
  auto [steps, threads] = GetParam();
  for (int round = 0; round < 30; round++) {
    auto* sum = flock::pool_new<flock::mutable_<uint64_t>>();
    sum->init(0);
    flock::descriptor* d = flock::create_descriptor([sum, steps = steps] {
      for (int i = 0; i < steps; i++) sum->store(sum->load() + 1);
      return true;
    });
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&] {
        while (!go.load()) {
        }
        d->run();
      });
    }
    go.store(true);
    for (auto& t : ts) t.join();
    ASSERT_EQ(sum->read_raw(), static_cast<uint64_t>(steps))
        << "steps=" << steps << " threads=" << threads << " round=" << round;
    flock::pool_delete(d);
    flock::pool_delete(sum);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThunkShape,
    ::testing::Combine(::testing::Values(1, 3, 7, 8, 20, 50),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& i) {
      return "steps" + std::to_string(std::get<0>(i.param)) + "_threads" +
             std::to_string(std::get<1>(i.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: structure invariants over mode x threads x update rate.
// ---------------------------------------------------------------------
class StressSweep
    : public ::testing::TestWithParam<std::tuple<bool, int, int>> {
 protected:
  void SetUp() override { flock::set_blocking(std::get<0>(GetParam())); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(StressSweep, LeaftreeInvariants) {
  auto [blocking, threads, upd] = GetParam();
  (void)blocking;
  flock_workload::leaftree_try s;
  set_test::concurrent_stress(s, threads, 256, 2500, upd);
}

TEST_P(StressSweep, LazylistInvariants) {
  auto [blocking, threads, upd] = GetParam();
  (void)blocking;
  flock_workload::lazylist_try s;
  set_test::concurrent_stress(s, threads, 128, 2000, upd);
}

TEST_P(StressSweep, AbtreeInvariants) {
  auto [blocking, threads, upd] = GetParam();
  (void)blocking;
  flock_workload::abtree_try s;
  set_test::concurrent_stress(s, threads, 256, 2500, upd);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2, 4, 12),
                       ::testing::Values(10, 50, 100)),
    [](const ::testing::TestParamInfo<std::tuple<bool, int, int>>& i) {
      return std::string(std::get<0>(i.param) ? "bl" : "lf") + "_t" +
             std::to_string(std::get<1>(i.param)) + "_u" +
             std::to_string(std::get<2>(i.param));
    });

// ---------------------------------------------------------------------
// Sweep 3: single-key alternation under varying contention.
// ---------------------------------------------------------------------
class Alternation
    : public ::testing::TestWithParam<std::tuple<bool, int>> {
 protected:
  void SetUp() override { flock::set_blocking(std::get<0>(GetParam())); }
  void TearDown() override {
    flock::set_blocking(false);
    flock::epoch_manager::instance().flush();
  }
};

TEST_P(Alternation, OneKeyNetBalance) {
  auto [blocking, threads] = GetParam();
  (void)blocking;
  flock_workload::dlist_try s;
  std::atomic<long long> net{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      long long mine = 0;
      for (int i = 0; i < 5000; i++) {
        if (rng() & 1) {
          if (s.insert(42, 42)) mine++;
        } else {
          if (s.remove(42)) mine--;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_TRUE(net.load() == 0 || net.load() == 1) << net.load();
  ASSERT_EQ(static_cast<long long>(s.size()), net.load());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alternation,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2, 8, 32)),
    [](const ::testing::TestParamInfo<std::tuple<bool, int>>& i) {
      return std::string(std::get<0>(i.param) ? "bl" : "lf") + "_t" +
             std::to_string(std::get<1>(i.param));
    });

}  // namespace
