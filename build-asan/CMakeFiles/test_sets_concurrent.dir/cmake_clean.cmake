file(REMOVE_RECURSE
  "CMakeFiles/test_sets_concurrent.dir/tests/test_sets_concurrent.cpp.o"
  "CMakeFiles/test_sets_concurrent.dir/tests/test_sets_concurrent.cpp.o.d"
  "test_sets_concurrent"
  "test_sets_concurrent.pdb"
  "test_sets_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sets_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
