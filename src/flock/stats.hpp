// stats.hpp — lightweight introspection counters for the helping
// machinery. The counters live directly in the per-thread context
// (thread_context.hpp), so the hot-path cost is one plain increment on a
// structure that is already resident; this header provides the aggregate
// view. Used by benchmarks to report helping rates and by tests to assert
// helping actually happened.
#pragma once

#include <atomic>
#include <cstdint>

#include "allocator.hpp"
#include "chaos/faultpoint.hpp"
#include "config.hpp"
#include "thread_context.hpp"
#include "threading.hpp"

namespace flock {
namespace detail {

// Resizes deferred because the successor-table allocation failed
// (injected "ht.resize.alloc" fault or real OOM); bumped by the ds tier
// (hashtable.hpp), aggregated here. Monotonic, process-wide.
inline std::atomic<uint64_t> g_resize_deferrals{0};

// Service-tier counters (src/service/service.hpp): batch execution and
// ring backpressure. Process-wide like g_resize_deferrals — a service
// instance is a front end over shared stores, and the monitoring story
// ("how batched is the fleet's traffic") is a process question. All
// monotonic except g_svc_batch_max / g_svc_depth_hw, which are
// monotone high-water marks (never reset).
inline std::atomic<uint64_t> g_svc_batches{0};    // drains that executed >0 ops
inline std::atomic<uint64_t> g_svc_batch_ops{0};  // ops executed via batches
inline std::atomic<uint64_t> g_svc_batch_max{0};  // largest single batch
inline std::atomic<uint64_t> g_svc_ring_full{0};  // try_push rejections
inline std::atomic<uint64_t> g_svc_depth_hw{0};   // queue-depth high-water

/// Monotone high-water update (racy-max: two racers both land, the larger
/// wins eventually; monitoring only).
inline void bump_max(std::atomic<uint64_t>& m, uint64_t v) {
  // mo: relaxed — monitoring high-water; no ordering with the observed
  // event is needed, only eventual monotone convergence.
  uint64_t cur = m.load(std::memory_order_relaxed);
  while (v > cur &&
         // mo: relaxed — same monitoring contract as the load above.
         !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

struct stats_snapshot {
  uint64_t descriptors_created = 0;  // lock acquisitions (lock-free mode)
  uint64_t helps_attempted = 0;      // help() entries
  uint64_t helps_run = 0;            // help() revalidations that ran a thunk
  uint64_t descriptors_reused = 0;   // fast-path pool reuse (never helped)
  uint64_t helps_avoided = 0;        // throttled waits resolved without a help
  uint64_t backoff_spins = 0;        // cpu_pause iterations spent backing off
  // Fault-tolerance counters (chaos instrumentation + allocation failure
  // contract; all zero in builds without FLOCK_CHAOS and without OOM).
  uint64_t alloc_failures = 0;       // null pool/array returns (allocator.hpp)
  uint64_t resize_deferrals = 0;     // resizes deferred on allocation failure
  uint64_t chaos_stalls = 0;         // injected stalls (chaos/faultpoint.hpp)
  uint64_t chaos_kills = 0;          // injected kills (dead-holder parks)
  uint64_t chaos_alloc_fails = 0;    // injected allocation failures
  // Service-tier counters (src/service/service.hpp; zero when no service
  // front end runs). mean batch size = svc_batch_ops / svc_batches.
  uint64_t svc_batches = 0;          // batches executed (drains with >0 ops)
  uint64_t svc_batch_ops = 0;        // requests executed through batches
  uint64_t svc_batch_max = 0;        // largest single batch (high-water)
  uint64_t svc_ring_full = 0;        // try_push backpressure rejections
  uint64_t svc_depth_hw = 0;         // push-time queue-depth high-water
};

/// Aggregate counters across all threads (monotonic since process start).
/// The per-thread cells are plain single-writer words, so a snapshot
/// taken while traffic runs is approximate: each cell is read whole
/// (no tearing on word-aligned targets) but cells are not mutually
/// consistent. Monitoring output only — never use for control flow.
/// (.tsan-suppressions carries the matching race:flock::stats entry.)
inline stats_snapshot stats() {
  stats_snapshot s;
  const int bound = thread_id_bound();
  for (int i = 0; i < bound; i++) {
    const detail::thread_context& c = detail::g_ctx[i];
    s.descriptors_created += c.stat_created;
    s.helps_attempted += c.stat_attempted;
    s.helps_run += c.stat_ran;
    s.descriptors_reused += c.stat_reused;
    s.helps_avoided += c.stat_helps_avoided;
    s.backoff_spins += c.stat_backoff_spins;
  }
  s.alloc_failures = alloc_failures();
  // mo: relaxed — monotonic monitoring counter, same approximate-snapshot
  // contract as the per-thread cells above.
  s.resize_deferrals =
      detail::g_resize_deferrals.load(std::memory_order_relaxed);
  s.chaos_stalls = flock_chaos::stalls_injected();
  s.chaos_kills = flock_chaos::kills_injected();
  s.chaos_alloc_fails = flock_chaos::alloc_fails_injected();
  // mo: relaxed (all five) — monotonic monitoring counters, same
  // approximate-snapshot contract as the per-thread cells above.
  s.svc_batches = detail::g_svc_batches.load(std::memory_order_relaxed);
  s.svc_batch_ops = detail::g_svc_batch_ops.load(std::memory_order_relaxed);
  s.svc_batch_max =
      detail::g_svc_batch_max.load(std::memory_order_relaxed);  // mo: ditto
  s.svc_ring_full =
      detail::g_svc_ring_full.load(std::memory_order_relaxed);  // mo: ditto
  s.svc_depth_hw =
      detail::g_svc_depth_hw.load(std::memory_order_relaxed);  // mo: ditto
  return s;
}

}  // namespace flock
