// lazylist.hpp — sorted singly-linked list with lazy deletion (Heller et
// al. [31]) written with Flock fine-grained optimistic try-locks
// (paper §7 "a singly-linked list [31] (lazylist)").
//
// Pattern (§7): traverse with no locks, lock a neighborhood, validate,
// mutate; retry on lock or validation failure. Runs in blocking or
// lock-free mode via the global flag; Strict selects strict locks.
#pragma once

#include <optional>

#include "flock/flock.hpp"

namespace flock_ds {

template <class K, class V, bool Strict = false>
class lazylist {
  struct node {
    flock::mutable_<node*> next;
    flock::write_once<bool> removed;
    flock::lock lck;
    const K k;
    const V v;
    node(K key, V val, node* nxt) : k(key), v(val) {
      next.init(nxt);
      removed.init(false);
    }
  };

  template <class F>
  static bool acquire(flock::lock& l, F&& f) {
    if constexpr (Strict)
      return flock::strict_lock(l, std::forward<F>(f));
    else
      return flock::try_lock(l, std::forward<F>(f));
  }

 public:
  // Extension hooks for cross-structure operations (see ds/move.hpp):
  // the node type, the neighborhood search, and the lock policy.
  using node_t = node;
  std::pair<node*, node*> search_for(K k) { return search(k); }
  template <class F>
  static bool acquire_lock(flock::lock& l, F&& f) {
    return acquire(l, std::forward<F>(f));
  }

  lazylist() { head_ = flock::pool_new<node>(K{}, V{}, nullptr); }

  ~lazylist() {
    node* n = head_;
    while (n != nullptr) {
      node* nxt = n->next.read_raw();
      flock::pool_delete(n);
      n = nxt;
    }
  }

  /// Returns the value if present. Lock-free read: no locks, no logging.
  std::optional<V> find(K k) {
    return flock::with_epoch([&]() -> std::optional<V> {
      node* cur = head_->next.load();
      while (cur != nullptr && cur->k < k) cur = cur->next.load();
      if (cur != nullptr && cur->k == k && !cur->removed.load())
        return cur->v;
      return {};
    });
  }

  /// Inserts (k,v); returns false if k is already present.
  bool insert(K k, V v) {
    return flock::with_epoch([&] {
      while (true) {
        auto [prev, cur] = search(k);
        // "Already present" needs the removed-flag test find() uses: a
        // key mid-remove (flag set, unlink not yet visible) is absent.
        // Falling through is fine — the validation below fails against
        // the completed unlink and we retry.
        if (cur != nullptr && cur->k == k && !cur->removed.load())
          return false;
        if (acquire(prev->lck, [=] {
              if (prev->removed.load()) return false;      // validate
              if (prev->next.load() != cur) return false;  // validate
              node* n = flock::allocate<node>(k, v, cur);
              prev->next = n;  // splice in
              return true;
            }))
          return true;
      }
    });
  }

  /// Removes k; returns false if absent.
  bool remove(K k) {
    return flock::with_epoch([&] {
      while (true) {
        auto [prev, cur] = search(k);
        if (cur == nullptr || cur->k != k) return false;
        if (acquire(prev->lck, [=] {
              return acquire(cur->lck, [=] {
                if (prev->removed.load() || cur->removed.load())
                  return false;                              // validate
                if (prev->next.load() != cur) return false;  // validate
                cur->removed = true;  // logical delete (update-once)
                prev->next = cur->next.load();  // physical splice
                flock::retire<node>(cur);
                return true;
              });
            }))
          return true;
      }
    });
  }

  /// Quiescent audit helpers for tests. Epoch-guarded (like find) so a
  /// concurrent remove cannot reclaim a node mid-scan; counts are exact
  /// only at quiescence. --------------------------------------------------
  std::size_t size() const {
    return flock::with_epoch([&] {
      std::size_t n = 0;
      for (node* c = head_->next.read_raw(); c != nullptr;
           c = c->next.read_raw())
        n++;
      return n;
    });
  }

  /// Sorted order, no removed nodes reachable (quiescent only).
  bool check_invariants() const {
    return flock::with_epoch([&] {
      const node* prev = nullptr;
      for (node* c = head_->next.read_raw(); c != nullptr;
           c = c->next.read_raw()) {
        if (c->removed.read_raw()) return false;
        if (prev != nullptr && !(prev->k < c->k)) return false;
        prev = c;
      }
      return true;
    });
  }

  template <class F>
  void for_each(F&& f) const {
    flock::with_epoch([&] {
      for (node* c = head_->next.read_raw(); c != nullptr;
           c = c->next.read_raw())
        f(c->k, c->v);
    });
  }

 private:
  // First node with key >= k, and its predecessor (head sentinel if none).
  std::pair<node*, node*> search(K k) {
    node* prev = head_;
    node* cur = prev->next.load();
    while (cur != nullptr && cur->k < k) {
      prev = cur;
      cur = cur->next.load();
    }
    return {prev, cur};
  }

  node* head_;  // sentinel; key unused
};

}  // namespace flock_ds
