file(REMOVE_RECURSE
  "CMakeFiles/fig5_trees.dir/bench/fig5_trees.cpp.o"
  "CMakeFiles/fig5_trees.dir/bench/fig5_trees.cpp.o.d"
  "fig5_trees"
  "fig5_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
