// allocator.hpp — per-thread slab pools for fixed-type objects.
//
// Stands in for ParlayLib's scalable allocator used by the paper (§8
// "We used ParlayLib for scalable memory allocation"). Each (type, thread)
// pair owns a free list fed by slab allocations; frees push back onto the
// *freeing* thread's list. Cross-thread frees are expected (helpers retire
// other threads' nodes), so lists are per-thread and never shared.
//
// The pool also supports the paper's "shuffle" trick (§8): pre-allocating
// a large batch and freeing it in random order to decorrelate placement.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <mutex>
#include <new>
#include <random>
#include <utility>
#include <vector>

#include "config.hpp"
#include "threading.hpp"

namespace flock {
namespace detail {

/// Untyped per-thread free-list pool for blocks of a fixed size/alignment.
template <std::size_t Size, std::size_t Align>
class raw_pool {
  struct free_node {
    free_node* next;
  };
  static constexpr std::size_t kSlot =
      Size < sizeof(free_node) ? sizeof(free_node) : Size;
  static constexpr std::size_t kSlabObjects = 256;

  struct alignas(kCacheLine) per_thread {
    free_node* head = nullptr;
    std::size_t outstanding = 0;  // live objects allocated - freed (stats)
  };

 public:
  static raw_pool& instance() {
    static raw_pool p;
    return p;
  }

  void* allocate() {
    per_thread& t = slot();
    if (t.head == nullptr) refill(t);
    free_node* n = t.head;
    t.head = n->next;
    ++t.outstanding;
    return n;
  }

  void deallocate(void* p) {
    per_thread& t = slot();
    auto* n = static_cast<free_node*>(p);
    n->next = t.head;
    t.head = n;
    --t.outstanding;
  }

  /// Net live objects across all threads (approximate under concurrency;
  /// exact at quiescence). Used by leak-accounting tests.
  long long outstanding() const {
    long long sum = 0;
    for (int i = 0; i < kMaxThreads; i++)
      sum += static_cast<long long>(slots_[i].outstanding);
    return sum;
  }

  /// Paper §8: allocate a large batch and free it in random order so run-to-
  /// run placement is decorrelated.
  void shuffle(std::size_t count) {
    std::vector<void*> v;
    v.reserve(count);
    for (std::size_t i = 0; i < count; i++) v.push_back(allocate());
    std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
    std::shuffle(v.begin(), v.end(), rng);
    for (void* p : v) deallocate(p);
  }

 private:
  per_thread& slot() { return slots_[thread_id()]; }

  void refill(per_thread& t) {
    void* slab = ::operator new(kSlot * kSlabObjects, std::align_val_t{Align});
    {
      std::lock_guard<std::mutex> g(slabs_mu_);
      slabs_.push_back(slab);
    }
    char* base = static_cast<char*>(slab);
    for (std::size_t i = 0; i < kSlabObjects; i++) {
      auto* n = reinterpret_cast<free_node*>(base + i * kSlot);
      n->next = t.head;
      t.head = n;
    }
  }

  raw_pool() = default;
  ~raw_pool() {
    for (void* s : slabs_) ::operator delete(s, std::align_val_t{Align});
  }

  per_thread slots_[kMaxThreads];
  std::mutex slabs_mu_;
  std::vector<void*> slabs_;  // never returned to the OS until exit
};

template <class T>
using pool_for = raw_pool<sizeof(T), alignof(T) < 8 ? 8 : alignof(T)>;

}  // namespace detail

/// Construct a T from a per-thread pool.
template <class T, class... Args>
T* pool_new(Args&&... args) {
  void* mem = detail::pool_for<T>::instance().allocate();
  return ::new (mem) T(std::forward<Args>(args)...);
}

/// Destroy and return to the pool.
template <class T>
void pool_delete(T* p) {
  p->~T();
  detail::pool_for<T>::instance().deallocate(p);
}

/// Type-erased deleter usable as a plain function pointer (epoch retire).
template <class T>
void pool_delete_erased(void* p) {
  pool_delete(static_cast<T*>(p));
}

/// Net live pool objects of type T (leak accounting in tests).
template <class T>
long long pool_outstanding() {
  return detail::pool_for<T>::instance().outstanding();
}

/// Decorrelate allocator placement (paper §8 warmup step).
template <class T>
void pool_shuffle(std::size_t count) {
  detail::pool_for<T>::instance().shuffle(count);
}

}  // namespace flock
