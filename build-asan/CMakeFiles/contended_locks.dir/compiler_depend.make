# Empty compiler generated dependencies file for contended_locks.
# This may be replaced when dependencies are built.
