// ring_queue.hpp — bounded MPSC request ring for the service tier
// (Vyukov-style per-slot sequence numbers; see the lock-free queue
// designs surveyed in Cederman et al., "Lock-free Concurrent Data
// Structures").
//
// Shape: clients (many producers) `try_push` request records; one
// consumer at a time drains them in FIFO batches with `pop_up_to(n)`.
// The queue is a power-of-two slot array where every slot carries its
// own 64-bit sequence number:
//
//   seq == pos              slot free, a producer claiming `pos` may fill
//   seq == pos + 1          slot published, the consumer at `pos` may read
//   seq == pos + capacity   slot consumed, free again for lap pos+capacity
//
// The per-slot sequence is what makes the ring safe at capacity: a
// producer that wins the CAS on the shared tail has *reserved* its slot,
// and the consumer cannot read it until the producer's release-store of
// seq publishes the record — while a slow producer on lap L cannot be
// confused with lap L+1 because sequences are 64-bit monotone (the
// classic wrapped-index ABA is designed out; tests drive a capacity-4
// ring through thousands of laps to exercise exactly this reuse).
//
// try_push never blocks: a full ring (slot's seq one whole lap behind)
// reports failure and the caller treats the request as retryable
// backpressure — the service tier counts these rejections.
//
// Consumer side: pop_up_to is written for a SINGLE consumer at a time;
// the service tier serializes consumers with a per-ring combiner lock
// (service.hpp), which is what turns N contending clients into one
// batch-executing combiner. head_/tail_ live on separate cache lines and
// the consumer reads the producer index once per *batch* (a cached view)
// rather than once per slot, so a drain costs one cross-core line
// transfer plus the slots themselves.
//
// This header deliberately knows nothing about requests or the flock
// runtime: it is a plain bounded ring over any trivially copyable T.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace flock_service {

template <class T>
class ring_queue {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring slots are published by a plain copy + release store");

 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit ring_queue(std::size_t capacity) {
    std::size_t c = 2;
    while (c < capacity) c <<= 1;
    mask_ = c - 1;
    slots_.reset(new slot[c]);
    for (std::size_t i = 0; i < c; i++)
      // mo: relaxed — pre-publication init; the constructor happens-before
      // any producer/consumer use of the queue object.
      slots_[i].seq.store(static_cast<uint64_t>(i),
                          std::memory_order_relaxed);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer, non-blocking. Returns false when the ring is full
  /// (the caller retries or treats it as backpressure); never waits on
  /// the consumer or on other producers.
  bool try_push(const T& v) {
    // mo: relaxed — the slot's seq (acquire, below) carries the ordering;
    // the shared tail is only a claim ticket.
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      slot& s = slots_[static_cast<std::size_t>(pos) & mask_];
      // mo: acquire — pairs with the consumer's release store of
      // seq = pos + capacity: seeing the slot free means the consumer's
      // read of the previous lap's record happened-before our overwrite.
      const uint64_t seq = s.seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        // Slot free for this lap: claim the position.
        // mo: relaxed — claiming only orders against other producers via
        // the CAS itself; publication ordering rides the seq store below.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          {
          s.value = v;
          // mo: release — publishes the record to the consumer, whose
          // acquire load of seq == pos + 1 admits the read.
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with the new position.
      } else if (dif < 0) {
        // One whole lap behind: the consumer has not freed this slot —
        // the ring is full *at our observed position*. Re-read the tail
        // once: if it moved, another producer won the slot and we race
        // for the next one; if not, report full.
        // mo: relaxed — same claim-ticket contract as the first load.
        const uint64_t cur = tail_.load(std::memory_order_relaxed);
        if (cur == pos) return false;
        pos = cur;
      } else {
        // A producer claimed this position but has not published yet
        // (seq still shows a later lap from our perspective only when we
        // raced past; reload and retry).
        // mo: relaxed — claim-ticket reload, as above.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer batch drain: copy up to `n` published records into
  /// `out`, in FIFO order, without blocking on in-flight producers (a
  /// claimed-but-unpublished slot ends the batch early rather than
  /// spinning — the producer is mid-publish and the next drain gets it).
  /// Callers MUST serialize pop_up_to invocations (service.hpp holds the
  /// per-ring combiner lock across the drain).
  std::size_t pop_up_to(T* out, std::size_t n) {
    // mo: relaxed — single consumer: only this (serialized) side ever
    // writes head_, so the load needs no ordering against other writers;
    // the external combiner lock orders consumer handoffs.
    uint64_t pos = head_.load(std::memory_order_relaxed);
    // Cached producer-index view: bound the batch with ONE read of the
    // shared tail instead of probing seq past the published prefix one
    // slot at a time (the miss would still be safe, just a wasted
    // cross-core load per drain).
    // mo: relaxed — an upper bound only; each slot's seq (acquire, below)
    // is what admits the actual read.
    const uint64_t bound = tail_.load(std::memory_order_relaxed);
    std::size_t got = 0;
    while (got < n && pos < bound) {
      slot& s = slots_[static_cast<std::size_t>(pos) & mask_];
      // mo: acquire — pairs with the producer's release publication of
      // seq = pos + 1; admits reading the record it covers.
      if (s.seq.load(std::memory_order_acquire) != pos + 1) break;
      out[got++] = s.value;
      // mo: release — frees the slot for lap pos + capacity; a producer's
      // acquire load of this value orders our read before its overwrite.
      s.seq.store(pos + mask_ + 1, std::memory_order_release);
      pos++;
    }
    if (got != 0)
      // mo: relaxed — see the head_ load above (single serialized
      // consumer; producers never read head_).
      head_.store(pos, std::memory_order_relaxed);
    return got;
  }

  /// Racy occupancy estimate (push-time queue-depth sampling; the service
  /// tier's depth high-water counter). May transiently over/under-count
  /// by in-flight operations; monitoring only.
  std::size_t approx_size() const {
    // mo: relaxed (both) — monitoring snapshot, no ordering needed.
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    const uint64_t h = head_.load(std::memory_order_relaxed);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  struct slot {
    std::atomic<uint64_t> seq;
    T value;
  };

  std::unique_ptr<slot[]> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer indices on separate lines: producers CAS tail_
  // while the consumer bumps head_ once per batch; sharing a line would
  // put every drain on the producers' coherence path.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
};

}  // namespace flock_service
